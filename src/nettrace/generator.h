// Synthetic trace generator. Produces flow-structured, Zipf-skewed,
// bursty packet traces from a NetworkPreset, deterministically from the
// preset seed — the stand-in for replaying NLANR / Dartmouth captures
// (DESIGN.md §5 records the substitution).
#pragma once

#include <cstdint>

#include "nettrace/presets.h"
#include "nettrace/trace.h"

namespace ddtr::net {

class TraceGenerator {
 public:
  struct Options {
    std::size_t packet_count = 20000;
    // Extra seed material so several distinct traces can be drawn from one
    // preset (the paper uses 10 traces from 8 networks).
    std::uint64_t seed_offset = 0;
  };

  // Generates `options.packet_count` packets following the preset's
  // arrival, popularity, size and protocol models.
  static Trace generate(const NetworkPreset& preset);
  static Trace generate(const NetworkPreset& preset, const Options& options);
};

}  // namespace ddtr::net

