// The eight synthetic network profiles standing in for the paper's trace
// sources: three NLANR-style wired networks (campus aggregate, satellite
// uplink, backbone peering) and five Dartmouth-style per-building wireless
// networks (the paper's figures mention the "Berry" building trace). Each
// preset fixes the parameter vector the network-level exploration step
// extracts: node count, offered throughput, packet-size mix, burstiness and
// HTTP share — distinct enough that the optimal DDT combination genuinely
// shifts between configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddtr::net {

struct NetworkPreset {
  std::string name;
  std::string description;
  std::size_t node_count;     // distinct hosts seen in the trace
  double mean_rate_pps;       // mean packet arrival rate
  double burstiness;          // 1 = Poisson; >1 = on/off bursty arrivals
  double zipf_skew;           // endpoint popularity skew
  double mtu_fraction;        // share of near-MTU data packets
  std::uint16_t mtu;          // maximum transmission unit
  double small_mean;          // mean of the small-packet mode (ACKs, VoIP)
  double http_fraction;       // share of packets carrying an HTTP URL
  double udp_fraction;        // transport mix
  std::uint64_t seed;         // generator stream seed
};

// All eight presets, index-stable across releases.
const std::vector<NetworkPreset>& all_network_presets();

// Lookup by name; throws std::out_of_range for unknown names.
const NetworkPreset& network_preset(const std::string& name);

// Convenience subsets used by the case studies (paper §4: Route uses 7
// networks, URL and DRR use 5).
std::vector<NetworkPreset> first_presets(std::size_t count);

}  // namespace ddtr::net

