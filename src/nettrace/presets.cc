#include "nettrace/presets.h"

#include <stdexcept>

namespace ddtr::net {

const std::vector<NetworkPreset>& all_network_presets() {
  static const std::vector<NetworkPreset> presets = {
      // name, description, nodes, pps, burst, zipf, mtu%, mtu, small,
      // http%, udp%, seed
      {"nlanr-campus", "wired campus aggregate (NLANR-style)", 420, 9200.0,
       1.3, 0.9, 0.46, 1500, 64.0, 0.30, 0.22, 101},
      {"nlanr-satellite", "satellite building uplink, small packets", 36,
       850.0, 1.8, 0.7, 0.18, 1480, 96.0, 0.22, 0.40, 102},
      {"nlanr-backbone", "peering link, heavy MTU traffic", 1600, 24000.0,
       1.1, 1.1, 0.58, 1500, 52.0, 0.18, 0.15, 103},
      {"dart-berry", "Berry hall wireless LAN (Dartmouth-style)", 120,
       2100.0, 2.6, 1.2, 0.26, 1460, 90.0, 0.44, 0.30, 104},
      {"dart-sudikoff", "CS department wireless, interactive mix", 75,
       1500.0, 2.2, 1.0, 0.22, 1460, 110.0, 0.40, 0.34, 105},
      {"dart-whittemore", "business school wireless, web heavy", 95, 1800.0,
       2.4, 1.3, 0.30, 1460, 85.0, 0.52, 0.26, 106},
      {"dart-library", "library wireless, many short flows", 210, 2600.0,
       2.9, 1.4, 0.20, 1460, 78.0, 0.48, 0.28, 107},
      {"dart-dorm", "residential wireless, p2p and streaming", 160, 3100.0,
       3.2, 0.8, 0.38, 1460, 70.0, 0.26, 0.45, 108},
  };
  return presets;
}

const NetworkPreset& network_preset(const std::string& name) {
  for (const NetworkPreset& preset : all_network_presets()) {
    if (preset.name == name) return preset;
  }
  throw std::out_of_range("unknown network preset: " + name);
}

std::vector<NetworkPreset> first_presets(std::size_t count) {
  const auto& all = all_network_presets();
  if (count > all.size()) count = all.size();
  return std::vector<NetworkPreset>(all.begin(),
                                    all.begin() + static_cast<long>(count));
}

}  // namespace ddtr::net
