// A network trace: packets plus a payload string table, with text
// serialization so generated traces can be inspected, stored and re-parsed
// — standing in for the NLANR / Dartmouth capture files of the paper.
#ifndef DDTR_NETTRACE_TRACE_H_
#define DDTR_NETTRACE_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "nettrace/packet.h"

namespace ddtr::net {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<PacketRecord>& packets() const noexcept {
    return packets_;
  }
  std::size_t size() const noexcept { return packets_.size(); }
  bool empty() const noexcept { return packets_.empty(); }

  void add_packet(const PacketRecord& packet) { packets_.push_back(packet); }

  // Interns a payload string; returns its payload id.
  std::uint32_t add_payload(std::string payload);

  // Payload for a packet, or empty view when the packet carries none.
  const std::string& payload(std::uint32_t payload_id) const;
  bool has_payload(const PacketRecord& p) const noexcept {
    return p.payload_id != kNoPayload && p.payload_id < payloads_.size();
  }
  std::size_t payload_count() const noexcept { return payloads_.size(); }

  double duration_s() const noexcept;

  // Text serialization: a header line, one "payload <id> <string>" line per
  // payload, then one packet per line.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  std::string name_;
  std::vector<PacketRecord> packets_;
  std::vector<std::string> payloads_;
};

}  // namespace ddtr::net

#endif  // DDTR_NETTRACE_TRACE_H_
