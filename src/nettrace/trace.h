// A network trace: packets plus a payload string table, with text
// serialization so generated traces can be inspected, stored and re-parsed
// — standing in for the NLANR / Dartmouth capture files of the paper.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nettrace/packet.h"

namespace ddtr::net {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  // The hash cache is value state: copies carry the already-computed
  // digest, and the atomic member would otherwise delete these.
  Trace(const Trace& other);
  Trace& operator=(const Trace& other);
  Trace(Trace&& other) noexcept;
  Trace& operator=(Trace&& other) noexcept;

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) {
    name_ = std::move(name);
    content_hash_.store(0, std::memory_order_relaxed);
  }

  const std::vector<PacketRecord>& packets() const noexcept {
    return packets_;
  }
  std::size_t size() const noexcept { return packets_.size(); }
  bool empty() const noexcept { return packets_.empty(); }

  void add_packet(const PacketRecord& packet) {
    packets_.push_back(packet);
    content_hash_.store(0, std::memory_order_relaxed);
  }

  // Interns a payload string; returns its payload id.
  std::uint32_t add_payload(std::string payload);

  // Payload for a packet, or empty view when the packet carries none.
  const std::string& payload(std::uint32_t payload_id) const;
  bool has_payload(const PacketRecord& p) const noexcept {
    return p.payload_id != kNoPayload && p.payload_id < payloads_.size();
  }
  std::size_t payload_count() const noexcept { return payloads_.size(); }

  double duration_s() const noexcept;

  // Stable 64-bit digest of the full trace content — name, payload table
  // and every packet field — the *content identity* the caching layers key
  // on (never the trace's label: two traces may share a name yet differ in
  // content, and cache entries outlive the process that wrote them).
  // Computed once and cached; safe to call concurrently on a shared
  // immutable trace (the cache slot is atomic and the digest idempotent).
  // Never returns 0, so 0 can serve as an "unhashed" sentinel.
  std::uint64_t content_hash() const noexcept;

  // Text serialization: a header line, one "payload <id> <string>" line per
  // payload, then one packet per line.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  std::string name_;
  std::vector<PacketRecord> packets_;
  std::vector<std::string> payloads_;
  // 0 = not computed yet; mutators reset it.
  mutable std::atomic<std::uint64_t> content_hash_{0};
};

}  // namespace ddtr::net

