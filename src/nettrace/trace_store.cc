#include "nettrace/trace_store.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ddtr::net {

std::shared_ptr<const Trace> TraceStore::get_or_build(
    const std::string& key, const std::function<Trace()>& build) {
  // The lock is held across the build: concurrent requests for the same
  // trace must not build it twice (the whole point of the store), and
  // store lookups happen at case-study construction time, not on the
  // simulation hot path.
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = traces_.find(key);
  if (it != traces_.end()) {
    ++hits_;
    return it->second;
  }
  auto trace = std::make_shared<const Trace>(build());
  traces_.emplace(key, trace);
  return trace;
}

namespace {

// Every generation-relevant preset field goes into the key: a caller who
// copies a registry preset and tweaks a parameter (ablations do) must get
// a fresh trace, not the cached one built from the original values.
std::string preset_key(const NetworkPreset& p) {
  std::ostringstream os;
  os << p.name << '|' << p.node_count << '|' << p.mean_rate_pps << '|'
     << p.burstiness << '|' << p.zipf_skew << '|' << p.mtu_fraction << '|'
     << p.mtu << '|' << p.small_mean << '|' << p.http_fraction << '|'
     << p.udp_fraction << '|' << p.seed;
  return os.str();
}

}  // namespace

std::shared_ptr<const Trace> TraceStore::get_or_generate(
    const NetworkPreset& preset, const TraceGenerator::Options& options) {
  const std::string key = "gen:" + preset_key(preset) + '#' +
                          std::to_string(options.packet_count) + '#' +
                          std::to_string(options.seed_offset);
  return get_or_build(
      key, [&] { return TraceGenerator::generate(preset, options); });
}

std::shared_ptr<const Trace> TraceStore::get_or_load(const std::string& path) {
  return get_or_build("file:" + path, [&] {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open trace file " + path);
    return Trace::load(is);
  });
}

std::size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::uint64_t TraceStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void TraceStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  hits_ = 0;
}

TraceStore& TraceStore::global() {
  static TraceStore store;
  return store;
}

}  // namespace ddtr::net
