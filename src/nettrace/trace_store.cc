#include "nettrace/trace_store.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ddtr::net {

std::shared_ptr<const Trace> TraceStore::get_or_build(
    const std::string& key, const std::function<Trace()>& build) {
  // Per-key future slots instead of holding the lock across build():
  // concurrent requests for the same trace still build it exactly once
  // (waiters block on that key's future), but requests for distinct keys
  // build concurrently — a case-study fan-out generating several networks'
  // traces must not serialize behind one store-wide lock.
  std::shared_future<std::shared_ptr<const Trace>> future;
  std::shared_ptr<std::promise<std::shared_ptr<const Trace>>> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = traces_.find(key);
    if (it != traces_.end()) {
      ++hits_;
      future = it->second;
    } else {
      promise =
          std::make_shared<std::promise<std::shared_ptr<const Trace>>>();
      future = promise->get_future().share();
      traces_.emplace(key, future);
    }
  }
  if (!promise) return future.get();  // ready, or waits on in-flight build

  try {
    auto trace = std::make_shared<const Trace>(build());
    promise->set_value(trace);
    return trace;
  } catch (...) {
    // Vacate the slot first so a later request retries the build, then
    // deliver the failure to every waiter already holding the future.
    {
      std::lock_guard<std::mutex> lock(mu_);
      traces_.erase(key);
    }
    promise->set_exception(std::current_exception());
    throw;
  }
}

namespace {

// Every generation-relevant preset field goes into the key: a caller who
// copies a registry preset and tweaks a parameter (ablations do) must get
// a fresh trace, not the cached one built from the original values.
// Doubles are emitted as hexfloats — exact, round-trippable renderings.
// The default ostream precision (6 significant digits) truncated them, so
// two presets differing in the 7th digit of e.g. zipf_skew collided on one
// key and silently shared the wrong trace.
std::string preset_key(const NetworkPreset& p) {
  std::ostringstream os;
  os << std::hexfloat;
  os << p.name << '|' << p.node_count << '|' << p.mean_rate_pps << '|'
     << p.burstiness << '|' << p.zipf_skew << '|' << p.mtu_fraction << '|'
     << p.mtu << '|' << p.small_mean << '|' << p.http_fraction << '|'
     << p.udp_fraction << '|' << p.seed;
  return os.str();
}

}  // namespace

std::shared_ptr<const Trace> TraceStore::get_or_generate(
    const NetworkPreset& preset, const TraceGenerator::Options& options) {
  const std::string key = "gen:" + preset_key(preset) + '#' +
                          std::to_string(options.packet_count) + '#' +
                          std::to_string(options.seed_offset);
  return get_or_build(
      key, [&] { return TraceGenerator::generate(preset, options); });
}

std::shared_ptr<const Trace> TraceStore::get_or_load(const std::string& path) {
  return get_or_build("file:" + path, [&] {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open trace file " + path);
    return Trace::load(is);
  });
}

std::size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::uint64_t TraceStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void TraceStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  hits_ = 0;
}

TraceStore& TraceStore::global() {
  static TraceStore store;
  return store;
}

}  // namespace ddtr::net
