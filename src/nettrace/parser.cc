#include "nettrace/parser.h"

#include <algorithm>
#include <unordered_set>

namespace ddtr::net {

namespace {

struct FlowKey {
  std::uint64_t hi;
  std::uint64_t lo;
  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(key.hi * 0x9e3779b97f4a7c15ULL ^
                                      key.lo);
  }
};

// Direction-insensitive 5-tuple key so that a flow and its reverse path
// count once.
FlowKey flow_key(const PacketRecord& p) {
  const std::uint64_t a =
      (static_cast<std::uint64_t>(p.src_ip) << 16) | p.src_port;
  const std::uint64_t b =
      (static_cast<std::uint64_t>(p.dst_ip) << 16) | p.dst_port;
  FlowKey key;
  key.hi = std::min(a, b);
  key.lo = (std::max(a, b) << 8) | p.protocol;
  return key;
}

}  // namespace

NetworkParams TraceParser::extract(const Trace& trace) {
  NetworkParams params;
  params.trace_name = trace.name();
  params.packet_count = trace.size();
  params.duration_s = trace.duration_s();

  std::unordered_set<std::uint32_t> nodes;
  std::unordered_set<FlowKey, FlowKeyHash> flows;
  std::uint64_t total_bytes = 0;
  std::size_t http_packets = 0;
  std::size_t udp_packets = 0;

  for (const PacketRecord& p : trace.packets()) {
    nodes.insert(p.src_ip);
    nodes.insert(p.dst_ip);
    flows.insert(flow_key(p));
    total_bytes += p.length;
    params.max_packet_bytes = std::max(params.max_packet_bytes, p.length);
    if (trace.has_payload(p)) ++http_packets;
    if (p.protocol == kProtoUdp) ++udp_packets;
  }

  params.node_count = nodes.size();
  params.flow_count = flows.size();
  if (params.packet_count > 0) {
    params.mean_packet_bytes = static_cast<double>(total_bytes) /
                               static_cast<double>(params.packet_count);
    params.http_fraction = static_cast<double>(http_packets) /
                           static_cast<double>(params.packet_count);
    params.udp_fraction = static_cast<double>(udp_packets) /
                          static_cast<double>(params.packet_count);
  }
  if (params.duration_s > 0.0) {
    params.throughput_bps =
        static_cast<double>(total_bytes) * 8.0 / params.duration_s;
  }
  return params;
}

}  // namespace ddtr::net
