#include "nettrace/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "support/rng.h"

namespace ddtr::net {

namespace {

using support::Rng;
using support::ZipfSampler;

// One bidirectional transport flow; packets are drawn from a Zipf
// distribution over these so that per-flow state (DRR queues, firewall
// connection entries) sees realistic reuse.
struct Flow {
  std::uint32_t src_ip;
  std::uint32_t dst_ip;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint8_t protocol;
  bool http;
};

// Each network lives in its own /16 inside 10.0.0.0/8 (derived from the
// preset seed), so different networks present genuinely different address
// populations — routing-table shapes and rule matches then differ per
// network, as they would across real sites.
std::uint32_t node_ip(std::size_t node, std::uint64_t network_seed) {
  const auto site = static_cast<std::uint8_t>(network_seed * 131 % 200);
  return make_ip(10, site, static_cast<std::uint8_t>((node >> 8) & 0xff),
                 static_cast<std::uint8_t>(node & 0xff));
}

constexpr std::uint16_t kServicePorts[] = {443, 53, 22, 25, 8080, 554, 110};

// Synthesizes a table of plausible URLs with Zipf-style popularity handled
// by the caller. Word lists keep the strings readable in saved traces.
std::vector<std::string> make_url_table(Rng& rng, std::size_t count) {
  static constexpr const char* kHosts[] = {
      "www.cnn.com",      "www.dartmouth.edu", "mail.example.org",
      "news.bbc.co.uk",   "www.slashdot.org",  "images.google.com",
      "www.weather.gov",  "www.amazon.com",    "cdn.akamai.net",
      "www.nlanr.net"};
  static constexpr const char* kDirs[] = {"news",  "img",   "static", "cgi",
                                          "pages", "media", "docs",   "api"};
  static constexpr const char* kFiles[] = {"index.html", "story", "view",
                                           "item",       "photo", "search"};
  std::vector<std::string> urls;
  urls.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string url = "http://";
    url += kHosts[rng.uniform(0, std::size(kHosts) - 1)];
    const std::size_t depth = rng.uniform(1, 3);
    for (std::size_t d = 0; d < depth; ++d) {
      url += '/';
      url += kDirs[rng.uniform(0, std::size(kDirs) - 1)];
    }
    url += '/';
    url += kFiles[rng.uniform(0, std::size(kFiles) - 1)];
    if (rng.chance(0.3)) {
      url += "?id=" + std::to_string(rng.uniform(1, 9999));
    }
    urls.push_back(std::move(url));
  }
  return urls;
}

std::uint16_t sample_length(const NetworkPreset& preset, Rng& rng) {
  if (rng.chance(preset.mtu_fraction)) {
    return static_cast<std::uint16_t>(preset.mtu - rng.uniform(0, 40));
  }
  if (rng.chance(0.55)) {
    const double v = rng.normal(preset.small_mean, preset.small_mean / 3.0);
    return static_cast<std::uint16_t>(std::clamp(v, 40.0, 400.0));
  }
  return static_cast<std::uint16_t>(rng.uniform(100, 900));
}

}  // namespace

Trace TraceGenerator::generate(const NetworkPreset& preset) {
  return generate(preset, Options{});
}

Trace TraceGenerator::generate(const NetworkPreset& preset,
                               const Options& options) {
  Rng rng(preset.seed * 0x9e3779b1ULL + options.seed_offset);
  std::string trace_name = preset.name;
  if (options.seed_offset != 0) {
    trace_name += '#';
    trace_name += std::to_string(options.seed_offset);
  }
  Trace trace(trace_name);

  // Flow population: a few flows per node, clamped to keep small presets
  // meaningful and big ones tractable.
  const std::size_t flow_count =
      std::clamp<std::size_t>(preset.node_count * 3, 32, 2048);
  ZipfSampler node_sampler(preset.node_count, preset.zipf_skew);
  std::vector<Flow> flows;
  flows.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    Flow flow;
    flow.src_ip = node_ip(node_sampler.sample(rng), preset.seed);
    std::uint32_t dst = node_ip(node_sampler.sample(rng), preset.seed);
    if (dst == flow.src_ip) dst ^= 1;  // no self-talk
    flow.dst_ip = dst;
    flow.src_port = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    flow.http = rng.chance(preset.http_fraction);
    if (flow.http) {
      flow.protocol = kProtoTcp;
      flow.dst_port = rng.chance(0.85) ? 80 : 8080;
    } else {
      flow.protocol = rng.chance(preset.udp_fraction) ? kProtoUdp : kProtoTcp;
      flow.dst_port =
          kServicePorts[rng.uniform(0, std::size(kServicePorts) - 1)];
    }
    flows.push_back(flow);
  }
  ZipfSampler flow_sampler(flow_count, preset.zipf_skew);

  // URL table with skewed popularity for the HTTP request payloads.
  const std::vector<std::string> urls = make_url_table(rng, 160);
  std::vector<std::uint32_t> url_ids(urls.size(), kNoPayload);
  ZipfSampler url_sampler(urls.size(), 0.9);

  // Bursty arrivals: a two-state (on/off) modulated Poisson process.
  bool burst_on = false;
  double now = 0.0;
  for (std::size_t i = 0; i < options.packet_count; ++i) {
    if (rng.chance(0.01)) burst_on = !burst_on;
    const double rate = burst_on ? preset.mean_rate_pps * preset.burstiness
                                 : preset.mean_rate_pps / preset.burstiness;
    now += rng.exponential(rate);

    const Flow& flow = flows[flow_sampler.sample(rng)];
    PacketRecord p;
    p.timestamp_s = now;
    // Roughly a third of packets travel in the reverse direction (ACKs,
    // responses).
    const bool reverse = rng.chance(0.35);
    p.src_ip = reverse ? flow.dst_ip : flow.src_ip;
    p.dst_ip = reverse ? flow.src_ip : flow.dst_ip;
    p.src_port = reverse ? flow.dst_port : flow.src_port;
    p.dst_port = reverse ? flow.src_port : flow.dst_port;
    p.protocol = flow.protocol;
    p.length = sample_length(preset, rng);
    if (flow.http && !reverse && rng.chance(0.5)) {
      const std::size_t url_index = url_sampler.sample(rng);
      if (url_ids[url_index] == kNoPayload) {
        url_ids[url_index] = trace.add_payload(urls[url_index]);
      }
      p.payload_id = url_ids[url_index];
      p.length = std::max<std::uint16_t>(
          p.length, static_cast<std::uint16_t>(urls[url_index].size() + 60));
    }
    trace.add_packet(p);
  }
  return trace;
}

}  // namespace ddtr::net
