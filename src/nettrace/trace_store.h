// Explicit sharing of immutable traces. A Trace is expensive to build
// (generation or text parsing) but read-only afterwards, so every Scenario
// that replays the same network holds a shared_ptr to ONE Trace instance,
// built once and replayed concurrently by the parallel explorer without
// copying. The store memoizes by generation parameters (or file path) so
// repeated case-study construction — e.g. a bench sweeping jobs = 1/2/4/8
// over fresh studies — also reuses the parsed traces.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "nettrace/generator.h"
#include "nettrace/presets.h"
#include "nettrace/trace.h"

namespace ddtr::net {

// Thread-safe memoization of shared_ptr<const Trace>. The shared_ptr
// aliasing is the sharing contract: holders may replay the trace from any
// thread because a stored Trace is never mutated again.
//
// Builds do not serialize behind one lock: each key owns a shared_future
// slot, so concurrent requests for the SAME key wait on one build while
// requests for DISTINCT keys build in parallel (PR-2's case-study fan-out
// builds several networks' traces at once).
class TraceStore {
 public:
  // Builds (once) and returns the trace a preset + options pair generates.
  std::shared_ptr<const Trace> get_or_generate(
      const NetworkPreset& preset, const TraceGenerator::Options& options);

  // Parses (once) and returns the trace stored in a text trace file.
  // Throws std::runtime_error when the file cannot be opened.
  std::shared_ptr<const Trace> get_or_load(const std::string& path);

  // Generic entry point: builds (once per key) and returns the trace. The
  // first requester of a key runs `build` outside the store lock; later
  // requesters of the same key wait on its future, and other keys are
  // unaffected. A build that throws propagates to every waiter and vacates
  // the slot, so a later request can retry.
  std::shared_ptr<const Trace> get_or_build(
      const std::string& key,
      const std::function<Trace()>& build);

  // Traces stored or being built.
  std::size_t size() const;
  // How many requests were answered from the store without rebuilding
  // (ready entries and waits on another requester's in-flight build).
  std::uint64_t hits() const;
  void clear();

  // Process-wide store used by the case-study builders.
  static TraceStore& global();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const Trace>>>
      traces_;
  std::uint64_t hits_ = 0;
};

}  // namespace ddtr::net

