#include "nettrace/trace.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ddtr::net {

std::uint32_t make_ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) noexcept {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

std::uint32_t Trace::add_payload(std::string payload) {
  payloads_.push_back(std::move(payload));
  return static_cast<std::uint32_t>(payloads_.size() - 1);
}

const std::string& Trace::payload(std::uint32_t payload_id) const {
  static const std::string kEmpty;
  if (payload_id == kNoPayload || payload_id >= payloads_.size()) {
    return kEmpty;
  }
  return payloads_[payload_id];
}

double Trace::duration_s() const noexcept {
  if (packets_.empty()) return 0.0;
  return packets_.back().timestamp_s - packets_.front().timestamp_s;
}

void Trace::save(std::ostream& os) const {
  os << "ddtr-trace 1 " << name_ << '\n';
  os << "payloads " << payloads_.size() << '\n';
  for (std::size_t i = 0; i < payloads_.size(); ++i) {
    os << "p " << i << ' ' << payloads_[i] << '\n';
  }
  os << "packets " << packets_.size() << '\n';
  for (const PacketRecord& p : packets_) {
    os << p.timestamp_s << ' ' << p.src_ip << ' ' << p.dst_ip << ' '
       << p.src_port << ' ' << p.dst_port << ' '
       << static_cast<unsigned>(p.protocol) << ' ' << p.length << ' '
       << p.payload_id << '\n';
  }
}

Trace Trace::load(std::istream& is) {
  std::string magic;
  int version = 0;
  std::string name;
  is >> magic >> version;
  std::getline(is, name);
  if (magic != "ddtr-trace" || version != 1) {
    throw std::runtime_error("not a ddtr trace stream");
  }
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  Trace trace(name);

  std::string tag;
  std::size_t payload_count = 0;
  is >> tag >> payload_count;
  if (tag != "payloads") throw std::runtime_error("bad payload section");
  for (std::size_t i = 0; i < payload_count; ++i) {
    std::string marker;
    std::size_t id = 0;
    std::string value;
    is >> marker >> id >> value;
    if (marker != "p" || id != i) {
      throw std::runtime_error("bad payload entry");
    }
    trace.add_payload(std::move(value));
  }

  std::size_t packet_count = 0;
  is >> tag >> packet_count;
  if (tag != "packets") throw std::runtime_error("bad packet section");
  for (std::size_t i = 0; i < packet_count; ++i) {
    PacketRecord p;
    unsigned protocol = 0;
    is >> p.timestamp_s >> p.src_ip >> p.dst_ip >> p.src_port >> p.dst_port >>
        protocol >> p.length >> p.payload_id;
    if (!is) throw std::runtime_error("truncated packet section");
    p.protocol = static_cast<std::uint8_t>(protocol);
    trace.add_packet(p);
  }
  return trace;
}

}  // namespace ddtr::net
