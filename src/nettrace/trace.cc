#include "nettrace/trace.h"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/fnv_hash.h"

namespace ddtr::net {

std::uint32_t make_ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) noexcept {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

Trace::Trace(const Trace& other)
    : name_(other.name_),
      packets_(other.packets_),
      payloads_(other.payloads_),
      content_hash_(other.content_hash_.load(std::memory_order_relaxed)) {}

Trace& Trace::operator=(const Trace& other) {
  if (this != &other) {
    name_ = other.name_;
    packets_ = other.packets_;
    payloads_ = other.payloads_;
    content_hash_.store(other.content_hash_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  return *this;
}

Trace::Trace(Trace&& other) noexcept
    : name_(std::move(other.name_)),
      packets_(std::move(other.packets_)),
      payloads_(std::move(other.payloads_)),
      content_hash_(other.content_hash_.load(std::memory_order_relaxed)) {
  // The moved-from trace is empty now; its old digest must not outlive
  // the content it described.
  other.content_hash_.store(0, std::memory_order_relaxed);
}

Trace& Trace::operator=(Trace&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    packets_ = std::move(other.packets_);
    payloads_ = std::move(other.payloads_);
    content_hash_.store(other.content_hash_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    other.content_hash_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

std::uint32_t Trace::add_payload(std::string payload) {
  payloads_.push_back(std::move(payload));
  content_hash_.store(0, std::memory_order_relaxed);
  return static_cast<std::uint32_t>(payloads_.size() - 1);
}

std::uint64_t Trace::content_hash() const noexcept {
  std::uint64_t cached = content_hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  support::Fnv1a64 h;
  h.str(name_);
  h.u64(payloads_.size());
  for (const std::string& payload : payloads_) h.str(payload);
  h.u64(packets_.size());
  for (const PacketRecord& p : packets_) {
    h.f64(p.timestamp_s)
        .u32(p.src_ip)
        .u32(p.dst_ip)
        .u16(p.src_port)
        .u16(p.dst_port)
        .u8(p.protocol)
        .u16(p.length)
        .u32(p.payload_id);
  }
  std::uint64_t digest = h.digest();
  // 0 is the "not computed" sentinel; remap the (astronomically unlikely)
  // zero digest to keep the contract that content_hash() is never 0.
  if (digest == 0) digest = support::Fnv1a64::kOffsetBasis;
  // Racing computations store the same value; relaxed is enough.
  content_hash_.store(digest, std::memory_order_relaxed);
  return digest;
}

const std::string& Trace::payload(std::uint32_t payload_id) const {
  static const std::string kEmpty;
  if (payload_id == kNoPayload || payload_id >= payloads_.size()) {
    return kEmpty;
  }
  return payloads_[payload_id];
}

double Trace::duration_s() const noexcept {
  if (packets_.empty()) return 0.0;
  return packets_.back().timestamp_s - packets_.front().timestamp_s;
}

void Trace::save(std::ostream& os) const {
  // max_digits10 makes the timestamp text exact: a saved trace must
  // reload to the same content (and content_hash) it was saved with —
  // the default 6-digit precision silently rounded timestamps. Restored
  // below: the caller's stream formatting is not ours to keep.
  const std::streamsize saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "ddtr-trace 1 " << name_ << '\n';
  os << "payloads " << payloads_.size() << '\n';
  for (std::size_t i = 0; i < payloads_.size(); ++i) {
    os << "p " << i << ' ' << payloads_[i] << '\n';
  }
  os << "packets " << packets_.size() << '\n';
  for (const PacketRecord& p : packets_) {
    os << p.timestamp_s << ' ' << p.src_ip << ' ' << p.dst_ip << ' '
       << p.src_port << ' ' << p.dst_port << ' '
       << static_cast<unsigned>(p.protocol) << ' ' << p.length << ' '
       << p.payload_id << '\n';
  }
  os.precision(saved_precision);
}

Trace Trace::load(std::istream& is) {
  std::string magic;
  int version = 0;
  std::string name;
  is >> magic >> version;
  std::getline(is, name);
  if (magic != "ddtr-trace" || version != 1) {
    throw std::runtime_error("not a ddtr trace stream");
  }
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  Trace trace(name);

  std::string tag;
  std::size_t payload_count = 0;
  is >> tag >> payload_count;
  if (tag != "payloads") throw std::runtime_error("bad payload section");
  for (std::size_t i = 0; i < payload_count; ++i) {
    std::string marker;
    std::size_t id = 0;
    std::string value;
    is >> marker >> id >> value;
    if (marker != "p" || id != i) {
      throw std::runtime_error("bad payload entry");
    }
    trace.add_payload(std::move(value));
  }

  std::size_t packet_count = 0;
  is >> tag >> packet_count;
  if (tag != "packets") throw std::runtime_error("bad packet section");
  for (std::size_t i = 0; i < packet_count; ++i) {
    PacketRecord p;
    unsigned protocol = 0;
    is >> p.timestamp_s >> p.src_ip >> p.dst_ip >> p.src_port >> p.dst_port >>
        protocol >> p.length >> p.payload_id;
    if (!is) throw std::runtime_error("truncated packet section");
    p.protocol = static_cast<std::uint8_t>(protocol);
    trace.add_packet(p);
  }
  return trace;
}

}  // namespace ddtr::net
