// Packet records — the unit of replay for every case study. A trace is a
// time-ordered sequence of these, optionally carrying an application
// payload (the URL of an HTTP request for the URL-switching case study).
#pragma once

#include <cstdint>

namespace ddtr::net {

inline constexpr std::uint32_t kNoPayload = 0xffffffffu;

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoIcmp = 1;

struct PacketRecord {
  double timestamp_s = 0.0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = kProtoTcp;
  std::uint16_t length = 0;              // bytes on the wire
  std::uint32_t payload_id = kNoPayload;  // index into Trace payload table
};

// Dotted-quad helpers (traces are also stored in a human-readable format).
std::uint32_t make_ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) noexcept;

}  // namespace ddtr::net

