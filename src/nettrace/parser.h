// Trace parsing / network-parameter extraction — the C++ replacement for
// the Perl front-end of the paper's tool flow (§3.2): "parse the available
// network traces and extract the network parameters from the raw data".
// The extracted NetworkParams drive the network-level exploration step.
#pragma once

#include <cstdint>
#include <string>

#include "nettrace/trace.h"

namespace ddtr::net {

// The network-configuration parameters the methodology cares about (paper
// §3.2: number of nodes, throughput, typical packet sizes) plus transport
// mix details that matter to individual case studies.
struct NetworkParams {
  std::string trace_name;
  std::size_t packet_count = 0;
  double duration_s = 0.0;
  std::size_t node_count = 0;      // distinct hosts (src or dst)
  std::size_t flow_count = 0;      // distinct 5-tuples
  double throughput_bps = 0.0;     // offered load
  double mean_packet_bytes = 0.0;
  std::uint16_t max_packet_bytes = 0;  // observed MTU
  double http_fraction = 0.0;      // packets carrying a URL payload
  double udp_fraction = 0.0;
};

class TraceParser {
 public:
  // Single pass over the trace; O(packets) time, O(nodes + flows) space.
  static NetworkParams extract(const Trace& trace);
};

}  // namespace ddtr::net

