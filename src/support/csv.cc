#include "support/csv.h"

namespace ddtr::support {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace ddtr::support
