#include "support/binary_io.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ddtr::support {

namespace {

void write_le(std::ostream& os, std::uint64_t v, int width) {
  char buf[8];
  for (int i = 0; i < width; ++i) {
    buf[i] = static_cast<char>(v >> (8 * i));
  }
  os.write(buf, width);
}

bool read_le(std::istream& is, std::uint64_t& v, int width) {
  char buf[8];
  if (!is.read(buf, width)) return false;
  v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return true;
}

}  // namespace

void write_u32(std::ostream& os, std::uint32_t v) { write_le(os, v, 4); }
void write_u64(std::ostream& os, std::uint64_t v) { write_le(os, v, 8); }

void write_f64(std::ostream& os, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_le(os, bits, 8);
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool read_u32(std::istream& is, std::uint32_t& v) {
  std::uint64_t wide = 0;
  if (!read_le(is, wide, 4)) return false;
  v = static_cast<std::uint32_t>(wide);
  return true;
}

bool read_u64(std::istream& is, std::uint64_t& v) {
  return read_le(is, v, 8);
}

bool read_f64(std::istream& is, double& v) {
  std::uint64_t bits = 0;
  if (!read_le(is, bits, 8)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool read_string(std::istream& is, std::string& s, std::uint64_t max_size) {
  std::uint64_t size = 0;
  if (!read_u64(is, size) || size > max_size) return false;
  // Grow in bounded chunks instead of trusting the length prefix: a
  // corrupt prefix claiming (max_size - 1) bytes must fail when the
  // stream runs dry, not after a gigabyte-sized up-front allocation.
  constexpr std::uint64_t kChunkBytes = 64 * 1024;
  s.clear();
  std::uint64_t remaining = size;
  while (remaining > 0) {
    const std::uint64_t step = std::min(remaining, kChunkBytes);
    const std::size_t old_size = s.size();
    s.resize(old_size + static_cast<std::size_t>(step));
    if (!is.read(s.data() + old_size, static_cast<std::streamsize>(step))) {
      return false;
    }
    remaining -= step;
  }
  return true;
}

#ifndef _WIN32

namespace {

bool fsync_fd_of(const char* path, int open_flags) {
  const int fd = ::open(path, open_flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool fsync_file(const std::string& path) {
  // A read-only descriptor suffices: fsync flushes the file, not the fd.
  return fsync_fd_of(path.c_str(), O_RDONLY);
}

bool fsync_dir(const std::string& dir) {
  return fsync_fd_of(dir.c_str(), O_RDONLY | O_DIRECTORY);
}

#else

bool fsync_file(const std::string&) { return true; }
bool fsync_dir(const std::string&) { return true; }

#endif

}  // namespace ddtr::support
