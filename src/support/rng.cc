#include "support/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ddtr::support {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : state_(splitmix64(seed)) {
  if (state_ == 0) state_ = 0x853c49e6748fea9bULL;
}

std::uint64_t Rng::next_u64() noexcept {
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dULL;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  return lo + next_u64() % span;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) noexcept {
  return next_double() < std::clamp(p, 0.0, 1.0);
}

double Rng::exponential(double rate) noexcept {
  // Guard the log argument away from zero.
  const double u = std::max(next_double(), 1e-300);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = next_double();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= next_double();
  }
  return count;
}

double Rng::normal(double mean, double stddev) noexcept {
  const double u1 = std::max(next_double(), 1e-300);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) noexcept {
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  cdf_.resize(std::max<std::size_t>(n, 1));
  double total = 0.0;
  for (std::size_t rank = 0; rank < cdf_.size(); ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
    cdf_[rank] = total;
  }
  for (double& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace ddtr::support
