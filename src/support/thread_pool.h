// Work-stealing parallel execution for the exploration engine. Every
// (scenario, combination) simulation is independent, so the explorer fans
// them over a fixed pool of workers that claim indices dynamically from a
// shared pile (self-scheduling: an idle worker "steals" the next undone
// index, so uneven simulation costs still balance). Results are written to
// index-addressed slots by the caller, which keeps parallel output
// deterministically ordered and bit-identical to the serial path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddtr::support {

// A fixed-size pool of worker threads consuming a shared task queue.
// `ThreadPool(jobs)` provides `jobs`-way parallelism: it spawns `jobs - 1`
// workers and the caller participates as the final lane inside
// parallel_for / parallel_map (so ThreadPool(1) spawns no threads at all
// and runs everything inline — the serial path stays thread-free).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency including the calling thread.
  std::size_t parallelism() const noexcept { return workers_.size() + 1; }
  // Worker threads owned by the pool (parallelism() - 1).
  std::size_t worker_count() const noexcept { return workers_.size(); }

  // Enqueues one task for any idle worker. Tasks must not throw.
  void submit(std::function<void()> task);

  // Maps the user-facing `jobs` knob to a concrete parallelism: 0 means
  // "one job per hardware thread"; anything else is taken literally.
  static std::size_t resolve_jobs(std::size_t jobs) noexcept;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs body(i) exactly once for every i in [0, n), spread over the pool's
// lanes plus the calling thread; returns when all n calls finished. The
// first exception thrown by `body` is rethrown on the caller after the
// remaining claimed iterations drain (unclaimed ones are skipped).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

// One-shot convenience: jobs-way parallel_for with a transient pool.
void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body);

// parallel_for writing fn(i) into slot i of the result vector — the
// deterministic-order building block the explorer's steps are built on.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace ddtr::support

