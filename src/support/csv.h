// Minimal CSV emission for Pareto-curve / design-space exports. The step-3
// tooling in the paper produced gnuplot inputs from Perl; we emit CSV files
// that serve the same role.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ddtr::support {

// Streams rows to an std::ostream, quoting cells only when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

// Quotes a cell per RFC 4180 when it contains separators/quotes/newlines.
std::string csv_escape(const std::string& cell);

}  // namespace ddtr::support

