// Deterministic pseudo-random number generation and the distributions the
// trace generator needs (uniform, exponential, Poisson, Zipf, bounded
// Pareto, normal). All state is explicit so every trace and every workload
// in the repository is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <vector>

namespace ddtr::support {

// xorshift64* generator. Small, fast and adequate for workload synthesis;
// not suitable for cryptography (irrelevant here).
class Rng {
 public:
  // Seeds are remixed through SplitMix64 so that consecutive small seeds
  // (0, 1, 2, ...) still produce decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // Raw 64 uniformly distributed bits.
  std::uint64_t next_u64() noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  // Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  // Exponential variate with the given rate (mean 1 / rate). rate > 0.
  double exponential(double rate) noexcept;

  // Poisson variate with the given mean (Knuth for small means, normal
  // approximation above 64 to stay O(1)).
  std::uint64_t poisson(double mean) noexcept;

  // Standard normal variate (Box-Muller, one value per call).
  double normal(double mean, double stddev) noexcept;

  // Bounded Pareto variate in [lo, hi] with shape alpha > 0. Heavy-tailed;
  // used for packet sizes and flow lengths.
  double bounded_pareto(double alpha, double lo, double hi) noexcept;

 private:
  std::uint64_t state_;
};

// Zipf-distributed ranks in [0, n). Precomputes the CDF once (O(n) memory)
// so that sampling is O(log n); network endpoint popularity is classically
// Zipfian, which is what makes roving pointers and arrays behave
// differently from lists in the case studies.
class ZipfSampler {
 public:
  // n >= 1; skew s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double skew);

  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ddtr::support

