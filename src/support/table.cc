#include "support/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace ddtr::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (header_.empty() ? 0 : header_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  return format_double(value, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

}  // namespace ddtr::support
