// Incremental 64-bit FNV-1a hashing — the content-identity primitive of
// the caching layers. Cache keys must be *content* keys, not label keys:
// two traces (or model configurations) that share a name but differ in a
// single byte must hash apart, across runs and across processes. FNV-1a
// over explicitly little-endian fixed-width encodings gives a stable,
// platform-independent 64-bit digest with no dependencies.
//
// Multi-field digests feed each field through a width-tagged method
// (u8/u16/u32/u64/f64/str); strings are length-prefixed so field
// boundaries cannot alias ("ab"+"c" never hashes like "a"+"bc").
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ddtr::support {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a64& bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= kPrime;
    }
    return *this;
  }

  Fnv1a64& u8(std::uint8_t v) noexcept { return bytes(&v, 1); }
  Fnv1a64& u16(std::uint16_t v) noexcept { return little_endian(v, 2); }
  Fnv1a64& u32(std::uint32_t v) noexcept { return little_endian(v, 4); }
  Fnv1a64& u64(std::uint64_t v) noexcept { return little_endian(v, 8); }

  // Hashes the IEEE-754 bit pattern, so values that compare equal but
  // differ in representation (-0.0 vs 0.0) hash apart — exactly what a
  // content key wants: the serialized forms differ too.
  Fnv1a64& f64(double v) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  Fnv1a64& str(std::string_view s) noexcept {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const noexcept { return hash_; }

 private:
  Fnv1a64& little_endian(std::uint64_t v, int width) noexcept {
    unsigned char buf[8];
    for (int i = 0; i < width; ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    return bytes(buf, static_cast<std::size_t>(width));
  }

  std::uint64_t hash_ = kOffsetBasis;
};

inline std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  return Fnv1a64().bytes(data, size).digest();
}

// splitmix64-style finalizer: spreads a 64-bit key over all output bits.
// Used to turn record keys into open-addressing probe starts, where the
// low bits must depend on every input bit (FNV's low bits alone do not).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace ddtr::support

