#include "support/arena.h"

namespace ddtr::support {

std::size_t next_chunk_objects(std::size_t current_objects,
                               std::size_t slot_bytes) noexcept {
  std::size_t cap = slot_bytes == 0 ? 1 : kMaxChunkBytes / slot_bytes;
  if (cap == 0) cap = 1;  // oversized objects: one per chunk
  std::size_t next = current_objects == 0 ? kFirstChunkObjects
                                          : current_objects * 2;
  if (next > cap) next = cap;
  return next;
}

}  // namespace ddtr::support
