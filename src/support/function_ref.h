// Non-owning callable reference: a {object pointer, trampoline} pair that
// replaces std::function in hot traversal loops. Unlike std::function it
// never allocates, never copies the callee, and is two words wide, so it
// passes in registers. The referenced callable must outlive the call —
// fine for the DDT visitors, which are always lambdas at the call site.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace ddtr::support {

template <typename Signature>
class function_ref;  // NOLINT(readability-identifier-naming) — std style

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor) — implicit by design
  function_ref(F&& callable) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        call_([](void* obj, Args... args) -> R {
          return static_cast<R>(
              (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace ddtr::support

