// Typed arena/pool allocator for the node-allocating DDTs. Objects are
// carved out of geometrically growing chunks (bump allocation) and recycled
// through an intrusive free list, so steady-state insert/remove churn costs
// a pointer swap instead of a malloc round-trip.
//
// Accounting is policy-driven so the profiling substrate can compare both
// worlds with the same container code:
//  - kArena charges the MemoryProfile per *chunk* (payload plus one
//    allocator header), which makes footprint reflect allocator reality:
//    chunk slack is charged, per-node headers are amortized away.
//  - kHeap reproduces the historical per-node accounting exactly (one
//    allocation event of sizeof(T)+kAllocatorOverhead per object), keeping
//    the pre-arena numbers available as a baseline for the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "profiling/memory_profile.h"

namespace ddtr::support {

// Heap-allocator bookkeeping bytes charged per allocation event (one per
// chunk under kArena, one per object under kHeap). ddt::kAllocatorOverhead
// aliases this value.
// ddtr-accounting-begin (allocator cost constants + chunk geometry)
inline constexpr std::size_t kAllocatorOverhead = 16;

// CPU-op charges of the allocation paths. Heap values match the historical
// count_alloc/count_free charges in ddt/container.h; arena paths are
// cheaper because a bump or free-list pop is a couple of instructions.
inline constexpr std::uint64_t kHeapAllocCpuOps = 8;
inline constexpr std::uint64_t kHeapFreeCpuOps = 4;
inline constexpr std::uint64_t kArenaChunkCpuOps = 8;    // new chunk
inline constexpr std::uint64_t kArenaCreateCpuOps = 2;   // bump / pop
inline constexpr std::uint64_t kArenaDestroyCpuOps = 1;  // free-list push
inline constexpr std::uint64_t kArenaReleaseCpuOps = 4;  // per chunk

enum class AllocPolicy : std::uint8_t {
  kArena,  // chunked bump allocation + free-list reuse (default)
  kHeap,   // one heap block per object (historical baseline)
};

// Chunk growth schedule: first chunk holds kFirstChunkObjects slots, each
// subsequent chunk doubles, capped so a chunk's payload stays within
// kMaxChunkBytes (one slot minimum for oversized objects).
inline constexpr std::size_t kFirstChunkObjects = 8;
inline constexpr std::size_t kMaxChunkBytes = 8192;
// ddtr-accounting-end

std::size_t next_chunk_objects(std::size_t current_objects,
                               std::size_t slot_bytes) noexcept;

// Observable pool state, for tests and for surfacing allocator reality
// through reports.
struct PoolStats {
  std::uint64_t created = 0;    // total create() calls
  std::uint64_t destroyed = 0;  // total destroy() calls
  std::uint64_t reused = 0;     // creates served from the free list
  std::size_t live_objects = 0;
  std::size_t peak_objects = 0;
  std::size_t chunk_count = 0;     // chunks currently reserved (kArena)
  std::size_t reserved_bytes = 0;  // payload bytes currently reserved
};

// Fixed-size object pool for T. Not thread-safe (each simulation owns its
// containers exclusively, like MemoryProfile itself).
template <typename T>
class Pool {
 public:
  explicit Pool(prof::MemoryProfile& profile,
                AllocPolicy policy = AllocPolicy::kArena)
      : profile_(&profile), policy_(policy) {}

  ~Pool() { release(); }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  AllocPolicy policy() const noexcept { return policy_; }
  const PoolStats& stats() const noexcept { return stats_; }

  template <typename... Args>
  T* create(Args&&... args) {
    Slot* slot = nullptr;
    if (policy_ == AllocPolicy::kHeap) {
      profile_->on_alloc(sizeof(T) + kAllocatorOverhead);
      profile_->record_cpu_ops(kHeapAllocCpuOps);
      slot = new Slot;
    } else if (free_list_ != nullptr) {
      slot = free_list_;
      free_list_ = slot->next_free;
      ++stats_.reused;
      profile_->record_cpu_ops(kArenaCreateCpuOps);
    } else {
      if (bump_ == bump_end_) grow();
      slot = bump_++;
      profile_->record_cpu_ops(kArenaCreateCpuOps);
    }
    T* object = ::new (static_cast<void*>(slot->storage))
        T(std::forward<Args>(args)...);
    ++stats_.created;
    ++stats_.live_objects;
    if (stats_.live_objects > stats_.peak_objects) {
      stats_.peak_objects = stats_.live_objects;
    }
    return object;
  }

  void destroy(T* object) noexcept {
    object->~T();
    Slot* slot = reinterpret_cast<Slot*>(object);
    if (policy_ == AllocPolicy::kHeap) {
      profile_->on_free(sizeof(T) + kAllocatorOverhead);
      profile_->record_cpu_ops(kHeapFreeCpuOps);
      delete slot;
    } else {
      slot->next_free = free_list_;
      free_list_ = slot;
      profile_->record_cpu_ops(kArenaDestroyCpuOps);
    }
    ++stats_.destroyed;
    --stats_.live_objects;
  }

  // Returns every chunk to the system (kArena). Callers must have
  // destroyed all live objects first; the free list and bump region are
  // reset, so previously handed-out pointers become invalid.
  void release() noexcept {
    if (!chunks_.empty()) {
      // Chunk-granular telemetry only: the per-object fast paths (bump,
      // free-list swap) stay untouched. See src/obs/.
      static obs::Counter& released =
          obs::registry().counter("arena.chunks_released");
      released.add(chunks_.size());
    }
    for (const Chunk& chunk : chunks_) {
      profile_->on_free(chunk.objects * sizeof(Slot) + kAllocatorOverhead);
      profile_->record_cpu_ops(kArenaReleaseCpuOps);
    }
    chunks_.clear();
    free_list_ = nullptr;
    bump_ = bump_end_ = nullptr;
    stats_.chunk_count = 0;
    stats_.reserved_bytes = 0;
  }

 private:
  union Slot {
    Slot() noexcept {}   // NOLINT — storage is initialized by placement-new
    ~Slot() noexcept {}  // NOLINT — destruction handled by destroy()
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  struct Chunk {
    std::unique_ptr<Slot[]> slots;
    std::size_t objects = 0;
  };

  void grow() {
    const std::size_t last =
        chunks_.empty() ? 0 : chunks_.back().objects;
    const std::size_t objects = next_chunk_objects(last, sizeof(Slot));
    Chunk chunk;
    chunk.slots = std::make_unique<Slot[]>(objects);
    chunk.objects = objects;
    bump_ = chunk.slots.get();
    bump_end_ = bump_ + objects;
    chunks_.push_back(std::move(chunk));
    ++stats_.chunk_count;
    stats_.reserved_bytes += objects * sizeof(Slot);
    profile_->on_alloc(objects * sizeof(Slot) + kAllocatorOverhead);
    profile_->record_cpu_ops(kArenaChunkCpuOps);
    // Chunk churn counters (see src/obs/); grow() already pays a malloc,
    // so the relaxed-atomic adds are noise here.
    static obs::Counter& grown =
        obs::registry().counter("arena.chunks_allocated");
    static obs::Counter& bytes =
        obs::registry().counter("arena.chunk_bytes_reserved");
    grown.add();
    bytes.add(objects * sizeof(Slot));
  }

  prof::MemoryProfile* profile_;  // non-owning, never null
  AllocPolicy policy_;
  std::vector<Chunk> chunks_;
  Slot* free_list_ = nullptr;
  Slot* bump_ = nullptr;
  Slot* bump_end_ = nullptr;
  PoolStats stats_;
};

}  // namespace ddtr::support

