// Plain-text table rendering for the benchmark harnesses. Every table and
// figure reproduction prints through this so that bench output is aligned
// and diff-able against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ddtr::support {

// Column-aligned text table. Cells are strings; numeric formatting is the
// caller's concern (see format_* helpers below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const noexcept { return rows_.size(); }

  // Renders with a header rule and two-space column gaps.
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision decimal ("12.34").
std::string format_double(double value, int precision = 2);

// Percentage with sign stripped ("87.3%").
std::string format_percent(double fraction, int precision = 1);

// Thousands-separated integer ("4,578,103").
std::string format_count(std::uint64_t value);

// Scaled byte count ("466.1 KiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace ddtr::support

