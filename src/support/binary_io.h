// Minimal little-endian binary stream encoding, the serialization
// substrate of the persistent caches. Explicit byte-by-byte encoding (no
// struct dumps) keeps the on-disk format independent of host endianness,
// padding and type widths; doubles travel as their IEEE-754 bit pattern,
// so round-trips are exact — a requirement for the byte-identical-report
// guarantee of the simulation cache. Readers return false on a short or
// failed stream instead of throwing: cache files are untrusted input
// (corrupt, truncated or stale files must be ignored, never crash a run).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ddtr::support {

void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_f64(std::ostream& os, double v);
// Length-prefixed (u64) raw bytes.
void write_string(std::ostream& os, const std::string& s);

bool read_u32(std::istream& is, std::uint32_t& v);
bool read_u64(std::istream& is, std::uint64_t& v);
bool read_f64(std::istream& is, double& v);
// Rejects lengths above `max_size` (default 1 GiB) so a corrupt length
// prefix cannot trigger a huge allocation.
bool read_string(std::istream& is, std::string& s,
                 std::uint64_t max_size = 1ull << 30);

// Crash-durability primitives for the write-temp + rename pattern: a
// rename is only atomic-and-durable if the temp file's CONTENT reached
// stable storage first (otherwise a crash right after the rename can
// surface an empty or truncated destination), and the rename itself only
// survives once the containing directory entry is synced. Both return
// false instead of throwing (persistence is best-effort by design); on
// platforms without fsync semantics they are no-ops returning true.
bool fsync_file(const std::string& path);
bool fsync_dir(const std::string& dir);

}  // namespace ddtr::support

