#include "support/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace ddtr::support {
namespace {

// Pool telemetry (see src/obs/): queue depth is a live gauge, the rest
// are monotonic counters. All relaxed-atomic — nothing here syncs the
// lanes, and none of it feeds scheduling decisions or results.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::registry().gauge("pool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t parallelism) {
  const std::size_t lanes = resolve_jobs(parallelism);
  workers_.reserve(lanes > 0 ? lanes - 1 : 0);
  for (std::size_t i = 1; i < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  static obs::Counter& submitted =
      obs::registry().counter("pool.tasks_submitted");
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  submitted.add();
  queue_depth_gauge().add(1);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  static obs::Counter& executed =
      obs::registry().counter("pool.tasks_executed");
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge().add(-1);
    task();
    executed.add();
  }
}

std::size_t ThreadPool::resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

// Shared state of one parallel_for call. Heap-allocated and owned jointly
// by the caller and every submitted worker task (shared_ptr), so a worker
// finishing after the caller observed completion still touches live state.
struct ParallelForState {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};   // next unclaimed index
  std::size_t pending_tasks = 0;      // submitted worker tasks still running
  std::exception_ptr error;           // first exception, rethrown by caller
  std::mutex mu;
  std::condition_variable cv;

  // Claims and runs indices until the pile is exhausted. On an exception
  // the pile is poisoned (next jumps past n) so other lanes stop quickly.
  // `helper_lane` only labels the utilization counters: indices claimed
  // by pool workers are the "steals" that balanced uneven unit costs
  // away from the calling lane.
  void drain(bool helper_lane) {
    std::size_t claimed = 0;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ++claimed;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);
      }
    }
    // One add per drain, not per index — the claim loop stays hot.
    static obs::Counter& caller_claims =
        obs::registry().counter("pool.caller_claims");
    static obs::Counter& helper_claims =
        obs::registry().counter("pool.helper_claims");
    (helper_lane ? helper_claims : caller_claims).add(claimed);
  }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool.worker_count() == 0 || n == 1) {
    // Serial path: no shared state, no synchronization — byte-identical
    // behavior to the pre-parallel engine.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->body = &body;

  // No point waking more lanes than there are indices; the caller is one.
  const std::size_t helpers = std::min(pool.worker_count(), n - 1);
  state->pending_tasks = helpers;
  for (std::size_t t = 0; t < helpers; ++t) {
    pool.submit([state] {
      state->drain(/*helper_lane=*/true);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->pending_tasks;
      }
      state->cv.notify_one();
    });
  }

  state->drain(/*helper_lane=*/false);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] { return state->pending_tasks == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool(jobs);
  parallel_for(pool, n, body);
}

}  // namespace ddtr::support
