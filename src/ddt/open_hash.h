// HASH — dense record array plus an open-addressing key index over
// arena-backed slot chunks. The record storage is exactly an AR (contiguous
// doubling array: O(1) positional access, O(n) middle edits), so the kind
// honors the positional Container contract bit-for-bit; what it adds is an
// O(1) find_key: linear probing over 16-byte {key, position} slots kept at
// load factor <= 1/2, with probe starts spread by support::mix64.
//
// The index is lazy and self-invalidating: structural edits that shift
// positions (middle insert/erase) or rewrite keys just mark it dirty, and
// the next find_key rebuilds it in one ascending pass (keeping the lowest
// position per duplicated key, matching the scan semantics of the default
// find_key). Appends and same-key overwrites — the hot path of the
// connection/flow tables this kind exists for — maintain the index
// incrementally. Unkeyed instances degrade to a plain AR and never build
// an index (find_key throws, as for every unkeyed container).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "ddt/container.h"
#include "ddt/kinds.h"
#include "support/arena.h"
#include "support/fnv_hash.h"

namespace ddtr::ddt {

template <typename T>
class OpenHashContainer final : public Container<T> {
 public:
  explicit OpenHashContainer(
      prof::MemoryProfile& profile,
      typename Container<T>::KeyFn key = nullptr,
      support::AllocPolicy policy = support::AllocPolicy::kArena)
      : Container<T>(profile, key), pool_(profile, policy) {}

  ~OpenHashContainer() override {
    release_data();
    // pool_ destructor releases the index chunks.
  }

  DdtKind kind() const noexcept override { return DdtKind::kOpenHash; }
  std::size_t size() const noexcept override { return data_.size(); }

  void push_back(const T& value) override {
    reserve_for_one_more();
    data_.push_back(value);
    this->count_write(sizeof(T));
    this->count_touch();
    if (index_built() && !dirty_) {
      if (data_.size() * 2 > slot_capacity()) {
        dirty_ = true;  // over the load-factor bound: rebuild on next find
      } else {
        index_insert_if_absent(hash_key_of(data_.back()), data_.size() - 1);
      }
    }
  }

  void insert(std::size_t index, const T& value) override {
    assert(index <= data_.size());
    if (index == data_.size()) {
      push_back(value);
      return;
    }
    reserve_for_one_more();
    const std::size_t moved = data_.size() - index;
    data_.insert(data_.begin() + static_cast<std::ptrdiff_t>(index), value);
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved + 1);
    this->count_moves(moved);
    mark_dirty();  // later positions shifted
  }

  T get(std::size_t index) const override {
    assert(index < data_.size());
    this->count_read(sizeof(T));
    this->count_touch();
    return data_[index];
  }

  void set(std::size_t index, const T& value) override {
    assert(index < data_.size());
    if (index_built() && !dirty_) {
      // Same-key overwrites (statistics updates on a keyed record — the
      // hot path) keep the index valid; a key rewrite invalidates it.
      this->count_read(sizeof(T));
      if (hash_key_of(data_[index]) != hash_key_of(value)) dirty_ = true;
    }
    data_[index] = value;
    this->count_write(sizeof(T));
    this->count_touch();
  }

  void erase(std::size_t index) override {
    assert(index < data_.size());
    const std::size_t moved = data_.size() - index - 1;
    data_.erase(data_.begin() + static_cast<std::ptrdiff_t>(index));
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    mark_dirty();
  }

  void clear() override {
    release_data();
    data_.clear();
    data_.shrink_to_fit();
    reserved_ = 0;
    chunks_.clear();
    pool_.release();
    dirty_ = false;
  }

  void for_each(typename Container<T>::Visitor visitor) const override {
    for (std::size_t i = 0; i < data_.size(); ++i) {
      this->count_read(sizeof(T));
      this->count_touch();
      if (!visitor(i, data_[i])) break;
    }
  }

  std::size_t find_key(std::uint64_t key) const override {
    this->require_key_fn();
    if (data_.empty()) return npos;
    if (!index_built() || dirty_) rebuild_index();
    this->profile().record_cpu_ops(kKeyHashCpuOps);
    this->count_read(kPointerBytes);  // chunk directory indirection
    this->count_hops(1);
    const Slot& slot = probe(key);
    return slot.state == kFull ? static_cast<std::size_t>(slot.pos) : npos;
  }

  const support::PoolStats& pool_stats() const noexcept {
    return pool_.stats();
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kFull = 1;
  static constexpr std::size_t kSlotsPerChunk = 64;
  static constexpr std::size_t kMinSlots = 128;

  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t pos = 0;
    std::uint32_t state = kEmpty;
  };
  static constexpr std::size_t kSlotBytes = sizeof(Slot);

  struct SlotChunk {
    Slot slots[kSlotsPerChunk];
  };

  bool index_built() const noexcept { return !chunks_.empty(); }
  std::size_t slot_capacity() const noexcept {
    return chunks_.size() * kSlotsPerChunk;
  }

  void mark_dirty() {
    if (index_built()) dirty_ = true;
  }

  std::uint64_t hash_key_of(const T& value) const {
    this->profile().record_cpu_ops(kKeyHashCpuOps);
    return this->key_of(value);
  }

  Slot& slot_at(std::size_t idx) const {
    return chunks_[idx / kSlotsPerChunk]->slots[idx % kSlotsPerChunk];
  }

  // Probes from mix64(key): returns the slot holding `key` or the first
  // empty slot. Terminates because load factor is kept <= 1/2.
  Slot& probe(std::uint64_t key) const {
    const std::size_t mask = slot_capacity() - 1;
    std::size_t idx = support::mix64(key) & mask;
    for (;;) {
      Slot& slot = slot_at(idx);
      this->count_read(kSlotBytes);
      this->count_touch();
      if (slot.state == kEmpty || slot.key == key) return slot;
      idx = (idx + 1) & mask;
    }
  }

  void index_insert_if_absent(std::uint64_t key, std::size_t pos) const {
    this->count_read(kPointerBytes);
    this->count_hops(1);
    Slot& slot = probe(key);
    if (slot.state == kFull) return;  // earlier position wins (scan order)
    slot.key = key;
    slot.pos = static_cast<std::uint32_t>(pos);
    slot.state = kFull;
    this->count_write(kSlotBytes);
  }

  // One ascending pass over the records: capacity is sized to twice the
  // record count (power of two, >= kMinSlots), every chunk is zeroed (one
  // chunk-wide write each), then each record pays a record read, a key
  // derivation and its probe traffic.
  void rebuild_index() const {
    std::size_t needed = kMinSlots;
    while (needed < data_.size() * 2) needed *= 2;
    const std::size_t needed_chunks = needed / kSlotsPerChunk;
    while (chunks_.size() > needed_chunks) {
      pool_.destroy(chunks_.back());  // back to the pool free list
      chunks_.pop_back();
    }
    while (chunks_.size() < needed_chunks) {
      chunks_.push_back(pool_.create());
    }
    for (SlotChunk* chunk : chunks_) {
      *chunk = SlotChunk{};
      this->count_write(sizeof(SlotChunk));
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
      this->count_read(sizeof(T));
      index_insert_if_absent(hash_key_of(data_[i]), i);
    }
    dirty_ = false;
  }

  // Record storage: identical growth accounting to ArrayContainer.
  void reserve_for_one_more() {
    if (data_.size() < reserved_) return;
    const std::size_t new_capacity = reserved_ == 0 ? 4 : reserved_ * 2;
    this->count_alloc(new_capacity * sizeof(T));
    if (!data_.empty()) {
      this->count_read(sizeof(T), data_.size());
      this->count_write(sizeof(T), data_.size());
      this->count_moves(data_.size());
    }
    if (reserved_ != 0) this->count_free(reserved_ * sizeof(T));
    data_.reserve(new_capacity);
    reserved_ = new_capacity;
  }

  void release_data() {
    if (reserved_ != 0) this->count_free(reserved_ * sizeof(T));
    reserved_ = 0;
  }

  std::vector<T> data_;
  std::size_t reserved_ = 0;  // capacity charged to the profile
  mutable support::Pool<SlotChunk> pool_;
  mutable std::vector<SlotChunk*> chunks_;  // index directory
  mutable bool dirty_ = false;
};

}  // namespace ddtr::ddt

