// AR(P) — resizable array of pointers to individually heap-allocated
// records. Random access costs a pointer read plus a record read; middle
// insertion/removal moves only pointers (cheap for large records); each
// record pays its own allocation header, so footprint sits between AR and
// the linked lists.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "ddt/container.h"
#include "ddt/kinds.h"

namespace ddtr::ddt {

template <typename T>
class ArrayOfPointersContainer final : public Container<T> {
 public:
  explicit ArrayOfPointersContainer(
      prof::MemoryProfile& profile,
      typename Container<T>::KeyFn key = nullptr)
      : Container<T>(profile, key) {}

  ~ArrayOfPointersContainer() override { release_all(); }

  DdtKind kind() const noexcept override { return DdtKind::kArrayOfPointers; }
  std::size_t size() const noexcept override { return slots_.size(); }

  void push_back(const T& value) override {
    reserve_for_one_more();
    slots_.push_back(make_record(value));
    this->count_write(kPointerBytes);  // store the pointer
    this->count_touch();
  }

  void insert(std::size_t index, const T& value) override {
    assert(index <= slots_.size());
    reserve_for_one_more();
    const std::size_t moved = slots_.size() - index;
    slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(index),
                  make_record(value));
    this->count_read(kPointerBytes, moved);
    this->count_write(kPointerBytes, moved + 1);
    this->count_moves(moved);
  }

  T get(std::size_t index) const override {
    assert(index < slots_.size());
    this->count_read(kPointerBytes);
    this->count_read(sizeof(T));
    this->count_hops(1);  // indirection through the slot pointer
    return *slots_[index];
  }

  void set(std::size_t index, const T& value) override {
    assert(index < slots_.size());
    this->count_read(kPointerBytes);
    *slots_[index] = value;
    this->count_write(sizeof(T));
    this->count_hops(1);
  }

  void erase(std::size_t index) override {
    assert(index < slots_.size());
    this->count_free(sizeof(T));
    const std::size_t moved = slots_.size() - index - 1;
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(index));
    this->count_read(kPointerBytes, moved);
    this->count_write(kPointerBytes, moved);
    this->count_moves(moved);
  }

  void clear() override {
    release_all();
    slots_.clear();
    slots_.shrink_to_fit();
    reserved_ = 0;
  }

  void for_each(typename Container<T>::Visitor visitor) const override {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      this->count_read(kPointerBytes);
      this->count_read(sizeof(T));
      this->count_hops(1);
      if (!visitor(i, *slots_[i])) break;
    }
  }

 private:
  std::unique_ptr<T> make_record(const T& value) {
    this->count_alloc(sizeof(T));
    this->count_write(sizeof(T));
    return std::make_unique<T>(value);
  }

  void reserve_for_one_more() {
    if (slots_.size() < reserved_) return;
    const std::size_t new_capacity = reserved_ == 0 ? 4 : reserved_ * 2;
    // Alloc-copy-free: both pointer buffers coexist during growth (see
    // ArrayContainer::reserve_for_one_more), though the slot array is far
    // smaller than the records it points to.
    this->count_alloc(new_capacity * kPointerBytes);
    if (!slots_.empty()) {
      this->count_read(kPointerBytes, slots_.size());
      this->count_write(kPointerBytes, slots_.size());
      this->count_moves(slots_.size());
    }
    if (reserved_ != 0) this->count_free(reserved_ * kPointerBytes);
    slots_.reserve(new_capacity);
    reserved_ = new_capacity;
  }

  void release_all() {
    for (auto& slot : slots_) {
      if (slot) this->count_free(sizeof(T));
      slot.reset();
    }
    if (reserved_ != 0) this->count_free(reserved_ * kPointerBytes);
  }

  std::vector<std::unique_ptr<T>> slots_;
  std::size_t reserved_ = 0;
};

}  // namespace ddtr::ddt

