// AR — contiguous resizable array of records. Cheapest random access (one
// record-sized touch), most expensive middle insertion/removal (element
// moves), footprint equal to the reserved capacity (doubling growth), no
// per-record pointer overhead.
#pragma once

#include <cassert>
#include <vector>

#include "ddt/container.h"
#include "ddt/kinds.h"

namespace ddtr::ddt {

template <typename T>
class ArrayContainer final : public Container<T> {
 public:
  explicit ArrayContainer(prof::MemoryProfile& profile,
                          typename Container<T>::KeyFn key = nullptr)
      : Container<T>(profile, key) {}

  ~ArrayContainer() override { release(); }

  DdtKind kind() const noexcept override { return DdtKind::kArray; }
  std::size_t size() const noexcept override { return data_.size(); }

  void push_back(const T& value) override {
    reserve_for_one_more();
    data_.push_back(value);
    this->count_write(sizeof(T));
    this->count_touch();
  }

  void insert(std::size_t index, const T& value) override {
    assert(index <= data_.size());
    reserve_for_one_more();
    // Shifting the tail: each moved record is one read plus one write,
    // streamed by the core (cheap cycles, expensive accesses).
    const std::size_t moved = data_.size() - index;
    data_.insert(data_.begin() + static_cast<std::ptrdiff_t>(index), value);
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved + 1);
    this->count_moves(moved);
  }

  T get(std::size_t index) const override {
    assert(index < data_.size());
    this->count_read(sizeof(T));
    this->count_touch();
    return data_[index];
  }

  void set(std::size_t index, const T& value) override {
    assert(index < data_.size());
    data_[index] = value;
    this->count_write(sizeof(T));
    this->count_touch();
  }

  void erase(std::size_t index) override {
    assert(index < data_.size());
    const std::size_t moved = data_.size() - index - 1;
    data_.erase(data_.begin() + static_cast<std::ptrdiff_t>(index));
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
  }

  void clear() override {
    release();
    data_.clear();
    data_.shrink_to_fit();
    reserved_ = 0;
  }

  void for_each(typename Container<T>::Visitor visitor) const override {
    for (std::size_t i = 0; i < data_.size(); ++i) {
      this->count_read(sizeof(T));
      this->count_touch();
      if (!visitor(i, data_[i])) break;
    }
  }

 private:
  void reserve_for_one_more() {
    if (data_.size() < reserved_) return;
    const std::size_t new_capacity = reserved_ == 0 ? 4 : reserved_ * 2;
    // Growth allocates the new buffer, copies every live record, then
    // frees the old buffer — old and new arrays coexist during the copy,
    // so the peak footprint charges both (the classic dynamic-array
    // penalty in embedded memory budgets).
    this->count_alloc(new_capacity * sizeof(T));
    if (!data_.empty()) {
      this->count_read(sizeof(T), data_.size());
      this->count_write(sizeof(T), data_.size());
      this->count_moves(data_.size());
    }
    if (reserved_ != 0) this->count_free(reserved_ * sizeof(T));
    data_.reserve(new_capacity);
    reserved_ = new_capacity;
  }

  void release() {
    if (reserved_ != 0) this->count_free(reserved_ * sizeof(T));
    reserved_ = 0;
  }

  std::vector<T> data_;
  std::size_t reserved_ = 0;  // capacity we have charged to the profile
};

}  // namespace ddtr::ddt

