#include "ddt/kinds.h"

namespace ddtr::ddt {

std::string_view to_string(DdtKind kind) noexcept {
  switch (kind) {
    case DdtKind::kArray: return "AR";
    case DdtKind::kArrayOfPointers: return "AR(P)";
    case DdtKind::kSll: return "SLL";
    case DdtKind::kDll: return "DLL";
    case DdtKind::kSllRoving: return "SLL(O)";
    case DdtKind::kDllRoving: return "DLL(O)";
    case DdtKind::kSllOfArrays: return "SLL(AR)";
    case DdtKind::kDllOfArrays: return "DLL(AR)";
    case DdtKind::kSllOfArraysRoving: return "SLL(ARO)";
    case DdtKind::kDllOfArraysRoving: return "DLL(ARO)";
  }
  return "?";
}

std::optional<DdtKind> parse_ddt_kind(std::string_view name) noexcept {
  for (DdtKind kind : kAllDdtKinds) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

std::string DdtCombination::label() const {
  std::string out;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (i != 0) out.push_back('+');
    out += to_string(kinds_[i]);
  }
  return out;
}

std::vector<DdtCombination> enumerate_combinations(std::size_t slots) {
  std::vector<DdtCombination> out;
  if (slots == 0) return out;
  std::size_t total = 1;
  for (std::size_t i = 0; i < slots; ++i) total *= kAllDdtKinds.size();
  out.reserve(total);
  std::vector<std::size_t> digits(slots, 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::vector<DdtKind> kinds(slots);
    std::size_t rem = n;
    // Most-significant digit first so that the first slot varies slowest.
    for (std::size_t i = slots; i-- > 0;) {
      digits[i] = rem % kAllDdtKinds.size();
      rem /= kAllDdtKinds.size();
    }
    for (std::size_t i = 0; i < slots; ++i) kinds[i] = kAllDdtKinds[digits[i]];
    out.emplace_back(std::move(kinds));
  }
  return out;
}

}  // namespace ddtr::ddt
