#include "ddt/kinds.h"

#include <algorithm>

namespace ddtr::ddt {
namespace {

// Single source of truth for kind metadata: to_string, parse_ddt_kind,
// describe and the `ddtr ddts` listing are all generated from this table,
// so a new enumerator cannot silently desync name parsing — the
// static_asserts below refuse to compile until the table and
// kAllDdtKinds both cover it exactly once.
struct KindRow {
  DdtKind kind;
  std::string_view name;
  std::string_view description;
};

constexpr std::array<KindRow, kAllDdtKinds.size()> kKindTable = {{
    {DdtKind::kArray, "AR",
     "contiguous resizable array; O(1) index, O(n) middle edit"},
    {DdtKind::kArrayOfPointers, "AR(P)",
     "array of pointers to heap records; cheap moves, per-record header"},
    {DdtKind::kSll, "SLL",
     "singly linked list; cheap front edits, linear walks"},
    {DdtKind::kDll, "DLL",
     "doubly linked list; walks from the nearer end"},
    {DdtKind::kSllRoving, "SLL(O)",
     "SLL with roving pointer; sequential access resumes in O(1)"},
    {DdtKind::kDllRoving, "DLL(O)",
     "DLL with roving pointer; bidirectional O(1) resume"},
    {DdtKind::kSllOfArrays, "SLL(AR)",
     "unrolled SLL of record chunks; amortized pointers and hops"},
    {DdtKind::kDllOfArrays, "DLL(AR)",
     "unrolled DLL of record chunks; nearer-end chunk walks"},
    {DdtKind::kSllOfArraysRoving, "SLL(ARO)",
     "unrolled SLL with roving chunk cache"},
    {DdtKind::kDllOfArraysRoving, "DLL(ARO)",
     "unrolled DLL with roving chunk cache"},
    {DdtKind::kOpenHash, "HASH",
     "dense array + open-addressing key index; O(1) keyed lookup"},
    {DdtKind::kUnrolledScan, "UNR",
     "cache-line-sized chunks; line-granular, vectorizable scans"},
}};

constexpr bool table_covers_all_kinds_exactly_once() {
  for (DdtKind kind : kAllDdtKinds) {
    int hits = 0;
    for (const KindRow& row : kKindTable) {
      if (row.kind == kind) ++hits;
    }
    if (hits != 1) return false;
  }
  return true;
}

constexpr bool table_names_are_distinct() {
  for (std::size_t i = 0; i < kKindTable.size(); ++i) {
    for (std::size_t j = i + 1; j < kKindTable.size(); ++j) {
      if (kKindTable[i].name == kKindTable[j].name) return false;
    }
  }
  return true;
}

static_assert(table_covers_all_kinds_exactly_once(),
              "every DdtKind enumerator must appear exactly once in "
              "kKindTable (and in kAllDdtKinds)");
static_assert(table_names_are_distinct(),
              "DdtKind short names must be unique for parse_ddt_kind");

const KindRow& row_for(DdtKind kind) noexcept {
  for (const KindRow& row : kKindTable) {
    if (row.kind == kind) return row;
  }
  return kKindTable[0];  // unreachable: the static_assert covers all kinds
}

}  // namespace

std::string_view to_string(DdtKind kind) noexcept {
  return row_for(kind).name;
}

std::string_view describe(DdtKind kind) noexcept {
  return row_for(kind).description;
}

std::optional<DdtKind> parse_ddt_kind(std::string_view name) noexcept {
  for (const KindRow& row : kKindTable) {
    if (row.name == name) return row.kind;
  }
  return std::nullopt;
}

std::vector<DdtKind> default_slot_kinds() {
  std::vector<DdtKind> kinds;
  kinds.reserve(kAllDdtKinds.size() - 1);
  for (DdtKind kind : kAllDdtKinds) {
    if (kind != DdtKind::kOpenHash) kinds.push_back(kind);
  }
  return kinds;
}

std::vector<DdtKind> keyed_slot_kinds() {
  return {kAllDdtKinds.begin(), kAllDdtKinds.end()};
}

std::string DdtCombination::label() const {
  std::string out;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (i != 0) out.push_back('+');
    out += to_string(kinds_[i]);
  }
  return out;
}

std::vector<DdtCombination> enumerate_combinations(std::size_t slots) {
  return enumerate_combinations(std::vector<std::vector<DdtKind>>(
      slots, {kAllDdtKinds.begin(), kAllDdtKinds.end()}));
}

std::vector<DdtCombination> enumerate_combinations(
    const std::vector<std::vector<DdtKind>>& slot_kinds) {
  std::vector<DdtCombination> out;
  const std::size_t slots = slot_kinds.size();
  if (slots == 0) return out;
  std::size_t total = 1;
  for (const auto& set : slot_kinds) {
    if (set.empty()) return out;
    total *= set.size();
  }
  out.reserve(total);
  std::vector<std::size_t> digits(slots, 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::vector<DdtKind> kinds(slots);
    std::size_t rem = n;
    // Most-significant digit first so that the first slot varies slowest.
    for (std::size_t i = slots; i-- > 0;) {
      digits[i] = rem % slot_kinds[i].size();
      rem /= slot_kinds[i].size();
    }
    for (std::size_t i = 0; i < slots; ++i) {
      kinds[i] = slot_kinds[i][digits[i]];
    }
    out.emplace_back(std::move(kinds));
  }
  return out;
}

}  // namespace ddtr::ddt
