// Run-time construction of any of the ten DDT implementations — the
// mechanism behind "keeping the same instrumentation and changing the DDT
// implementation for each dominant data structure" (paper §3.1).
#ifndef DDTR_DDT_FACTORY_H_
#define DDTR_DDT_FACTORY_H_

#include <memory>
#include <stdexcept>

#include "ddt/array.h"
#include "ddt/array_of_pointers.h"
#include "ddt/chunked_list.h"
#include "ddt/container.h"
#include "ddt/linked_list.h"

namespace ddtr::ddt {

// Creates a container of the requested kind reporting into `profile`.
template <typename T>
std::unique_ptr<Container<T>> make_container(DdtKind kind,
                                             prof::MemoryProfile& profile) {
  switch (kind) {
    case DdtKind::kArray:
      return std::make_unique<ArrayContainer<T>>(profile);
    case DdtKind::kArrayOfPointers:
      return std::make_unique<ArrayOfPointersContainer<T>>(profile);
    case DdtKind::kSll:
      return std::make_unique<SllContainer<T>>(profile);
    case DdtKind::kDll:
      return std::make_unique<DllContainer<T>>(profile);
    case DdtKind::kSllRoving:
      return std::make_unique<SllRovingContainer<T>>(profile);
    case DdtKind::kDllRoving:
      return std::make_unique<DllRovingContainer<T>>(profile);
    case DdtKind::kSllOfArrays:
      return std::make_unique<SllOfArraysContainer<T>>(profile);
    case DdtKind::kDllOfArrays:
      return std::make_unique<DllOfArraysContainer<T>>(profile);
    case DdtKind::kSllOfArraysRoving:
      return std::make_unique<SllOfArraysRovingContainer<T>>(profile);
    case DdtKind::kDllOfArraysRoving:
      return std::make_unique<DllOfArraysRovingContainer<T>>(profile);
  }
  throw std::invalid_argument("unknown DdtKind");
}

}  // namespace ddtr::ddt

#endif  // DDTR_DDT_FACTORY_H_
