// Run-time construction of any DDT implementation — the mechanism behind
// "keeping the same instrumentation and changing the DDT implementation
// for each dominant data structure" (paper §3.1).
#pragma once

#include <memory>
#include <stdexcept>

#include "ddt/array.h"
#include "ddt/array_of_pointers.h"
#include "ddt/chunked_list.h"
#include "ddt/container.h"
#include "ddt/kinds.h"
#include "ddt/linked_list.h"
#include "ddt/open_hash.h"
#include "ddt/unrolled_scan.h"
#include "support/arena.h"

namespace ddtr::ddt {

// Creates a container of the requested kind reporting into `profile`.
// `key_fn` (optional) enables keyed lookups via Container::find_key; it is
// required for kOpenHash to do anything beyond plain-array behavior, which
// is why the explorer only offers that kind on keyed slots. `policy`
// selects how node-allocating kinds draw their nodes (arena pool by
// default; kHeap reproduces the historical per-node accounting).
template <typename T>
std::unique_ptr<Container<T>> make_container(
    DdtKind kind, prof::MemoryProfile& profile,
    typename Container<T>::KeyFn key_fn = nullptr,
    support::AllocPolicy policy = support::AllocPolicy::kArena) {
  switch (kind) {
    case DdtKind::kArray:
      return std::make_unique<ArrayContainer<T>>(profile, key_fn);
    case DdtKind::kArrayOfPointers:
      return std::make_unique<ArrayOfPointersContainer<T>>(profile, key_fn);
    case DdtKind::kSll:
      return std::make_unique<SllContainer<T>>(profile, key_fn, policy);
    case DdtKind::kDll:
      return std::make_unique<DllContainer<T>>(profile, key_fn, policy);
    case DdtKind::kSllRoving:
      return std::make_unique<SllRovingContainer<T>>(profile, key_fn, policy);
    case DdtKind::kDllRoving:
      return std::make_unique<DllRovingContainer<T>>(profile, key_fn, policy);
    case DdtKind::kSllOfArrays:
      return std::make_unique<SllOfArraysContainer<T>>(profile, key_fn,
                                                       policy);
    case DdtKind::kDllOfArrays:
      return std::make_unique<DllOfArraysContainer<T>>(profile, key_fn,
                                                       policy);
    case DdtKind::kSllOfArraysRoving:
      return std::make_unique<SllOfArraysRovingContainer<T>>(profile, key_fn,
                                                             policy);
    case DdtKind::kDllOfArraysRoving:
      return std::make_unique<DllOfArraysRovingContainer<T>>(profile, key_fn,
                                                             policy);
    case DdtKind::kOpenHash:
      return std::make_unique<OpenHashContainer<T>>(profile, key_fn, policy);
    case DdtKind::kUnrolledScan:
      return std::make_unique<UnrolledScanContainer<T>>(profile, key_fn,
                                                        policy);
  }
  throw std::invalid_argument("unknown DdtKind");
}

}  // namespace ddtr::ddt

