// SLL / DLL / SLL(O) / DLL(O) — the linked-list family of the DDT library,
// implemented as one template parameterized on linkage (singly/doubly) and
// on the roving pointer optimization.
//
// Cost structure:
//  * reaching logical position i costs one container-header read plus one
//    pointer read per hop; a DLL can start from whichever end is closer;
//  * a roving pointer caches the last visited (node, index) so sequential
//    access patterns (the common case in trace-driven network kernels)
//    cost O(1) per access instead of O(i);
//  * nodes come from a support::Pool — under the arena policy footprint is
//    charged per chunk (slack included) and node churn recycles through
//    the free list; under the heap policy every node pays its own
//    allocation header, giving lists the largest footprint per record.
#pragma once

#include <cassert>
#include <cstddef>

#include "ddt/container.h"
#include "ddt/kinds.h"
#include "support/arena.h"

namespace ddtr::ddt {

template <typename T, bool Doubly, bool Roving>
class ListContainer final : public Container<T> {
 public:
  explicit ListContainer(
      prof::MemoryProfile& profile,
      typename Container<T>::KeyFn key = nullptr,
      support::AllocPolicy policy = support::AllocPolicy::kArena)
      : Container<T>(profile, key), pool_(profile, policy) {}

  ~ListContainer() override { destroy_all(); }

  DdtKind kind() const noexcept override {
    if constexpr (Doubly) {
      return Roving ? DdtKind::kDllRoving : DdtKind::kDll;
    } else {
      return Roving ? DdtKind::kSllRoving : DdtKind::kSll;
    }
  }

  std::size_t size() const noexcept override { return size_; }

  void push_back(const T& value) override {
    Node* node = new_node(value);
    this->count_read(kPointerBytes);  // tail pointer
    this->count_hops(1);
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      this->count_write(kPointerBytes);
      if constexpr (Doubly) {
        node->prev = tail_;
        this->count_write(kPointerBytes);
      }
      tail_ = node;
    }
    ++size_;
    // Appending never shifts logical indices, so the roving cache survives.
  }

  void insert(std::size_t index, const T& value) override {
    assert(index <= size_);
    if (index == size_) {
      push_back(value);
      return;
    }
    Node* node = new_node(value);
    if (index == 0) {
      node->next = head_;
      this->count_write(kPointerBytes);
      if constexpr (Doubly) {
        head_->prev = node;
        this->count_write(kPointerBytes);
      }
      head_ = node;
    } else {
      Node* prev = walk_to(index - 1);
      node->next = prev->next;
      prev->next = node;
      this->count_write(kPointerBytes, 2);
      this->count_hops(2);
      if constexpr (Doubly) {
        node->prev = prev;
        node->next->prev = node;
        this->count_write(kPointerBytes, 2);
      }
    }
    ++size_;
    invalidate_roving();
  }

  T get(std::size_t index) const override {
    assert(index < size_);
    Node* node = walk_to(index);
    this->count_read(sizeof(T));
    return node->value;
  }

  void set(std::size_t index, const T& value) override {
    assert(index < size_);
    Node* node = walk_to(index);
    node->value = value;
    this->count_write(sizeof(T));
  }

  void erase(std::size_t index) override {
    assert(index < size_);
    Node* victim;
    if (index == 0) {
      victim = head_;
      this->count_read(kPointerBytes);  // victim->next
      head_ = victim->next;
      if (head_ == nullptr) {
        tail_ = nullptr;
      } else if constexpr (Doubly) {
        head_->prev = nullptr;
        this->count_write(kPointerBytes);
      }
    } else {
      Node* prev = walk_to(index - 1);
      victim = prev->next;
      this->count_read(kPointerBytes, 2);  // prev->next, victim->next
      prev->next = victim->next;
      this->count_write(kPointerBytes);
      this->count_hops(2);
      if (victim == tail_) {
        tail_ = prev;
      } else if constexpr (Doubly) {
        victim->next->prev = prev;
        this->count_write(kPointerBytes);
      }
    }
    delete_node(victim);
    --size_;
    invalidate_roving();
  }

  void clear() override {
    destroy_all();
    pool_.release();
    head_ = tail_ = nullptr;
    size_ = 0;
    invalidate_roving();
  }

  const support::PoolStats& pool_stats() const noexcept {
    return pool_.stats();
  }

  void for_each(typename Container<T>::Visitor visitor) const override {
    this->count_read(kPointerBytes);  // head pointer
    Node* node = head_;
    std::size_t index = 0;
    while (node != nullptr) {
      this->count_read(sizeof(T));
      update_roving(node, index);
      if (!visitor(index, node->value)) break;
      this->count_read(kPointerBytes);  // node->next
      this->count_hops(1);
      node = node->next;
      ++index;
    }
  }

 private:
  struct NodeSingle {
    T value;
    NodeSingle* next = nullptr;
  };
  struct NodeDouble {
    T value;
    NodeDouble* next = nullptr;
    NodeDouble* prev = nullptr;
  };
  using Node = std::conditional_t<Doubly, NodeDouble, NodeSingle>;

  Node* new_node(const T& value) {
    this->count_write(sizeof(T));
    Node* node = pool_.create();
    node->value = value;
    return node;
  }

  void delete_node(Node* node) { pool_.destroy(node); }

  void destroy_all() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next;
      delete_node(node);
      node = next;
    }
  }

  // Reaches logical position `index`, charging one pointer read for picking
  // up the entry pointer (head/tail/roving cache) plus one per hop.
  Node* walk_to(std::size_t index) const {
    std::size_t from_head = index + 1;  // entry read + index hops
    Node* start = head_;
    std::size_t start_index = 0;
    bool backward = false;
    std::size_t best = from_head;

    if constexpr (Doubly) {
      const std::size_t from_tail = size_ - index;  // entry read + hops
      if (from_tail < best) {
        best = from_tail;
        start = tail_;
        start_index = size_ - 1;
        backward = true;
      }
    }
    if constexpr (Roving) {
      if (rov_node_ != nullptr) {
        if (index >= rov_index_) {
          const std::size_t cost = index - rov_index_ + 1;
          if (cost < best) {
            best = cost;
            start = rov_node_;
            start_index = rov_index_;
            backward = false;
          }
        } else if constexpr (Doubly) {
          const std::size_t cost = rov_index_ - index + 1;
          if (cost < best) {
            best = cost;
            start = rov_node_;
            start_index = rov_index_;
            backward = true;
          }
        }
      }
    }

    this->count_read(kPointerBytes, best);
    this->count_hops(best);
    Node* node = start;
    if (backward) {
      if constexpr (Doubly) {
        for (std::size_t i = start_index; i > index; --i) node = node->prev;
      }
    } else {
      for (std::size_t i = start_index; i < index; ++i) node = node->next;
    }
    update_roving(node, index);
    return node;
  }

  void update_roving(Node* node, std::size_t index) const {
    if constexpr (Roving) {
      rov_node_ = node;
      rov_index_ = index;
    } else {
      (void)node;
      (void)index;
    }
  }

  void invalidate_roving() const {
    if constexpr (Roving) {
      rov_node_ = nullptr;
      rov_index_ = 0;
    }
  }

  support::Pool<Node> pool_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
  mutable Node* rov_node_ = nullptr;
  mutable std::size_t rov_index_ = 0;
};

template <typename T>
using SllContainer = ListContainer<T, false, false>;
template <typename T>
using DllContainer = ListContainer<T, true, false>;
template <typename T>
using SllRovingContainer = ListContainer<T, false, true>;
template <typename T>
using DllRovingContainer = ListContainer<T, true, true>;

}  // namespace ddtr::ddt

