// The dynamic data types of the DDT library: the paper's ten kinds
// (paper §3.1, library of [9]) — arrays, linked lists, roving-pointer
// lists and unrolled ("array chunk") lists, in singly- and doubly-linked
// flavours — plus two cache-conscious additions layered on the arena
// allocator: an open-addressing hash index (HASH) and a cache-line-sized
// unrolled list with a vectorizable membership scan (UNR).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ddtr::ddt {

// Version of the DDT access-accounting model. Any change to how the
// containers charge reads/writes/allocations (constants, arena policy,
// new kinds that alter the lattice) must bump this: it feeds every app's
// cache_version(), so persistent simulation caches never mix numbers
// produced under different accounting semantics.
//  v1: per-node heap accounting, 10-kind lattice.
//  v2: arena-backed pools (chunk-granular footprint), HASH/UNR kinds,
//      keyed lookups (find_key).
// ddtr-accounting-begin (accounting version + kind lattice)
inline constexpr std::uint32_t kDdtAccountingVersion = 2;

enum class DdtKind : std::uint8_t {
  kArray,               // AR: contiguous resizable array of records
  kArrayOfPointers,     // AR(P): array of pointers to heap records
  kSll,                 // SLL: singly linked list
  kDll,                 // DLL: doubly linked list
  kSllRoving,           // SLL(O): SLL with roving pointer
  kDllRoving,           // DLL(O): DLL with roving pointer
  kSllOfArrays,         // SLL(AR): unrolled singly linked list
  kDllOfArrays,         // DLL(AR): unrolled doubly linked list
  kSllOfArraysRoving,   // SLL(ARO): unrolled SLL with roving pointer
  kDllOfArraysRoving,   // DLL(ARO): unrolled DLL with roving pointer
  kOpenHash,            // HASH: array + open-addressing key index
  kUnrolledScan,        // UNR: cache-line chunks, vectorizable scan
};

inline constexpr std::array<DdtKind, 12> kAllDdtKinds = {
    DdtKind::kArray,          DdtKind::kArrayOfPointers,
    DdtKind::kSll,            DdtKind::kDll,
    DdtKind::kSllRoving,      DdtKind::kDllRoving,
    DdtKind::kSllOfArrays,    DdtKind::kDllOfArrays,
    DdtKind::kSllOfArraysRoving, DdtKind::kDllOfArraysRoving,
    DdtKind::kOpenHash,       DdtKind::kUnrolledScan,
};
// ddtr-accounting-end

// Canonical short name, e.g. "AR(P)", "HASH" or "DLL(ARO)".
std::string_view to_string(DdtKind kind) noexcept;

// One-line human description, e.g. for `ddtr ddts`.
std::string_view describe(DdtKind kind) noexcept;

// Inverse of to_string; nullopt for unknown names.
std::optional<DdtKind> parse_ddt_kind(std::string_view name) noexcept;

// The kinds legal for an arbitrary (unkeyed) dominant-structure slot:
// every kind except kOpenHash, whose key index only pays off — and whose
// find_key only works — when the slot's records carry a key function.
std::vector<DdtKind> default_slot_kinds();

// The kinds legal for a slot whose application supplies a record key
// function (all of them, including kOpenHash).
std::vector<DdtKind> keyed_slot_kinds();

// A choice of DDT implementation for each dominant data structure of an
// application — one point of the step-1 exploration space.
class DdtCombination {
 public:
  DdtCombination() = default;
  explicit DdtCombination(std::vector<DdtKind> kinds)
      : kinds_(std::move(kinds)) {}

  std::size_t size() const noexcept { return kinds_.size(); }
  DdtKind operator[](std::size_t i) const { return kinds_.at(i); }
  const std::vector<DdtKind>& kinds() const noexcept { return kinds_; }

  // "AR+DLL" style label used in logs and Pareto charts.
  std::string label() const;

  bool operator==(const DdtCombination&) const = default;

 private:
  std::vector<DdtKind> kinds_;
};

// The full factorial space: all |kAllDdtKinds|^slots combinations, in a
// deterministic lexicographic order (first slot varies slowest).
std::vector<DdtCombination> enumerate_combinations(std::size_t slots);

// Per-slot factorial space: the cartesian product of one kind set per
// slot, in the same deterministic order. This is what the explorer
// enumerates once applications declare which slots are keyed.
std::vector<DdtCombination> enumerate_combinations(
    const std::vector<std::vector<DdtKind>>& slot_kinds);

}  // namespace ddtr::ddt

