// The ten dynamic data types of the DDT library (paper §3.1, library of
// [9]): arrays, linked lists, roving-pointer lists and unrolled ("array
// chunk") lists, in singly- and doubly-linked flavours.
#ifndef DDTR_DDT_KINDS_H_
#define DDTR_DDT_KINDS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ddtr::ddt {

enum class DdtKind : std::uint8_t {
  kArray,               // AR: contiguous resizable array of records
  kArrayOfPointers,     // AR(P): array of pointers to heap records
  kSll,                 // SLL: singly linked list
  kDll,                 // DLL: doubly linked list
  kSllRoving,           // SLL(O): SLL with roving pointer
  kDllRoving,           // DLL(O): DLL with roving pointer
  kSllOfArrays,         // SLL(AR): unrolled singly linked list
  kDllOfArrays,         // DLL(AR): unrolled doubly linked list
  kSllOfArraysRoving,   // SLL(ARO): unrolled SLL with roving pointer
  kDllOfArraysRoving,   // DLL(ARO): unrolled DLL with roving pointer
};

inline constexpr std::array<DdtKind, 10> kAllDdtKinds = {
    DdtKind::kArray,          DdtKind::kArrayOfPointers,
    DdtKind::kSll,            DdtKind::kDll,
    DdtKind::kSllRoving,      DdtKind::kDllRoving,
    DdtKind::kSllOfArrays,    DdtKind::kDllOfArrays,
    DdtKind::kSllOfArraysRoving, DdtKind::kDllOfArraysRoving,
};

// Canonical short name, e.g. "AR(P)" or "DLL(ARO)".
std::string_view to_string(DdtKind kind) noexcept;

// Inverse of to_string; nullopt for unknown names.
std::optional<DdtKind> parse_ddt_kind(std::string_view name) noexcept;

// A choice of DDT implementation for each dominant data structure of an
// application — one point of the step-1 exploration space.
class DdtCombination {
 public:
  DdtCombination() = default;
  explicit DdtCombination(std::vector<DdtKind> kinds)
      : kinds_(std::move(kinds)) {}

  std::size_t size() const noexcept { return kinds_.size(); }
  DdtKind operator[](std::size_t i) const { return kinds_.at(i); }
  const std::vector<DdtKind>& kinds() const noexcept { return kinds_; }

  // "AR+DLL" style label used in logs and Pareto charts.
  std::string label() const;

  bool operator==(const DdtCombination&) const = default;

 private:
  std::vector<DdtKind> kinds_;
};

// The full factorial space: all |kAllDdtKinds|^slots combinations, in a
// deterministic lexicographic order. This is what step 1 enumerates
// (10 combinations for one dominant structure, 100 for two, ...).
std::vector<DdtCombination> enumerate_combinations(std::size_t slots);

}  // namespace ddtr::ddt

#endif  // DDTR_DDT_KINDS_H_
