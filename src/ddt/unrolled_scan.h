// UNR — cache-line-sized unrolled list with a vectorizable membership
// scan. Chunks are sized so their record payload fits one 64-byte cache
// line, which changes the accounting unit for traversal: a scan touches
// each chunk's payload as ONE line-wide read (plus header and link), not
// one read per record, and the per-record key comparison inside a chunk is
// charged as streaming SIMD work instead of serially dependent touches.
// Positional edits behave like a singly linked chunked list (shift within
// the chunk, split on full, unlink on empty); chunks come from the arena
// pool, so churn recycles lines instead of calling the allocator.
//
// This is the shape of the related-work unrolled lists built for clique
// enumeration: linear membership scans over packed lines beat both
// pointer-chasing lists (hop per record) and big-array scans (no early
// exit granularity) when the set is small-to-medium and scanned often.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "ddt/container.h"
#include "ddt/kinds.h"
#include "support/arena.h"

namespace ddtr::ddt {

// One cache line of record payload per chunk (at least two records).
// ddtr-accounting-begin (cache-line geometry: footprint + scan cost)
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
inline constexpr std::size_t kUnrolledScanCapacity =
    std::max<std::size_t>(2, kCacheLineBytes / sizeof(T));
// ddtr-accounting-end

template <typename T>
class UnrolledScanContainer final : public Container<T> {
 public:
  explicit UnrolledScanContainer(
      prof::MemoryProfile& profile,
      typename Container<T>::KeyFn key = nullptr,
      support::AllocPolicy policy = support::AllocPolicy::kArena)
      : Container<T>(profile, key), pool_(profile, policy) {}

  ~UnrolledScanContainer() override { destroy_all(); }

  DdtKind kind() const noexcept override { return DdtKind::kUnrolledScan; }
  std::size_t size() const noexcept override { return size_; }

  void push_back(const T& value) override {
    this->count_read(kPointerBytes);  // tail pointer
    this->count_hops(1);
    if (tail_ == nullptr || tail_->count == kCapacity) append_chunk();
    this->count_read(kHeaderBytes);
    tail_->values[tail_->count] = value;
    ++tail_->count;
    this->count_write(sizeof(T));
    this->count_write(kHeaderBytes);
    this->count_touch();
    ++size_;
  }

  void insert(std::size_t index, const T& value) override {
    assert(index <= size_);
    if (index == size_) {
      push_back(value);
      return;
    }
    Pos pos = locate(index);
    if (pos.node->count == kCapacity) {
      split_chunk(pos.node);
      if (pos.offset >= pos.node->count) {
        pos.offset -= pos.node->count;
        pos.prev = pos.node;
        pos.node = pos.node->next;
        this->count_read(kPointerBytes);
      }
    }
    Node* node = pos.node;
    const std::size_t moved = node->count - pos.offset;
    for (std::size_t i = node->count; i > pos.offset; --i) {
      node->values[i] = node->values[i - 1];
    }
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    node->values[pos.offset] = value;
    ++node->count;
    this->count_write(sizeof(T));
    this->count_write(kHeaderBytes);
    ++size_;
  }

  T get(std::size_t index) const override {
    assert(index < size_);
    const Pos pos = locate(index);
    this->count_read(sizeof(T));
    this->count_touch();
    return pos.node->values[pos.offset];
  }

  void set(std::size_t index, const T& value) override {
    assert(index < size_);
    const Pos pos = locate(index);
    pos.node->values[pos.offset] = value;
    this->count_write(sizeof(T));
    this->count_touch();
  }

  void erase(std::size_t index) override {
    assert(index < size_);
    Pos pos = locate(index);
    Node* node = pos.node;
    const std::size_t moved = node->count - pos.offset - 1;
    for (std::size_t i = pos.offset; i + 1 < node->count; ++i) {
      node->values[i] = node->values[i + 1];
    }
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    --node->count;
    this->count_write(kHeaderBytes);
    --size_;
    if (node->count == 0) unlink_chunk(node, pos.prev);
  }

  void clear() override {
    destroy_all();
    pool_.release();
    head_ = tail_ = nullptr;
    size_ = 0;
  }

  // Line-granular traversal: one payload-wide read per chunk, one touch
  // per visited record.
  void for_each(typename Container<T>::Visitor visitor) const override {
    this->count_read(kPointerBytes);  // head pointer
    const Node* node = head_;
    std::size_t base = 0;
    while (node != nullptr) {
      this->count_read(kHeaderBytes);
      this->count_read(node->count * sizeof(T));  // whole line at once
      this->count_hops(1);
      for (std::size_t i = 0; i < node->count; ++i) {
        this->count_touch();
        if (!visitor(base + i, node->values[i])) return;
      }
      base += node->count;
      this->count_read(kPointerBytes);
      node = node->next;
    }
  }

  // Vectorizable membership scan: per chunk one line read plus streaming
  // key compares (no per-record serial dependency), early exit on match.
  std::size_t find_key(std::uint64_t key) const override {
    this->require_key_fn();
    this->count_read(kPointerBytes);  // head pointer
    const Node* node = head_;
    std::size_t base = 0;
    while (node != nullptr) {
      this->count_read(kHeaderBytes);
      this->count_read(node->count * sizeof(T));
      this->count_hops(1);
      this->profile().record_cpu_ops(
          kKeyHashCpuOps + node->count / kMoveElemsPerCpuOp + 1);
      for (std::size_t i = 0; i < node->count; ++i) {
        if (this->key_of(node->values[i]) == key) return base + i;
      }
      base += node->count;
      this->count_read(kPointerBytes);
      node = node->next;
    }
    return npos;
  }

  const support::PoolStats& pool_stats() const noexcept {
    return pool_.stats();
  }

 private:
  static constexpr std::size_t kCapacity = kUnrolledScanCapacity<T>;
  static constexpr std::size_t kHeaderBytes = sizeof(std::uint16_t);

  struct Node {
    T values[kCapacity];
    std::uint16_t count = 0;
    Node* next = nullptr;
  };

  struct Pos {
    Node* node;
    Node* prev;  // forward predecessor (nullptr for the head chunk)
    std::size_t offset;
  };

  void append_chunk() {
    Node* node = pool_.create();
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      this->count_write(kPointerBytes);
      tail_ = node;
    }
  }

  // Forward chunk walk: entry pointer read, then header + pointer read and
  // a hop per chunk advanced over.
  Pos locate(std::size_t index) const {
    Node* node = head_;
    Node* prev = nullptr;
    std::size_t base = 0;
    this->count_read(kPointerBytes);  // entry pointer
    this->count_read(kHeaderBytes);
    while (index >= base + node->count) {
      base += node->count;
      prev = node;
      node = node->next;
      this->count_read(kPointerBytes);
      this->count_read(kHeaderBytes);
      this->count_hops(1);
    }
    return Pos{node, prev, index - base};
  }

  void split_chunk(Node* node) {
    Node* tail_half = pool_.create();
    const std::size_t keep = kCapacity / 2;
    const std::size_t moved = kCapacity - keep;
    for (std::size_t i = 0; i < moved; ++i) {
      tail_half->values[i] = node->values[keep + i];
    }
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    tail_half->count = static_cast<std::uint16_t>(moved);
    node->count = static_cast<std::uint16_t>(keep);
    this->count_write(kHeaderBytes, 2);
    tail_half->next = node->next;
    node->next = tail_half;
    this->count_write(kPointerBytes, 2);
    if (tail_ == node) tail_ = tail_half;
  }

  void unlink_chunk(Node* node, Node* prev) {
    if (node == head_) head_ = node->next;
    if (node == tail_) tail_ = prev;
    if (prev != nullptr) {
      prev->next = node->next;
      this->count_write(kPointerBytes);
    }
    pool_.destroy(node);
  }

  void destroy_all() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next;
      pool_.destroy(node);
      node = next;
    }
  }

  support::Pool<Node> pool_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ddtr::ddt

