// SLL(AR) / DLL(AR) / SLL(ARO) / DLL(ARO) — the unrolled-list family:
// linked chunks each holding up to kChunkCapacity records. Compared with
// plain lists they amortize the pointer and allocator overhead over a whole
// chunk (smaller footprint, fewer hops per position) at the price of
// intra-chunk element moves on insertion/removal. Roving variants cache the
// last visited chunk and its base index.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "ddt/container.h"
#include "ddt/kinds.h"
#include "support/arena.h"

namespace ddtr::ddt {

// Chunks target roughly 256 bytes of record payload — the ablation bench
// bench_ddt_micro sweeps this choice.
template <typename T>
// ddtr-accounting-begin (chunk capacity: footprint granularity)
inline constexpr std::size_t kDefaultChunkCapacity =
    std::max<std::size_t>(4, 256 / sizeof(T));
// ddtr-accounting-end

template <typename T, bool Doubly, bool Roving,
          std::size_t ChunkCapacity = kDefaultChunkCapacity<T>>
class ChunkedListContainer final : public Container<T> {
 public:
  explicit ChunkedListContainer(
      prof::MemoryProfile& profile,
      typename Container<T>::KeyFn key = nullptr,
      support::AllocPolicy policy = support::AllocPolicy::kArena)
      : Container<T>(profile, key), pool_(profile, policy) {}

  ~ChunkedListContainer() override { destroy_all(); }

  DdtKind kind() const noexcept override {
    if constexpr (Doubly) {
      return Roving ? DdtKind::kDllOfArraysRoving : DdtKind::kDllOfArrays;
    } else {
      return Roving ? DdtKind::kSllOfArraysRoving : DdtKind::kSllOfArrays;
    }
  }

  std::size_t size() const noexcept override { return size_; }

  void push_back(const T& value) override {
    this->count_read(kPointerBytes);  // tail pointer
    this->count_hops(1);
    if (tail_ == nullptr || chunk_full(tail_)) {
      append_chunk();
    }
    this->count_read(kHeaderBytes);  // tail count
    tail_->values[tail_->count] = value;
    ++tail_->count;
    this->count_write(sizeof(T));
    this->count_write(kHeaderBytes);
    this->count_touch();
    ++size_;
    // Indices of existing records are unchanged: roving cache survives.
  }

  void insert(std::size_t index, const T& value) override {
    assert(index <= size_);
    if (index == size_) {
      push_back(value);
      return;
    }
    Pos pos = locate(index);
    if (chunk_full(pos.node)) {
      split_chunk(pos);
      if (pos.offset >= pos.node->count) {
        pos.offset -= pos.node->count;
        pos.base += pos.node->count;
        pos.prev = pos.node;
        pos.node = pos.node->next;
        this->count_read(kPointerBytes);
      }
    }
    Node* node = pos.node;
    const std::size_t moved = node->count - pos.offset;
    for (std::size_t i = node->count; i > pos.offset; --i) {
      node->values[i] = node->values[i - 1];
    }
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    node->values[pos.offset] = value;
    ++node->count;
    this->count_write(sizeof(T));
    this->count_write(kHeaderBytes);
    ++size_;
    invalidate_roving();
  }

  T get(std::size_t index) const override {
    assert(index < size_);
    const Pos pos = locate(index);
    this->count_read(sizeof(T));
    this->count_touch();
    return pos.node->values[pos.offset];
  }

  void set(std::size_t index, const T& value) override {
    assert(index < size_);
    const Pos pos = locate(index);
    pos.node->values[pos.offset] = value;
    this->count_write(sizeof(T));
    this->count_touch();
  }

  void erase(std::size_t index) override {
    assert(index < size_);
    Pos pos = locate(index);
    Node* node = pos.node;
    const std::size_t moved = node->count - pos.offset - 1;
    for (std::size_t i = pos.offset; i + 1 < node->count; ++i) {
      node->values[i] = node->values[i + 1];
    }
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    --node->count;
    this->count_write(kHeaderBytes);
    --size_;
    if (node->count == 0) unlink_chunk(pos);
    invalidate_roving();
  }

  void clear() override {
    destroy_all();
    pool_.release();
    head_ = tail_ = nullptr;
    size_ = 0;
    invalidate_roving();
  }

  const support::PoolStats& pool_stats() const noexcept {
    return pool_.stats();
  }

  void for_each(typename Container<T>::Visitor visitor) const override {
    this->count_read(kPointerBytes);  // head pointer
    Node* node = head_;
    std::size_t base = 0;
    while (node != nullptr) {
      this->count_read(kHeaderBytes);
      this->count_hops(1);
      update_roving(node, base);
      for (std::size_t i = 0; i < node->count; ++i) {
        this->count_read(sizeof(T));
        this->count_touch();
        if (!visitor(base + i, node->values[i])) return;
      }
      base += node->count;
      this->count_read(kPointerBytes);
      node = node->next;
    }
  }

 private:
  static constexpr std::size_t kHeaderBytes = sizeof(std::uint32_t);

  struct NodeSingle {
    T values[ChunkCapacity];
    std::uint32_t count = 0;
    NodeSingle* next = nullptr;
  };
  struct NodeDouble {
    T values[ChunkCapacity];
    std::uint32_t count = 0;
    NodeDouble* next = nullptr;
    NodeDouble* prev = nullptr;
  };
  using Node = std::conditional_t<Doubly, NodeDouble, NodeSingle>;

  // A located logical position: the chunk, the chunk preceding it in
  // forward order (nullptr when unknown or none), the logical index of the
  // chunk's first record, and the offset within the chunk.
  struct Pos {
    Node* node;
    Node* prev;
    std::size_t base;
    std::size_t offset;
  };

  static bool chunk_full(const Node* node) noexcept {
    return node->count == ChunkCapacity;
  }

  Node* new_chunk() { return pool_.create(); }

  void free_chunk(Node* node) { pool_.destroy(node); }

  void destroy_all() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next;
      free_chunk(node);
      node = next;
    }
  }

  void append_chunk() {
    Node* node = new_chunk();
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      this->count_write(kPointerBytes);
      if constexpr (Doubly) {
        node->prev = tail_;
        this->count_write(kPointerBytes);
      }
      tail_ = node;
    }
  }

  // Walks to the chunk containing `index`. Charges one entry pointer read
  // plus, per chunk advanced over, a header read and a pointer read.
  Pos locate(std::size_t index) const {
    // Candidate starts: head (forward), tail (backward, doubly only),
    // roving cache (forward; both directions when doubly).
    Node* node = head_;
    Node* prev = nullptr;
    std::size_t base = 0;
    bool backward = false;

    if constexpr (Doubly) {
      // Distances measured in records are a proxy for chunk hops.
      if (index > size_ / 2) {
        node = tail_;
        base = size_ - tail_->count;
        backward = true;
      }
    }
    if constexpr (Roving) {
      if (rov_node_ != nullptr) {
        const bool ahead = index >= rov_base_;
        const std::size_t dist =
            ahead ? index - rov_base_ : rov_base_ - index;
        const std::size_t cur_dist =
            backward ? (index > size_ - 1 ? 0 : size_ - 1 - index) : index;
        if ((ahead || Doubly) && dist < cur_dist) {
          node = rov_node_;
          prev = nullptr;
          base = rov_base_;
          backward = !ahead;
        }
      }
    }

    this->count_read(kPointerBytes);  // entry pointer
    if (backward) {
      if constexpr (Doubly) {
        this->count_read(kHeaderBytes);
        while (index < base) {
          node = node->prev;
          this->count_read(kPointerBytes);
          this->count_read(kHeaderBytes);
          this->count_hops(1);
          base -= node->count;
        }
        prev = node->prev;
      }
    } else {
      this->count_read(kHeaderBytes);
      while (index >= base + node->count) {
        base += node->count;
        prev = node;
        node = node->next;
        this->count_read(kPointerBytes);
        this->count_read(kHeaderBytes);
        this->count_hops(1);
      }
    }
    update_roving(node, base);
    return Pos{node, prev, base, index - base};
  }

  // Splits a full chunk in two, moving the upper half into a fresh chunk
  // linked right after it.
  void split_chunk(Pos& pos) {
    Node* node = pos.node;
    Node* tail_half = new_chunk();
    const std::size_t keep = ChunkCapacity / 2;
    const std::size_t moved = ChunkCapacity - keep;
    for (std::size_t i = 0; i < moved; ++i) {
      tail_half->values[i] = node->values[keep + i];
    }
    this->count_read(sizeof(T), moved);
    this->count_write(sizeof(T), moved);
    this->count_moves(moved);
    tail_half->count = static_cast<std::uint32_t>(moved);
    node->count = static_cast<std::uint32_t>(keep);
    this->count_write(kHeaderBytes, 2);

    tail_half->next = node->next;
    node->next = tail_half;
    this->count_write(kPointerBytes, 2);
    if constexpr (Doubly) {
      tail_half->prev = node;
      if (tail_half->next != nullptr) tail_half->next->prev = tail_half;
      this->count_write(kPointerBytes, 2);
    }
    if (tail_ == node) tail_ = tail_half;
  }

  void unlink_chunk(Pos& pos) {
    Node* node = pos.node;
    Node* prev = pos.prev;
    if constexpr (Doubly) {
      prev = node->prev;
    } else if (prev == nullptr && node != head_) {
      // Forward predecessor unknown (roving entry): find it from the head.
      prev = head_;
      this->count_read(kPointerBytes);
      while (prev->next != node) {
        prev = prev->next;
        this->count_read(kPointerBytes);
      }
    }
    if (node == head_) head_ = node->next;
    if (node == tail_) tail_ = prev;
    if (prev != nullptr) {
      prev->next = node->next;
      this->count_write(kPointerBytes);
    }
    if constexpr (Doubly) {
      if (node->next != nullptr) {
        node->next->prev = prev;
        this->count_write(kPointerBytes);
      }
    }
    free_chunk(node);
  }

  void update_roving(Node* node, std::size_t base) const {
    if constexpr (Roving) {
      rov_node_ = node;
      rov_base_ = base;
    } else {
      (void)node;
      (void)base;
    }
  }

  void invalidate_roving() const {
    if constexpr (Roving) {
      rov_node_ = nullptr;
      rov_base_ = 0;
    }
  }

  support::Pool<Node> pool_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
  mutable Node* rov_node_ = nullptr;
  mutable std::size_t rov_base_ = 0;
};

template <typename T>
using SllOfArraysContainer = ChunkedListContainer<T, false, false>;
template <typename T>
using DllOfArraysContainer = ChunkedListContainer<T, true, false>;
template <typename T>
using SllOfArraysRovingContainer = ChunkedListContainer<T, false, true>;
template <typename T>
using DllOfArraysRovingContainer = ChunkedListContainer<T, true, true>;

}  // namespace ddtr::ddt

