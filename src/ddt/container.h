// Abstract interface of the DDT library. All ten implementations expose the
// same record-sequence operations ("add a record, access a record or remove
// a record", paper §3.1) so the exploration engine can swap implementations
// without touching application code — exactly the instrumentation contract
// the methodology relies on.
//
// Access accounting: every underlying memory touch (pointer hop, chunk
// header read, record read/write, element move during reallocation) is
// reported to the attached MemoryProfile with its byte width. Heap
// allocation events report the allocated block size plus a fixed allocator
// header (kAllocatorOverhead), which is what makes fine-grained linked
// structures pay the footprint premium the paper measures (a DLL needing
// 68.8% more footprint than the best combination, §4).
#ifndef DDTR_DDT_CONTAINER_H_
#define DDTR_DDT_CONTAINER_H_

#include <cstddef>
#include <functional>
#include <limits>

#include "ddt/kinds.h"
#include "profiling/memory_profile.h"

namespace ddtr::ddt {

// Heap-allocator bookkeeping bytes charged per allocation event.
inline constexpr std::size_t kAllocatorOverhead = 16;

// Machine pointer width used for access accounting.
inline constexpr std::size_t kPointerBytes = 8;

// CPU-cycle cost model for the containers' non-memory work. Pointer hops
// are serially dependent loads with an unpredictable branch (several
// cycles each); bulk element moves stream through the core at a fraction
// of a cycle per element. This asymmetry is what decouples execution time
// from memory energy — a combination can be fast but energy-hungry (bulk
// moves: many counted accesses, little CPU time) or frugal but slow
// (pointer chasing: few accesses, many stall cycles), producing the
// genuine time/energy Pareto fronts of the paper's Figures 3 and 4.
inline constexpr std::uint64_t kHopCpuOps = 3;        // per pointer hop
inline constexpr std::uint64_t kTouchCpuOps = 1;      // per indexed access
inline constexpr std::size_t kMoveElemsPerCpuOp = 2;  // streaming moves

inline constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

// A dynamically sized sequence of records of type T. Indices are logical
// positions (0-based); how a position maps onto memory touches is the whole
// point of the exploration. Records must be copyable; they are returned by
// value so every record access is counted exactly once.
template <typename T>
class Container {
 public:
  using value_type = T;
  // Visitor for sequential traversal: receives (index, record), returns
  // true to continue, false to stop early.
  using Visitor = std::function<bool(std::size_t, const T&)>;

  explicit Container(prof::MemoryProfile& profile) : profile_(&profile) {}
  virtual ~Container() = default;

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  virtual DdtKind kind() const noexcept = 0;
  virtual std::size_t size() const noexcept = 0;
  bool empty() const noexcept { return size() == 0; }

  // Appends a record at the end.
  virtual void push_back(const T& value) = 0;

  // Inserts before position `index` (0 <= index <= size()).
  virtual void insert(std::size_t index, const T& value) = 0;

  // Reads the record at `index` (0 <= index < size()).
  virtual T get(std::size_t index) const = 0;

  // Overwrites the record at `index`.
  virtual void set(std::size_t index, const T& value) = 0;

  // Removes the record at `index`, shifting later records one position.
  virtual void erase(std::size_t index) = 0;

  // Removes all records and releases storage.
  virtual void clear() = 0;

  // Sequential traversal front-to-back; implementations traverse the way
  // their layout makes natural (array scan, pointer chase, chunk walk) and
  // leave their roving cache at the last visited position.
  virtual void for_each(const Visitor& visitor) const = 0;

  // Index of the first record satisfying `pred`, or npos. Charged as the
  // traversal it performs.
  std::size_t find_if(const std::function<bool(const T&)>& pred) const {
    std::size_t found = npos;
    for_each([&](std::size_t i, const T& v) {
      if (pred(v)) {
        found = i;
        return false;
      }
      return true;
    });
    return found;
  }

  prof::MemoryProfile& profile() const noexcept { return *profile_; }

 protected:
  // Accounting helpers shared by the implementations.
  void count_read(std::size_t bytes, std::size_t n = 1) const {
    profile_->record_read(bytes, n);
  }
  void count_write(std::size_t bytes, std::size_t n = 1) const {
    profile_->record_write(bytes, n);
  }
  void count_alloc(std::size_t bytes) const {
    profile_->on_alloc(bytes + kAllocatorOverhead);
    profile_->record_cpu_ops(8);  // allocator bookkeeping
  }
  void count_free(std::size_t bytes) const {
    profile_->on_free(bytes + kAllocatorOverhead);
    profile_->record_cpu_ops(4);
  }
  void count_hops(std::size_t n) const {
    profile_->record_cpu_ops(kHopCpuOps * n);
  }
  void count_touch(std::size_t n = 1) const {
    profile_->record_cpu_ops(kTouchCpuOps * n);
  }
  void count_moves(std::size_t elements) const {
    profile_->record_cpu_ops(elements / kMoveElemsPerCpuOp + 1);
  }

 private:
  prof::MemoryProfile* profile_;  // non-owning, never null
};

}  // namespace ddtr::ddt

#endif  // DDTR_DDT_CONTAINER_H_
