// Abstract interface of the DDT library. All implementations expose the
// same record-sequence operations ("add a record, access a record or remove
// a record", paper §3.1) so the exploration engine can swap implementations
// without touching application code — exactly the instrumentation contract
// the methodology relies on.
//
// Access accounting: every underlying memory touch (pointer hop, chunk
// header read, record read/write, element move during reallocation) is
// reported to the attached MemoryProfile with its byte width. Allocation
// events report the allocated block size plus a fixed allocator header
// (kAllocatorOverhead). Node-allocating containers draw their nodes from a
// support::Pool: under the default arena policy footprint is charged per
// chunk (slack included, headers amortized); under the heap policy every
// node pays its own header — which is what makes fine-grained linked
// structures pay the footprint premium the paper measures (a DLL needing
// 68.8% more footprint than the best combination, §4).
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>

#include "ddt/kinds.h"
#include "profiling/memory_profile.h"
#include "support/arena.h"
#include "support/function_ref.h"

namespace ddtr::ddt {

// ddtr-accounting-begin (container cost constants: any change must bump
// kDdtAccountingVersion in ddt/kinds.h)
// Heap-allocator bookkeeping bytes charged per allocation event.
inline constexpr std::size_t kAllocatorOverhead = support::kAllocatorOverhead;

// Machine pointer width used for access accounting.
inline constexpr std::size_t kPointerBytes = 8;

// CPU-cycle cost model for the containers' non-memory work. Pointer hops
// are serially dependent loads with an unpredictable branch (several
// cycles each); bulk element moves stream through the core at a fraction
// of a cycle per element. This asymmetry is what decouples execution time
// from memory energy — a combination can be fast but energy-hungry (bulk
// moves: many counted accesses, little CPU time) or frugal but slow
// (pointer chasing: few accesses, many stall cycles), producing the
// genuine time/energy Pareto fronts of the paper's Figures 3 and 4.
inline constexpr std::uint64_t kHopCpuOps = 3;        // per pointer hop
inline constexpr std::uint64_t kTouchCpuOps = 1;      // per indexed access
inline constexpr std::size_t kMoveElemsPerCpuOp = 2;  // streaming moves
inline constexpr std::uint64_t kKeyHashCpuOps = 4;    // per key derivation
// ddtr-accounting-end

inline constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

// A dynamically sized sequence of records of type T. Indices are logical
// positions (0-based); how a position maps onto memory touches is the whole
// point of the exploration. Records must be copyable; they are returned by
// value so every record access is counted exactly once.
template <typename T>
class Container {
 public:
  using value_type = T;
  // Visitor for sequential traversal: receives (index, record), returns
  // true to continue, false to stop early. Non-owning and two words wide —
  // it must be a lambda (or function) alive at the call site.
  using Visitor = support::function_ref<bool(std::size_t, const T&)>;
  // Derives the 64-bit lookup key of a record. Plain function pointer so
  // passing one through the factory stays trivially cheap; nullptr means
  // the slot is unkeyed and find_key is unavailable.
  using KeyFn = std::uint64_t (*)(const T&);

  explicit Container(prof::MemoryProfile& profile, KeyFn key = nullptr)
      : profile_(&profile), key_fn_(key) {}
  virtual ~Container() = default;

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  virtual DdtKind kind() const noexcept = 0;
  virtual std::size_t size() const noexcept = 0;
  bool empty() const noexcept { return size() == 0; }

  // Appends a record at the end.
  virtual void push_back(const T& value) = 0;

  // Inserts before position `index` (0 <= index <= size()).
  virtual void insert(std::size_t index, const T& value) = 0;

  // Reads the record at `index` (0 <= index < size()).
  virtual T get(std::size_t index) const = 0;

  // Overwrites the record at `index`.
  virtual void set(std::size_t index, const T& value) = 0;

  // Removes the record at `index`, shifting later records one position.
  virtual void erase(std::size_t index) = 0;

  // Removes all records and releases storage.
  virtual void clear() = 0;

  // Sequential traversal front-to-back; implementations traverse the way
  // their layout makes natural (array scan, pointer chase, chunk walk) and
  // leave their roving cache at the last visited position.
  virtual void for_each(Visitor visitor) const = 0;

  // Position of the first record whose key (per the slot's key function)
  // equals `key`, or npos. The default is the layout's natural traversal,
  // re-deriving each record's key (kKeyHashCpuOps per record); kOpenHash
  // overrides this with a probe of its index. Requires a key function.
  virtual std::size_t find_key(std::uint64_t key) const {
    require_key_fn();
    std::size_t found = npos;
    for_each([&](std::size_t i, const T& v) {
      profile_->record_cpu_ops(kKeyHashCpuOps + kTouchCpuOps);
      if (key_fn_(v) == key) {
        found = i;
        return false;
      }
      return true;
    });
    return found;
  }

  // Index of the first record satisfying `pred`, or npos. Charged as the
  // traversal it performs.
  std::size_t find_if(support::function_ref<bool(const T&)> pred) const {
    std::size_t found = npos;
    for_each([&](std::size_t i, const T& v) {
      if (pred(v)) {
        found = i;
        return false;
      }
      return true;
    });
    return found;
  }

  prof::MemoryProfile& profile() const noexcept { return *profile_; }
  KeyFn key_fn() const noexcept { return key_fn_; }

 protected:
  void require_key_fn() const {
    if (key_fn_ == nullptr) {
      throw std::logic_error(
          "find_key requires a key function (see make_container)");
    }
  }

  // Accounting helpers shared by the implementations.
  void count_read(std::size_t bytes, std::size_t n = 1) const {
    profile_->record_read(bytes, n);
  }
  void count_write(std::size_t bytes, std::size_t n = 1) const {
    profile_->record_write(bytes, n);
  }
  void count_alloc(std::size_t bytes) const {
    profile_->on_alloc(bytes + kAllocatorOverhead);
    profile_->record_cpu_ops(support::kHeapAllocCpuOps);
  }
  void count_free(std::size_t bytes) const {
    profile_->on_free(bytes + kAllocatorOverhead);
    profile_->record_cpu_ops(support::kHeapFreeCpuOps);
  }
  void count_hops(std::size_t n) const {
    profile_->record_cpu_ops(kHopCpuOps * n);
  }
  void count_touch(std::size_t n = 1) const {
    profile_->record_cpu_ops(kTouchCpuOps * n);
  }
  void count_moves(std::size_t elements) const {
    profile_->record_cpu_ops(elements / kMoveElemsPerCpuOp + 1);
  }
  std::uint64_t key_of(const T& value) const { return key_fn_(value); }

 private:
  prof::MemoryProfile* profile_;  // non-owning, never null
  KeyFn key_fn_;
};

}  // namespace ddtr::ddt
