#include "energy/sram_macro.h"

#include <cmath>

namespace ddtr::energy {

std::uint64_t round_up_pow2(std::uint64_t value, std::uint64_t floor) {
  std::uint64_t result = floor;
  while (result < value) result <<= 1;
  return result;
}

std::uint64_t round_up_multiple(std::uint64_t value, std::uint64_t step) {
  if (value <= step) return step;
  return (value + step - 1) / step * step;
}

SramMacro::SramMacro(std::uint64_t capacity_bytes, const SramTechnology& tech)
    : capacity_bytes_(round_up_multiple(capacity_bytes, 64)) {
  const double bits = static_cast<double>(capacity_bytes_) * 8.0;
  const double sqrt_bits = std::sqrt(bits);
  const double log_bits = std::log2(bits);
  read_energy_pj_ =
      tech.fixed_pj + tech.sqrt_pj * sqrt_bits + tech.decode_pj * log_bits;
  write_energy_pj_ = read_energy_pj_ * tech.write_factor;
  access_time_ns_ =
      tech.fixed_ns + tech.sqrt_ns * sqrt_bits + tech.decode_ns * log_bits;
  leakage_mw_ =
      tech.leak_mw_per_kib * static_cast<double>(capacity_bytes_) / 1024.0;
}

}  // namespace ddtr::energy
