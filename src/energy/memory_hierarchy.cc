#include "energy/memory_hierarchy.h"

#include <algorithm>
#include <cmath>

#include "support/fnv_hash.h"

namespace ddtr::energy {

namespace {

// Working-set hit-ratio heuristic: fully resident data always hits; beyond
// that, locality decays with the square root of the capacity/footprint
// ratio (a standard rule-of-thumb cache model). Deterministic on purpose.
double hit_ratio(std::uint64_t capacity, std::uint64_t footprint) {
  if (footprint == 0 || footprint <= capacity) return 1.0;
  return std::sqrt(static_cast<double>(capacity) /
                   static_cast<double>(footprint));
}

}  // namespace

MemoryHierarchy::MemoryHierarchy(HierarchyKind kind, SramTechnology tech)
    : kind_(kind), tech_(tech) {}

MemoryHierarchy MemoryHierarchy::scratchpad(const SramTechnology& tech) {
  return MemoryHierarchy(HierarchyKind::kScratchpad, tech);
}

MemoryHierarchy MemoryHierarchy::cached(std::uint64_t l1_bytes,
                                        std::uint64_t l2_bytes,
                                        const SramTechnology& tech) {
  MemoryHierarchy h(HierarchyKind::kCached, tech);
  h.levels_.push_back({l1_bytes, SramMacro(l1_bytes, tech)});
  h.levels_.push_back({l2_bytes, SramMacro(l2_bytes, tech)});
  return h;
}

MemoryCost MemoryHierarchy::cost(const prof::ProfileCounters& counters,
                                 double clock_ghz) const {
  MemoryCost out;
  const double reads = static_cast<double>(counters.reads);
  const double writes = static_cast<double>(counters.writes);
  const double ns_to_cycles = clock_ghz;  // cycles = ns * GHz

  if (kind_ == HierarchyKind::kScratchpad) {
    const SramMacro macro(std::max<std::uint64_t>(counters.peak_bytes, 64),
                          tech_);
    out.dynamic_energy_pj =
        reads * macro.read_energy_pj() + writes * macro.write_energy_pj();
    out.leakage_power_mw = macro.leakage_mw();
    out.memory_cycles =
        (reads + writes) * macro.access_time_ns() * ns_to_cycles;
    return out;
  }

  // Cached organization: walk the levels, peeling off the hits at each.
  double remaining_reads = reads;
  double remaining_writes = writes;
  for (const CacheLevel& level : levels_) {
    const double ratio = hit_ratio(level.capacity_bytes, counters.peak_bytes);
    const double level_reads = remaining_reads * ratio;
    const double level_writes = remaining_writes * ratio;
    // Every access probes this level (tag + data) even on a miss.
    out.dynamic_energy_pj += remaining_reads * level.macro.read_energy_pj() +
                             remaining_writes * level.macro.write_energy_pj();
    out.memory_cycles += (remaining_reads + remaining_writes) *
                         level.macro.access_time_ns() * ns_to_cycles;
    out.leakage_power_mw += level.macro.leakage_mw();
    remaining_reads -= level_reads;
    remaining_writes -= level_writes;
  }
  const double dram_accesses = remaining_reads + remaining_writes;
  out.dynamic_energy_pj += dram_accesses * dram_.energy_pj;
  out.memory_cycles += dram_accesses * dram_.latency_ns * ns_to_cycles;
  out.leakage_power_mw += dram_.background_mw;
  return out;
}

std::uint64_t MemoryHierarchy::fingerprint() const noexcept {
  support::Fnv1a64 h;
  h.u8(static_cast<std::uint8_t>(kind_));
  h.f64(tech_.fixed_pj)
      .f64(tech_.sqrt_pj)
      .f64(tech_.decode_pj)
      .f64(tech_.write_factor)
      .f64(tech_.fixed_ns)
      .f64(tech_.sqrt_ns)
      .f64(tech_.decode_ns)
      .f64(tech_.leak_mw_per_kib);
  h.u64(levels_.size());
  // Macro cost parameters derive deterministically from (capacity, tech),
  // both hashed already, so the capacities complete the level identity.
  for (const CacheLevel& level : levels_) h.u64(level.capacity_bytes);
  h.f64(dram_.energy_pj).f64(dram_.latency_ns).f64(dram_.background_mw);
  return h.digest();
}

}  // namespace ddtr::energy
