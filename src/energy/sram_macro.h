// Analytic SRAM macro model in the spirit of CACTI: capacity in, per-access
// read/write energy, access latency and leakage power out. The paper uses
// "an updated version of the CACTI model" [12] to turn memory-access counts
// and footprints into energy; the exploration machinery only needs that map
// to be monotone in capacity, which this model preserves (decoder energy
// grows with log2 of the bit count, wordline/bitline energy with the square
// root, leakage linearly).
//
// Default parameters approximate a 130 nm process (the paper's era):
// a 1 KiB macro costs ~18 pJ per read, a 1 MiB macro ~300 pJ.
#pragma once

#include <cstdint>

namespace ddtr::energy {

// Technology constants. All energies in picojoules, times in nanoseconds,
// power in milliwatts.
struct SramTechnology {
  double fixed_pj = 2.0;        // sense-amp + I/O drivers, capacity-independent
  double sqrt_pj = 0.1;         // wordline/bitline term, per sqrt(bits)
  double decode_pj = 0.55;      // decoder term, per log2(bits)
  double write_factor = 1.18;   // writes drive full bit-line swing
  double fixed_ns = 0.45;       // sense + output latency
  double sqrt_ns = 6.0e-4;      // wire RC term, per sqrt(bits)
  double decode_ns = 0.06;      // decoder depth term, per log2(bits)
  // Subthreshold leakage per KiB of the *provisioned* macro. The
  // scratchpad must physically hold the peak footprint, so a combination
  // that ever needed a large buffer (e.g. array-doubling transients) pays
  // leakage on that size for the whole run — the footprint-energy coupling
  // the paper's exploration leans on. High-performance 130 nm SRAM cells
  // leak in the tens of microwatts per KiB.
  double leak_mw_per_kib = 0.08;
};

// One SRAM macro of a fixed capacity.
class SramMacro {
 public:
  // capacity_bytes is rounded up to the next 64-byte row (minimum 64 B) —
  // memory generators emit macros at word-line granularity, so footprint
  // differences between DDT combinations translate into genuinely
  // different per-access energies (power-of-two rounding would quantize
  // away exactly the footprint trade-offs the methodology explores).
  explicit SramMacro(std::uint64_t capacity_bytes,
                     const SramTechnology& tech = SramTechnology{});

  std::uint64_t capacity_bytes() const noexcept { return capacity_bytes_; }

  double read_energy_pj() const noexcept { return read_energy_pj_; }
  double write_energy_pj() const noexcept { return write_energy_pj_; }
  double access_time_ns() const noexcept { return access_time_ns_; }
  double leakage_mw() const noexcept { return leakage_mw_; }

 private:
  std::uint64_t capacity_bytes_;
  double read_energy_pj_;
  double write_energy_pj_;
  double access_time_ns_;
  double leakage_mw_;
};

// Rounds up to the next power of two, minimum `floor` (used for the cache
// levels of the kCached hierarchy, which do come in power-of-two sizes).
std::uint64_t round_up_pow2(std::uint64_t value, std::uint64_t floor);

// Rounds up to the next multiple of `step`, minimum `step`.
std::uint64_t round_up_multiple(std::uint64_t value, std::uint64_t step);

}  // namespace ddtr::energy

