// Top of the cost-model stack: turns one simulation's ProfileCounters into
// the four-metric cost vector (energy, execution time, accesses, footprint)
// used by every exploration step.
//
// Execution time is modeled deterministically:
//   cycles = cpu_ops * cpi + memory_cycles(hierarchy)
//   time   = cycles / clock
// Energy is dynamic memory energy + leakage * time + core active power *
// time. Determinism keeps every table/figure in this repository exactly
// reproducible; relative orderings between DDTs (what the paper's Pareto
// curves show) are what the model is designed to preserve.
#ifndef DDTR_ENERGY_ENERGY_MODEL_H_
#define DDTR_ENERGY_ENERGY_MODEL_H_

#include "energy/memory_hierarchy.h"
#include "energy/metrics.h"
#include "profiling/memory_profile.h"

namespace ddtr::energy {

class EnergyModel {
 public:
  struct Config {
    double clock_ghz = 1.6;   // the paper's Pentium4 1.6 GHz host
    double cpi = 1.0;         // cycles per non-memory op
    double core_active_mw = 18.0;  // embedded-core active power share
  };

  explicit EnergyModel(MemoryHierarchy hierarchy = MemoryHierarchy::cached());
  EnergyModel(MemoryHierarchy hierarchy, Config config);

  // Evaluates the full cost vector of one run.
  Metrics evaluate(const prof::ProfileCounters& counters) const;

  const Config& config() const noexcept { return config_; }
  const MemoryHierarchy& hierarchy() const noexcept { return hierarchy_; }

 private:
  MemoryHierarchy hierarchy_;
  Config config_;
};

}  // namespace ddtr::energy

#endif  // DDTR_ENERGY_ENERGY_MODEL_H_
