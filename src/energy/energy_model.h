// Top of the cost-model stack: turns one simulation's ProfileCounters into
// the four-metric cost vector (energy, execution time, accesses, footprint)
// used by every exploration step.
//
// Execution time is modeled deterministically:
//   cycles = cpu_ops * cpi + memory_cycles(hierarchy)
//   time   = cycles / clock
// Energy is dynamic memory energy + leakage * time + core active power *
// time. Determinism keeps every table/figure in this repository exactly
// reproducible; relative orderings between DDTs (what the paper's Pareto
// curves show) are what the model is designed to preserve.
#pragma once

#include "energy/memory_hierarchy.h"
#include "energy/metrics.h"
#include "profiling/memory_profile.h"

namespace ddtr::energy {

// Semantic version of the cost model. Bump whenever evaluate()'s mapping
// from counters to metrics changes (new terms, changed constants'
// meaning): the version is folded into EnergyModel::fingerprint(), which
// persistent simulation-cache keys embed, so records computed under an
// older model stop hitting instead of silently replaying stale metrics.
inline constexpr std::uint32_t kEnergyModelVersion = 1;

class EnergyModel {
 public:
  struct Config {
    double clock_ghz = 1.6;   // the paper's Pentium4 1.6 GHz host
    double cpi = 1.0;         // cycles per non-memory op
    double core_active_mw = 18.0;  // embedded-core active power share
  };

  explicit EnergyModel(MemoryHierarchy hierarchy = MemoryHierarchy::cached());
  EnergyModel(MemoryHierarchy hierarchy, Config config);

  // Evaluates the full cost vector of one run.
  Metrics evaluate(const prof::ProfileCounters& counters) const;

  // Stable content digest of everything evaluate() depends on: the model
  // version, the Config fields and the hierarchy parameters. Part of every
  // simulation-cache key, so records are only replayed for the exact cost
  // model that produced them — across processes and runs.
  std::uint64_t fingerprint() const noexcept;

  const Config& config() const noexcept { return config_; }
  const MemoryHierarchy& hierarchy() const noexcept { return hierarchy_; }

 private:
  MemoryHierarchy hierarchy_;
  Config config_;
};

}  // namespace ddtr::energy

