#include "energy/energy_model.h"

#include "support/fnv_hash.h"

namespace ddtr::energy {

bool dominates(const Metrics& a, const Metrics& b) noexcept {
  const auto av = a.as_array();
  const auto bv = b.as_array();
  bool strictly_better = false;
  for (std::size_t i = 0; i < av.size(); ++i) {
    if (av[i] > bv[i]) return false;
    if (av[i] < bv[i]) strictly_better = true;
  }
  return strictly_better;
}

EnergyModel::EnergyModel(MemoryHierarchy hierarchy)
    : EnergyModel(std::move(hierarchy), Config{}) {}

EnergyModel::EnergyModel(MemoryHierarchy hierarchy, Config config)
    : hierarchy_(std::move(hierarchy)), config_(config) {}

Metrics EnergyModel::evaluate(const prof::ProfileCounters& counters) const {
  const MemoryCost mem = hierarchy_.cost(counters, config_.clock_ghz);
  const double cycles =
      static_cast<double>(counters.cpu_ops) * config_.cpi + mem.memory_cycles;
  const double time_s = cycles / (config_.clock_ghz * 1e9);

  const double dynamic_mj = mem.dynamic_energy_pj * 1e-9;  // pJ -> mJ
  const double static_mj =
      (mem.leakage_power_mw + config_.core_active_mw) * time_s;  // mW*s = mJ

  Metrics m;
  m.energy_mj = dynamic_mj + static_mj;
  m.time_s = time_s;
  m.accesses = counters.accesses();
  m.footprint_bytes = counters.peak_bytes;
  return m;
}

std::uint64_t EnergyModel::fingerprint() const noexcept {
  support::Fnv1a64 h;
  h.u32(kEnergyModelVersion);
  h.f64(config_.clock_ghz).f64(config_.cpi).f64(config_.core_active_mw);
  h.u64(hierarchy_.fingerprint());
  return h.digest();
}

}  // namespace ddtr::energy
