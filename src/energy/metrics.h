// The four cost metrics the methodology explores (paper §3.1): energy,
// execution time, memory accesses and memory footprint — plus the raw
// counters they were derived from.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ddtr::energy {

// One simulation's cost vector.
struct Metrics {
  double energy_mj = 0.0;          // total (dynamic + leakage) energy
  double time_s = 0.0;             // modeled execution time
  std::uint64_t accesses = 0;      // memory accesses (reads + writes)
  std::uint64_t footprint_bytes = 0;  // peak dynamic memory footprint

  // As a uniform double vector, in the order {energy, time, accesses,
  // footprint}; used by the Pareto machinery. All metrics are
  // smaller-is-better.
  std::array<double, 4> as_array() const noexcept {
    return {energy_mj, time_s, static_cast<double>(accesses),
            static_cast<double>(footprint_bytes)};
  }
};

inline constexpr std::size_t kMetricCount = 4;
inline constexpr std::array<const char*, kMetricCount> kMetricNames = {
    "energy_mJ", "time_s", "accesses", "footprint_B"};

// True if `a` dominates `b`: no metric worse, at least one strictly better.
bool dominates(const Metrics& a, const Metrics& b) noexcept;

}  // namespace ddtr::energy

