// Deterministic memory-hierarchy cost model. Converts the access counts and
// peak footprint gathered by a MemoryProfile into total energy and total
// memory cycles. Two organizations are supported:
//
//  * kScratchpad — a single SRAM sized to the smallest power of two holding
//    the peak footprint (the embedded-middleware view the paper takes: the
//    DDTs live in an on-chip memory whose size follows the footprint).
//  * kCached — L1 + L2 + off-chip DRAM with a working-set hit-rate model
//    (hit ratio = sqrt(capacity / footprint), clamped at 1), matching the
//    Pentium4 host the paper measured on.
//
// Both are monotone: more accesses or a larger footprint never costs less,
// which is the property the Pareto exploration depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/sram_macro.h"
#include "profiling/memory_profile.h"

namespace ddtr::energy {

enum class HierarchyKind { kScratchpad, kCached };

// Energy/cycle cost of one simulation's memory traffic.
struct MemoryCost {
  double dynamic_energy_pj = 0.0;
  double leakage_power_mw = 0.0;  // to be multiplied by execution time
  double memory_cycles = 0.0;     // total stall cycles spent in the memory
};

class MemoryHierarchy {
 public:
  struct CacheLevel {
    std::uint64_t capacity_bytes;
    SramMacro macro;
  };

  // DRAM backing-store constants (per access).
  struct DramModel {
    double energy_pj = 12'000.0;
    double latency_ns = 60.0;
    double background_mw = 64.0;
  };

  static MemoryHierarchy scratchpad(const SramTechnology& tech = {});
  static MemoryHierarchy cached(std::uint64_t l1_bytes = 16 * 1024,
                                std::uint64_t l2_bytes = 512 * 1024,
                                const SramTechnology& tech = {});

  HierarchyKind kind() const noexcept { return kind_; }

  // Computes the cost of `counters` given the clock the cycle counts are
  // expressed in (needed to convert SRAM nanosecond latencies to cycles).
  MemoryCost cost(const prof::ProfileCounters& counters,
                  double clock_ghz) const;

  // Stable content digest of every parameter cost() depends on (kind,
  // technology constants, cache levels, DRAM model). Feeds the
  // EnergyModel fingerprint that persistent cache keys embed: records
  // computed under a differently-parameterized hierarchy must never hit.
  std::uint64_t fingerprint() const noexcept;

 private:
  MemoryHierarchy(HierarchyKind kind, SramTechnology tech);

  HierarchyKind kind_;
  SramTechnology tech_;
  std::vector<CacheLevel> levels_;
  DramModel dram_;
};

}  // namespace ddtr::energy

