// Process-wide metrics registry (see README "Observability"). The hot
// simulation path must stay contention-free, so the primitives mirror
// MemoryProfile's lock-free design:
//
//   - Counter: monotonically increasing, sharded across cache-line-aligned
//     relaxed atomics (a thread picks its shard once, round-robin), summed
//     on read — concurrent add() never bounces one cache line between
//     lanes.
//   - Gauge: a single signed atomic (set/add), for levels like queue depth.
//   - Histogram: lock-free log2 buckets plus count/sum/min/max, for
//     durations (microseconds by convention, ".._us" names).
//
// Registry hands out named instruments with stable addresses, so call
// sites hoist the lookup once:
//
//   static obs::Counter& hits = obs::registry().counter("explore.hits");
//   hits.add();
//
// render_text() is deterministic (sorted by name) — it feeds the daemon's
// StatsReply and `ddtr stats --metrics`. The global registry() is
// intentionally leaked: instrument references cached in function-local
// statics must outlive every other static (thread pools, arenas) during
// shutdown.
//
// Everything here is observation-only: no instrument ever feeds cache
// keys, reports, or any other output that must stay byte-identical.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ddtr::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  // Each thread claims one shard for life (round-robin over a global
  // counter), so two hot lanes almost never share a shard's cache line.
  static std::size_t shard_index() noexcept;

  Shard shards_[kShards];
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  void observe(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  // min()/max() are UINT64_MAX / 0 while count() == 0.
  std::uint64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  // Bucket b counts values whose bit width is b — i.e. v in
  // [2^(b-1), 2^b), with bucket 0 holding exact zeros.
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b < kBuckets ? b : kBuckets - 1].load(
        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// Named instruments with stable addresses: counter("x") always returns
// the same object, so references can be hoisted into function-local
// statics on hot paths. The maps are mutex-guarded (lookups are cold);
// the instruments themselves are lock-free.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Deterministic dump, sorted by name within each kind:
  //   counter explore.step1.executed 128
  //   gauge pool.queue_depth 0
  //   histogram explore.sim_us count=128 sum=51234 min=120 max=960 b9=70 ...
  std::string render_text() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry every built-in instrumentation site uses.
// Deliberately leaked (never destroyed): cached instrument references in
// late-running static destructors stay valid.
Registry& registry();

}  // namespace ddtr::obs
