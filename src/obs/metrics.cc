#include "obs/metrics.h"

#include <bit>
#include <sstream>

namespace ddtr::obs {

std::size_t Counter::shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void Histogram::observe(std::uint64_t v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  const std::size_t b = std::bit_width(v);
  buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " count=" << h->count()
       << " sum=" << h->sum();
    if (h->count() > 0) {
      os << " min=" << h->min() << " max=" << h->max();
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (const std::uint64_t n = h->bucket(b)) os << " b" << b << '=' << n;
      }
    }
    os << '\n';
  }
  return os.str();
}

Registry& registry() {
  // Leaked on purpose — see the header. ddtr-lint's allocation-policy
  // rule only covers src/ddt/, and this single allocation is the
  // documented exception to "no raw new": a static destructor must never
  // run for the registry.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace ddtr::obs
