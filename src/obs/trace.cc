#include "obs/trace.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace ddtr::obs {
namespace {

// Small dense thread ids (1, 2, 3, ...) instead of opaque native handles:
// Perfetto renders them as lanes, and the balance checker keys on them.
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::uint64_t now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint64_t wall_time_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void TraceWriter::record(const std::string& name, const std::string& cat,
                         char phase, TraceArgs args) {
  const std::uint64_t ts = now_us();
  const std::uint32_t tid = current_tid();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({name, cat, phase, ts, tid, std::move(args)});
}

void TraceWriter::begin(const std::string& name, const std::string& cat) {
  record(name, cat, 'B', {});
}

void TraceWriter::begin(const std::string& name, const std::string& cat,
                        TraceArgs args) {
  record(name, cat, 'B', std::move(args));
}

void TraceWriter::end(const std::string& name, const std::string& cat) {
  record(name, cat, 'E', {});
}

void TraceWriter::end(const std::string& name, const std::string& cat,
                      TraceArgs args) {
  record(name, cat, 'E', std::move(args));
}

void TraceWriter::instant(const std::string& name, const std::string& cat) {
  record(name, cat, 'i', {});
}

void TraceWriter::instant(const std::string& name, const std::string& cat,
                          TraceArgs args) {
  record(name, cat, 'i', std::move(args));
}

std::size_t TraceWriter::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceWriter::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    os << (first ? "\n" : ",\n") << "{\"name\":";
    append_json_string(os, e.name);
    os << ",\"cat\":";
    append_json_string(os, e.cat);
    os << ",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
       << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const TraceArgs::Arg& a : e.args.args_) {
        if (!first_arg) os << ',';
        append_json_string(os, a.key);
        os << ':';
        if (a.is_num) {
          os << a.num;
        } else {
          append_json_string(os, a.str);
        }
        first_arg = false;
      }
      os << '}';
    }
    os << '}';
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"wall_start_ms\":"
     << wall_time_ms() << "}}\n";
}

std::string TraceWriter::str() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  write(os);
  return os.good();
}

// --- check_trace: strict JSON parse + span balance ----------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Strict recursive-descent JSON parser: no trailing commas, no comments,
// no garbage after the document. Good diagnostics matter more than speed
// here — this runs over test traces, not hot paths.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing bytes after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) return fail("truncated \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + 2 + i];
              if (std::isxdigit(static_cast<unsigned char>(h)) == 0) {
                return fail("bad hex digit in \\u escape");
              }
              value = value * 16 +
                      static_cast<unsigned>(
                          h <= '9' ? h - '0'
                                   : std::tolower(h) - 'a' + 10);
            }
            // Validation only — fold to a byte; the checker never compares
            // non-ASCII span names.
            out += static_cast<char>(value & 0xff);
            pos_ += 4;
            break;
          }
          default:
            return fail("unknown escape sequence");
        }
        pos_ += 2;
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::Kind::kNull;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return fail("expected a number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("expected digits after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("expected exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string require_field(const JsonValue& event, std::size_t index,
                          const std::string& key, JsonValue::Kind kind,
                          const JsonValue** out) {
  const JsonValue* value = event.find(key);
  if (value == nullptr) {
    return "event " + std::to_string(index) + " is missing \"" + key + "\"";
  }
  if (value->kind != kind) {
    return "event " + std::to_string(index) + " field \"" + key +
           "\" has the wrong type";
  }
  *out = value;
  return "";
}

}  // namespace

std::string check_trace(const std::string& json) {
  JsonParser parser(json);
  JsonValue doc;
  if (!parser.parse(doc)) return "invalid JSON: " + parser.error();
  if (doc.kind != JsonValue::Kind::kObject) {
    return "top-level value is not an object";
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return "missing \"traceEvents\"";
  if (events->kind != JsonValue::Kind::kArray) {
    return "\"traceEvents\" is not an array";
  }

  // Per-(pid, tid) stacks of open span names: B pushes, a matching E
  // pops, anything else is an imbalance.
  std::map<std::pair<double, double>, std::vector<std::string>> open;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (event.kind != JsonValue::Kind::kObject) {
      return "event " + std::to_string(i) + " is not an object";
    }
    const JsonValue* name = nullptr;
    const JsonValue* cat = nullptr;
    const JsonValue* ph = nullptr;
    const JsonValue* ts = nullptr;
    const JsonValue* pid = nullptr;
    const JsonValue* tid = nullptr;
    const struct {
      const char* key;
      JsonValue::Kind kind;
      const JsonValue** out;
    } fields[] = {{"name", JsonValue::Kind::kString, &name},
                  {"cat", JsonValue::Kind::kString, &cat},
                  {"ph", JsonValue::Kind::kString, &ph},
                  {"ts", JsonValue::Kind::kNumber, &ts},
                  {"pid", JsonValue::Kind::kNumber, &pid},
                  {"tid", JsonValue::Kind::kNumber, &tid}};
    for (const auto& field : fields) {
      const std::string error =
          require_field(event, i, field.key, field.kind, field.out);
      if (!error.empty()) return error;
    }
    (void)cat;
    (void)ts;
    // "args" is optional; when present it must be an object of string or
    // number values (the only kinds TraceArgs emits).
    if (const JsonValue* args = event.find("args")) {
      if (args->kind != JsonValue::Kind::kObject) {
        return "event " + std::to_string(i) + " field \"args\" is not an "
               "object";
      }
      for (const auto& [key, value] : args->object) {
        if (value.kind != JsonValue::Kind::kString &&
            value.kind != JsonValue::Kind::kNumber) {
          return "event " + std::to_string(i) + " arg \"" + key +
                 "\" is neither a string nor a number";
        }
      }
    }
    const auto lane = std::make_pair(pid->number, tid->number);
    if (ph->str == "B") {
      open[lane].push_back(name->str);
    } else if (ph->str == "E") {
      auto& stack = open[lane];
      if (stack.empty()) {
        return "event " + std::to_string(i) + " ends span \"" + name->str +
               "\" with no open span on its thread";
      }
      if (stack.back() != name->str) {
        return "event " + std::to_string(i) + " ends span \"" + name->str +
               "\" but \"" + stack.back() + "\" is open";
      }
      stack.pop_back();
    } else if (ph->str != "i") {
      return "event " + std::to_string(i) + " has unsupported phase \"" +
             ph->str + "\"";
    }
  }
  for (const auto& [lane, stack] : open) {
    if (!stack.empty()) {
      return "span \"" + stack.back() + "\" on tid " +
             std::to_string(lane.second) + " is never closed";
    }
  }
  return "";
}

}  // namespace ddtr::obs
