// Structured span tracing in Chrome/Perfetto `trace_event` format (the
// JSON Object Format: {"traceEvents":[...]}). A TraceWriter buffers
// begin/end events in memory — recording is one mutex-guarded vector
// push, cheap enough for per-simulation spans — and serializes the whole
// document on write(), so a crash mid-run loses the trace but never
// corrupts other output. Load the file in chrome://tracing or
// https://ui.perfetto.dev to see where wall time goes.
//
// Span discipline: every begin() must be matched by an end() with the
// same name on the same thread. SpanScope is the RAII form that makes the
// balance structural:
//
//   obs::SpanScope span(options.trace_sink, "step1", "explore");
//
// A null TraceWriter* disables tracing at zero cost — every entry point
// tolerates nullptr, so call sites need no `if (trace)` guards.
//
// check_trace() is the validator the tests and `ddtr tracecheck` share:
// a strict JSON parse plus a per-thread begin/end balance check, with no
// python or external tooling involved.
//
// Timestamps come from the steady clock (microseconds since the first
// use in the process); wall_time_ms() is the one wall-clock reading,
// stamped into the trace metadata only. Nothing in this header may ever
// feed cache keys — src/obs/ is carved out of the determinism lint rule
// for exactly this reason.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ddtr::obs {

// Microseconds since the process-local steady epoch (first call).
std::uint64_t now_us();

// Milliseconds since the unix epoch (wall clock). Observation-only: trace
// metadata, log lines — never keys or reports.
std::uint64_t wall_time_ms();

// Ordered key/value payload serialized as a trace event's "args" object
// (what Perfetto shows in the selection panel). Values are strings or
// unsigned counters — enough for unit counts and byte totals; keep
// anything heavier out of the hot path.
class TraceArgs {
 public:
  TraceArgs& set(std::string key, std::string value) {
    args_.push_back({std::move(key), std::move(value), 0, false});
    return *this;
  }
  TraceArgs& set(std::string key, std::uint64_t value) {
    args_.push_back({std::move(key), std::string(), value, true});
    return *this;
  }
  bool empty() const { return args_.empty(); }
  std::size_t size() const { return args_.size(); }

 private:
  friend class TraceWriter;
  struct Arg {
    std::string key;
    std::string str;
    std::uint64_t num;
    bool is_num;
  };
  std::vector<Arg> args_;
};

class TraceWriter {
 public:
  // Record a begin/end event pair delimiter. `name` and `cat` must
  // outlive nothing — they are copied. The args overloads attach an
  // "args" object to the event (Chrome merges B and E args per span).
  void begin(const std::string& name, const std::string& cat);
  void begin(const std::string& name, const std::string& cat, TraceArgs args);
  void end(const std::string& name, const std::string& cat);
  void end(const std::string& name, const std::string& cat, TraceArgs args);
  // One-shot instant event (ph "i"), for point-in-time markers.
  void instant(const std::string& name, const std::string& cat);
  void instant(const std::string& name, const std::string& cat,
               TraceArgs args);

  std::size_t event_count() const;

  // Serialize the full trace_event document.
  void write(std::ostream& os) const;
  std::string str() const;
  // Write to a file; returns false when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string cat;
    char phase;  // 'B', 'E' or 'i'
    std::uint64_t ts_us;
    std::uint32_t tid;
    TraceArgs args;
  };

  void record(const std::string& name, const std::string& cat, char phase,
              TraceArgs args);

  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// RAII span: begin on construction, end on destruction, structurally
// balanced even when the body throws. Null writer = disabled.
class SpanScope {
 public:
  SpanScope(TraceWriter* writer, std::string name, std::string cat)
      : writer_(writer), name_(std::move(name)), cat_(std::move(cat)) {
    if (writer_ != nullptr) writer_->begin(name_, cat_);
  }
  ~SpanScope() {
    if (writer_ != nullptr) writer_->end(name_, cat_, std::move(args_));
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Attach a counter to the span, reported on the end event — the values
  // (units simulated, bytes written, cache hits) are usually only known
  // once the work is done. No-op when tracing is disabled.
  SpanScope& arg(std::string key, std::uint64_t value) {
    if (writer_ != nullptr) args_.set(std::move(key), value);
    return *this;
  }
  SpanScope& arg(std::string key, std::string value) {
    if (writer_ != nullptr) args_.set(std::move(key), std::move(value));
    return *this;
  }

 private:
  TraceWriter* writer_;
  std::string name_;
  std::string cat_;
  TraceArgs args_;
};

// Validates `json` as a Chrome trace_event document: strict JSON, a
// top-level object with a "traceEvents" array, every event carrying
// name/cat/ph/ts/pid/tid (plus, when present, an "args" object whose
// values are strings or numbers), and per-(pid,tid) begin/end spans
// balanced in LIFO order. Returns "" on success, else a one-line
// diagnostic.
std::string check_trace(const std::string& json);

}  // namespace ddtr::obs
