// Memoization of simulate() results keyed by CONTENT identity, not
// labels: {application name + cache_version, scenario config, trace
// content hash, DDT combination, energy-model fingerprint}. Simulations
// are deterministic —
// same trace content, same app/config, same combination, same cost model,
// same record — so any pair the flow revisits can replay the cached record
// instead of re-running the trace. The big win within one explore() is
// step 2 on the representative scenario: step 1 already simulated every
// combination there, so every survivor is a cache hit and the
// representative scenario costs step 2 zero simulations.
//
// The keys are sound across processes (what PersistentSimulationCache
// relies on): a trace's network *label* never appears in the key — two
// runs can share a label yet differ in trace content, and vice versa —
// and the energy-model fingerprint keeps records from a different cost
// model (or model version) from ever hitting.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/simulation.h"

namespace ddtr::core {

// Thread-safe: concurrent lanes of the parallel explorer share one cache.
// The lock is never held across a simulate() call; two lanes racing on the
// same missing key may both simulate it, which is benign (deterministic
// records, last insert is a no-op) and cannot happen in the engine's usage
// (each step visits distinct keys).
class SimulationCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // Cache key of one (scenario, combination, model) triple. Fields are
  // joined with the unit separator (0x1f), which no label or hex digest
  // contains, so fields cannot alias across the joins.
  static std::string key_of(const Scenario& scenario,
                            const ddt::DdtCombination& combo,
                            const energy::EnergyModel& model);

  // Returns the cached record, or simulates, caches and returns it. On a
  // hit the record's network/config labels are rewritten to the requesting
  // scenario's: the metrics depend only on the key's content identity, but
  // the labels belong to the request (the hit may come from a run that
  // replayed identical content under another network name).
  SimulationRecord get_or_simulate(const Scenario& scenario,
                                   const ddt::DdtCombination& combo,
                                   const energy::EnergyModel& model);

  // Pure lookup; counts a hit or a miss like get_or_simulate, and
  // relabels hits the same way.
  std::optional<SimulationRecord> find(const Scenario& scenario,
                                       const ddt::DdtCombination& combo,
                                       const energy::EnergyModel& model);

  // Hit-only lookup: returns (and counts) a hit when the key is cached,
  // but — unlike find() — records nothing on absence. Sharded workers use
  // this to probe units owned by other shards: an absent foreign unit is
  // another process's work, not a miss of this run, so it must not skew
  // the executed-simulation accounting (executed == misses).
  std::optional<SimulationRecord> find_cached(const Scenario& scenario,
                                              const ddt::DdtCombination& combo,
                                              const energy::EnergyModel& model);

  // Stores a record under `key` without touching the hit/miss stats (used
  // to seed the cache from a persistent store). Existing entries win.
  void insert(const std::string& key, const SimulationRecord& record);

  // Snapshot of every (key, record) entry, in unspecified order.
  std::vector<std::pair<std::string, SimulationRecord>> entries() const;

  std::size_t size() const;
  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SimulationRecord> records_;
  Stats stats_;
};

}  // namespace ddtr::core

