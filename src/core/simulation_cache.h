// Memoization of simulate() results, keyed by (scenario label, DDT
// combination). Simulations are deterministic — same scenario, same
// combination, same record — so any (scenario, combination) pair the flow
// revisits can replay the cached record instead of re-running the trace.
// The big win is step 2 on the representative scenario: step 1 already
// simulated every combination there, so every survivor is a cache hit and
// the representative scenario costs step 2 zero simulations.
#ifndef DDTR_CORE_SIMULATION_CACHE_H_
#define DDTR_CORE_SIMULATION_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/simulation.h"

namespace ddtr::core {

// Thread-safe: concurrent lanes of the parallel explorer share one cache.
// The lock is never held across a simulate() call; two lanes racing on the
// same missing key may both simulate it, which is benign (deterministic
// records, last insert is a no-op) and cannot happen in the engine's usage
// (each step visits distinct keys).
class SimulationCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // Cache key of one (scenario, combination) pair. Combination labels
  // ("AR+DLL") are bijective with combinations, scenario labels with
  // (network, config) pairs.
  static std::string key_of(const Scenario& scenario,
                            const ddt::DdtCombination& combo) {
    return scenario.label() + '\n' + combo.label();
  }

  // Returns the cached record, or simulates, caches and returns it.
  SimulationRecord get_or_simulate(const Scenario& scenario,
                                   const ddt::DdtCombination& combo,
                                   const energy::EnergyModel& model);

  // Pure lookup; counts a hit or a miss like get_or_simulate.
  std::optional<SimulationRecord> find(const Scenario& scenario,
                                       const ddt::DdtCombination& combo);

  // Stores a record under its own (scenario label, combination) key.
  void insert(const SimulationRecord& record);

  std::size_t size() const;
  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SimulationRecord> records_;
  Stats stats_;
};

}  // namespace ddtr::core

#endif  // DDTR_CORE_SIMULATION_CACHE_H_
