#include "core/simulation.h"

namespace ddtr::core {

SimulationRecord simulate(const Scenario& scenario,
                          const ddt::DdtCombination& combo,
                          const energy::EnergyModel& model) {
  const apps::RunResult run = scenario.app->run(*scenario.trace, combo);
  SimulationRecord record;
  record.app_name = scenario.app->name();
  record.combo = combo;
  record.network = scenario.network;
  record.config = scenario.config;
  record.counters = run.total;
  record.metrics = model.evaluate(run.total);
  return record;
}

}  // namespace ddtr::core
