#include "core/report.h"

#include <algorithm>
#include <limits>

#include "core/pareto.h"
#include "support/csv.h"
#include "support/table.h"

namespace ddtr::core {

void write_records_csv(std::ostream& os,
                       const std::vector<SimulationRecord>& records) {
  support::CsvWriter csv(os);
  csv.write_row({"app", "network", "config", "combination", "energy_mJ",
                 "time_s", "accesses", "footprint_B"});
  for (const SimulationRecord& r : records) {
    csv.write_row({r.app_name, r.network, r.config, r.combo.label(),
                   support::format_double(r.metrics.energy_mj, 4),
                   support::format_double(r.metrics.time_s, 6),
                   std::to_string(r.metrics.accesses),
                   std::to_string(r.metrics.footprint_bytes)});
  }
}

void write_pareto_csv(std::ostream& os,
                      const std::vector<SimulationRecord>& records,
                      std::size_t metric_x, std::size_t metric_y) {
  std::vector<energy::Metrics> points;
  points.reserve(records.size());
  for (const SimulationRecord& r : records) points.push_back(r.metrics);
  const std::vector<std::size_t> front =
      pareto_front_2d(points, metric_x, metric_y);

  support::CsvWriter csv(os);
  csv.write_row({"combination", "network", "config",
                 energy::kMetricNames[metric_x],
                 energy::kMetricNames[metric_y], "pareto"});
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto v = points[i].as_array();
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    csv.write_row({records[i].combo.label(), records[i].network,
                   records[i].config, support::format_double(v[metric_x], 6),
                   support::format_double(v[metric_y], 6),
                   on_front ? "1" : "0"});
  }
}

void print_best_by_metric(std::ostream& os,
                          const std::vector<SimulationRecord>& records) {
  if (records.empty()) return;
  support::TextTable table({"metric", "best combination", "value"});
  for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
    double best = std::numeric_limits<double>::infinity();
    const SimulationRecord* winner = nullptr;
    for (const SimulationRecord& r : records) {
      const double v = r.metrics.as_array()[m];
      if (v < best) {
        best = v;
        winner = &r;
      }
    }
    table.add_row({energy::kMetricNames[m], winner->combo.label(),
                   support::format_double(best, 4)});
  }
  table.print(os);
}

void print_reduction_row(std::ostream& os, const ExplorationReport& report) {
  os << report.app_name << ": exhaustive=" << report.exhaustive_simulations
     << " reduced=" << report.reduced_simulations()
     << " pareto=" << report.pareto_optimal.size() << '\n';
}

}  // namespace ddtr::core
