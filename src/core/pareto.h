// Pareto machinery of the step-3 exploration: k-dimensional dominance
// filtering and 2-D front extraction for the metric-pair charts (execution
// time vs energy, memory accesses vs footprint). All metrics are
// smaller-is-better; a point is Pareto-optimal "if it is no longer possible
// to improve upon one cost factor without worsening any other" (paper §1).
#pragma once

#include <cstddef>
#include <vector>

#include "energy/metrics.h"

namespace ddtr::core {

// Indices of the points not dominated by any other point (4-D dominance
// over the full metric vector). Order follows the input. O(n^2), fine for
// design-space sizes (<= a few thousand points).
std::vector<std::size_t> pareto_filter(
    const std::vector<energy::Metrics>& points);

// Indices of the 2-D Pareto front over metrics (x, y), sorted by ascending
// x. Metric indices follow energy::kMetricNames. Duplicate x keeps the
// lower y.
std::vector<std::size_t> pareto_front_2d(
    const std::vector<energy::Metrics>& points, std::size_t metric_x,
    std::size_t metric_y);

// Relative spread (max - min) / max of one metric across a point set; the
// "trade-off achievable among Pareto-optimal points" of the paper's
// Table 2. Returns 0 for empty input or an all-zero metric.
double tradeoff_span(const std::vector<energy::Metrics>& points,
                     std::size_t metric);

}  // namespace ddtr::core

