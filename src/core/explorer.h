// The three-step DDT refinement methodology (paper §3, Figure 1):
//
//  Step 1 (application level)  — simulate every DDT combination on a
//      representative trace; keep the multi-metric non-dominated ~20%.
//  Step 2 (network level)      — simulate the survivors on every network
//      configuration (trace x application parameter).
//  Step 3 (Pareto level)       — aggregate the step-2 logs and prune to
//      the Pareto-optimal combination set handed to the designer.
//
// The engine also does the simulation-count bookkeeping reported in the
// paper's Table 1 (exhaustive vs reduced vs Pareto-optimal).
#ifndef DDTR_CORE_EXPLORER_H_
#define DDTR_CORE_EXPLORER_H_

#include <vector>

#include "core/pareto.h"
#include "core/simulation.h"

namespace ddtr::core {

// How step 1 covers the combination space.
enum class Step1Policy {
  // Simulate every combination (10^slots simulations) — the paper's
  // default flow (100 simulations for two dominant structures).
  kExhaustive,
  // Explore each dominant structure independently, holding the others at
  // the SLL baseline (10 x slots simulations), then cross the per-slot
  // non-dominated kinds. Explains sub-100 "reduced" counts such as the
  // paper's DRR row (60 total simulations); exact when the slots' costs
  // are close to separable, which trace-driven kernels usually are.
  kGreedyPerSlot,
};

struct ExplorationOptions {
  // Fraction of the combination space step 1 lets through (the paper
  // observes ~20% of combinations are worth keeping).
  double survivor_cap_fraction = 0.20;
  // Per-metric champions kept unconditionally — the paper's "keep the
  // combinations which have the lowest energy consumption, shortest
  // execution time, lowest memory footprint and lower memory accesses"
  // (§3.1). The remaining cap budget is filled with the best-ranked 4-D
  // non-dominated combinations.
  std::size_t champions_per_metric = 3;
  Step1Policy step1_policy = Step1Policy::kExhaustive;
};

struct ExplorationReport {
  std::string app_name;
  std::size_t combination_count = 0;
  std::size_t scenario_count = 0;
  std::size_t exhaustive_simulations = 0;
  std::size_t step1_simulations = 0;
  std::size_t step2_simulations = 0;

  // Step-1 design space on the representative scenario (one record per
  // combination — Figure 3a's scatter).
  std::vector<SimulationRecord> step1_records;
  // Combinations surviving the application-level filter.
  std::vector<ddt::DdtCombination> survivors;
  // Step-2 logs: survivors x scenarios.
  std::vector<SimulationRecord> step2_records;
  // Step-3 aggregation: per-survivor metrics averaged over all scenarios
  // (network field set to "<all>").
  std::vector<SimulationRecord> aggregated;
  // Indices into `aggregated` forming the final Pareto-optimal set (the
  // paper's Table 1 last column).
  std::vector<std::size_t> pareto_optimal;

  std::size_t reduced_simulations() const {
    return step1_simulations + step2_simulations;
  }
  std::vector<SimulationRecord> pareto_records() const;
  // Step-2 records belonging to one scenario label (for per-network
  // Pareto curves, Figure 4).
  std::vector<SimulationRecord> scenario_records(
      const std::string& label) const;
};

class ExplorationEngine {
 public:
  explicit ExplorationEngine(energy::EnergyModel model);
  ExplorationEngine(energy::EnergyModel model, ExplorationOptions options);

  // Runs all three steps.
  ExplorationReport explore(const CaseStudy& study) const;

  // Individual steps, exposed for tests, examples and partial reuse.
  std::vector<SimulationRecord> run_step1(const CaseStudy& study) const;
  // Greedy per-slot variant of step 1 (see Step1Policy::kGreedyPerSlot).
  std::vector<SimulationRecord> run_step1_greedy(const CaseStudy& study) const;
  std::vector<ddt::DdtCombination> select_survivors(
      const std::vector<SimulationRecord>& step1_records) const;
  // Survivor selection for greedy step-1 logs: per-slot non-dominated
  // kinds crossed into combinations (capped like select_survivors).
  std::vector<ddt::DdtCombination> select_survivors_greedy(
      const std::vector<SimulationRecord>& step1_records,
      std::size_t slots) const;
  std::vector<SimulationRecord> run_step2(
      const CaseStudy& study,
      const std::vector<ddt::DdtCombination>& survivors) const;
  std::vector<SimulationRecord> aggregate(
      const std::vector<SimulationRecord>& step2_records) const;

  const energy::EnergyModel& model() const noexcept { return model_; }

 private:
  energy::EnergyModel model_;
  ExplorationOptions options_;
};

}  // namespace ddtr::core

#endif  // DDTR_CORE_EXPLORER_H_
