// The three-step DDT refinement methodology (paper §3, Figure 1):
//
//  Step 1 (application level)  — simulate every DDT combination on a
//      representative trace; keep the multi-metric non-dominated ~20%.
//  Step 2 (network level)      — simulate the survivors on every network
//      configuration (trace x application parameter).
//  Step 3 (Pareto level)       — aggregate the step-2 logs and prune to
//      the Pareto-optimal combination set handed to the designer.
//
// The engine also does the simulation-count bookkeeping reported in the
// paper's Table 1 (exhaustive vs reduced vs Pareto-optimal).
//
// Execution model: every (scenario, combination) simulation is
// independent, so steps 1 and 2 fan simulations over
// ExplorationOptions::jobs work-stealing lanes (support::ThreadPool) with
// index-addressed result slots — reports are bit-identical at every lane
// count. A per-explore() SimulationCache memoizes records so step 2
// replays the representative scenario's survivors from step 1 instead of
// re-simulating them; with ExplorationOptions::cache_dir set, that cache
// is seeded from — and appended to — a persistent cross-run cache file
// (core::PersistentSimulationCache), so repeated invocations replay
// previous runs' simulations too.
//
// Distributed execution: with ExplorationOptions::shard_count > 1, this
// engine is one WORKER of an N-way sharded exploration (see src/dist/).
// Step 2 — the scenario-dominated network level, the axis that scales
// with deployment size — executes only the units whose shard_of_key(...)
// matches shard_index, storing them into a per-shard cache segment. Step
// 1 — one scenario, the seed of survivor selection — is replicated by
// default; with step1_sharded set, it too executes only owned units,
// then checkpoints them into the segment, publishes a
// "step1.<fingerprint>.shard<I>of<N>.done" marker and parks in the step1_barrier hook
// (dist::SegmentBarrier) until every sibling's marker exists; the worker
// then merges all segments and REPLAYS the full step-1 set from cache,
// so every worker still selects the identical survivor list. A final
// unsharded run over the merged segments replays all three steps with
// zero executed simulations and a byte-identical report.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "core/simulation_cache.h"

namespace ddtr::support {
class ThreadPool;
}

namespace ddtr::obs {
class TraceWriter;
}

namespace ddtr::core {

class PersistentSimulationCache;

// How step 1 covers the combination space.
enum class Step1Policy {
  // Simulate every combination (10^slots simulations) — the paper's
  // default flow (100 simulations for two dominant structures).
  kExhaustive,
  // Explore each dominant structure independently, holding the others at
  // the SLL baseline (10 x slots simulations), then cross the per-slot
  // non-dominated kinds. Explains sub-100 "reduced" counts such as the
  // paper's DRR row (60 total simulations); exact when the slots' costs
  // are close to separable, which trace-driven kernels usually are.
  kGreedyPerSlot,
};

// Deterministic shard assignment of one simulation unit, identified by
// its content-hash cache key (SimulationCache::key_of): FNV-1a of the key
// modulo shard_count. The single definition shared by the engine's
// sharded step 2 and dist::WorkPlan, so plans agree across processes and
// hosts. shard_count <= 1 assigns everything to shard 0.
std::size_t shard_of_key(const std::string& key,
                         std::size_t shard_count) noexcept;

// Base cache-segment tag of shard I of N ("shard<I>of<N>"). The engine
// appends a per-run token (ExplorationOptions::run_token, auto-generated
// from pid + a process-wide sequence when empty) so two fleets sharing a
// cache directory with the same geometry can never write the same
// segment file; the tag actually used is in ExplorationReport::
// segment_tag.
std::string shard_segment_tag(std::size_t shard_index,
                              std::size_t shard_count);

// Marker-file name shard I of N publishes once its step-1 records are
// durably checkpointed ("step1.<fingerprint>.shard<I>of<N>"; the file
// is "<name>.done" inside the cache dir — see
// PersistentSimulationCache::marker_path). Marker names carry the plan
// fingerprint (step1_fingerprint) and the geometry but NOT the run
// token: siblings compute the same fingerprint independently, so they
// can predict each other's marker names without communicating — while
// two fleets running DIFFERENT plans with the same geometry in one
// directory publish to distinct paths instead of clobbering each other.
std::string step1_marker_name(const std::string& fingerprint,
                              std::size_t shard_index,
                              std::size_t shard_count);

// Content identity of a study's step-1 unit set under `policy`: a hex
// digest over the step-1 cache keys in fan order. Written INTO the
// step-1 markers and expected back by the barrier, so a stale marker
// from a different study, trace scale, cost model or step-1 policy
// sharing the cache directory can never satisfy a waiting sibling.
std::string step1_fingerprint(const CaseStudy& study,
                              const energy::EnergyModel& model,
                              Step1Policy policy);

// One progress notification from a simulation step. `done` counts logical
// simulations settled so far within the step — completed (executed or
// replayed) or skipped (foreign-shard units, cancelled units); each step
// emits an initial {step, 0, total} event, then one event per settled
// simulation, ending exactly once at done == total.
struct StepProgress {
  int step = 0;            // 1 (application level) or 2 (network level)
  std::size_t done = 0;    // simulations settled so far in this step
  std::size_t total = 0;   // simulations this step covers
  // Shard identity of the emitting engine (0 of 1 when unsharded) — lets
  // one observer multiplex several shard workers' streams.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

// Observer invoked as a step advances. The engine serializes invocations
// (worker lanes hand completions through one lock), so the callback itself
// need not be thread-safe — but it runs on whichever lane finished the
// simulation, and it should be cheap: it sits on the fan-out hot path.
// This is the hook future sharding / cancellation layers build on.
using ProgressObserver = std::function<void(const StepProgress&)>;

// Step-1 rendezvous hook of a step1_sharded worker (installed by the
// api/dist layers, typically wrapping dist::SegmentBarrier). Called after
// the worker has durably checkpointed its owned step-1 records and
// published its marker; must block until every sibling's marker exists
// (return normally), return early when the run's cancel flag is raised
// (the engine re-checks the flag itself), and THROW on timeout — a
// barrier that cannot complete must become a clean error, never a hang.
using Step1Barrier = std::function<void()>;

struct ExplorationOptions {
  // Fraction of the combination space step 1 lets through (the paper
  // observes ~20% of combinations are worth keeping).
  double survivor_cap_fraction = 0.20;
  // Per-metric champions kept unconditionally — the paper's "keep the
  // combinations which have the lowest energy consumption, shortest
  // execution time, lowest memory footprint and lower memory accesses"
  // (§3.1). The remaining cap budget is filled with the best-ranked 4-D
  // non-dominated combinations.
  std::size_t champions_per_metric = 3;
  Step1Policy step1_policy = Step1Policy::kExhaustive;
  // Concurrent simulation lanes. Every (scenario, combination) simulation
  // is independent, so the steps fan them over `jobs` lanes with
  // index-addressed result slots — output is bit-identical to jobs = 1 at
  // any lane count. 1 = serial (no threads); 0 = one lane per hardware
  // thread.
  std::size_t jobs = 1;
  // Memoize simulate() results within one explore() call so step 2 replays
  // the representative scenario's survivors from step 1's records instead
  // of re-simulating them (the representative scenario then costs step 2
  // zero executed simulations).
  bool memoize_simulations = true;
  // When non-empty (and memoize_simulations is on), the simulation cache
  // persists across runs in this directory: loaded before step 1, appended
  // after step 3 with whatever this run had to execute. Keys are content
  // hashes (trace content + energy-model fingerprint, see
  // SimulationCache::key_of), so reports stay byte-identical whether the
  // cache is warm, cold or disabled — a fully warm rerun executes zero
  // simulations. Corrupt or stale cache files are ignored, not fatal.
  std::string cache_dir;
  // Distributed work-sharding (see src/dist/ and the file comment): with
  // shard_count > 1 this engine is worker shard_index of shard_count. It
  // executes only its stable subset of step-2 units (shard_of_key) and
  // stores its records into the per-shard cache segment
  // "shard<I>of<N>" instead of the shared cache file. Requires
  // memoize_simulations and a cache_dir (enforced by explore()).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // Shard step 1 too (only meaningful with shard_count > 1): execute only
  // this shard's step-1 units, checkpoint them into the cache segment,
  // publish the step-1 marker, wait in step1_barrier for every sibling's
  // marker, then merge all segments and replay the FULL step-1 set from
  // cache — every worker still computes the identical survivor selection,
  // and the report stays byte-identical to the unsharded run's. Requires
  // step1_barrier (enforced by explore()). Off by default: the barrier
  // needs all N workers alive simultaneously, which plain --shard
  // sequential/partial fleets do not guarantee.
  bool step1_sharded = false;
  // The rendezvous hook a step1_sharded worker parks in (see
  // Step1Barrier). Installed by api::Exploration around
  // dist::SegmentBarrier; core only calls it.
  Step1Barrier step1_barrier;
  // Uniquifies this run's cache-segment tag ("shard<I>of<N>.<token>") so
  // concurrent fleets sharing a cache directory with the same shard
  // geometry never write the same segment file. Auto-generated (pid + a
  // process-wide sequence) when empty; merge-on-load folds every
  // segment regardless of tag, so resume-after-cancel and replay are
  // unaffected by the token changing across runs.
  std::string run_token;
  // Cooperative cancellation: when the pointed-to flag becomes true, the
  // fan-out stops starting new simulations (in-flight ones finish), the
  // run's executed records are still checkpointed to the persistent
  // cache, and the returned report is marked cancelled. Shared so signal
  // handlers, progress observers and other threads can all flip it.
  std::shared_ptr<std::atomic<bool>> cancel;
  // Optional per-simulation progress notifications (see StepProgress).
  // Does not affect the produced records: reports stay bit-identical with
  // or without an observer, at any lane count.
  ProgressObserver progress;
  // --- Warm-serving hooks (see src/serve/) ------------------------------
  // A long-lived service runs many explorations in one process and must
  // not pay registry/cache/pool setup per run. These pointers let an
  // owner (serve::Server) keep that state open across explore() calls;
  // all three are borrowed, never owned, and must outlive the run.
  //
  // When set, explore() memoizes into this externally-owned cache instead
  // of a per-run one. Stats (hits/misses, thus executed counts) are
  // reported as per-run DELTAS against the cache's state at entry, so a
  // fully warm rerun still reports 0 executed simulations. Requires
  // memoize_simulations; mutually exclusive with sharding (serve sessions
  // are unsharded — the fleet story is src/dist/).
  SimulationCache* shared_cache = nullptr;
  // When set (requires shared_cache), explore() skips the per-run
  // persistent load() — the owner loaded the file once at service start
  // and seeded shared_cache from it — and only appends this run's new
  // records via store_new(). The owner must serialize explore() calls
  // that share one instance (store_new mutates the loaded set).
  PersistentSimulationCache* shared_persistent = nullptr;
  // When set, the steps fan over this pool instead of a per-run one
  // (lanes spawn once per service, not once per exploration). Safe to
  // share: concurrent parallel_for calls keep per-call state.
  support::ThreadPool* shared_pool = nullptr;
  // --- Observability (see src/obs/) -------------------------------------
  // Optional span tracer: when set, explore() emits Chrome trace_event
  // spans (step1/select/step2/aggregate, every simulation fan unit, cache
  // I/O, the step-1 barrier wait) into this writer. Borrowed, never
  // owned; null disables tracing. Observation-only by contract: the
  // produced records stay byte-identical with or without a sink, and the
  // sink must never feed cache keys (see the determinism lint rule).
  obs::TraceWriter* trace_sink = nullptr;
};

struct ExplorationReport {
  std::string app_name;
  std::size_t combination_count = 0;
  std::size_t scenario_count = 0;
  std::size_t exhaustive_simulations = 0;
  // Logical simulation counts (the paper's Table 1 bookkeeping: one per
  // record, whether it was executed or replayed from the cache).
  std::size_t step1_simulations = 0;
  std::size_t step2_simulations = 0;
  // Simulations actually executed per step (cache hits excluded). With
  // memoization on, step2_executed_simulations drops by one per survivor:
  // the whole representative scenario is replayed from step 1's records.
  std::size_t step1_executed_simulations = 0;
  std::size_t step2_executed_simulations = 0;
  // Simulation-cache accounting across the whole explore() call.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Persistent-cache accounting (0 unless options.cache_dir was set):
  // records loaded from the cache file before the run, and new records
  // appended to it afterwards.
  std::uint64_t persistent_loaded = 0;
  std::uint64_t persistent_stored = 0;
  // Sharded-worker / cancellation accounting. Foreign-shard units are
  // step-2 units owned by another shard and absent from the cache (their
  // owner simulates them); cancelled units were skipped after the cancel
  // flag was raised. Skipped units produce no record, so a worker's or a
  // cancelled run's report is PARTIAL — only the final unsharded,
  // uncancelled pass is the paper report.
  std::size_t skipped_foreign_shard = 0;
  std::size_t skipped_after_cancel = 0;
  bool cancelled = false;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // The cache-segment tag this (sharded) run stored under — base geometry
  // tag plus the per-run token; empty for unsharded runs.
  std::string segment_tag;

  // Step-1 design space on the representative scenario (one record per
  // combination — Figure 3a's scatter).
  std::vector<SimulationRecord> step1_records;
  // Combinations surviving the application-level filter.
  std::vector<ddt::DdtCombination> survivors;
  // Step-2 logs: survivors x scenarios.
  std::vector<SimulationRecord> step2_records;
  // Step-3 aggregation: per-survivor metrics averaged over all scenarios
  // (network field set to "<all>").
  std::vector<SimulationRecord> aggregated;
  // Indices into `aggregated` forming the final Pareto-optimal set (the
  // paper's Table 1 last column).
  std::vector<std::size_t> pareto_optimal;

  std::size_t reduced_simulations() const {
    return step1_simulations + step2_simulations;
  }
  std::size_t executed_simulations() const {
    return step1_executed_simulations + step2_executed_simulations;
  }
  double cache_hit_rate() const {
    return SimulationCache::Stats{cache_hits, cache_misses}.hit_rate();
  }
  std::vector<SimulationRecord> pareto_records() const;
  // Step-2 records belonging to one scenario label (for per-network
  // Pareto curves, Figure 4).
  std::vector<SimulationRecord> scenario_records(
      const std::string& label) const;
  // The step-1 + step-2 records as one serialized ResultLog text — the
  // single definition of "byte-identical reports" used by the
  // determinism bench and the API equivalence tests.
  std::string serialized_records() const;
};

class ExplorationEngine {
 public:
  explicit ExplorationEngine(energy::EnergyModel model);
  ExplorationEngine(energy::EnergyModel model, ExplorationOptions options);

  // Runs all three steps.
  ExplorationReport explore(const CaseStudy& study) const;

  // Individual steps, exposed for tests, benches and partial reuse. Each
  // step fans its simulations over options().jobs lanes with
  // index-addressed result slots, so record order (and content) is
  // identical at every lane count. When `cache` is non-null, simulations
  // are replayed from / recorded into it.
  std::vector<SimulationRecord> run_step1(const CaseStudy& study,
                                          SimulationCache* cache = nullptr)
      const;
  // Greedy per-slot variant of step 1 (see Step1Policy::kGreedyPerSlot).
  std::vector<SimulationRecord> run_step1_greedy(
      const CaseStudy& study, SimulationCache* cache = nullptr) const;
  std::vector<ddt::DdtCombination> select_survivors(
      const std::vector<SimulationRecord>& step1_records) const;
  // Survivor selection for greedy step-1 logs: per-slot non-dominated
  // kinds crossed into combinations (capped like select_survivors).
  std::vector<ddt::DdtCombination> select_survivors_greedy(
      const std::vector<SimulationRecord>& step1_records,
      std::size_t slots) const;
  std::vector<SimulationRecord> run_step2(
      const CaseStudy& study,
      const std::vector<ddt::DdtCombination>& survivors,
      SimulationCache* cache = nullptr) const;
  std::vector<SimulationRecord> aggregate(
      const std::vector<SimulationRecord>& step2_records) const;

  const energy::EnergyModel& model() const noexcept { return model_; }
  const ExplorationOptions& options() const noexcept { return options_; }

 private:
  // Outcome of one fan-out: the produced records (index order preserved,
  // skipped slots compacted away) plus the skip accounting. In normal
  // (unsharded, uncancelled) runs nothing is skipped and records matches
  // the serial output exactly.
  struct FanOutcome {
    std::vector<SimulationRecord> records;
    std::size_t skipped_foreign = 0;
    std::size_t skipped_cancelled = 0;
  };

  // Pool-threaded variants used by explore(), which owns ONE pool for the
  // whole three-step run (the public step methods build a transient pool).
  // `shard_filter` makes the step-1 fans execute only owned units (the
  // step1_sharded first pass); the post-barrier replay pass runs them
  // unfiltered over the merged cache with `report_progress` off, so an
  // observer still sees exactly ONE 0..total step-1 sequence per run
  // (the StepProgress contract).
  FanOutcome run_step1_fan(const CaseStudy& study, SimulationCache* cache,
                           support::ThreadPool& pool,
                           bool shard_filter = false,
                           bool report_progress = true) const;
  FanOutcome run_step1_greedy_fan(const CaseStudy& study,
                                  SimulationCache* cache,
                                  support::ThreadPool& pool,
                                  bool shard_filter = false,
                                  bool report_progress = true) const;
  FanOutcome run_step2_fan(const CaseStudy& study,
                           const std::vector<ddt::DdtCombination>& survivors,
                           SimulationCache* cache,
                           support::ThreadPool& pool) const;
  // Runs one simulation per unit index in [0, count), fanned over the
  // pool, writing records into index-addressed slots. `step` labels the
  // StepProgress events this fan emits (none when `report_progress` is
  // false — the step1_sharded replay pass, which would otherwise emit a
  // second step-1 sequence). With `shard_filter` set, units owned by
  // other shards are replayed from the cache when present and skipped
  // otherwise; a raised cancel flag skips every not-yet-started unit.
  FanOutcome fan_simulations(
      std::size_t count,
      const std::function<const Scenario&(std::size_t)>& scenario_of,
      const std::function<const ddt::DdtCombination&(std::size_t)>& combo_of,
      SimulationCache* cache, support::ThreadPool& pool, int step,
      bool shard_filter, bool report_progress = true) const;

  bool cancel_requested() const noexcept {
    return options_.cancel &&
           options_.cancel->load(std::memory_order_relaxed);
  }

  energy::EnergyModel model_;
  ExplorationOptions options_;
};

}  // namespace ddtr::core

