#include "core/persistent_cache.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/binary_io.h"
#include "support/fnv_hash.h"

namespace ddtr::core {

namespace {

// Cache I/O telemetry (see src/obs/). Timings are monotonic durations,
// byte counters come from the structural walk / stream offsets — nothing
// here reads the wall clock or feeds back into cache keys or contents.
struct PcacheMetrics {
  obs::Histogram& load_us = obs::registry().histogram("pcache.load_us");
  obs::Histogram& store_us = obs::registry().histogram("pcache.store_us");
  obs::Histogram& compact_us =
      obs::registry().histogram("pcache.compact_us");
  obs::Counter& bytes_read = obs::registry().counter("pcache.bytes_read");
  obs::Counter& bytes_written =
      obs::registry().counter("pcache.bytes_written");
  obs::Counter& entries_loaded =
      obs::registry().counter("pcache.entries_loaded");
  obs::Counter& entries_stored =
      obs::registry().counter("pcache.entries_stored");
  obs::Counter& entries_corrupt =
      obs::registry().counter("pcache.entries_corrupt");
};

PcacheMetrics& pcache_metrics() {
  static PcacheMetrics m;
  return m;
}

// Serializes cache-file I/O within the process: concurrent explorations
// (e.g. bench_common fanning case studies over the thread pool) share one
// cache directory, and interleaved appends would tear frames. Concurrent
// *processes* write disjoint segment files when sharded (see
// set_segment); unsharded cross-process appends to the main file remain
// best-effort — the checksummed frames make a torn cross-process append a
// skipped entry, never a crash.
std::mutex& io_mutex() {
  static std::mutex mu;
  return mu;
}

constexpr char kFileMagic[8] = {'D', 'D', 'T', 'R', 'S', 'I', 'M', 'C'};
constexpr std::uint32_t kFormatVersionValue =
    PersistentSimulationCache::kFormatVersion;
constexpr std::uint32_t kEntryMagic = 0x454d4953u;  // "SIME" little-endian
// One entry is a key plus one record; far below this. A corrupt length
// prefix must not look like a multi-gigabyte entry.
constexpr std::uint64_t kMaxEntryBytes = 16ull << 20;

constexpr char kSegmentPrefix[] = "sim_cache.";
constexpr char kSegmentSuffix[] = ".seg";
constexpr char kMarkerSuffix[] = ".done";

bool has_suffix(const std::string& name, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return name.size() > n &&
         name.compare(name.size() - n, n, suffix) == 0;
}

// Entry payload: key, then the full SimulationRecord. The combination is
// stored as its label ("AR+DLL"), which is bijective with combinations.
void write_entry_payload(std::ostream& os, const std::string& key,
                         const SimulationRecord& r) {
  support::write_string(os, key);
  support::write_string(os, r.app_name);
  support::write_string(os, r.combo.label());
  support::write_string(os, r.network);
  support::write_string(os, r.config);
  support::write_f64(os, r.metrics.energy_mj);
  support::write_f64(os, r.metrics.time_s);
  support::write_u64(os, r.metrics.accesses);
  support::write_u64(os, r.metrics.footprint_bytes);
  support::write_u64(os, r.counters.reads);
  support::write_u64(os, r.counters.writes);
  support::write_u64(os, r.counters.bytes_read);
  support::write_u64(os, r.counters.bytes_written);
  support::write_u64(os, r.counters.allocations);
  support::write_u64(os, r.counters.deallocations);
  support::write_u64(os, r.counters.live_bytes);
  support::write_u64(os, r.counters.peak_bytes);
  support::write_u64(os, r.counters.cpu_ops);
}

bool parse_combo(const std::string& label, ddt::DdtCombination& combo) {
  std::vector<ddt::DdtKind> kinds;
  std::stringstream parts(label);
  std::string part;
  while (std::getline(parts, part, '+')) {
    const auto kind = ddt::parse_ddt_kind(part);
    if (!kind) return false;
    kinds.push_back(*kind);
  }
  combo = ddt::DdtCombination(std::move(kinds));
  return true;
}

bool read_entry_payload(std::istream& is, std::string& key,
                        SimulationRecord& r) {
  std::string combo_label;
  if (!support::read_string(is, key) ||
      !support::read_string(is, r.app_name) ||
      !support::read_string(is, combo_label) ||
      !support::read_string(is, r.network) ||
      !support::read_string(is, r.config) ||
      !support::read_f64(is, r.metrics.energy_mj) ||
      !support::read_f64(is, r.metrics.time_s) ||
      !support::read_u64(is, r.metrics.accesses) ||
      !support::read_u64(is, r.metrics.footprint_bytes) ||
      !support::read_u64(is, r.counters.reads) ||
      !support::read_u64(is, r.counters.writes) ||
      !support::read_u64(is, r.counters.bytes_read) ||
      !support::read_u64(is, r.counters.bytes_written) ||
      !support::read_u64(is, r.counters.allocations) ||
      !support::read_u64(is, r.counters.deallocations) ||
      !support::read_u64(is, r.counters.live_bytes) ||
      !support::read_u64(is, r.counters.peak_bytes) ||
      !support::read_u64(is, r.counters.cpu_ops)) {
    return false;
  }
  return parse_combo(combo_label, r.combo);
}

// One full structural walk of a cache file. Shared by load() (absorbing
// entries), check_file() (counting only) and the store-target
// revalidation, so the three can never disagree about what "well-formed"
// means.
struct ParsedFile {
  bool header_valid = false;
  // End of the last structurally complete frame: where an append may
  // start, and past which any bytes are a torn tail.
  std::uint64_t valid_prefix = 0;
  std::size_t entries_ok = 0;
  std::size_t entries_corrupt = 0;
  std::uint64_t bytes = 0;
};

ParsedFile parse_cache_file(
    const std::string& path,
    const std::function<void(std::string&&, SimulationRecord&&)>& on_entry) {
  ParsedFile out;
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  out.bytes = ec ? 0 : size;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;

  char magic[sizeof(kFileMagic)] = {};
  std::uint32_t version = 0;
  if (!is.read(magic, sizeof(magic)) ||
      !std::equal(std::begin(magic), std::end(magic),
                  std::begin(kFileMagic)) ||
      !support::read_u32(is, version) || version != kFormatVersionValue) {
    // Not ours, corrupt, or written by another format version: the whole
    // file is invalid (stale-version invalidation).
    return out;
  }
  out.header_valid = true;
  out.valid_prefix = static_cast<std::uint64_t>(is.tellg());

  // Entries until EOF. A short or unrecognizable frame ends the file (a
  // torn append loses only the tail); a frame whose checksum or payload
  // fails to parse is skipped individually (its length is known).
  while (true) {
    std::uint32_t entry_magic = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!support::read_u32(is, entry_magic) || entry_magic != kEntryMagic ||
        !support::read_u64(is, payload_size) ||
        payload_size > kMaxEntryBytes || !support::read_u64(is, checksum)) {
      break;
    }
    std::string payload(payload_size, '\0');
    if (payload_size != 0 &&
        !is.read(payload.data(),
                 static_cast<std::streamsize>(payload_size))) {
      break;
    }
    // The frame is structurally complete: later appends may follow it
    // even if this entry's content is rejected below.
    out.valid_prefix = static_cast<std::uint64_t>(is.tellg());
    if (support::fnv1a64(payload.data(), payload.size()) != checksum) {
      ++out.entries_corrupt;  // bit-corrupted; the frame length let us skip
      continue;
    }
    std::istringstream payload_stream(payload);
    std::string key;
    SimulationRecord record;
    if (!read_entry_payload(payload_stream, key, record)) {
      ++out.entries_corrupt;
      continue;
    }
    ++out.entries_ok;
    if (on_entry) on_entry(std::move(key), std::move(record));
  }
  return out;
}

// Walks structurally complete frames from `from`, returning the offset
// where they end. Used before appending: anything past that offset is a
// torn tail to truncate — but frames another (in-process) writer appended
// after our load() walk fine and are preserved.
std::uint64_t scan_valid_frames(const std::string& path, std::uint64_t from) {
  constexpr std::uint64_t kFrameHeaderBytes = 4 + 8 + 8;
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size <= from) return from;
  std::ifstream is(path, std::ios::binary);
  if (!is) return from;
  is.seekg(static_cast<std::streamoff>(from));
  std::uint64_t pos = from;
  while (pos + kFrameHeaderBytes <= size) {
    std::uint32_t entry_magic = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!support::read_u32(is, entry_magic) || entry_magic != kEntryMagic ||
        !support::read_u64(is, payload_size) ||
        payload_size > kMaxEntryBytes || !support::read_u64(is, checksum) ||
        pos + kFrameHeaderBytes + payload_size > size) {
      break;
    }
    is.seekg(static_cast<std::streamoff>(payload_size), std::ios::cur);
    if (!is) break;
    pos += kFrameHeaderBytes + payload_size;
  }
  return pos;
}

void write_entry(std::ostream& os, const std::string& key,
                 const SimulationRecord& r) {
  std::ostringstream payload_stream;
  write_entry_payload(payload_stream, key, r);
  const std::string payload = payload_stream.str();
  support::write_u32(os, kEntryMagic);
  support::write_u64(os, payload.size());
  support::write_u64(os, support::fnv1a64(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void write_file_header(std::ostream& os) {
  os.write(kFileMagic, sizeof(kFileMagic));
  support::write_u32(os, kFormatVersionValue);
}

}  // namespace

PersistentSimulationCache::PersistentSimulationCache(std::string dir)
    : dir_(std::move(dir)) {}

std::string PersistentSimulationCache::file_path() const {
  return (std::filesystem::path(dir_) / "sim_cache.ddtr").string();
}

std::string PersistentSimulationCache::segment_path(
    const std::string& tag) const {
  return (std::filesystem::path(dir_) /
          (kSegmentPrefix + tag + kSegmentSuffix))
      .string();
}

std::vector<std::string> PersistentSimulationCache::segment_paths() const {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) == 0 &&
        name.size() > sizeof(kSegmentPrefix) + sizeof(kSegmentSuffix) - 2 &&
        has_suffix(name, kSegmentSuffix)) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string PersistentSimulationCache::marker_path(
    const std::string& name) const {
  return (std::filesystem::path(dir_) / (name + kMarkerSuffix)).string();
}

bool PersistentSimulationCache::write_marker(const std::string& name,
                                             const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
  const std::string target = marker_path(name);
  // Per-writer temp name: two writers publishing the same marker must
  // not interleave within one temp file; the final rename is atomic
  // either way (and both publish identical content for identical plans).
  // The pid alone does not discriminate in-process threads or containers
  // sharing storage (pid namespaces collide), so add a process nonce and
  // a sequence.
#ifndef _WIN32
  const long long writer_id = static_cast<long long>(::getpid());
#else
  const long long writer_id = 0;
#endif
  static std::atomic<std::uint64_t> marker_sequence{0};
  static const std::uint64_t nonce = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  std::ostringstream tmp_name;
  tmp_name << target << ".tmp." << writer_id << '.' << std::hex << nonce
           << '.' << std::dec
           << marker_sequence.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmp_name.str();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!os) {
      os.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  // The marker asserts its writer's records are DURABLE: sync the marker
  // content before publishing it (the segment itself was synced by the
  // checkpoint that preceded this call).
  if (!support::fsync_file(tmp)) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  support::fsync_dir(dir_);  // make the rename itself durable; best effort
  return true;
}

std::optional<std::string> PersistentSimulationCache::read_marker(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream content;
  content << is.rdbuf();
  if (is.bad()) return std::nullopt;
  return content.str();
}

std::vector<std::string> PersistentSimulationCache::marker_paths() const {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    if (has_suffix(entry.path().filename().string(), kMarkerSuffix)) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PersistentSimulationCache::set_segment(std::string tag) {
  segment_tag_ = std::move(tag);
  // The store target changed; its validity is re-established by the next
  // load() or store_new() revalidation.
  store_valid_ = false;
  store_prefix_bytes_ = 0;
}

std::string PersistentSimulationCache::store_path() const {
  return segment_tag_.empty() ? file_path() : segment_path(segment_tag_);
}

std::size_t PersistentSimulationCache::load() {
  PcacheMetrics& metrics = pcache_metrics();
  const std::uint64_t t0 = obs::now_us();
  std::lock_guard<std::mutex> io_lock(io_mutex());
  loaded_.clear();
  load_stats_ = LoadStats{};
  store_valid_ = false;
  store_prefix_bytes_ = 0;
  const std::string store_target = store_path();

  std::size_t absorbed = 0;
  const auto absorb = [&](std::string&& key, SimulationRecord&& record) {
    const auto [it, inserted] =
        loaded_.insert_or_assign(std::move(key), std::move(record));
    (void)it;
    if (!inserted) ++load_stats_.superseded;
    ++absorbed;
  };

  // Main shared file first, then segments in name order: a segment's
  // entry supersedes the main file's, later-named segments supersede
  // earlier ones (merge-on-load).
  const ParsedFile main_parsed = parse_cache_file(file_path(), absorb);
  metrics.bytes_read.add(main_parsed.bytes);
  load_stats_.main_entries = main_parsed.entries_ok;
  load_stats_.corrupt_entries += main_parsed.entries_corrupt;
  if (store_target == file_path()) {
    store_valid_ = main_parsed.header_valid;
    store_prefix_bytes_ = main_parsed.valid_prefix;
  }
  for (const std::string& seg : segment_paths()) {
    const ParsedFile parsed = parse_cache_file(seg, absorb);
    metrics.bytes_read.add(parsed.bytes);
    ++load_stats_.segment_files;
    load_stats_.segment_entries += parsed.entries_ok;
    load_stats_.corrupt_entries += parsed.entries_corrupt;
    if (seg == store_target) {
      store_valid_ = parsed.header_valid;
      store_prefix_bytes_ = parsed.valid_prefix;
    }
  }
  metrics.entries_loaded.add(absorbed);
  metrics.entries_corrupt.add(load_stats_.corrupt_entries);
  metrics.load_us.observe(obs::now_us() - t0);
  return loaded_.size();
}

void PersistentSimulationCache::seed(SimulationCache& cache) const {
  for (const auto& [key, record] : loaded_) cache.insert(key, record);
}

std::vector<std::pair<std::string, SimulationRecord>>
PersistentSimulationCache::entries() const {
  std::vector<std::pair<std::string, SimulationRecord>> out;
  out.reserve(loaded_.size());
  for (const auto& [key, record] : loaded_) out.emplace_back(key, record);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t PersistentSimulationCache::store_new(const SimulationCache& cache,
                                                 const KeyFilter& want) {
  std::vector<std::pair<std::string, SimulationRecord>> fresh;
  for (auto& entry : cache.entries()) {
    if (loaded_.contains(entry.first)) continue;
    if (want && !want(entry.first)) continue;
    fresh.push_back(std::move(entry));
  }
  if (fresh.empty()) return 0;

  PcacheMetrics& metrics = pcache_metrics();
  const std::uint64_t t0 = obs::now_us();
  std::lock_guard<std::mutex> io_lock(io_mutex());
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
  const std::string target = store_path();

  // Re-validate under the lock: another session sharing this directory
  // may have created a valid file since our load() (several cold-start
  // sessions racing), and opening it ios::trunc below would wipe their
  // stores. Appending possibly-duplicate entries instead is benign
  // (load() keeps the last occurrence of a key).
  if (!store_valid_) {
    const ParsedFile parsed = parse_cache_file(target, nullptr);
    if (parsed.header_valid) {
      store_valid_ = true;
      store_prefix_bytes_ = parsed.valid_prefix;
    }
  }

  // Drop a torn tail (a run killed mid-append) before appending: frames
  // written after a torn frame would be unreachable to the loader. Frames
  // appended by another writer since our load() are complete and survive
  // the re-scan.
  if (store_valid_) {
    const std::uint64_t valid_end =
        scan_valid_frames(target, store_prefix_bytes_);
    const auto size = std::filesystem::file_size(target, ec);
    if (!ec && size > valid_end) {
      std::filesystem::resize_file(target, valid_end, ec);
      if (ec) return 0;
    }
  }

  // Append to a valid file; rewrite (header included) a missing or
  // invalid one.
  std::ios::openmode mode = std::ios::binary |
                            (store_valid_ ? std::ios::app : std::ios::trunc);
  std::ofstream os(target, mode);
  if (!os) return 0;
  const std::uint64_t append_from = store_valid_ ? store_prefix_bytes_ : 0;
  if (!store_valid_) write_file_header(os);
  std::size_t written = 0;
  for (auto& [key, record] : fresh) {
    write_entry(os, key, record);
    if (!os) break;
    ++written;
    loaded_.insert_or_assign(std::move(key), std::move(record));
  }
  if (os) {
    store_valid_ = true;
    store_prefix_bytes_ = static_cast<std::uint64_t>(os.tellp());
    if (store_prefix_bytes_ > append_from) {
      metrics.bytes_written.add(store_prefix_bytes_ - append_from);
    }
  }
  os.close();
  // Flush the appended frames to stable storage: a marker published after
  // this store (see write_marker / dist::SegmentBarrier) asserts these
  // records are durable, and that claim must hold across a crash.
  if (written != 0) support::fsync_file(target);
  metrics.entries_stored.add(written);
  metrics.store_us.observe(obs::now_us() - t0);
  return written;
}

std::size_t PersistentSimulationCache::compact() {
  PcacheMetrics& metrics = pcache_metrics();
  const std::uint64_t t0 = obs::now_us();
  std::lock_guard<std::mutex> io_lock(io_mutex());
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);

  // Deterministic (sorted-key) order: compacted files are byte-identical
  // for identical entry sets, whatever history produced them.
  std::vector<const std::pair<const std::string, SimulationRecord>*> sorted;
  sorted.reserve(loaded_.size());
  for (const auto& entry : loaded_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  const std::string tmp = file_path() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return 0;
    write_file_header(os);
    for (const auto* entry : sorted) {
      write_entry(os, entry->first, entry->second);
    }
    if (!os) {
      std::filesystem::remove(tmp, ec);
      return 0;
    }
  }
  // Flush the temp file to stable storage BEFORE renaming it over the
  // main file: rename alone only orders the metadata, so a crash right
  // after it could surface an empty or truncated sim_cache.ddtr where a
  // complete one used to be. (Cache files are disposable, but silently
  // replacing good data with a hollow file is the one corruption the
  // temp+rename pattern exists to prevent.)
  if (!support::fsync_file(tmp)) {
    std::filesystem::remove(tmp, ec);
    return 0;
  }
  std::filesystem::rename(tmp, file_path(), ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return 0;
  }
  support::fsync_dir(dir_);  // make the rename durable; best effort
  {
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(file_path(), size_ec);
    if (!size_ec) metrics.bytes_written.add(size);
  }
  if (segment_tag_.empty()) {
    store_valid_ = true;
    const auto size = std::filesystem::file_size(file_path(), ec);
    store_prefix_bytes_ = ec ? 0 : size;
    if (ec) store_valid_ = false;
  }
  metrics.compact_us.observe(obs::now_us() - t0);
  return sorted.size();
}

PersistentSimulationCache::FileCheck PersistentSimulationCache::check_file(
    const std::string& path) {
  FileCheck check;
  std::error_code ec;
  check.present = std::filesystem::exists(path, ec) && !ec;
  if (!check.present) return check;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size == 0) {
    // Zero-length: a crash between creation and the first write (or a
    // lost rename). Nothing to parse, nothing corrupt — the next
    // store_new() rewrites it from scratch.
    check.empty = true;
    return check;
  }
  const ParsedFile parsed = parse_cache_file(path, nullptr);
  check.header_valid = parsed.header_valid;
  check.bytes = parsed.bytes;
  check.entries_ok = parsed.entries_ok;
  check.entries_corrupt = parsed.entries_corrupt;
  check.trailing_bytes =
      parsed.bytes > parsed.valid_prefix ? parsed.bytes - parsed.valid_prefix
                                         : 0;
  return check;
}

}  // namespace ddtr::core
