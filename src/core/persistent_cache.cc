#include "core/persistent_cache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "support/binary_io.h"
#include "support/fnv_hash.h"

namespace ddtr::core {

namespace {

// Serializes cache-file I/O within the process: concurrent explorations
// (e.g. bench_common fanning case studies over the thread pool) share one
// cache directory, and interleaved appends would tear frames. Concurrent
// *processes* remain best-effort — the checksummed frames make a torn
// cross-process append a skipped entry, never a crash.
std::mutex& io_mutex() {
  static std::mutex mu;
  return mu;
}

constexpr char kFileMagic[8] = {'D', 'D', 'T', 'R', 'S', 'I', 'M', 'C'};
constexpr std::uint32_t kEntryMagic = 0x454d4953u;  // "SIME" little-endian
// One entry is a key plus one record; far below this. A corrupt length
// prefix must not look like a multi-gigabyte entry.
constexpr std::uint64_t kMaxEntryBytes = 16ull << 20;

// Entry payload: key, then the full SimulationRecord. The combination is
// stored as its label ("AR+DLL"), which is bijective with combinations.
void write_entry_payload(std::ostream& os, const std::string& key,
                         const SimulationRecord& r) {
  support::write_string(os, key);
  support::write_string(os, r.app_name);
  support::write_string(os, r.combo.label());
  support::write_string(os, r.network);
  support::write_string(os, r.config);
  support::write_f64(os, r.metrics.energy_mj);
  support::write_f64(os, r.metrics.time_s);
  support::write_u64(os, r.metrics.accesses);
  support::write_u64(os, r.metrics.footprint_bytes);
  support::write_u64(os, r.counters.reads);
  support::write_u64(os, r.counters.writes);
  support::write_u64(os, r.counters.bytes_read);
  support::write_u64(os, r.counters.bytes_written);
  support::write_u64(os, r.counters.allocations);
  support::write_u64(os, r.counters.deallocations);
  support::write_u64(os, r.counters.live_bytes);
  support::write_u64(os, r.counters.peak_bytes);
  support::write_u64(os, r.counters.cpu_ops);
}

bool parse_combo(const std::string& label, ddt::DdtCombination& combo) {
  std::vector<ddt::DdtKind> kinds;
  std::stringstream parts(label);
  std::string part;
  while (std::getline(parts, part, '+')) {
    const auto kind = ddt::parse_ddt_kind(part);
    if (!kind) return false;
    kinds.push_back(*kind);
  }
  combo = ddt::DdtCombination(std::move(kinds));
  return true;
}

bool read_entry_payload(std::istream& is, std::string& key,
                        SimulationRecord& r) {
  std::string combo_label;
  if (!support::read_string(is, key) ||
      !support::read_string(is, r.app_name) ||
      !support::read_string(is, combo_label) ||
      !support::read_string(is, r.network) ||
      !support::read_string(is, r.config) ||
      !support::read_f64(is, r.metrics.energy_mj) ||
      !support::read_f64(is, r.metrics.time_s) ||
      !support::read_u64(is, r.metrics.accesses) ||
      !support::read_u64(is, r.metrics.footprint_bytes) ||
      !support::read_u64(is, r.counters.reads) ||
      !support::read_u64(is, r.counters.writes) ||
      !support::read_u64(is, r.counters.bytes_read) ||
      !support::read_u64(is, r.counters.bytes_written) ||
      !support::read_u64(is, r.counters.allocations) ||
      !support::read_u64(is, r.counters.deallocations) ||
      !support::read_u64(is, r.counters.live_bytes) ||
      !support::read_u64(is, r.counters.peak_bytes) ||
      !support::read_u64(is, r.counters.cpu_ops)) {
    return false;
  }
  return parse_combo(combo_label, r.combo);
}

// Walks structurally complete frames from `from`, returning the offset
// where they end. Used before appending: anything past that offset is a
// torn tail to truncate — but frames another (in-process) writer appended
// after our load() walk fine and are preserved.
std::uint64_t scan_valid_frames(const std::string& path, std::uint64_t from) {
  constexpr std::uint64_t kFrameHeaderBytes = 4 + 8 + 8;
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size <= from) return from;
  std::ifstream is(path, std::ios::binary);
  if (!is) return from;
  is.seekg(static_cast<std::streamoff>(from));
  std::uint64_t pos = from;
  while (pos + kFrameHeaderBytes <= size) {
    std::uint32_t entry_magic = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!support::read_u32(is, entry_magic) || entry_magic != kEntryMagic ||
        !support::read_u64(is, payload_size) ||
        payload_size > kMaxEntryBytes || !support::read_u64(is, checksum) ||
        pos + kFrameHeaderBytes + payload_size > size) {
      break;
    }
    is.seekg(static_cast<std::streamoff>(payload_size), std::ios::cur);
    if (!is) break;
    pos += kFrameHeaderBytes + payload_size;
  }
  return pos;
}

void write_entry(std::ostream& os, const std::string& key,
                 const SimulationRecord& r) {
  std::ostringstream payload_stream;
  write_entry_payload(payload_stream, key, r);
  const std::string payload = payload_stream.str();
  support::write_u32(os, kEntryMagic);
  support::write_u64(os, payload.size());
  support::write_u64(os, support::fnv1a64(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

}  // namespace

PersistentSimulationCache::PersistentSimulationCache(std::string dir)
    : dir_(std::move(dir)) {}

std::string PersistentSimulationCache::file_path() const {
  return (std::filesystem::path(dir_) / "sim_cache.ddtr").string();
}

std::size_t PersistentSimulationCache::load() {
  std::lock_guard<std::mutex> io_lock(io_mutex());
  loaded_.clear();
  file_valid_ = false;
  valid_prefix_bytes_ = 0;
  std::ifstream is(file_path(), std::ios::binary);
  if (!is) return 0;

  char magic[sizeof(kFileMagic)] = {};
  std::uint32_t version = 0;
  if (!is.read(magic, sizeof(magic)) ||
      !std::equal(std::begin(magic), std::end(magic),
                  std::begin(kFileMagic)) ||
      !support::read_u32(is, version) || version != kFormatVersion) {
    // Not ours, corrupt, or written by another format version: ignore the
    // whole file. store_new() will rewrite it from scratch.
    return 0;
  }
  file_valid_ = true;
  valid_prefix_bytes_ = static_cast<std::uint64_t>(is.tellg());

  // Entries until EOF. A short or unrecognizable frame ends the file (a
  // torn append loses only the tail); a frame whose checksum or payload
  // fails to parse is skipped individually (its length is known).
  while (true) {
    std::uint32_t entry_magic = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!support::read_u32(is, entry_magic) || entry_magic != kEntryMagic ||
        !support::read_u64(is, payload_size) ||
        payload_size > kMaxEntryBytes || !support::read_u64(is, checksum)) {
      break;
    }
    std::string payload(payload_size, '\0');
    if (payload_size != 0 &&
        !is.read(payload.data(),
                 static_cast<std::streamsize>(payload_size))) {
      break;
    }
    // The frame is structurally complete: later appends may follow it
    // even if this entry's content is rejected below.
    valid_prefix_bytes_ = static_cast<std::uint64_t>(is.tellg());
    if (support::fnv1a64(payload.data(), payload.size()) != checksum) {
      continue;  // bit-corrupted entry; the frame length let us skip it
    }
    std::istringstream payload_stream(payload);
    std::string key;
    SimulationRecord record;
    if (!read_entry_payload(payload_stream, key, record)) continue;
    loaded_.insert_or_assign(std::move(key), std::move(record));
  }
  return loaded_.size();
}

void PersistentSimulationCache::seed(SimulationCache& cache) const {
  for (const auto& [key, record] : loaded_) cache.insert(key, record);
}

std::size_t PersistentSimulationCache::store_new(
    const SimulationCache& cache) {
  std::vector<std::pair<std::string, SimulationRecord>> fresh;
  for (auto& entry : cache.entries()) {
    if (!loaded_.contains(entry.first)) fresh.push_back(std::move(entry));
  }
  if (fresh.empty()) return 0;

  std::lock_guard<std::mutex> io_lock(io_mutex());
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort

  // Re-validate under the lock: another session sharing this directory
  // may have created a valid file since our load() (several cold-start
  // sessions racing), and opening it ios::trunc below would wipe their
  // stores. Appending possibly-duplicate entries instead is benign
  // (load() keeps the last occurrence of a key).
  if (!file_valid_) {
    std::ifstream is(file_path(), std::ios::binary);
    char magic[sizeof(kFileMagic)] = {};
    std::uint32_t version = 0;
    if (is && is.read(magic, sizeof(magic)) &&
        std::equal(std::begin(magic), std::end(magic),
                   std::begin(kFileMagic)) &&
        support::read_u32(is, version) && version == kFormatVersion) {
      file_valid_ = true;
      valid_prefix_bytes_ = static_cast<std::uint64_t>(is.tellg());
    }
  }

  // Drop a torn tail (a run killed mid-append) before appending: frames
  // written after a torn frame would be unreachable to the loader. Frames
  // appended by another writer since our load() are complete and survive
  // the re-scan.
  if (file_valid_) {
    const std::uint64_t valid_end =
        scan_valid_frames(file_path(), valid_prefix_bytes_);
    const auto size = std::filesystem::file_size(file_path(), ec);
    if (!ec && size > valid_end) {
      std::filesystem::resize_file(file_path(), valid_end, ec);
      if (ec) return 0;
    }
  }

  // Append to a valid file; rewrite (header included) a missing or
  // invalid one.
  std::ios::openmode mode = std::ios::binary |
                            (file_valid_ ? std::ios::app : std::ios::trunc);
  std::ofstream os(file_path(), mode);
  if (!os) return 0;
  if (!file_valid_) {
    os.write(kFileMagic, sizeof(kFileMagic));
    support::write_u32(os, kFormatVersion);
  }
  std::size_t written = 0;
  for (auto& [key, record] : fresh) {
    write_entry(os, key, record);
    if (!os) break;
    ++written;
    loaded_.insert_or_assign(std::move(key), std::move(record));
  }
  if (os) {
    file_valid_ = true;
    valid_prefix_bytes_ = static_cast<std::uint64_t>(os.tellp());
  }
  return written;
}

}  // namespace ddtr::core
