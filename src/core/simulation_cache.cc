#include "core/simulation_cache.h"

namespace ddtr::core {

SimulationRecord SimulationCache::get_or_simulate(
    const Scenario& scenario, const ddt::DdtCombination& combo,
    const energy::EnergyModel& model) {
  const std::string key = key_of(scenario, combo);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = records_.find(key);
    if (it != records_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  // Simulate outside the lock so concurrent lanes keep overlapping.
  SimulationRecord record = simulate(scenario, combo, model);
  {
    std::lock_guard<std::mutex> lock(mu_);
    records_.try_emplace(key, record);
  }
  return record;
}

std::optional<SimulationRecord> SimulationCache::find(
    const Scenario& scenario, const ddt::DdtCombination& combo) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key_of(scenario, combo));
  if (it == records_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void SimulationCache::insert(const SimulationRecord& record) {
  const std::string key = record.scenario_label() + '\n' + record.combo.label();
  std::lock_guard<std::mutex> lock(mu_);
  records_.try_emplace(key, record);
}

std::size_t SimulationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

SimulationCache::Stats SimulationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimulationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  stats_ = Stats{};
}

}  // namespace ddtr::core
