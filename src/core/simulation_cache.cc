#include "core/simulation_cache.h"

#include <sstream>

namespace ddtr::core {

namespace {

constexpr char kSep = '\x1f';  // unit separator: absent from every field

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

// Rewrites a cached record's request-scoped labels (see key_of: network
// identity is the trace content hash, not the network name, so a hit may
// originate from a scenario with a different label).
SimulationRecord relabel(SimulationRecord record, const Scenario& scenario) {
  record.network = scenario.network;
  record.config = scenario.config;
  return record;
}

}  // namespace

std::string SimulationCache::key_of(const Scenario& scenario,
                                    const ddt::DdtCombination& combo,
                                    const energy::EnergyModel& model) {
  std::string key;
  key += scenario.app->name();
  key += kSep;
  // The app's simulation-semantics version: records persisted before a
  // workload's run() logic changed must stop hitting.
  key += std::to_string(scenario.app->cache_version());
  key += kSep;
  key += scenario.config;
  key += kSep;
  key += hex64(scenario.trace->content_hash());
  key += kSep;
  key += combo.label();
  key += kSep;
  key += hex64(model.fingerprint());
  return key;
}

SimulationRecord SimulationCache::get_or_simulate(
    const Scenario& scenario, const ddt::DdtCombination& combo,
    const energy::EnergyModel& model) {
  const std::string key = key_of(scenario, combo, model);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = records_.find(key);
    if (it != records_.end()) {
      ++stats_.hits;
      return relabel(it->second, scenario);
    }
    ++stats_.misses;
  }
  // Simulate outside the lock so concurrent lanes keep overlapping.
  SimulationRecord record = simulate(scenario, combo, model);
  {
    std::lock_guard<std::mutex> lock(mu_);
    records_.try_emplace(key, record);
  }
  return record;
}

std::optional<SimulationRecord> SimulationCache::find(
    const Scenario& scenario, const ddt::DdtCombination& combo,
    const energy::EnergyModel& model) {
  const std::string key = key_of(scenario, combo, model);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  if (it == records_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return relabel(it->second, scenario);
}

std::optional<SimulationRecord> SimulationCache::find_cached(
    const Scenario& scenario, const ddt::DdtCombination& combo,
    const energy::EnergyModel& model) {
  const std::string key = key_of(scenario, combo, model);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  ++stats_.hits;
  return relabel(it->second, scenario);
}

void SimulationCache::insert(const std::string& key,
                             const SimulationRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.try_emplace(key, record);
}

std::vector<std::pair<std::string, SimulationRecord>> SimulationCache::entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, SimulationRecord>> out;
  out.reserve(records_.size());
  for (const auto& [key, record] : records_) out.emplace_back(key, record);
  return out;
}

std::size_t SimulationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

SimulationCache::Stats SimulationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimulationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  stats_ = Stats{};
}

}  // namespace ddtr::core
