// Log post-processing and export — the C++ replacement for the paper's
// Perl step-3 tooling: turns simulation records into printable tables and
// CSV series for the Pareto charts.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/simulation.h"

namespace ddtr::core {

// Writes one CSV row per record: scenario, combination, the four metrics.
void write_records_csv(std::ostream& os,
                       const std::vector<SimulationRecord>& records);

// Writes the 2-D design-space + front for a metric pair: every record is
// emitted with a pareto flag so a plotting tool can draw Figure-3-style
// scatter + curve charts.
void write_pareto_csv(std::ostream& os,
                      const std::vector<SimulationRecord>& records,
                      std::size_t metric_x, std::size_t metric_y);

// Prints the per-metric best combination and its value (the "automatically
// keep the combinations with the lowest ..." summary of steps 1/2).
void print_best_by_metric(std::ostream& os,
                          const std::vector<SimulationRecord>& records);

// Prints the paper's Table-1 row for one exploration report.
void print_reduction_row(std::ostream& os, const ExplorationReport& report);

}  // namespace ddtr::core

