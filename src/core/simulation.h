// Simulation plumbing shared by the exploration steps: a Scenario is one
// network configuration of a case study (trace + configured application); a
// SimulationRecord is one log line of the paper's tool flow (combination,
// configuration, the four metrics, raw counters).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/common/app.h"
#include "ddt/kinds.h"
#include "energy/energy_model.h"
#include "energy/metrics.h"
#include "nettrace/trace.h"

namespace ddtr::core {

// One network configuration of a case study. Trace sharing is explicit:
// `trace` points at ONE immutable net::Trace per network (built once via
// net::TraceStore), shared by every scenario that replays it — including
// Route's two radix-table sizes over the same seven networks — and safe to
// replay from any number of explorer lanes concurrently, since a stored
// trace is never mutated. `app` may likewise be shared between concurrent
// simulations; see the NetworkApplication::run re-entrancy contract.
struct Scenario {
  std::string network;                     // trace / preset name
  std::string config;                      // application parameter label
  std::shared_ptr<const net::Trace> trace;
  std::shared_ptr<apps::NetworkApplication> app;

  std::string label() const {
    return config.empty() ? network : network + "/" + config;
  }
};

// One simulation log entry.
struct SimulationRecord {
  std::string app_name;
  ddt::DdtCombination combo;
  std::string network;
  std::string config;
  energy::Metrics metrics;
  prof::ProfileCounters counters;

  std::string scenario_label() const {
    return config.empty() ? network : network + "/" + config;
  }
};

// Runs one (scenario, combination) simulation and evaluates its metrics.
// Re-entrant: safe to call concurrently, including on the same scenario —
// all mutable state (MemoryProfile counters, per-run RNG streams, DDT
// containers) is owned by the call, and EnergyModel::evaluate is const.
SimulationRecord simulate(const Scenario& scenario,
                          const ddt::DdtCombination& combo,
                          const energy::EnergyModel& model);

// A case study: an application family across its network configurations.
struct CaseStudy {
  std::string name;
  std::size_t slots = 0;                 // dominant DDT count
  std::vector<Scenario> scenarios;
  std::size_t representative = 0;        // scenario used by step 1
  // Per-slot legal kind sets (from the application's slot_kinds()); when
  // empty or mismatched, every slot gets ddt::default_slot_kinds().
  std::vector<std::vector<ddt::DdtKind>> slot_kinds;

  // The kind sets the explorer actually enumerates, one per slot.
  std::vector<std::vector<ddt::DdtKind>> slot_kind_sets() const {
    if (slot_kinds.size() == slots) return slot_kinds;
    return std::vector<std::vector<ddt::DdtKind>>(slots,
                                                  ddt::default_slot_kinds());
  }

  std::size_t combination_count() const {
    std::size_t total = 1;
    for (const auto& set : slot_kind_sets()) total *= set.size();
    return total;
  }
  // The paper's "exhaustive simulations" column: every combination on every
  // network configuration.
  std::size_t exhaustive_simulations() const {
    return combination_count() * scenarios.size();
  }
};

}  // namespace ddtr::core

