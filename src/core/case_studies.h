// The four case studies of the paper's evaluation (§4), assembled with the
// same exploration-space shape: Route over 7 networks x 2 radix-table
// sizes (1400 exhaustive simulations), URL over 5 networks (500), IPchains
// over 7 networks x 3 rule-set sizes (2100), DRR over 5 networks (500).
#ifndef DDTR_CORE_CASE_STUDIES_H_
#define DDTR_CORE_CASE_STUDIES_H_

#include "core/simulation.h"

namespace ddtr::core {

// Trace lengths per application, scaled down for CI-speed runs via
// `scale` (1.0 = the defaults below).
struct CaseStudyOptions {
  std::size_t route_packets = 2500;
  std::size_t url_packets = 10000;
  std::size_t ipchains_packets = 5000;
  std::size_t drr_packets = 6000;

  CaseStudyOptions scaled(double factor) const;
};

CaseStudy make_route_study(const CaseStudyOptions& options);
CaseStudy make_url_study(const CaseStudyOptions& options);
CaseStudy make_ipchains_study(const CaseStudyOptions& options);
CaseStudy make_drr_study(const CaseStudyOptions& options);

// All four, in the paper's Table 1 order.
std::vector<CaseStudy> make_all_case_studies(const CaseStudyOptions& options);

// The cost model used for every paper reproduction: a scratchpad SRAM
// sized to the run's peak footprint — i.e. dynamic-memory-subsystem energy
// as the paper estimates with CACTI — with no host-core power term, so
// combination differences are not drowned by constant background power.
energy::EnergyModel make_paper_energy_model();

}  // namespace ddtr::core

#endif  // DDTR_CORE_CASE_STUDIES_H_
