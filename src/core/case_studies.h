// Legacy entry points for the paper's four case studies (§4). The studies
// themselves now live in the workload registry (api/registry.h,
// api/builtin_workloads.cc) as "route", "url", "ipchains" and "drr"; the
// make_*_study free functions below are thin deprecated shims kept for
// source compatibility. New code should enumerate / look up workloads
// through ddtr::api::registry() and build custom ones with
// api::StudyBuilder.
#pragma once

#include "core/simulation.h"

namespace ddtr::core {

// Trace lengths per application, scaled down for CI-speed runs via
// `scale` (1.0 = the defaults below).
struct CaseStudyOptions {
  std::size_t route_packets = 2500;
  std::size_t url_packets = 10000;
  std::size_t ipchains_packets = 5000;
  std::size_t drr_packets = 6000;
  // Offset added to every trace's generation seed (see
  // net::TraceGenerator::Options::seed_offset): 0 reproduces the paper
  // traces, a nonzero offset yields a distinct-but-same-shape traffic
  // sample. Content-hash cache keys keep differently-seeded runs apart.
  std::size_t seed_offset = 0;

  CaseStudyOptions scaled(double factor) const;
};

[[deprecated("use api::registry().make_study(\"route\", options)")]]
CaseStudy make_route_study(const CaseStudyOptions& options);
[[deprecated("use api::registry().make_study(\"url\", options)")]]
CaseStudy make_url_study(const CaseStudyOptions& options);
[[deprecated("use api::registry().make_study(\"ipchains\", options)")]]
CaseStudy make_ipchains_study(const CaseStudyOptions& options);
[[deprecated("use api::registry().make_study(\"drr\", options)")]]
CaseStudy make_drr_study(const CaseStudyOptions& options);

// Every registered workload, in registration order (for the four
// built-ins: the paper's Table 1 order).
[[deprecated("iterate api::registry().names() instead")]]
std::vector<CaseStudy> make_all_case_studies(const CaseStudyOptions& options);

// The cost model used for every paper reproduction: a scratchpad SRAM
// sized to the run's peak footprint — i.e. dynamic-memory-subsystem energy
// as the paper estimates with CACTI — with no host-core power term, so
// combination differences are not drowned by constant background power.
// (Not deprecated: api::Exploration uses it as the default model.)
energy::EnergyModel make_paper_energy_model();

}  // namespace ddtr::core

