#include "core/case_studies.h"

#include <cmath>

#include "apps/drr/drr_app.h"
#include "apps/ipchains/ipchains_app.h"
#include "apps/route/route_app.h"
#include "apps/url/url_app.h"
#include "nettrace/generator.h"
#include "nettrace/presets.h"
#include "nettrace/trace_store.h"

namespace ddtr::core {

namespace {

// One immutable trace per (preset, length), built once in the global
// TraceStore and shared by every Scenario (and every repeated study
// construction) that replays that network.
std::shared_ptr<const net::Trace> make_trace(const net::NetworkPreset& preset,
                                             std::size_t packets) {
  net::TraceGenerator::Options options;
  options.packet_count = packets;
  return net::TraceStore::global().get_or_generate(preset, options);
}

}  // namespace

CaseStudyOptions CaseStudyOptions::scaled(double factor) const {
  const auto scale = [factor](std::size_t v) {
    const double scaled = static_cast<double>(v) * factor;
    return static_cast<std::size_t>(std::max(200.0, std::round(scaled)));
  };
  CaseStudyOptions out;
  out.route_packets = scale(route_packets);
  out.url_packets = scale(url_packets);
  out.ipchains_packets = scale(ipchains_packets);
  out.drr_packets = scale(drr_packets);
  return out;
}

CaseStudy make_route_study(const CaseStudyOptions& options) {
  CaseStudy study;
  study.name = "Route";
  study.slots = 2;
  // 7 networks x 2 radix-table sizes = 14 configurations (paper §4).
  for (const net::NetworkPreset& preset : net::first_presets(7)) {
    auto trace = make_trace(preset, options.route_packets);
    for (std::size_t table : {std::size_t{128}, std::size_t{256}}) {
      Scenario scenario;
      scenario.network = preset.name;
      scenario.config = "table=" + std::to_string(table);
      scenario.trace = trace;
      scenario.app = std::make_shared<apps::route::RouteApp>(
          apps::route::RouteApp::Config{table, 7001 + table});
      study.scenarios.push_back(std::move(scenario));
    }
  }
  return study;
}

CaseStudy make_url_study(const CaseStudyOptions& options) {
  CaseStudy study;
  study.name = "URL";
  study.slots = 2;
  // 5 networks, fixed application parameters (paper: 100 combinations x 5
  // networks = 500 exhaustive simulations). The web-heavy wireless presets
  // are the natural choice for a URL switch.
  for (const net::NetworkPreset& preset :
       {net::network_preset("dart-berry"), net::network_preset("dart-sudikoff"),
        net::network_preset("dart-whittemore"),
        net::network_preset("dart-library"),
        net::network_preset("nlanr-campus")}) {
    Scenario scenario;
    scenario.network = preset.name;
    scenario.trace = make_trace(preset, options.url_packets);
    scenario.app = std::make_shared<apps::url::UrlApp>(
        apps::url::UrlApp::Config{24, 8, 8101});
    study.scenarios.push_back(std::move(scenario));
  }
  return study;
}

CaseStudy make_ipchains_study(const CaseStudyOptions& options) {
  CaseStudy study;
  study.name = "IPchains";
  study.slots = 2;
  // 7 networks x 3 activated-rule-set sizes = 21 configurations (2100
  // exhaustive simulations, the paper's largest space).
  for (const net::NetworkPreset& preset : net::first_presets(7)) {
    auto trace = make_trace(preset, options.ipchains_packets);
    for (std::size_t rules : {std::size_t{32}, std::size_t{64},
                              std::size_t{128}}) {
      Scenario scenario;
      scenario.network = preset.name;
      scenario.config = "rules=" + std::to_string(rules);
      scenario.trace = trace;
      scenario.app = std::make_shared<apps::ipchains::IpchainsApp>(
          apps::ipchains::IpchainsApp::Config{rules, 256, 9201 + rules});
      study.scenarios.push_back(std::move(scenario));
    }
  }
  return study;
}

CaseStudy make_drr_study(const CaseStudyOptions& options) {
  CaseStudy study;
  study.name = "DRR";
  study.slots = 2;
  // 5 networks, Level of Fairness fixed at 1 MTU (500 exhaustive).
  for (const net::NetworkPreset& preset :
       {net::network_preset("dart-berry"), net::network_preset("dart-dorm"),
        net::network_preset("dart-library"),
        net::network_preset("nlanr-satellite"),
        net::network_preset("nlanr-campus")}) {
    Scenario scenario;
    scenario.network = preset.name;
    scenario.trace = make_trace(preset, options.drr_packets);
    scenario.app = std::make_shared<apps::drr::DrrApp>(
        apps::drr::DrrApp::Config{1.0, 1.15, 64, 10301});
    study.scenarios.push_back(std::move(scenario));
  }
  return study;
}

energy::EnergyModel make_paper_energy_model() {
  energy::EnergyModel::Config config;
  config.clock_ghz = 1.6;  // the paper's measurement host clock
  config.cpi = 1.0;
  config.core_active_mw = 0.0;  // memory-subsystem energy only
  return energy::EnergyModel{energy::MemoryHierarchy::scratchpad(), config};
}

std::vector<CaseStudy> make_all_case_studies(
    const CaseStudyOptions& options) {
  std::vector<CaseStudy> studies;
  studies.push_back(make_route_study(options));
  studies.push_back(make_url_study(options));
  studies.push_back(make_ipchains_study(options));
  studies.push_back(make_drr_study(options));
  return studies;
}

}  // namespace ddtr::core
