#include "core/case_studies.h"

#include <cmath>

#include "energy/energy_model.h"

// The deprecated make_*_study shims declared in this header are defined in
// api/builtin_workloads.cc, next to the registry that now owns the study
// definitions — core stays free of upward includes into the api layer.

namespace ddtr::core {

CaseStudyOptions CaseStudyOptions::scaled(double factor) const {
  const auto scale = [factor](std::size_t v) {
    const double scaled = static_cast<double>(v) * factor;
    return static_cast<std::size_t>(std::max(200.0, std::round(scaled)));
  };
  CaseStudyOptions out;
  out.route_packets = scale(route_packets);
  out.url_packets = scale(url_packets);
  out.ipchains_packets = scale(ipchains_packets);
  out.drr_packets = scale(drr_packets);
  out.seed_offset = seed_offset;  // scaling resizes traces, not identity
  return out;
}

energy::EnergyModel make_paper_energy_model() {
  energy::EnergyModel::Config config;
  config.clock_ghz = 1.6;  // the paper's measurement host clock
  config.cpi = 1.0;
  config.core_active_mw = 0.0;  // memory-subsystem energy only
  return energy::EnergyModel{energy::MemoryHierarchy::scratchpad(), config};
}

}  // namespace ddtr::core
