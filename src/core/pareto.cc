#include "core/pareto.h"

#include <algorithm>
#include <limits>

namespace ddtr::core {

std::vector<std::size_t> pareto_filter(
    const std::vector<energy::Metrics>& points) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && energy::dominates(points[j], points[i])) {
        dominated = true;
      }
    }
    if (!dominated) result.push_back(i);
  }
  return result;
}

std::vector<std::size_t> pareto_front_2d(
    const std::vector<energy::Metrics>& points, std::size_t metric_x,
    std::size_t metric_y) {
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto va = points[a].as_array();
    const auto vb = points[b].as_array();
    if (va[metric_x] != vb[metric_x]) return va[metric_x] < vb[metric_x];
    return va[metric_y] < vb[metric_y];
  });

  std::vector<std::size_t> front;
  double best_y = std::numeric_limits<double>::infinity();
  double last_x = -std::numeric_limits<double>::infinity();
  for (std::size_t idx : order) {
    const auto v = points[idx].as_array();
    if (v[metric_y] < best_y) {
      if (!front.empty() && v[metric_x] == last_x) continue;  // same x, worse y
      front.push_back(idx);
      best_y = v[metric_y];
      last_x = v[metric_x];
    }
  }
  return front;
}

double tradeoff_span(const std::vector<energy::Metrics>& points,
                     std::size_t metric) {
  if (points.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const energy::Metrics& m : points) {
    const double v = m.as_array()[metric];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= 0.0) return 0.0;
  return (hi - lo) / hi;
}

}  // namespace ddtr::core
