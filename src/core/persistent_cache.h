// Cross-run persistence for the simulation cache. The paper's flow
// re-runs the same (trace, configuration, combination) simulations across
// studies, ablations and repeated `ddtr` invocations; this class makes
// those replays survive the process: a versioned binary file per cache
// directory, loaded at session start to seed the in-memory
// SimulationCache, appended after the run with whatever that run had to
// simulate. Soundness comes from the cache keys (content hashes +
// energy-model fingerprint, see SimulationCache::key_of), so a warm cache
// yields byte-identical reports with zero executed simulations.
//
// Multi-writer model: a cache directory holds ONE shared main file
// (sim_cache.ddtr) plus any number of per-writer SEGMENT files
// (sim_cache.<tag>.seg, same frame format). A writer given a segment tag
// via set_segment() — e.g. shard `i` of a distributed exploration, see
// src/dist/ — stores exclusively into its own segment, so concurrent
// writers can never interleave appends in one file. load() merges the
// main file and every segment (later/newer wins per key), and
// dist::SegmentMerger consolidates segments back into a compacted main
// file once the writers are done.
//
// Robustness contract: cache files are disposable acceleration state,
// never a source of truth. A missing, truncated, corrupt or
// version-mismatched file is ignored (the run just starts cold and
// rewrites it); per-entry checksums drop damaged entries individually, so
// a torn append — e.g. a run killed mid-store — only costs the tail.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/simulation.h"
#include "core/simulation_cache.h"

namespace ddtr::core {

class PersistentSimulationCache {
 public:
  // On-disk format version; bump on any layout change. A file with a
  // different version is invalid as a whole (stale-version invalidation)
  // and gets rewritten by the next store_new().
  static constexpr std::uint32_t kFormatVersion = 1;

  // What the last load() consumed, per source.
  struct LoadStats {
    std::size_t main_entries = 0;     // parsed from sim_cache.ddtr
    std::size_t segment_files = 0;    // sim_cache.*.seg files read
    std::size_t segment_entries = 0;  // parsed from segment files
    std::size_t superseded = 0;       // duplicate keys overwritten merging
    std::size_t corrupt_entries = 0;  // frames dropped (checksum/payload)
  };

  // Structural health of one cache file (main or segment) — the substrate
  // of `ddtr cache verify`.
  struct FileCheck {
    bool present = false;
    // A zero-length file: the recognizable scar of a crash between file
    // creation and the first durable write. Tolerated (the next run
    // rewrites it), reported distinctly so verify does not flag it as
    // corruption.
    bool empty = false;
    bool header_valid = false;         // magic + current format version
    std::uint64_t bytes = 0;           // file size
    std::size_t entries_ok = 0;        // frames with valid checksum+payload
    std::size_t entries_corrupt = 0;   // frames dropped
    std::uint64_t trailing_bytes = 0;  // torn tail past the last frame
  };

  // Entries are stored iff this returns true (nullptr = keep all); shard
  // workers pass core::shard_of_key-based filters so segments partition.
  using KeyFilter = std::function<bool(const std::string& key)>;

  explicit PersistentSimulationCache(std::string dir);

  const std::string& dir() const noexcept { return dir_; }
  // The single shared cache file inside dir().
  std::string file_path() const;
  // Per-writer segment file for `tag` inside dir().
  std::string segment_path(const std::string& tag) const;
  // Existing segment files in dir(), sorted by file name (the merge
  // precedence order: later names supersede earlier ones and the main
  // file).
  std::vector<std::string> segment_paths() const;

  // --- Marker files -----------------------------------------------------
  // Tiny rendezvous files (`<name>.done`) inside dir() through which
  // concurrent writers signal "my records for <name> are durably stored
  // here" — the substrate of dist::SegmentBarrier. A marker's CONTENT is
  // a caller-chosen assertion token (e.g. a step-1 plan fingerprint), so
  // a stale marker from another study, scale or policy sharing the
  // directory can never satisfy a waiter expecting a different token.

  // Path of the marker file for `name` ("<dir>/<name>.done").
  std::string marker_path(const std::string& name) const;
  // Atomically publishes the marker for `name` with `content`: written to
  // a temp file, fsynced, then renamed into place (readers never observe
  // a partial marker; concurrent writers of the same marker are safe).
  // Returns false on I/O failure (best-effort, like all persistence).
  bool write_marker(const std::string& name, const std::string& content);
  // The marker's content, or nullopt when absent/unreadable.
  static std::optional<std::string> read_marker(const std::string& path);
  // Existing marker files in dir(), sorted by file name.
  std::vector<std::string> marker_paths() const;

  // Routes every subsequent store_new() to the per-writer segment file
  // for `tag` instead of the shared main file — the multi-writer fix: one
  // tag, one writer, one file, so concurrent processes sharing dir()
  // cannot interleave appends. Tags should be unique per writer (e.g.
  // "shard0of4") and must be file-name safe. load() still merges every
  // segment regardless of this setting.
  void set_segment(std::string tag);
  const std::string& segment() const noexcept { return segment_tag_; }

  // Reads the main cache file AND every segment file into memory,
  // deduplicating by key (main file first, then segments in name order —
  // the newest occurrence of a key wins; keys are content hashes of
  // deterministic simulations, so colliding entries agree and the order
  // is a tie-break, not a correctness concern). Returns the number of
  // distinct entries loaded; 0 (never a throw) when nothing readable.
  std::size_t load();

  const LoadStats& load_stats() const noexcept { return load_stats_; }
  std::size_t loaded_count() const noexcept { return loaded_.size(); }

  // Seeds `cache` with every loaded entry (existing entries win, stats
  // untouched — seeded records count as hits only when a lookup replays
  // them).
  void seed(SimulationCache& cache) const;

  // Snapshot of the loaded entries, sorted by key (deterministic order
  // for inspection tools).
  std::vector<std::pair<std::string, SimulationRecord>> entries() const;

  // Appends every entry of `cache` that was not loaded from disk — and
  // that `want` accepts, when given — to the store target (the main file,
  // or the segment file after set_segment()), creating directory and
  // file, or rewriting a file load() found invalid. Returns the number of
  // entries written; 0 on I/O failure (persistence is best-effort by
  // design). Written entries join the loaded set, so calling store_new()
  // again does not duplicate them.
  std::size_t store_new(const SimulationCache& cache,
                        const KeyFilter& want = nullptr);

  // Rewrites the MAIN cache file with exactly the loaded entry set —
  // duplicates and superseded entries dropped, deterministic (sorted-key)
  // order — via a temp file, an fsync of file and directory, then a
  // rename (a crash anywhere in the sequence leaves either the old file
  // or the complete new one, never an empty/truncated main file). Does
  // not touch segment files; run after load() (dist::SegmentMerger
  // composes load + compact + segment removal). Returns the number of
  // entries written; 0 on I/O failure.
  std::size_t compact();

  // Structural walk of one cache file: header, per-frame checksums,
  // payload parses, torn tail. Never throws; never modifies the file.
  static FileCheck check_file(const std::string& path);

 private:
  std::string store_path() const;

  std::string dir_;
  std::string segment_tag_;  // empty = store to the shared main file
  // Validity/extent of the *store target* as last parsed. A torn tail (a
  // run killed mid-append) is truncated away before the next append —
  // frames written after a torn frame would be unreachable to the loader.
  bool store_valid_ = false;
  std::uint64_t store_prefix_bytes_ = 0;
  LoadStats load_stats_;
  std::unordered_map<std::string, SimulationRecord> loaded_;
};

}  // namespace ddtr::core

