// Cross-run persistence for the simulation cache. The paper's flow
// re-runs the same (trace, configuration, combination) simulations across
// studies, ablations and repeated `ddtr` invocations; this class makes
// those replays survive the process: a versioned binary file per cache
// directory, loaded at session start to seed the in-memory
// SimulationCache, appended after the run with whatever that run had to
// simulate. Soundness comes from the cache keys (content hashes +
// energy-model fingerprint, see SimulationCache::key_of), so a warm cache
// yields byte-identical reports with zero executed simulations.
//
// Robustness contract: cache files are disposable acceleration state,
// never a source of truth. A missing, truncated, corrupt or
// version-mismatched file is ignored (the run just starts cold and
// rewrites it); per-entry checksums drop damaged entries individually, so
// a torn append — e.g. a run killed mid-store — only costs the tail.
#ifndef DDTR_CORE_PERSISTENT_CACHE_H_
#define DDTR_CORE_PERSISTENT_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/simulation_cache.h"

namespace ddtr::core {

class PersistentSimulationCache {
 public:
  // On-disk format version; bump on any layout change. A file with a
  // different version is invalid as a whole (stale-version invalidation)
  // and gets rewritten by the next store_new().
  static constexpr std::uint32_t kFormatVersion = 1;

  explicit PersistentSimulationCache(std::string dir);

  const std::string& dir() const noexcept { return dir_; }
  // The single cache file inside dir().
  std::string file_path() const;

  // Reads the cache file into memory. Returns the number of entries
  // loaded; 0 (never a throw) for missing, stale or unreadable files.
  std::size_t load();

  std::size_t loaded_count() const noexcept { return loaded_.size(); }

  // Seeds `cache` with every loaded entry (existing entries win, stats
  // untouched — seeded records count as hits only when a lookup replays
  // them).
  void seed(SimulationCache& cache) const;

  // Appends every entry of `cache` that was not loaded from disk to the
  // cache file (creating directory and file, or rewriting a file load()
  // found invalid). Returns the number of entries written; 0 on I/O
  // failure (persistence is best-effort by design). Written entries join
  // the loaded set, so calling store_new() again does not duplicate them.
  std::size_t store_new(const SimulationCache& cache);

 private:
  std::string dir_;
  bool file_valid_ = false;  // load() saw a well-formed current header
  // File size of the well-formed prefix load() parsed. A torn tail (a run
  // killed mid-append) is truncated away before the next append — frames
  // written after a torn frame would be unreachable to the loader.
  std::uint64_t valid_prefix_bytes_ = 0;
  std::unordered_map<std::string, SimulationRecord> loaded_;
};

}  // namespace ddtr::core

#endif  // DDTR_CORE_PERSISTENT_CACHE_H_
