#include "core/result_log.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ddtr::core {

namespace {

// Scenario labels and combination labels never contain spaces; free-form
// fields (app, network, config) are written with a simple escape for
// robustness.
std::string escape(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  for (char ch : s) {
    out += (ch == ' ' || ch == '\n') ? '_' : ch;
  }
  return out;
}

std::string unescape(const std::string& s) { return s == "-" ? "" : s; }

}  // namespace

void ResultLog::append_all(const std::vector<SimulationRecord>& records) {
  records_.insert(records_.end(), records.begin(), records.end());
}

std::vector<SimulationRecord> ResultLog::for_app(
    const std::string& app_name) const {
  std::vector<SimulationRecord> out;
  for (const SimulationRecord& r : records_) {
    if (r.app_name == app_name) out.push_back(r);
  }
  return out;
}

void ResultLog::save(std::ostream& os) const {
  os << "ddtr-log 1 " << records_.size() << '\n';
  for (const SimulationRecord& r : records_) {
    os << escape(r.app_name) << ' ' << escape(r.combo.label()) << ' '
       << escape(r.network) << ' ' << escape(r.config) << ' '
       << r.metrics.energy_mj << ' ' << r.metrics.time_s << ' '
       << r.metrics.accesses << ' ' << r.metrics.footprint_bytes << ' '
       << r.counters.reads << ' ' << r.counters.writes << ' '
       << r.counters.bytes_read << ' ' << r.counters.bytes_written << ' '
       << r.counters.allocations << ' ' << r.counters.deallocations << ' '
       << r.counters.peak_bytes << ' ' << r.counters.cpu_ops << '\n';
  }
}

ResultLog ResultLog::load(std::istream& is) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  is >> magic >> version >> count;
  if (magic != "ddtr-log" || version != 1) {
    throw std::runtime_error("not a ddtr result log");
  }
  ResultLog log;
  for (std::size_t i = 0; i < count; ++i) {
    SimulationRecord r;
    std::string app, combo, network, config;
    is >> app >> combo >> network >> config >> r.metrics.energy_mj >>
        r.metrics.time_s >> r.metrics.accesses >>
        r.metrics.footprint_bytes >> r.counters.reads >> r.counters.writes >>
        r.counters.bytes_read >> r.counters.bytes_written >>
        r.counters.allocations >> r.counters.deallocations >>
        r.counters.peak_bytes >> r.counters.cpu_ops;
    if (!is) throw std::runtime_error("truncated ddtr result log");
    r.app_name = unescape(app);
    r.network = unescape(network);
    r.config = unescape(config);

    // Re-parse the combination label ("AR+DLL").
    std::vector<ddt::DdtKind> kinds;
    std::stringstream combo_stream(unescape(combo));
    std::string part;
    while (std::getline(combo_stream, part, '+')) {
      const auto kind = ddt::parse_ddt_kind(part);
      if (!kind) throw std::runtime_error("unknown DDT kind: " + part);
      kinds.push_back(*kind);
    }
    r.combo = ddt::DdtCombination(std::move(kinds));
    log.append(r);
  }
  return log;
}

}  // namespace ddtr::core
