#include "core/explorer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/pareto.h"
#include "core/persistent_cache.h"
#include "core/result_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fnv_hash.h"
#include "support/thread_pool.h"

namespace ddtr::core {

namespace {

// Serializes StepProgress emission from the worker lanes: ticks are handed
// through one lock, so the observer sees a strictly increasing `done` and
// never runs concurrently with itself.
class ProgressReporter {
 public:
  ProgressReporter(const ProgressObserver& observer, int step,
                   std::size_t total, std::size_t shard_index,
                   std::size_t shard_count)
      : observer_(observer),
        step_(step),
        total_(total),
        shard_index_(shard_index),
        shard_count_(shard_count) {
    if (observer_) observer_({step_, 0, total_, shard_index_, shard_count_});
  }

  void tick() {
    if (!observer_) return;
    std::lock_guard<std::mutex> lock(mu_);
    observer_({step_, ++done_, total_, shard_index_, shard_count_});
  }

 private:
  const ProgressObserver& observer_;
  const int step_;
  const std::size_t total_;
  const std::size_t shard_index_;
  const std::size_t shard_count_;
  std::mutex mu_;
  std::size_t done_ = 0;
};

// The greedy step-1 combination set: every slot SLL (the original
// NetBench implementations), followed by every single-slot variation in
// slot-major order. Shared by the greedy fan and step1_fingerprint, so
// the fingerprint always covers exactly the units the fan visits.
std::vector<ddt::DdtCombination> greedy_step1_combos(
    const std::vector<std::vector<ddt::DdtKind>>& slot_sets) {
  const std::size_t slots = slot_sets.size();
  const std::vector<ddt::DdtKind> baseline(slots, ddt::DdtKind::kSll);
  std::vector<ddt::DdtCombination> combos;
  std::size_t variations = 0;
  for (const auto& set : slot_sets) variations += set.size();
  combos.reserve(1 + variations);
  combos.emplace_back(baseline);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    for (ddt::DdtKind kind : slot_sets[slot]) {
      if (kind == ddt::DdtKind::kSll) continue;  // already the baseline
      std::vector<ddt::DdtKind> kinds = baseline;
      kinds[slot] = kind;
      combos.emplace_back(std::move(kinds));
    }
  }
  return combos;
}

std::vector<ddt::DdtCombination> step1_combos(const CaseStudy& study,
                                              Step1Policy policy) {
  return policy == Step1Policy::kGreedyPerSlot
             ? greedy_step1_combos(study.slot_kind_sets())
             : ddt::enumerate_combinations(study.slot_kind_sets());
}

// Per-run segment-tag token: pid, a per-process random nonce, and a
// process-wide sequence. The pid alone is NOT unique across hosts or
// containers sharing one storage directory (every container's worker can
// be pid 1), the sequence alone is not unique across processes — the
// nonce covers both, the sequence distinguishes concurrent in-process
// sessions.
std::string default_run_token() {
  static std::atomic<std::uint64_t> sequence{0};
  static const std::uint64_t nonce = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  const std::uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
#ifndef _WIN32
  const long long pid = static_cast<long long>(::getpid());
#else
  const long long pid = 0;
#endif
  std::ostringstream os;
  os << 'p' << pid << '-' << std::hex << nonce << '-' << std::dec << seq;
  return os.str();
}

}  // namespace

std::size_t shard_of_key(const std::string& key,
                         std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  return support::fnv1a64(key.data(), key.size()) % shard_count;
}

std::string shard_segment_tag(std::size_t shard_index,
                              std::size_t shard_count) {
  return "shard" + std::to_string(shard_index) + "of" +
         std::to_string(shard_count);
}

std::string step1_marker_name(const std::string& fingerprint,
                              std::size_t shard_index,
                              std::size_t shard_count) {
  return "step1." + fingerprint + "." +
         shard_segment_tag(shard_index, shard_count);
}

std::string step1_fingerprint(const CaseStudy& study,
                              const energy::EnergyModel& model,
                              Step1Policy policy) {
  const Scenario& scenario = study.scenarios.at(study.representative);
  support::Fnv1a64 digest;
  for (const ddt::DdtCombination& combo : step1_combos(study, policy)) {
    digest.str(SimulationCache::key_of(scenario, combo, model));
  }
  std::ostringstream os;
  os << std::hex << digest.digest();
  return os.str();
}

std::vector<SimulationRecord> ExplorationReport::pareto_records() const {
  std::vector<SimulationRecord> out;
  out.reserve(pareto_optimal.size());
  for (std::size_t idx : pareto_optimal) out.push_back(aggregated[idx]);
  return out;
}

std::vector<SimulationRecord> ExplorationReport::scenario_records(
    const std::string& label) const {
  std::vector<SimulationRecord> out;
  for (const SimulationRecord& r : step2_records) {
    if (r.scenario_label() == label) out.push_back(r);
  }
  return out;
}

std::string ExplorationReport::serialized_records() const {
  ResultLog log;
  log.append_all(step1_records);
  log.append_all(step2_records);
  std::ostringstream os;
  log.save(os);
  return os.str();
}

ExplorationEngine::ExplorationEngine(energy::EnergyModel model)
    : ExplorationEngine(std::move(model), ExplorationOptions{}) {}

ExplorationEngine::ExplorationEngine(energy::EnergyModel model,
                                     ExplorationOptions options)
    : model_(std::move(model)), options_(options) {}

ExplorationEngine::FanOutcome ExplorationEngine::fan_simulations(
    std::size_t count,
    const std::function<const Scenario&(std::size_t)>& scenario_of,
    const std::function<const ddt::DdtCombination&(std::size_t)>& combo_of,
    SimulationCache* cache, support::ThreadPool& pool, int step,
    bool shard_filter, bool report_progress) const {
  const bool sharded = shard_filter && options_.shard_count > 1;
  if (sharded && !cache) {
    throw std::invalid_argument(
        "ExplorationEngine: sharded execution requires a simulation cache");
  }
  // Index-addressed slots: lane scheduling cannot affect record order, so
  // the parallel output is bit-identical to the serial one. Skipped units
  // leave their slot unfilled and are compacted away below.
  std::vector<SimulationRecord> slots(count);
  std::vector<unsigned char> filled(count, 0);
  std::atomic<std::size_t> foreign{0};
  std::atomic<std::size_t> dropped{0};
  const ProgressObserver no_observer;
  ProgressReporter progress(
      report_progress ? options_.progress : no_observer, step, count,
      options_.shard_index, options_.shard_count);
  support::parallel_for(pool, count, [&](std::size_t i) {
    if (cancel_requested()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      progress.tick();
      return;
    }
    const Scenario& scenario = scenario_of(i);
    const ddt::DdtCombination& combo = combo_of(i);
    if (sharded) {
      const std::string key = SimulationCache::key_of(scenario, combo, model_);
      if (shard_of_key(key, options_.shard_count) != options_.shard_index) {
        // Foreign unit: replay it when a prior step already cached it
        // (the representative scenario's survivors), otherwise leave it
        // to the shard that owns it.
        if (auto hit = cache->find_cached(scenario, combo, model_)) {
          slots[i] = std::move(*hit);
          filled[i] = 1;
        } else {
          foreign.fetch_add(1, std::memory_order_relaxed);
        }
        progress.tick();
        return;
      }
    }
    {
      // Per-unit observability: a span per fan unit plus a wall-time
      // histogram over ALL units (executed or replayed — distinguishing
      // them here would need an extra cache probe, and cache stats feed
      // the byte-compared report). Pure observation: timings never touch
      // the produced record.
      static obs::Histogram& sim_us =
          obs::registry().histogram("explore.sim_us");
      obs::SpanScope span(options_.trace_sink, "sim",
                          step == 1 ? "step1" : "step2");
      const std::uint64_t t0 = obs::now_us();
      slots[i] = cache ? cache->get_or_simulate(scenario, combo, model_)
                       : simulate(scenario, combo, model_);
      sim_us.observe(obs::now_us() - t0);
    }
    filled[i] = 1;
    progress.tick();
  });

  FanOutcome out;
  out.skipped_foreign = foreign.load(std::memory_order_relaxed);
  out.skipped_cancelled = dropped.load(std::memory_order_relaxed);
  if (out.skipped_foreign == 0 && out.skipped_cancelled == 0) {
    out.records = std::move(slots);  // the common, complete case
    return out;
  }
  out.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (filled[i]) out.records.push_back(std::move(slots[i]));
  }
  return out;
}

std::vector<SimulationRecord> ExplorationEngine::run_step1(
    const CaseStudy& study, SimulationCache* cache) const {
  support::ThreadPool pool(options_.jobs);
  return run_step1_fan(study, cache, pool).records;
}

ExplorationEngine::FanOutcome ExplorationEngine::run_step1_fan(
    const CaseStudy& study, SimulationCache* cache, support::ThreadPool& pool,
    bool shard_filter, bool report_progress) const {
  const Scenario& scenario = study.scenarios.at(study.representative);
  const std::vector<ddt::DdtCombination> combos =
      ddt::enumerate_combinations(study.slot_kind_sets());
  // Unfiltered (the default), every worker covers the full combination
  // set — either replicating step 1 or replaying it from the post-barrier
  // merged cache; filtered (the step1_sharded first pass), only owned
  // units execute.
  return fan_simulations(
      combos.size(), [&](std::size_t) -> const Scenario& { return scenario; },
      [&](std::size_t i) -> const ddt::DdtCombination& { return combos[i]; },
      cache, pool, 1, shard_filter, report_progress);
}

std::vector<SimulationRecord> ExplorationEngine::run_step1_greedy(
    const CaseStudy& study, SimulationCache* cache) const {
  support::ThreadPool pool(options_.jobs);
  return run_step1_greedy_fan(study, cache, pool).records;
}

ExplorationEngine::FanOutcome ExplorationEngine::run_step1_greedy_fan(
    const CaseStudy& study, SimulationCache* cache, support::ThreadPool& pool,
    bool shard_filter, bool report_progress) const {
  const Scenario& scenario = study.scenarios.at(study.representative);
  const std::vector<ddt::DdtCombination> combos =
      greedy_step1_combos(study.slot_kind_sets());
  return fan_simulations(
      combos.size(), [&](std::size_t) -> const Scenario& { return scenario; },
      [&](std::size_t i) -> const ddt::DdtCombination& { return combos[i]; },
      cache, pool, 1, shard_filter, report_progress);
}

std::vector<ddt::DdtCombination> ExplorationEngine::select_survivors_greedy(
    const std::vector<SimulationRecord>& step1_records,
    std::size_t slots) const {
  // Per slot, keep the kinds whose single-slot variation is 4-D
  // non-dominated among that slot's variations (the baseline record
  // participates in every slot's comparison).
  std::vector<std::vector<ddt::DdtKind>> kept_kinds(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    std::vector<const SimulationRecord*> slot_records;
    for (const SimulationRecord& r : step1_records) {
      // A record belongs to this slot's sweep when every other slot is
      // at the SLL baseline.
      bool belongs = true;
      for (std::size_t s = 0; s < slots; ++s) {
        if (s != slot && r.combo[s] != ddt::DdtKind::kSll) belongs = false;
      }
      if (belongs) slot_records.push_back(&r);
    }
    std::vector<energy::Metrics> points;
    points.reserve(slot_records.size());
    for (const auto* r : slot_records) points.push_back(r->metrics);
    for (std::size_t idx : pareto_filter(points)) {
      kept_kinds[slot].push_back(slot_records[idx]->combo[slot]);
    }
    if (kept_kinds[slot].empty()) {
      kept_kinds[slot].push_back(ddt::DdtKind::kSll);
    }
  }

  // Cross the per-slot keepers into full combinations.
  std::vector<ddt::DdtCombination> survivors;
  std::vector<std::size_t> digit(slots, 0);
  while (true) {
    std::vector<ddt::DdtKind> kinds(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      kinds[s] = kept_kinds[s][digit[s]];
    }
    survivors.emplace_back(std::move(kinds));
    std::size_t s = 0;
    while (s < slots && ++digit[s] == kept_kinds[s].size()) {
      digit[s] = 0;
      ++s;
    }
    if (s == slots) break;
  }
  const std::size_t cap = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(
             options_.survivor_cap_fraction * 100.0)));
  if (survivors.size() > cap) survivors.resize(cap);
  return survivors;
}

std::vector<ddt::DdtCombination> ExplorationEngine::select_survivors(
    const std::vector<SimulationRecord>& step1_records) const {
  std::vector<energy::Metrics> points;
  points.reserve(step1_records.size());
  for (const SimulationRecord& r : step1_records) points.push_back(r.metrics);

  const std::size_t cap = std::max<std::size_t>(
      4 * options_.champions_per_metric,
      static_cast<std::size_t>(
          std::llround(options_.survivor_cap_fraction *
                       static_cast<double>(step1_records.size()))));

  std::vector<bool> selected(points.size(), false);
  std::vector<std::size_t> keep;
  const auto select = [&](std::size_t idx) {
    if (!selected[idx]) {
      selected[idx] = true;
      keep.push_back(idx);
    }
  };

  // Per-metric champions first (the paper's explicit selection rule).
  for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return points[a].as_array()[m] < points[b].as_array()[m];
              });
    for (std::size_t k = 0;
         k < options_.champions_per_metric && k < order.size(); ++k) {
      select(order[k]);
    }
  }

  // Fill the remaining budget with the best-ranked non-dominated points
  // (rank: sum over metrics of the ratio to the best observed value).
  std::vector<std::size_t> pareto = pareto_filter(points);
  std::array<double, energy::kMetricCount> best;
  best.fill(std::numeric_limits<double>::infinity());
  for (const energy::Metrics& p : points) {
    const auto v = p.as_array();
    for (std::size_t m = 0; m < v.size(); ++m) {
      best[m] = std::min(best[m], v[m]);
    }
  }
  const auto score = [&](std::size_t idx) {
    const auto v = points[idx].as_array();
    double s = 0.0;
    for (std::size_t m = 0; m < v.size(); ++m) {
      s += best[m] > 0.0 ? v[m] / best[m] : v[m];
    }
    return s;
  };
  std::sort(pareto.begin(), pareto.end(),
            [&](std::size_t a, std::size_t b) { return score(a) < score(b); });
  for (std::size_t idx : pareto) {
    if (keep.size() >= cap) break;
    select(idx);
  }

  std::vector<ddt::DdtCombination> survivors;
  survivors.reserve(keep.size());
  for (std::size_t idx : keep) survivors.push_back(step1_records[idx].combo);
  return survivors;
}

std::vector<SimulationRecord> ExplorationEngine::run_step2(
    const CaseStudy& study, const std::vector<ddt::DdtCombination>& survivors,
    SimulationCache* cache) const {
  support::ThreadPool pool(options_.jobs);
  return run_step2_fan(study, survivors, cache, pool).records;
}

ExplorationEngine::FanOutcome ExplorationEngine::run_step2_fan(
    const CaseStudy& study, const std::vector<ddt::DdtCombination>& survivors,
    SimulationCache* cache, support::ThreadPool& pool) const {
  // Flatten (scenario x survivor) into one index space, scenario-major —
  // the serial iteration order — and fan every pair over the pool. Step 2
  // is the sharded step: a worker engine executes only the units
  // shard_of_key assigns to it.
  const std::size_t per_scenario = survivors.size();
  const std::size_t count = per_scenario * study.scenarios.size();
  if (count == 0) {
    ProgressReporter progress(options_.progress, 2, 0,
                              options_.shard_index, options_.shard_count);
    return FanOutcome{};
  }
  return fan_simulations(
      count,
      [&](std::size_t i) -> const Scenario& {
        return study.scenarios[i / per_scenario];
      },
      [&](std::size_t i) -> const ddt::DdtCombination& {
        return survivors[i % per_scenario];
      },
      cache, pool, 2, /*shard_filter=*/true);
}

std::vector<SimulationRecord> ExplorationEngine::aggregate(
    const std::vector<SimulationRecord>& step2_records) const {
  // Group by combination label, preserving first-seen order.
  std::vector<SimulationRecord> aggregated;
  std::map<std::string, std::size_t> index_of;
  std::map<std::string, std::size_t> count_of;
  for (const SimulationRecord& r : step2_records) {
    const std::string key = r.combo.label();
    auto [it, inserted] = index_of.try_emplace(key, aggregated.size());
    if (inserted) {
      SimulationRecord agg = r;
      agg.network = "<all>";
      agg.config.clear();
      agg.metrics = energy::Metrics{};
      agg.counters = prof::ProfileCounters{};
      aggregated.push_back(agg);
    }
    SimulationRecord& agg = aggregated[it->second];
    agg.metrics.energy_mj += r.metrics.energy_mj;
    agg.metrics.time_s += r.metrics.time_s;
    agg.metrics.accesses += r.metrics.accesses;
    agg.metrics.footprint_bytes += r.metrics.footprint_bytes;
    count_of[key] += 1;
  }
  for (auto& [key, idx] : index_of) {
    const double n = static_cast<double>(count_of[key]);
    energy::Metrics& m = aggregated[idx].metrics;
    m.energy_mj /= n;
    m.time_s /= n;
    m.accesses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(m.accesses) / n));
    m.footprint_bytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(m.footprint_bytes) / n));
  }
  return aggregated;
}

ExplorationReport ExplorationEngine::explore(const CaseStudy& study) const {
  const bool sharded = options_.shard_count > 1;
  const bool step1_sharded = options_.step1_sharded && sharded;
  if (sharded) {
    if (options_.shard_index >= options_.shard_count) {
      throw std::invalid_argument(
          "ExplorationOptions: shard_index must be < shard_count");
    }
    if (!options_.memoize_simulations) {
      throw std::invalid_argument(
          "ExplorationOptions: sharded execution requires "
          "memoize_simulations");
    }
    if (options_.cache_dir.empty()) {
      throw std::invalid_argument(
          "ExplorationOptions: sharded execution requires a cache_dir "
          "(shards meet only through cache segments)");
    }
    if (step1_sharded && !options_.step1_barrier) {
      // Proceeding without a rendezvous would select survivors from a
      // partial step-1 set — silently wrong reports. Fail fast instead.
      throw std::invalid_argument(
          "ExplorationOptions: step1_sharded requires a step1_barrier "
          "(workers must rendezvous on their siblings' step-1 segments)");
    }
    if (options_.shared_cache || options_.shared_persistent) {
      throw std::invalid_argument(
          "ExplorationOptions: warm-serving hooks (shared_cache/"
          "shared_persistent) are mutually exclusive with sharding");
    }
  }
  if (options_.shared_cache && !options_.memoize_simulations) {
    throw std::invalid_argument(
        "ExplorationOptions: shared_cache requires memoize_simulations");
  }
  if (options_.shared_persistent && !options_.shared_cache) {
    throw std::invalid_argument(
        "ExplorationOptions: shared_persistent requires shared_cache (the "
        "owner seeds the warm cache from the loaded file once)");
  }

  ExplorationReport report;
  report.app_name = study.name;
  report.combination_count = study.combination_count();
  report.scenario_count = study.scenarios.size();
  report.exhaustive_simulations = study.exhaustive_simulations();
  report.shard_index = options_.shard_index;
  report.shard_count = options_.shard_count;

  // Whole-run span; phase spans (cache.load, step1, select, step2,
  // cache.store, aggregate) nest inside it. All tracing is null-checked
  // through SpanScope, so the untraced path pays nothing.
  obs::SpanScope explore_span(options_.trace_sink, "explore", "explore");

  // The memoization cache: a per-run one by default, or the caller's
  // long-lived warm cache (serve mode), which keeps records across
  // explore() calls so a repeated study replays entirely from memory.
  SimulationCache local_cache;
  SimulationCache* cache_ptr = nullptr;
  if (options_.memoize_simulations) {
    cache_ptr = options_.shared_cache ? options_.shared_cache : &local_cache;
  }
  // Stats baseline: a warm shared cache arrives with history, and the
  // executed-simulation accounting below (executed == misses) must count
  // only THIS run's traffic — everything is reported as a delta.
  const SimulationCache::Stats baseline =
      cache_ptr ? cache_ptr->stats() : SimulationCache::Stats{};
  // Cross-run persistence: seed the in-memory cache from the cache file
  // up front; new records are appended after the run. Content-hash keys
  // keep this invisible in the records — warm, cold or disabled, the
  // report bytes are identical; only the executed counts change. Sharded
  // workers store into a private segment file (never the shared file),
  // which is what makes concurrent shard writers safe. With
  // shared_persistent the load happened once at service start; the run
  // only appends.
  std::optional<PersistentSimulationCache> persistent_local;
  PersistentSimulationCache* persistent = options_.shared_persistent;
  if (persistent) {
    report.persistent_loaded = persistent->loaded_count();
  } else if (cache_ptr && !options_.cache_dir.empty()) {
    persistent_local.emplace(options_.cache_dir);
    persistent = &*persistent_local;
    if (sharded) {
      // Geometry tag + per-run token: two fleets sharing this directory
      // with the same shard geometry still write distinct segment files
      // (same-path concurrent appends interleave frames — the exact
      // multi-writer corruption segments exist to prevent).
      report.segment_tag =
          shard_segment_tag(options_.shard_index, options_.shard_count) +
          "." +
          (options_.run_token.empty() ? default_run_token()
                                      : options_.run_token);
      persistent->set_segment(report.segment_tag);
    }
    obs::SpanScope load_span(options_.trace_sink, "cache.load", "cache");
    report.persistent_loaded = persistent->load();
    persistent->seed(*cache_ptr);
    load_span.arg("records", report.persistent_loaded);
  }
  const std::size_t shard_index = options_.shard_index;
  const std::size_t shard_count = options_.shard_count;
  const PersistentSimulationCache::KeyFilter owned_keys =
      [shard_index, shard_count](const std::string& key) {
        return shard_of_key(key, shard_count) == shard_index;
      };
  // One pool for the whole run: spawning lanes once, not per step — or
  // the owner's long-lived pool (serve mode: lanes spawn once per
  // service, concurrent sessions multiplex over them).
  std::optional<support::ThreadPool> local_pool;
  if (!options_.shared_pool) local_pool.emplace(options_.jobs);
  support::ThreadPool& pool =
      options_.shared_pool ? *options_.shared_pool : *local_pool;

  const auto step1_fan = [&](bool shard_filter, bool report_progress) {
    obs::SpanScope span(options_.trace_sink, "step1", "explore");
    FanOutcome out =
        options_.step1_policy == Step1Policy::kGreedyPerSlot
            ? run_step1_greedy_fan(study, cache_ptr, pool, shard_filter,
                                   report_progress)
            : run_step1_fan(study, cache_ptr, pool, shard_filter,
                            report_progress);
    span.arg("records", out.records.size());
    return out;
  };
  // First step-1 pass: owned units only when step1_sharded, the full set
  // otherwise (replicated step 1, the default).
  FanOutcome step1 =
      step1_fan(/*shard_filter=*/step1_sharded, /*report_progress=*/true);
  std::size_t stored_before_barrier = 0;
  if (step1_sharded) {
    // Checkpoint the owned step-1 records into this worker's segment and
    // — only if the fan completed uncancelled, so the marker never
    // overstates what is durable — publish the marker and park in the
    // barrier until every sibling has published too.
    {
      obs::SpanScope store_span(options_.trace_sink, "cache.store", "cache");
      stored_before_barrier = persistent->store_new(*cache_ptr, owned_keys);
      store_span.arg("stored", stored_before_barrier);
    }
    if (!cancel_requested()) {
      const std::string fingerprint =
          step1_fingerprint(study, model_, options_.step1_policy);
      if (!persistent->write_marker(
              step1_marker_name(fingerprint, shard_index, shard_count),
              fingerprint)) {
        // An unpublished marker means the barrier could only ever time
        // out waiting for OUR OWN shard — surface the I/O failure now,
        // accurately, instead of after the full barrier timeout.
        throw std::runtime_error(
            "step-1 sharding: failed to publish marker " +
            step1_marker_name(fingerprint, shard_index, shard_count) +
            " in " + options_.cache_dir);
      }
      obs::SpanScope wait_span(options_.trace_sink, "barrier.wait", "dist");
      options_.step1_barrier();  // throws on timeout; returns on cancel
    }
    if (!cancel_requested()) {
      // Merge every sibling's segment (merge-on-load) and replay the full
      // step-1 set from cache: identical records in identical order, so
      // the survivor selection below matches every other worker's — and
      // the unsharded run's — exactly. A unit a sibling failed to deliver
      // degrades gracefully: this worker simulates it itself. Progress is
      // muted — the first pass already emitted this run's one step-1
      // sequence.
      {
        obs::SpanScope load_span(options_.trace_sink, "cache.load", "cache");
        report.persistent_loaded = persistent->load();
        persistent->seed(*cache_ptr);
        load_span.arg("records", report.persistent_loaded);
      }
      step1 = step1_fan(/*shard_filter=*/false, /*report_progress=*/false);
    }
  }
  report.step1_records = std::move(step1.records);
  {
    obs::SpanScope select_span(options_.trace_sink, "select", "explore");
    report.survivors =
        options_.step1_policy == Step1Policy::kGreedyPerSlot
            ? select_survivors_greedy(report.step1_records, study.slots)
            : select_survivors(report.step1_records);
    select_span.arg("candidates", report.step1_records.size())
        .arg("survivors", report.survivors.size());
  }
  report.step1_simulations = report.step1_records.size();
  const SimulationCache::Stats after_step1 =
      cache_ptr ? cache_ptr->stats() : SimulationCache::Stats{};
  report.step1_executed_simulations =
      cache_ptr ? after_step1.misses - baseline.misses
                : report.step1_simulations;

  FanOutcome step2 = [&] {
    obs::SpanScope span(options_.trace_sink, "step2", "explore");
    FanOutcome out = run_step2_fan(study, report.survivors, cache_ptr, pool);
    span.arg("records", out.records.size());
    return out;
  }();
  report.step2_records = std::move(step2.records);
  report.step2_simulations = report.step2_records.size();
  const SimulationCache::Stats after_step2 =
      cache_ptr ? cache_ptr->stats() : SimulationCache::Stats{};
  report.step2_executed_simulations =
      cache_ptr ? after_step2.misses - after_step1.misses
                : report.step2_simulations;
  report.cache_hits = after_step2.hits - baseline.hits;
  report.cache_misses = after_step2.misses - baseline.misses;
  report.skipped_foreign_shard =
      step1.skipped_foreign + step2.skipped_foreign;
  report.skipped_after_cancel =
      step1.skipped_cancelled + step2.skipped_cancelled;
  report.cancelled = cancel_requested();

  // Checkpoint even after cancellation: whatever this run executed is
  // sound and must survive (the cancellation contract — a cancelled run
  // leaves a valid, loadable cache file or segment). A shard worker
  // stores only the keys it owns, so segments stay a partition.
  if (persistent) {
    obs::SpanScope store_span(options_.trace_sink, "cache.store", "cache");
    report.persistent_stored =
        stored_before_barrier +
        (sharded ? persistent->store_new(*cache_ptr, owned_keys)
                 : persistent->store_new(*cache_ptr));
    store_span.arg("stored", report.persistent_stored);
  }

  {
    obs::SpanScope agg_span(options_.trace_sink, "aggregate", "explore");
    report.aggregated = aggregate(report.step2_records);
    std::vector<energy::Metrics> points;
    points.reserve(report.aggregated.size());
    for (const SimulationRecord& r : report.aggregated) {
      points.push_back(r.metrics);
    }
    report.pareto_optimal = pareto_filter(points);
    agg_span.arg("aggregated", report.aggregated.size())
        .arg("pareto", report.pareto_optimal.size());
  }

  // Per-step executed/hit/skip counters from the same stats deltas the
  // report itself uses (the step fans run sequentially, so the deltas
  // attribute exactly). Pure observation — the report was already final.
  {
    static obs::Counter& runs = obs::registry().counter("explore.runs");
    static obs::Counter& s1_exec =
        obs::registry().counter("explore.step1.executed");
    static obs::Counter& s2_exec =
        obs::registry().counter("explore.step2.executed");
    static obs::Counter& hits = obs::registry().counter("explore.cache_hits");
    static obs::Counter& skip_foreign =
        obs::registry().counter("explore.skipped_foreign");
    static obs::Counter& skip_cancel =
        obs::registry().counter("explore.skipped_cancelled");
    runs.add();
    s1_exec.add(report.step1_executed_simulations);
    s2_exec.add(report.step2_executed_simulations);
    hits.add(report.cache_hits);
    skip_foreign.add(report.skipped_foreign_shard);
    skip_cancel.add(report.skipped_after_cancel);
  }
  return report;
}

}  // namespace ddtr::core
