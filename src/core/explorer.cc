#include "core/explorer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "core/persistent_cache.h"
#include "core/result_log.h"
#include "support/thread_pool.h"

namespace ddtr::core {

namespace {

// Serializes StepProgress emission from the worker lanes: ticks are handed
// through one lock, so the observer sees a strictly increasing `done` and
// never runs concurrently with itself.
class ProgressReporter {
 public:
  ProgressReporter(const ProgressObserver& observer, int step,
                   std::size_t total)
      : observer_(observer), step_(step), total_(total) {
    if (observer_) observer_({step_, 0, total_});
  }

  void tick() {
    if (!observer_) return;
    std::lock_guard<std::mutex> lock(mu_);
    observer_({step_, ++done_, total_});
  }

 private:
  const ProgressObserver& observer_;
  const int step_;
  const std::size_t total_;
  std::mutex mu_;
  std::size_t done_ = 0;
};

}  // namespace

std::vector<SimulationRecord> ExplorationReport::pareto_records() const {
  std::vector<SimulationRecord> out;
  out.reserve(pareto_optimal.size());
  for (std::size_t idx : pareto_optimal) out.push_back(aggregated[idx]);
  return out;
}

std::vector<SimulationRecord> ExplorationReport::scenario_records(
    const std::string& label) const {
  std::vector<SimulationRecord> out;
  for (const SimulationRecord& r : step2_records) {
    if (r.scenario_label() == label) out.push_back(r);
  }
  return out;
}

std::string ExplorationReport::serialized_records() const {
  ResultLog log;
  log.append_all(step1_records);
  log.append_all(step2_records);
  std::ostringstream os;
  log.save(os);
  return os.str();
}

ExplorationEngine::ExplorationEngine(energy::EnergyModel model)
    : ExplorationEngine(std::move(model), ExplorationOptions{}) {}

ExplorationEngine::ExplorationEngine(energy::EnergyModel model,
                                     ExplorationOptions options)
    : model_(std::move(model)), options_(options) {}

std::vector<SimulationRecord> ExplorationEngine::simulate_all(
    const Scenario& scenario, const std::vector<ddt::DdtCombination>& combos,
    SimulationCache* cache, support::ThreadPool& pool, int step) const {
  // Index-addressed slots: lane scheduling cannot affect record order, so
  // the parallel output is bit-identical to the serial one.
  std::vector<SimulationRecord> records(combos.size());
  ProgressReporter progress(options_.progress, step, combos.size());
  support::parallel_for(pool, combos.size(), [&](std::size_t i) {
    records[i] = cache ? cache->get_or_simulate(scenario, combos[i], model_)
                       : simulate(scenario, combos[i], model_);
    progress.tick();
  });
  return records;
}

std::vector<SimulationRecord> ExplorationEngine::run_step1(
    const CaseStudy& study, SimulationCache* cache) const {
  support::ThreadPool pool(options_.jobs);
  return run_step1(study, cache, pool);
}

std::vector<SimulationRecord> ExplorationEngine::run_step1(
    const CaseStudy& study, SimulationCache* cache,
    support::ThreadPool& pool) const {
  const Scenario& scenario = study.scenarios.at(study.representative);
  return simulate_all(scenario, ddt::enumerate_combinations(study.slots),
                      cache, pool, 1);
}

std::vector<SimulationRecord> ExplorationEngine::run_step1_greedy(
    const CaseStudy& study, SimulationCache* cache) const {
  support::ThreadPool pool(options_.jobs);
  return run_step1_greedy(study, cache, pool);
}

std::vector<SimulationRecord> ExplorationEngine::run_step1_greedy(
    const CaseStudy& study, SimulationCache* cache,
    support::ThreadPool& pool) const {
  const Scenario& scenario = study.scenarios.at(study.representative);
  // Baseline: every slot SLL (the original NetBench implementations),
  // followed by every single-slot variation in slot-major order.
  const std::vector<ddt::DdtKind> baseline(study.slots, ddt::DdtKind::kSll);
  std::vector<ddt::DdtCombination> combos;
  combos.reserve(1 + study.slots * (ddt::kAllDdtKinds.size() - 1));
  combos.emplace_back(baseline);
  for (std::size_t slot = 0; slot < study.slots; ++slot) {
    for (ddt::DdtKind kind : ddt::kAllDdtKinds) {
      if (kind == ddt::DdtKind::kSll) continue;  // already the baseline
      std::vector<ddt::DdtKind> kinds = baseline;
      kinds[slot] = kind;
      combos.emplace_back(std::move(kinds));
    }
  }
  return simulate_all(scenario, combos, cache, pool, 1);
}

std::vector<ddt::DdtCombination> ExplorationEngine::select_survivors_greedy(
    const std::vector<SimulationRecord>& step1_records,
    std::size_t slots) const {
  // Per slot, keep the kinds whose single-slot variation is 4-D
  // non-dominated among that slot's variations (the baseline record
  // participates in every slot's comparison).
  std::vector<std::vector<ddt::DdtKind>> kept_kinds(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    std::vector<const SimulationRecord*> slot_records;
    for (const SimulationRecord& r : step1_records) {
      // A record belongs to this slot's sweep when every other slot is
      // at the SLL baseline.
      bool belongs = true;
      for (std::size_t s = 0; s < slots; ++s) {
        if (s != slot && r.combo[s] != ddt::DdtKind::kSll) belongs = false;
      }
      if (belongs) slot_records.push_back(&r);
    }
    std::vector<energy::Metrics> points;
    points.reserve(slot_records.size());
    for (const auto* r : slot_records) points.push_back(r->metrics);
    for (std::size_t idx : pareto_filter(points)) {
      kept_kinds[slot].push_back(slot_records[idx]->combo[slot]);
    }
    if (kept_kinds[slot].empty()) {
      kept_kinds[slot].push_back(ddt::DdtKind::kSll);
    }
  }

  // Cross the per-slot keepers into full combinations.
  std::vector<ddt::DdtCombination> survivors;
  std::vector<std::size_t> digit(slots, 0);
  while (true) {
    std::vector<ddt::DdtKind> kinds(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      kinds[s] = kept_kinds[s][digit[s]];
    }
    survivors.emplace_back(std::move(kinds));
    std::size_t s = 0;
    while (s < slots && ++digit[s] == kept_kinds[s].size()) {
      digit[s] = 0;
      ++s;
    }
    if (s == slots) break;
  }
  const std::size_t cap = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(
             options_.survivor_cap_fraction * 100.0)));
  if (survivors.size() > cap) survivors.resize(cap);
  return survivors;
}

std::vector<ddt::DdtCombination> ExplorationEngine::select_survivors(
    const std::vector<SimulationRecord>& step1_records) const {
  std::vector<energy::Metrics> points;
  points.reserve(step1_records.size());
  for (const SimulationRecord& r : step1_records) points.push_back(r.metrics);

  const std::size_t cap = std::max<std::size_t>(
      4 * options_.champions_per_metric,
      static_cast<std::size_t>(
          std::llround(options_.survivor_cap_fraction *
                       static_cast<double>(step1_records.size()))));

  std::vector<bool> selected(points.size(), false);
  std::vector<std::size_t> keep;
  const auto select = [&](std::size_t idx) {
    if (!selected[idx]) {
      selected[idx] = true;
      keep.push_back(idx);
    }
  };

  // Per-metric champions first (the paper's explicit selection rule).
  for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return points[a].as_array()[m] < points[b].as_array()[m];
              });
    for (std::size_t k = 0;
         k < options_.champions_per_metric && k < order.size(); ++k) {
      select(order[k]);
    }
  }

  // Fill the remaining budget with the best-ranked non-dominated points
  // (rank: sum over metrics of the ratio to the best observed value).
  std::vector<std::size_t> pareto = pareto_filter(points);
  std::array<double, energy::kMetricCount> best;
  best.fill(std::numeric_limits<double>::infinity());
  for (const energy::Metrics& p : points) {
    const auto v = p.as_array();
    for (std::size_t m = 0; m < v.size(); ++m) {
      best[m] = std::min(best[m], v[m]);
    }
  }
  const auto score = [&](std::size_t idx) {
    const auto v = points[idx].as_array();
    double s = 0.0;
    for (std::size_t m = 0; m < v.size(); ++m) {
      s += best[m] > 0.0 ? v[m] / best[m] : v[m];
    }
    return s;
  };
  std::sort(pareto.begin(), pareto.end(),
            [&](std::size_t a, std::size_t b) { return score(a) < score(b); });
  for (std::size_t idx : pareto) {
    if (keep.size() >= cap) break;
    select(idx);
  }

  std::vector<ddt::DdtCombination> survivors;
  survivors.reserve(keep.size());
  for (std::size_t idx : keep) survivors.push_back(step1_records[idx].combo);
  return survivors;
}

std::vector<SimulationRecord> ExplorationEngine::run_step2(
    const CaseStudy& study, const std::vector<ddt::DdtCombination>& survivors,
    SimulationCache* cache) const {
  support::ThreadPool pool(options_.jobs);
  return run_step2(study, survivors, cache, pool);
}

std::vector<SimulationRecord> ExplorationEngine::run_step2(
    const CaseStudy& study, const std::vector<ddt::DdtCombination>& survivors,
    SimulationCache* cache, support::ThreadPool& pool) const {
  // Flatten (scenario x survivor) into one index space, scenario-major —
  // the serial iteration order — and fan every pair over the pool.
  const std::size_t per_scenario = survivors.size();
  std::vector<SimulationRecord> records(per_scenario *
                                        study.scenarios.size());
  ProgressReporter progress(options_.progress, 2, records.size());
  if (records.empty()) return records;
  support::parallel_for(pool, records.size(), [&](std::size_t i) {
    const Scenario& scenario = study.scenarios[i / per_scenario];
    const ddt::DdtCombination& combo = survivors[i % per_scenario];
    records[i] = cache ? cache->get_or_simulate(scenario, combo, model_)
                       : simulate(scenario, combo, model_);
    progress.tick();
  });
  return records;
}

std::vector<SimulationRecord> ExplorationEngine::aggregate(
    const std::vector<SimulationRecord>& step2_records) const {
  // Group by combination label, preserving first-seen order.
  std::vector<SimulationRecord> aggregated;
  std::map<std::string, std::size_t> index_of;
  std::map<std::string, std::size_t> count_of;
  for (const SimulationRecord& r : step2_records) {
    const std::string key = r.combo.label();
    auto [it, inserted] = index_of.try_emplace(key, aggregated.size());
    if (inserted) {
      SimulationRecord agg = r;
      agg.network = "<all>";
      agg.config.clear();
      agg.metrics = energy::Metrics{};
      agg.counters = prof::ProfileCounters{};
      aggregated.push_back(agg);
    }
    SimulationRecord& agg = aggregated[it->second];
    agg.metrics.energy_mj += r.metrics.energy_mj;
    agg.metrics.time_s += r.metrics.time_s;
    agg.metrics.accesses += r.metrics.accesses;
    agg.metrics.footprint_bytes += r.metrics.footprint_bytes;
    count_of[key] += 1;
  }
  for (auto& [key, idx] : index_of) {
    const double n = static_cast<double>(count_of[key]);
    energy::Metrics& m = aggregated[idx].metrics;
    m.energy_mj /= n;
    m.time_s /= n;
    m.accesses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(m.accesses) / n));
    m.footprint_bytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(m.footprint_bytes) / n));
  }
  return aggregated;
}

ExplorationReport ExplorationEngine::explore(const CaseStudy& study) const {
  ExplorationReport report;
  report.app_name = study.name;
  report.combination_count = study.combination_count();
  report.scenario_count = study.scenarios.size();
  report.exhaustive_simulations = study.exhaustive_simulations();

  SimulationCache cache;
  SimulationCache* cache_ptr =
      options_.memoize_simulations ? &cache : nullptr;
  // Cross-run persistence: seed the in-memory cache from the cache file
  // up front; new records are appended after the run. Content-hash keys
  // keep this invisible in the records — warm, cold or disabled, the
  // report bytes are identical; only the executed counts change.
  std::optional<PersistentSimulationCache> persistent;
  if (cache_ptr && !options_.cache_dir.empty()) {
    persistent.emplace(options_.cache_dir);
    report.persistent_loaded = persistent->load();
    persistent->seed(cache);
  }
  // One pool for the whole run: spawning lanes once, not per step.
  support::ThreadPool pool(options_.jobs);

  if (options_.step1_policy == Step1Policy::kGreedyPerSlot) {
    report.step1_records = run_step1_greedy(study, cache_ptr, pool);
    report.survivors =
        select_survivors_greedy(report.step1_records, study.slots);
  } else {
    report.step1_records = run_step1(study, cache_ptr, pool);
    report.survivors = select_survivors(report.step1_records);
  }
  report.step1_simulations = report.step1_records.size();
  const SimulationCache::Stats after_step1 = cache.stats();
  report.step1_executed_simulations =
      cache_ptr ? after_step1.misses : report.step1_simulations;

  report.step2_records = run_step2(study, report.survivors, cache_ptr, pool);
  report.step2_simulations = report.step2_records.size();
  const SimulationCache::Stats after_step2 = cache.stats();
  report.step2_executed_simulations =
      cache_ptr ? after_step2.misses - after_step1.misses
                : report.step2_simulations;
  report.cache_hits = after_step2.hits;
  report.cache_misses = after_step2.misses;

  if (persistent) {
    report.persistent_stored = persistent->store_new(cache);
  }

  report.aggregated = aggregate(report.step2_records);
  std::vector<energy::Metrics> points;
  points.reserve(report.aggregated.size());
  for (const SimulationRecord& r : report.aggregated) {
    points.push_back(r.metrics);
  }
  report.pareto_optimal = pareto_filter(points);
  return report;
}

}  // namespace ddtr::core
