// Persistent simulation logs. The paper's tool flow writes every
// simulation's counters to log files which the step-3 Perl tool then
// post-processes ("processes the Gigabytes of the log files produced by
// previous steps", §3.3); this module is that interchange format: a
// line-oriented text file of SimulationRecords that survives round-trips
// and can be merged across exploration runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/simulation.h"

namespace ddtr::core {

class ResultLog {
 public:
  ResultLog() = default;

  void append(const SimulationRecord& record) { records_.push_back(record); }
  void append_all(const std::vector<SimulationRecord>& records);

  const std::vector<SimulationRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  // Records of one application only.
  std::vector<SimulationRecord> for_app(const std::string& app_name) const;

  // Line-oriented text serialization (version-tagged header, one record
  // per line).
  void save(std::ostream& os) const;
  static ResultLog load(std::istream& is);

 private:
  std::vector<SimulationRecord> records_;
};

}  // namespace ddtr::core

