// Wire protocol of the `ddtr serve` daemon (see src/serve/server.h): a
// simple length-prefixed binary framing over a unix-domain stream socket,
// built on the same support/binary_io primitives — and the same
// robustness contract — as the persistent cache files. Every frame is
//
//   u32 magic ("DSRV")  u32 type  u64 payload_size  u64 fnv1a(payload)
//   payload bytes
//
// so a reader can (a) skip nothing — streams are trusted to be framed or
// dropped, never resynchronized — and (b) reject a torn or corrupted
// frame cleanly: decode returns kCorrupt, the peer closes the
// connection. The handshake is versioned (Hello/HelloAck carry
// kProtocolVersion); a version-mismatched peer receives an Error frame
// and a close, never a misparse.
//
// Message payloads are encoded field-by-field with binary_io (little
// endian, length-prefixed strings, IEEE-754 doubles), so the protocol is
// host-independent and result records round-trip byte-exactly — the
// substrate of the warm-cache guarantee that a repeated submission
// returns a byte-identical report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ddtr::serve {

// Bump on ANY frame or payload layout change; peers with different
// versions refuse each other at the hello handshake.
// v2: HelloAck gained progress_every; Stats/StatsReply introspection pair.
inline constexpr std::uint32_t kProtocolVersion = 2;

enum class FrameType : std::uint32_t {
  kHello = 1,        // client -> server, first frame on every connection
  kHelloAck = 2,     // server -> client, handshake accepted
  kSubmit = 3,       // client -> server, one study submission
  kSubmitAck = 4,    // server -> client, job registered (job_id)
  kProgress = 5,     // server -> client, StepProgress tick stream
  kResult = 6,       // server -> client, final ExplorationReport digest
  kError = 7,        // server -> client, request failed (message)
  kStatus = 8,       // client -> server, list jobs (empty payload)
  kStatusReply = 9,  // server -> client, job table snapshot
  kResults = 10,     // client -> server, fetch a job's last result
  kShutdown = 11,    // client -> server, drain and exit (empty payload)
  kShutdownAck = 12, // server -> client, shutdown under way
  kStats = 13,       // client -> server, introspection snapshot request
  kStatsReply = 14,  // server -> client, uptime / cache / job-table stats
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// How a decode ended. kEof is the CLEAN end: the stream was exhausted
// exactly at a frame boundary (the peer closed after a complete
// conversation). Anything torn, oversized, checksum-mismatched or
// magic-less is kCorrupt — the connection is unusable from here on.
enum class DecodeStatus { kOk, kEof, kCorrupt };

// Frame <-> bytes. encode_frame never fails; decode_frame consumes
// exactly one frame on kOk and an unspecified prefix otherwise.
std::string encode_frame(const Frame& frame);
DecodeStatus decode_frame(std::istream& is, Frame& frame);

// Frame I/O on a connected stream-socket fd. send_frame writes the whole
// encoding (short writes retried, SIGPIPE suppressed) and returns false
// on any failure; recv_frame reads exactly one frame.
bool send_frame(int fd, const Frame& frame);
DecodeStatus recv_frame(int fd, Frame& frame);

// --- Messages ----------------------------------------------------------
// Each message encodes to / decodes from a Frame payload. Decoders return
// false on a short or malformed payload (the caller treats that like a
// corrupt frame).

struct Hello {
  std::uint32_t version = kProtocolVersion;
};

struct HelloAck {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t warm_entries = 0;  // simulation records held in memory
  std::uint64_t warm_traces = 0;   // traces held by the TraceStore
  double progress_every = 0.0;     // server's progress-frame throttle (s)
};

// One study submission: a registered workload name plus builder knobs.
// Zero values mean "the workload's / server's default".
struct SubmitRequest {
  std::string app;
  double scale = 0.25;
  std::uint64_t packets = 0;      // override every per-app trace length
  std::uint64_t seed_offset = 0;  // trace generation seed offset
  std::uint32_t greedy = 0;       // 1 = Step1Policy::kGreedyPerSlot
  double survivor_cap = 0.0;      // survivor_cap_fraction (0 = default)
  std::uint64_t jobs = 0;         // simulation lanes (0 = server's --jobs)
  double every_s = 0.0;           // > 0: re-explore every S s (scheduler)
  std::string metric_x = "time";  // result-frame Pareto listing axes
  std::string metric_y = "energy";
};

struct SubmitAck {
  std::uint64_t job_id = 0;
};

// One core::StepProgress tick of a running submission.
struct ProgressFrame {
  std::uint64_t job_id = 0;
  std::uint32_t step = 0;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
};

// Digest of one completed exploration. `records` is the serialized
// ResultLog (ExplorationReport::serialized_records()) — the repo-wide
// definition of "byte-identical reports", which is what makes the
// warm-cache acceptance check exact.
struct ResultFrame {
  std::uint64_t job_id = 0;
  std::string app;
  std::uint64_t runs = 0;  // completed runs of this job so far
  std::uint64_t executed = 0;
  std::uint64_t logical = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t persistent_loaded = 0;
  std::uint64_t persistent_stored = 0;
  std::uint64_t survivors = 0;
  std::uint64_t pareto_count = 0;
  std::string pareto;   // preformatted front on (metric_x, metric_y)
  std::string records;  // serialized ResultLog, byte-exact
};

struct ErrorFrame {
  std::string message;
};

struct JobStatus {
  std::uint64_t id = 0;
  std::string app;
  std::string state;  // "queued" | "running" | "done" | "failed"
  std::uint64_t runs = 0;
  std::uint64_t last_executed = 0;
  double every_s = 0.0;
};

struct StatusReply {
  std::uint64_t warm_entries = 0;
  std::vector<JobStatus> jobs;
};

struct ResultsRequest {
  std::uint64_t job_id = 0;
};

// Live daemon introspection (ddtr stats). The request opts in or out of
// the metrics-registry dump; everything else is always included.
struct StatsRequest {
  std::uint32_t include_metrics = 0;  // 1 = fill StatsReply::metrics_text
};

// One job-table row with its lifecycle timestamps. Timestamps are
// steady-clock milliseconds since daemon boot (0 = not yet reached), so
// they are comparable to StatsReply::uptime_ms and carry no wall-clock
// dependence.
struct JobStats {
  std::uint64_t id = 0;
  std::string app;
  std::string state;  // "queued" | "running" | "done" | "failed"
  std::uint64_t runs = 0;
  std::uint64_t last_executed = 0;
  double every_s = 0.0;
  std::uint64_t submit_ms = 0;
  std::uint64_t start_ms = 0;
  std::uint64_t finish_ms = 0;
};

struct StatsReply {
  std::uint64_t uptime_ms = 0;
  std::uint64_t warm_entries = 0;
  std::uint64_t sessions_served = 0;
  std::uint64_t cache_hits = 0;    // in-memory cache hits since boot
  std::uint64_t cache_misses = 0;  // executed simulations since boot
  std::uint64_t jobs_submitted = 0;
  std::uint64_t scheduler_reruns = 0;
  std::vector<JobStats> jobs;
  std::string metrics_text;  // obs::Registry::render_text(), on request
};

struct ShutdownAck {
  std::uint64_t sessions_served = 0;
};

std::string encode_hello(const Hello& m);
bool decode_hello(const std::string& payload, Hello& m);
std::string encode_hello_ack(const HelloAck& m);
bool decode_hello_ack(const std::string& payload, HelloAck& m);
std::string encode_submit(const SubmitRequest& m);
bool decode_submit(const std::string& payload, SubmitRequest& m);
std::string encode_submit_ack(const SubmitAck& m);
bool decode_submit_ack(const std::string& payload, SubmitAck& m);
std::string encode_progress(const ProgressFrame& m);
bool decode_progress(const std::string& payload, ProgressFrame& m);
std::string encode_result(const ResultFrame& m);
bool decode_result(const std::string& payload, ResultFrame& m);
std::string encode_error(const ErrorFrame& m);
bool decode_error(const std::string& payload, ErrorFrame& m);
std::string encode_status_reply(const StatusReply& m);
bool decode_status_reply(const std::string& payload, StatusReply& m);
std::string encode_results_request(const ResultsRequest& m);
bool decode_results_request(const std::string& payload, ResultsRequest& m);
std::string encode_shutdown_ack(const ShutdownAck& m);
bool decode_shutdown_ack(const std::string& payload, ShutdownAck& m);
std::string encode_stats_request(const StatsRequest& m);
bool decode_stats_request(const std::string& payload, StatsRequest& m);
std::string encode_stats_reply(const StatsReply& m);
bool decode_stats_reply(const std::string& payload, StatsReply& m);

}  // namespace ddtr::serve

