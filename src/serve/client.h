// Client side of the serve protocol: one RAII connection to a running
// `ddtr serve` daemon. Connecting performs the versioned hello handshake;
// each method is one request/response conversation (submit additionally
// streams ProgressFrame ticks into a callback until the result arrives).
// Server-reported failures (Error frames) and protocol violations both
// surface as std::runtime_error — a client never half-parses a stream.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.h"

namespace ddtr::serve {

class Client {
 public:
  using ProgressFn = std::function<void(const ProgressFrame&)>;

  // Connects to the daemon at `socket_path` and completes the hello
  // handshake. Throws std::runtime_error when the socket is absent, the
  // daemon refuses, or the protocol versions mismatch.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // The daemon's handshake reply (warm-cache and trace counts).
  const HelloAck& hello() const noexcept { return hello_; }

  // Submits one study and blocks until its result, invoking `on_progress`
  // for every streamed tick. Returns the result digest.
  ResultFrame submit(const SubmitRequest& request,
                     const ProgressFn& on_progress = nullptr);
  // Snapshot of the daemon's job table.
  StatusReply status();
  // Introspection snapshot: uptime, since-boot cache counters, job
  // lifecycle timestamps, optionally the full metrics-registry dump.
  StatsReply stats(bool include_metrics = false);
  // Re-fetches the last completed result of `job_id`.
  ResultFrame results(std::uint64_t job_id);
  // Asks the daemon to drain and exit; returns its farewell.
  ShutdownAck shutdown();

 private:
  // Sends `frame`, then reads frames until a terminal reply: Error frames
  // throw, Progress frames feed `on_progress`, a frame of `expected` type
  // is returned.
  Frame round_trip(const Frame& frame, FrameType expected,
                   const ProgressFn& on_progress = nullptr);

  int fd_ = -1;
  HelloAck hello_;
};

}  // namespace ddtr::serve

