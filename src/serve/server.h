// The `ddtr serve` daemon: a long-lived exploration service that keeps
// the expensive state — the persistent simulation cache, the generated
// traces, the simulation thread pool — warm across study submissions
// instead of rebuilding them per CLI invocation. Clients connect over a
// unix-domain socket (see serve/protocol.h), submit registered workloads
// with builder knobs, watch core::StepProgress ticks stream back, and
// receive the final report digest; a submission with `every_s` set also
// registers with the scheduler thread, which re-explores it periodically
// against the warm cache (the steady-state runs execute zero simulations
// and replay byte-identically).
//
// Concurrency model: one accept loop, one thread per connection, one
// scheduler thread — but explorations SERIALIZE on run_mu_, because the
// shared SimulationCache/PersistentSimulationCache pair admits one
// explore() at a time (store_new mutates the loaded set; see
// ExplorationOptions::shared_persistent). Sessions still multiplex: the
// protocol conversation, progress streaming and status queries all run
// concurrently, only the simulation phase queues.
//
// Shutdown: request_stop() is async-signal-safe (an atomic store — the
// CLI's SIGTERM/SIGINT handler calls it directly). serve_forever() then
// falls out of its accept poll, half-closes every open connection to
// unblock parked reads, joins the session and scheduler threads, compacts
// the persistent cache, and removes the socket file.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/persistent_cache.h"
#include "core/simulation_cache.h"
#include "serve/protocol.h"
#include "support/thread_pool.h"

namespace ddtr::obs {
class TraceWriter;
}

namespace ddtr::serve {

struct ServerOptions {
  // Unix-domain socket path the daemon binds (required; must fit
  // sockaddr_un::sun_path). A stale file at this path is replaced.
  std::string socket_path;
  // Persistent cache directory loaded once at start() and appended to by
  // every run; empty = in-memory warmth only (cache dies with the daemon).
  std::string cache_dir;
  // Simulation lanes of the shared pool (0 = one per hardware thread).
  // A submission's own `jobs` knob overrides per run with a private pool.
  std::size_t jobs = 0;
  // Scheduler poll granularity; tests shrink it. Re-exploration deadlines
  // are checked, not slept to, so --every periods far above this are fine.
  std::chrono::milliseconds scheduler_tick{200};
  // Daemon log sink (nullptr = silent).
  std::ostream* log = nullptr;
  // Progress-frame throttle: a running job streams at most one
  // StepProgress tick per this many seconds (the endpoints done==0 and
  // done==total always go out). Advertised to clients in HelloAck.
  double progress_every_s = 0.25;
  // Optional span tracer (see src/obs/trace.h): connection and job
  // lifecycles plus every exploration's internal spans. Borrowed, never
  // owned; null disables tracing.
  obs::TraceWriter* trace = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads the persistent cache, seeds the warm in-memory cache, spawns
  // the shared pool, binds + listens on the socket. Throws
  // std::runtime_error on socket failure or an over-long path.
  void start();

  // Accept loop; returns once a stop was requested (signal or Shutdown
  // frame) and every in-flight session has drained. Requires start().
  void serve_forever();

  // Requests a drain-and-exit. Async-signal-safe: only an atomic store,
  // so a SIGTERM handler may call it directly; serve_forever() notices
  // within one poll interval.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  // Connections fully served so far (handshake through close).
  std::uint64_t sessions_served() const noexcept {
    return sessions_.load(std::memory_order_relaxed);
  }
  // Warm in-memory simulation records.
  std::uint64_t warm_entries() const { return cache_.size(); }

 private:
  struct Job {
    std::uint64_t id = 0;
    SubmitRequest request;
    std::string state = "queued";  // queued | running | done | failed
    std::uint64_t runs = 0;
    std::uint64_t last_executed = 0;
    std::optional<ResultFrame> last_result;
    std::chrono::steady_clock::time_point next_due{};
    // Lifecycle timestamps for introspection (ms since daemon boot;
    // 0 = not reached). start/finish track the most recent run.
    std::uint64_t submit_ms = 0;
    std::uint64_t start_ms = 0;
    std::uint64_t finish_ms = 0;
  };

  void handle_connection(int fd);
  // Serves one decoded client frame; returns false when the conversation
  // is over (shutdown) and the connection should close.
  bool handle_request(int fd, const Frame& frame);
  void handle_submit(int fd, const SubmitRequest& request);
  void handle_status(int fd);
  void handle_stats(int fd, const StatsRequest& request);
  void handle_results(int fd, const ResultsRequest& request);

  // Milliseconds of steady-clock time since start() finished.
  std::uint64_t uptime_ms() const;

  // Runs one exploration for `job_id` (serialized on run_mu_), streaming
  // progress to `progress_fd` when >= 0, and updates the job table.
  // Returns the result digest; throws on exploration failure (the job is
  // marked failed first).
  ResultFrame run_job(std::uint64_t job_id, int progress_fd);

  // Validates a submission; returns a non-empty error message on rejection.
  std::string validate(const SubmitRequest& request) const;

  void scheduler_loop();
  void log_line(const std::string& line);
  static bool send_error(int fd, const std::string& message);

  ServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> scheduler_reruns_{0};
  // Introspection baseline, fixed at the end of start(): uptime and the
  // since-boot cache-hit/miss deltas in StatsReply are measured from here.
  std::chrono::steady_clock::time_point boot_time_{};
  core::SimulationCache::Stats boot_cache_stats_{};

  // Warm state, shared by every run through the ExplorationOptions
  // shared_* hooks. run_mu_ admits one exploration at a time.
  core::SimulationCache cache_;
  std::optional<core::PersistentSimulationCache> persistent_;
  std::optional<support::ThreadPool> pool_;
  std::mutex run_mu_;

  std::mutex jobs_mu_;
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t next_job_id_ = 1;

  std::mutex conn_mu_;
  std::vector<std::thread> threads_;
  std::unordered_set<int> open_fds_;

  std::thread scheduler_;
  std::mutex log_mu_;
};

}  // namespace ddtr::serve

