#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/exploration.h"
#include "api/registry.h"
#include "core/case_studies.h"
#include "core/explorer.h"
#include "core/pareto.h"
#include "energy/metrics.h"
#include "nettrace/trace_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/table.h"

namespace ddtr::serve {
namespace {

std::optional<std::size_t> metric_index(const std::string& name) {
  for (std::size_t i = 0; i < energy::kMetricCount; ++i) {
    if (name == energy::kMetricNames[i]) return i;
  }
  // CLI-friendly aliases, same spellings `ddtr pareto` accepts.
  if (name == "energy") return 0;
  if (name == "time") return 1;
  if (name == "accesses") return 2;
  if (name == "footprint") return 3;
  return std::nullopt;
}

// The 2-D Pareto front of the aggregated step-3 records on the requested
// metric pair, preformatted one line per point (combo label + both
// values) so clients print it verbatim.
std::string format_pareto(const core::ExplorationReport& report,
                          std::size_t mx, std::size_t my) {
  std::vector<energy::Metrics> points;
  points.reserve(report.aggregated.size());
  for (const auto& r : report.aggregated) points.push_back(r.metrics);
  std::ostringstream os;
  for (std::size_t idx : core::pareto_front_2d(points, mx, my)) {
    const auto& r = report.aggregated[idx];
    const auto values = r.metrics.as_array();
    os << r.combo.label() << "  " << energy::kMetricNames[mx] << '='
       << support::format_double(values[mx], 6) << "  "
       << energy::kMetricNames[my] << '='
       << support::format_double(values[my], 6) << '\n';
  }
  return os.str();
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

void Server::log_line(const std::string& line) {
  if (!options_.log) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  (*options_.log) << "[serve] " << line << std::endl;
}

void Server::start() {
  if (options_.socket_path.empty()) {
    throw std::runtime_error("serve: --socket path is required");
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error(
        "serve: socket path exceeds the unix-domain limit of " +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " +
        options_.socket_path);
  }

  if (!options_.cache_dir.empty()) {
    persistent_.emplace(options_.cache_dir);
    const std::size_t loaded = persistent_->load();
    persistent_->seed(cache_);
    log_line("cache dir '" + options_.cache_dir + "': " +
             std::to_string(loaded) + " records warm");
  }
  pool_.emplace(options_.jobs);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  addr.sun_family = AF_UNIX;
  options_.socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("serve: cannot bind " + options_.socket_path);
  }
  if (::listen(listen_fd_, 16) != 0) {
    throw std::runtime_error("serve: listen() failed on " +
                             options_.socket_path);
  }
  log_line("listening on " + options_.socket_path + " (" +
           std::to_string(pool_->parallelism()) + " lanes)");
  // Introspection baseline: everything StatsReply reports "since boot"
  // is a delta from this instant (after the persistent seed, which does
  // not touch the hit/miss stats anyway).
  boot_time_ = std::chrono::steady_clock::now();
  boot_cache_stats_ = cache_.stats();
}

std::uint64_t Server::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - boot_time_)
          .count());
}

void Server::serve_forever() {
  if (listen_fd_ < 0) throw std::logic_error("serve_forever before start()");
  scheduler_ = std::thread([this] { scheduler_loop(); });

  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout / EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.insert(fd);
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }

  // Drain: half-close every open connection so parked recv_frame calls
  // return, then join the sessions and the scheduler.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      batch.swap(threads_);
    }
    if (batch.empty()) break;
    for (std::thread& t : batch) t.join();
  }
  if (scheduler_.joinable()) scheduler_.join();

  // Flush: fold main file + this service's appends into one compacted
  // main cache file (runs already appended incrementally via store_new).
  if (persistent_) {
    std::lock_guard<std::mutex> lock(run_mu_);
    const std::size_t entries = persistent_->compact();
    log_line("compacted cache: " + std::to_string(entries) + " records");
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  log_line("stopped after " + std::to_string(sessions_served()) +
           " sessions");
}

void Server::handle_connection(int fd) {
  obs::SpanScope connection_span(options_.trace, "serve.connection", "serve");
  Frame frame;
  // Handshake: the first frame must be a version-matched hello.
  bool ok = recv_frame(fd, frame) == DecodeStatus::kOk &&
            frame.type == FrameType::kHello;
  Hello hello;
  if (ok) ok = decode_hello(frame.payload, hello);
  if (ok && hello.version != kProtocolVersion) {
    send_error(fd, "protocol version mismatch: daemon speaks v" +
                       std::to_string(kProtocolVersion) + ", client sent v" +
                       std::to_string(hello.version));
    ok = false;
  } else if (!ok) {
    send_error(fd, "malformed hello");
  }
  if (ok) {
    HelloAck ack;
    ack.warm_entries = cache_.size();
    ack.warm_traces = net::TraceStore::global().size();
    ack.progress_every = options_.progress_every_s;
    ok = send_frame(fd, {FrameType::kHelloAck, encode_hello_ack(ack)});
  }

  std::uint64_t frames = 0;
  while (ok && !stop_requested()) {
    const DecodeStatus status = recv_frame(fd, frame);
    if (status != DecodeStatus::kOk) break;  // clean close or torn frame
    ++frames;
    if (!handle_request(fd, frame)) break;
  }
  connection_span.arg("frames", frames);

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.erase(fd);
  }
  ::close(fd);
  sessions_.fetch_add(1, std::memory_order_relaxed);
}

bool Server::handle_request(int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kSubmit: {
      SubmitRequest request;
      if (!decode_submit(frame.payload, request)) {
        send_error(fd, "malformed submit payload");
        return false;
      }
      handle_submit(fd, request);
      return true;
    }
    case FrameType::kStatus:
      handle_status(fd);
      return true;
    case FrameType::kStats: {
      StatsRequest request;
      if (!decode_stats_request(frame.payload, request)) {
        send_error(fd, "malformed stats payload");
        return false;
      }
      handle_stats(fd, request);
      return true;
    }
    case FrameType::kResults: {
      ResultsRequest request;
      if (!decode_results_request(frame.payload, request)) {
        send_error(fd, "malformed results payload");
        return false;
      }
      handle_results(fd, request);
      return true;
    }
    case FrameType::kShutdown: {
      ShutdownAck ack;
      ack.sessions_served = sessions_served();
      send_frame(fd, {FrameType::kShutdownAck, encode_shutdown_ack(ack)});
      log_line("shutdown requested by client");
      request_stop();
      return false;
    }
    default:
      send_error(fd, "unexpected frame type " +
                         std::to_string(static_cast<std::uint32_t>(
                             frame.type)));
      return false;
  }
}

std::string Server::validate(const SubmitRequest& request) const {
  if (!api::registry().contains(request.app)) {
    std::string known;
    for (const std::string& name : api::registry().names()) {
      known += known.empty() ? name : ", " + name;
    }
    return "unknown app '" + request.app + "' (have: " + known + ")";
  }
  if (!(request.scale > 0.0) || !std::isfinite(request.scale) ||
      request.scale > 100.0) {
    return "scale must be finite and in (0, 100]";
  }
  if (request.survivor_cap < 0.0 || request.survivor_cap > 1.0 ||
      !std::isfinite(request.survivor_cap)) {
    return "survivor-cap must be in [0, 1]";
  }
  if (request.every_s < 0.0 || !std::isfinite(request.every_s)) {
    return "every must be a finite non-negative number of seconds";
  }
  if (request.greedy > 1) return "greedy must be 0 or 1";
  if (!metric_index(request.metric_x)) {
    return "unknown metric '" + request.metric_x + "'";
  }
  if (!metric_index(request.metric_y)) {
    return "unknown metric '" + request.metric_y + "'";
  }
  return {};
}

void Server::handle_submit(int fd, const SubmitRequest& request) {
  const std::string reason = validate(request);
  if (!reason.empty()) {
    send_error(fd, reason);
    return;
  }
  std::uint64_t job_id = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job_id = next_job_id_++;
    Job job;
    job.id = job_id;
    job.request = request;
    job.submit_ms = uptime_ms();
    jobs_.emplace(job_id, std::move(job));
  }
  if (!send_frame(fd, {FrameType::kSubmitAck,
                       encode_submit_ack(SubmitAck{job_id})})) {
    return;
  }
  log_line("job " + std::to_string(job_id) + ": " + request.app +
           " scale=" + support::format_double(request.scale, 3) +
           (request.every_s > 0.0
                ? " every=" + support::format_double(request.every_s, 3) + "s"
                : ""));
  try {
    const ResultFrame result = run_job(job_id, fd);
    send_frame(fd, {FrameType::kResult, encode_result(result)});
  } catch (const std::exception& error) {
    send_error(fd, std::string("exploration failed: ") + error.what());
  }
}

ResultFrame Server::run_job(std::uint64_t job_id, int progress_fd) {
  obs::SpanScope job_span(options_.trace, "serve.job", "serve");
  SubmitRequest request;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) throw std::runtime_error("unknown job id");
    request = it->second.request;
    it->second.state = "running";
    it->second.start_ms = uptime_ms();
  }
  const auto fail = [this, job_id] {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) it->second.state = "failed";
  };
  try {
    core::CaseStudyOptions study_options =
        core::CaseStudyOptions{}.scaled(request.scale);
    if (request.packets > 0) {
      study_options.route_packets = request.packets;
      study_options.url_packets = request.packets;
      study_options.ipchains_packets = request.packets;
      study_options.drr_packets = request.packets;
    }
    study_options.seed_offset = request.seed_offset;

    api::Exploration session(
        api::registry().make_study(request.app, study_options));
    session.memoize_simulations(true).shared_cache(&cache_);
    if (persistent_) session.shared_persistent(&*persistent_);
    // A per-submit jobs override gets a private pool of that width; the
    // default rides the long-lived shared pool (reports are bit-identical
    // at any lane count either way).
    if (request.jobs > 0) {
      session.jobs(request.jobs);
    } else {
      session.shared_pool(&*pool_);
    }
    if (request.greedy == 1) {
      session.step1_policy(core::Step1Policy::kGreedyPerSlot);
    }
    if (request.survivor_cap > 0.0) session.survivor_cap(request.survivor_cap);
    session.trace_sink(options_.trace);
    if (progress_fd >= 0) {
      // Time-throttled StepProgress stream: at most one tick per
      // --progress-every seconds, plus the exact endpoints (done==0 and
      // done==total always go out, so clients see every step open and
      // close). The engine serializes observer calls, so sends do not
      // interleave. A vanished client only mutes progress — the run (and
      // its cache warmth) completes regardless.
      struct ProgressState {
        bool client_alive = true;
        std::chrono::steady_clock::time_point last_send{};
      };
      auto state = std::make_shared<ProgressState>();
      const auto min_gap =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.progress_every_s));
      session.on_progress([progress_fd, job_id, state,
                           min_gap](const core::StepProgress& p) {
        if (!state->client_alive) return;
        const auto now = std::chrono::steady_clock::now();
        const bool endpoint = p.done == 0 || p.done == p.total;
        if (!endpoint && now - state->last_send < min_gap) return;
        state->last_send = now;
        ProgressFrame tick;
        tick.job_id = job_id;
        tick.step = static_cast<std::uint32_t>(p.step);
        tick.done = p.done;
        tick.total = p.total;
        if (!send_frame(progress_fd,
                        {FrameType::kProgress, encode_progress(tick)})) {
          state->client_alive = false;
        }
      });
    }

    ResultFrame result;
    {
      std::lock_guard<std::mutex> run_lock(run_mu_);
      const core::ExplorationReport& report = session.run();
      result.job_id = job_id;
      result.app = report.app_name;
      result.executed = report.executed_simulations();
      result.logical = report.reduced_simulations();
      result.cache_hits = report.cache_hits;
      result.cache_misses = report.cache_misses;
      result.persistent_loaded = report.persistent_loaded;
      result.persistent_stored = report.persistent_stored;
      result.survivors = report.survivors.size();
      result.pareto_count = report.pareto_optimal.size();
      result.pareto = format_pareto(report, *metric_index(request.metric_x),
                                    *metric_index(request.metric_y));
      result.records = report.serialized_records();
    }
    job_span.arg("executed", result.executed)
        .arg("cache_hits", result.cache_hits)
        .arg("result_bytes", result.records.size());

    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      Job& job = it->second;
      job.state = "done";
      job.runs += 1;
      job.last_executed = result.executed;
      job.finish_ms = uptime_ms();
      result.runs = job.runs;
      job.last_result = result;
      if (request.every_s > 0.0) {
        job.next_due = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(request.every_s));
      }
    }
    log_line("job " + std::to_string(job_id) + " run " +
             std::to_string(result.runs) + ": executed " +
             std::to_string(result.executed) + "/" +
             std::to_string(result.logical) + " simulations");
    return result;
  } catch (...) {
    fail();
    throw;
  }
}

void Server::handle_status(int fd) {
  StatusReply reply;
  reply.warm_entries = cache_.size();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    reply.jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) {
      JobStatus status;
      status.id = id;
      status.app = job.request.app;
      status.state = job.state;
      status.runs = job.runs;
      status.last_executed = job.last_executed;
      status.every_s = job.request.every_s;
      reply.jobs.push_back(std::move(status));
    }
  }
  send_frame(fd, {FrameType::kStatusReply, encode_status_reply(reply)});
}

void Server::handle_stats(int fd, const StatsRequest& request) {
  StatsReply reply;
  reply.uptime_ms = uptime_ms();
  reply.warm_entries = cache_.size();
  reply.sessions_served = sessions_served();
  // Since-boot deltas against the baseline fixed in start(): the seed
  // load predates it, so these match the sum of the per-run hit/miss
  // deltas each ResultFrame reported.
  const core::SimulationCache::Stats now = cache_.stats();
  reply.cache_hits = now.hits - boot_cache_stats_.hits;
  reply.cache_misses = now.misses - boot_cache_stats_.misses;
  reply.scheduler_reruns = scheduler_reruns_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    reply.jobs_submitted = next_job_id_ - 1;
    reply.jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) {
      JobStats stats;
      stats.id = id;
      stats.app = job.request.app;
      stats.state = job.state;
      stats.runs = job.runs;
      stats.last_executed = job.last_executed;
      stats.every_s = job.request.every_s;
      stats.submit_ms = job.submit_ms;
      stats.start_ms = job.start_ms;
      stats.finish_ms = job.finish_ms;
      reply.jobs.push_back(std::move(stats));
    }
  }
  if (request.include_metrics != 0) {
    reply.metrics_text = obs::registry().render_text();
  }
  send_frame(fd, {FrameType::kStatsReply, encode_stats_reply(reply)});
}

void Server::handle_results(int fd, const ResultsRequest& request) {
  std::optional<ResultFrame> result;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(request.job_id);
    if (it != jobs_.end()) result = it->second.last_result;
  }
  if (!result) {
    send_error(fd, "job " + std::to_string(request.job_id) +
                       " has no completed result");
    return;
  }
  send_frame(fd, {FrameType::kResult, encode_result(*result)});
}

void Server::scheduler_loop() {
  while (!stop_requested()) {
    std::this_thread::sleep_for(options_.scheduler_tick);
    std::vector<std::uint64_t> due;
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      for (auto& [id, job] : jobs_) {
        if (job.request.every_s <= 0.0) continue;
        if (job.state == "running" || job.state == "queued") continue;
        if (job.runs == 0) continue;  // first run belongs to the submitter
        if (now < job.next_due) continue;
        due.push_back(id);
      }
    }
    for (std::uint64_t id : due) {
      if (stop_requested()) break;
      try {
        const ResultFrame result = run_job(id, /*progress_fd=*/-1);
        scheduler_reruns_.fetch_add(1, std::memory_order_relaxed);
        log_line("scheduler re-ran job " + std::to_string(id) +
                 ": executed " + std::to_string(result.executed));
      } catch (const std::exception& error) {
        log_line("scheduler job " + std::to_string(id) +
                 " failed: " + error.what());
      }
    }
  }
}

bool Server::send_error(int fd, const std::string& message) {
  return send_frame(fd, {FrameType::kError, encode_error({message})});
}

}  // namespace ddtr::serve
