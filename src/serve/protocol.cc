#include "serve/protocol.h"

#include <cerrno>
#include <cstddef>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "support/binary_io.h"
#include "support/fnv_hash.h"

namespace ddtr::serve {
namespace {

// "DSRV" read back as a little-endian u32, mirroring the persistent
// cache's kEntryMagic convention.
constexpr std::uint32_t kFrameMagic = 0x56525344u;

// A frame carries at most one serialized ResultLog; 256 MiB is orders of
// magnitude above any real study and small enough that a corrupt length
// prefix cannot trigger a runaway allocation.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 28;

bool valid_type(std::uint32_t raw) {
  return raw >= static_cast<std::uint32_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint32_t>(FrameType::kStatsReply);
}

// Reads exactly `size` bytes from a connected fd. Returns 1 on success,
// 0 on a clean EOF (peer closed before the first byte), -1 on an error
// or a mid-buffer EOF (torn frame).
int read_exact(int fd, void* buf, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t r =
        ::recv(fd, static_cast<char*>(buf) + got, size - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

bool write_all(int fd, const char* buf, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE —
    // the daemon outlives any single client.
    const ssize_t r = ::send(fd, buf + sent, size - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

bool at_end(std::istream& is) {
  return is.peek() == std::char_traits<char>::eof();
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  std::ostringstream os;
  support::write_u32(os, kFrameMagic);
  support::write_u32(os, static_cast<std::uint32_t>(frame.type));
  support::write_u64(os, frame.payload.size());
  support::write_u64(
      os, support::fnv1a64(frame.payload.data(), frame.payload.size()));
  os.write(frame.payload.data(),
           static_cast<std::streamsize>(frame.payload.size()));
  return os.str();
}

DecodeStatus decode_frame(std::istream& is, Frame& frame) {
  if (at_end(is)) return DecodeStatus::kEof;
  std::uint32_t magic = 0;
  std::uint32_t raw_type = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  if (!support::read_u32(is, magic) || !support::read_u32(is, raw_type) ||
      !support::read_u64(is, size) || !support::read_u64(is, checksum)) {
    return DecodeStatus::kCorrupt;
  }
  if (magic != kFrameMagic || !valid_type(raw_type) ||
      size > kMaxPayloadBytes) {
    return DecodeStatus::kCorrupt;
  }
  std::string payload(size, '\0');
  if (size > 0) {
    is.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::uint64_t>(is.gcount()) != size) {
      return DecodeStatus::kCorrupt;
    }
  }
  if (support::fnv1a64(payload.data(), payload.size()) != checksum) {
    return DecodeStatus::kCorrupt;
  }
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload = std::move(payload);
  return DecodeStatus::kOk;
}

bool send_frame(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  return write_all(fd, wire.data(), wire.size());
}

DecodeStatus recv_frame(int fd, Frame& frame) {
  unsigned char header[24];
  const int h = read_exact(fd, header, sizeof(header));
  if (h == 0) return DecodeStatus::kEof;
  if (h < 0) return DecodeStatus::kCorrupt;
  const std::uint32_t magic = load_u32(header);
  const std::uint32_t raw_type = load_u32(header + 4);
  const std::uint64_t size = load_u64(header + 8);
  const std::uint64_t checksum = load_u64(header + 16);
  if (magic != kFrameMagic || !valid_type(raw_type) ||
      size > kMaxPayloadBytes) {
    return DecodeStatus::kCorrupt;
  }
  std::string payload(size, '\0');
  if (size > 0 && read_exact(fd, payload.data(), size) != 1) {
    return DecodeStatus::kCorrupt;
  }
  if (support::fnv1a64(payload.data(), payload.size()) != checksum) {
    return DecodeStatus::kCorrupt;
  }
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload = std::move(payload);
  return DecodeStatus::kOk;
}

// --- Message codecs ----------------------------------------------------
// Decoders insist on exact consumption (no trailing bytes): a payload
// longer than its message is as suspect as a short one.

std::string encode_hello(const Hello& m) {
  std::ostringstream os;
  support::write_u32(os, m.version);
  return os.str();
}

bool decode_hello(const std::string& payload, Hello& m) {
  std::istringstream is(payload);
  return support::read_u32(is, m.version) && at_end(is);
}

std::string encode_hello_ack(const HelloAck& m) {
  std::ostringstream os;
  support::write_u32(os, m.version);
  support::write_u64(os, m.warm_entries);
  support::write_u64(os, m.warm_traces);
  support::write_f64(os, m.progress_every);
  return os.str();
}

bool decode_hello_ack(const std::string& payload, HelloAck& m) {
  std::istringstream is(payload);
  return support::read_u32(is, m.version) &&
         support::read_u64(is, m.warm_entries) &&
         support::read_u64(is, m.warm_traces) &&
         support::read_f64(is, m.progress_every) && at_end(is);
}

std::string encode_submit(const SubmitRequest& m) {
  std::ostringstream os;
  support::write_string(os, m.app);
  support::write_f64(os, m.scale);
  support::write_u64(os, m.packets);
  support::write_u64(os, m.seed_offset);
  support::write_u32(os, m.greedy);
  support::write_f64(os, m.survivor_cap);
  support::write_u64(os, m.jobs);
  support::write_f64(os, m.every_s);
  support::write_string(os, m.metric_x);
  support::write_string(os, m.metric_y);
  return os.str();
}

bool decode_submit(const std::string& payload, SubmitRequest& m) {
  std::istringstream is(payload);
  return support::read_string(is, m.app) && support::read_f64(is, m.scale) &&
         support::read_u64(is, m.packets) &&
         support::read_u64(is, m.seed_offset) &&
         support::read_u32(is, m.greedy) &&
         support::read_f64(is, m.survivor_cap) &&
         support::read_u64(is, m.jobs) && support::read_f64(is, m.every_s) &&
         support::read_string(is, m.metric_x) &&
         support::read_string(is, m.metric_y) && at_end(is);
}

std::string encode_submit_ack(const SubmitAck& m) {
  std::ostringstream os;
  support::write_u64(os, m.job_id);
  return os.str();
}

bool decode_submit_ack(const std::string& payload, SubmitAck& m) {
  std::istringstream is(payload);
  return support::read_u64(is, m.job_id) && at_end(is);
}

std::string encode_progress(const ProgressFrame& m) {
  std::ostringstream os;
  support::write_u64(os, m.job_id);
  support::write_u32(os, m.step);
  support::write_u64(os, m.done);
  support::write_u64(os, m.total);
  return os.str();
}

bool decode_progress(const std::string& payload, ProgressFrame& m) {
  std::istringstream is(payload);
  return support::read_u64(is, m.job_id) && support::read_u32(is, m.step) &&
         support::read_u64(is, m.done) && support::read_u64(is, m.total) &&
         at_end(is);
}

std::string encode_result(const ResultFrame& m) {
  std::ostringstream os;
  support::write_u64(os, m.job_id);
  support::write_string(os, m.app);
  support::write_u64(os, m.runs);
  support::write_u64(os, m.executed);
  support::write_u64(os, m.logical);
  support::write_u64(os, m.cache_hits);
  support::write_u64(os, m.cache_misses);
  support::write_u64(os, m.persistent_loaded);
  support::write_u64(os, m.persistent_stored);
  support::write_u64(os, m.survivors);
  support::write_u64(os, m.pareto_count);
  support::write_string(os, m.pareto);
  support::write_string(os, m.records);
  return os.str();
}

bool decode_result(const std::string& payload, ResultFrame& m) {
  std::istringstream is(payload);
  return support::read_u64(is, m.job_id) && support::read_string(is, m.app) &&
         support::read_u64(is, m.runs) && support::read_u64(is, m.executed) &&
         support::read_u64(is, m.logical) &&
         support::read_u64(is, m.cache_hits) &&
         support::read_u64(is, m.cache_misses) &&
         support::read_u64(is, m.persistent_loaded) &&
         support::read_u64(is, m.persistent_stored) &&
         support::read_u64(is, m.survivors) &&
         support::read_u64(is, m.pareto_count) &&
         support::read_string(is, m.pareto) &&
         support::read_string(is, m.records) && at_end(is);
}

std::string encode_error(const ErrorFrame& m) {
  std::ostringstream os;
  support::write_string(os, m.message);
  return os.str();
}

bool decode_error(const std::string& payload, ErrorFrame& m) {
  std::istringstream is(payload);
  return support::read_string(is, m.message) && at_end(is);
}

std::string encode_status_reply(const StatusReply& m) {
  std::ostringstream os;
  support::write_u64(os, m.warm_entries);
  support::write_u64(os, m.jobs.size());
  for (const JobStatus& job : m.jobs) {
    support::write_u64(os, job.id);
    support::write_string(os, job.app);
    support::write_string(os, job.state);
    support::write_u64(os, job.runs);
    support::write_u64(os, job.last_executed);
    support::write_f64(os, job.every_s);
  }
  return os.str();
}

bool decode_status_reply(const std::string& payload, StatusReply& m) {
  std::istringstream is(payload);
  std::uint64_t count = 0;
  if (!support::read_u64(is, m.warm_entries) || !support::read_u64(is, count))
    return false;
  // The job table is human-scale; a larger count is a corrupt payload,
  // not a big daemon.
  if (count > (1ull << 20)) return false;
  m.jobs.clear();
  m.jobs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    JobStatus job;
    if (!support::read_u64(is, job.id) || !support::read_string(is, job.app) ||
        !support::read_string(is, job.state) ||
        !support::read_u64(is, job.runs) ||
        !support::read_u64(is, job.last_executed) ||
        !support::read_f64(is, job.every_s)) {
      return false;
    }
    m.jobs.push_back(std::move(job));
  }
  return at_end(is);
}

std::string encode_results_request(const ResultsRequest& m) {
  std::ostringstream os;
  support::write_u64(os, m.job_id);
  return os.str();
}

bool decode_results_request(const std::string& payload, ResultsRequest& m) {
  std::istringstream is(payload);
  return support::read_u64(is, m.job_id) && at_end(is);
}

std::string encode_shutdown_ack(const ShutdownAck& m) {
  std::ostringstream os;
  support::write_u64(os, m.sessions_served);
  return os.str();
}

bool decode_shutdown_ack(const std::string& payload, ShutdownAck& m) {
  std::istringstream is(payload);
  return support::read_u64(is, m.sessions_served) && at_end(is);
}

std::string encode_stats_request(const StatsRequest& m) {
  std::ostringstream os;
  support::write_u32(os, m.include_metrics);
  return os.str();
}

bool decode_stats_request(const std::string& payload, StatsRequest& m) {
  std::istringstream is(payload);
  return support::read_u32(is, m.include_metrics) && at_end(is);
}

std::string encode_stats_reply(const StatsReply& m) {
  std::ostringstream os;
  support::write_u64(os, m.uptime_ms);
  support::write_u64(os, m.warm_entries);
  support::write_u64(os, m.sessions_served);
  support::write_u64(os, m.cache_hits);
  support::write_u64(os, m.cache_misses);
  support::write_u64(os, m.jobs_submitted);
  support::write_u64(os, m.scheduler_reruns);
  support::write_u64(os, m.jobs.size());
  for (const JobStats& job : m.jobs) {
    support::write_u64(os, job.id);
    support::write_string(os, job.app);
    support::write_string(os, job.state);
    support::write_u64(os, job.runs);
    support::write_u64(os, job.last_executed);
    support::write_f64(os, job.every_s);
    support::write_u64(os, job.submit_ms);
    support::write_u64(os, job.start_ms);
    support::write_u64(os, job.finish_ms);
  }
  support::write_string(os, m.metrics_text);
  return os.str();
}

bool decode_stats_reply(const std::string& payload, StatsReply& m) {
  std::istringstream is(payload);
  std::uint64_t count = 0;
  if (!support::read_u64(is, m.uptime_ms) ||
      !support::read_u64(is, m.warm_entries) ||
      !support::read_u64(is, m.sessions_served) ||
      !support::read_u64(is, m.cache_hits) ||
      !support::read_u64(is, m.cache_misses) ||
      !support::read_u64(is, m.jobs_submitted) ||
      !support::read_u64(is, m.scheduler_reruns) ||
      !support::read_u64(is, count)) {
    return false;
  }
  // Same human-scale bound as decode_status_reply: a larger count is a
  // corrupt payload, not a big daemon.
  if (count > (1ull << 20)) return false;
  m.jobs.clear();
  m.jobs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    JobStats job;
    if (!support::read_u64(is, job.id) || !support::read_string(is, job.app) ||
        !support::read_string(is, job.state) ||
        !support::read_u64(is, job.runs) ||
        !support::read_u64(is, job.last_executed) ||
        !support::read_f64(is, job.every_s) ||
        !support::read_u64(is, job.submit_ms) ||
        !support::read_u64(is, job.start_ms) ||
        !support::read_u64(is, job.finish_ms)) {
      return false;
    }
    m.jobs.push_back(std::move(job));
  }
  return support::read_string(is, m.metrics_text) && at_end(is);
}

}  // namespace ddtr::serve
