#include "serve/client.h"

#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ddtr::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve client: invalid socket path '" +
                             socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("serve client: socket() failed");
  addr.sun_family = AF_UNIX;
  socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: cannot connect to " +
                             socket_path + " (is the daemon running?)");
  }
  try {
    const Frame reply = round_trip(
        {FrameType::kHello, encode_hello(Hello{})}, FrameType::kHelloAck);
    if (!decode_hello_ack(reply.payload, hello_)) {
      throw std::runtime_error("serve client: malformed hello ack");
    }
    if (hello_.version != kProtocolVersion) {
      throw std::runtime_error(
          "serve client: protocol version mismatch (daemon v" +
          std::to_string(hello_.version) + ", client v" +
          std::to_string(kProtocolVersion) + ")");
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::round_trip(const Frame& frame, FrameType expected,
                         const ProgressFn& on_progress) {
  if (!send_frame(fd_, frame)) {
    throw std::runtime_error("serve client: send failed (daemon gone?)");
  }
  for (;;) {
    Frame reply;
    const DecodeStatus status = recv_frame(fd_, reply);
    if (status != DecodeStatus::kOk) {
      throw std::runtime_error(
          status == DecodeStatus::kEof
              ? "serve client: daemon closed the connection"
              : "serve client: corrupt frame from daemon");
    }
    if (reply.type == FrameType::kError) {
      ErrorFrame error;
      if (!decode_error(reply.payload, error)) {
        throw std::runtime_error("serve client: malformed error frame");
      }
      throw std::runtime_error("daemon: " + error.message);
    }
    if (reply.type == FrameType::kProgress) {
      ProgressFrame tick;
      if (!decode_progress(reply.payload, tick)) {
        throw std::runtime_error("serve client: malformed progress frame");
      }
      if (on_progress) on_progress(tick);
      continue;
    }
    if (reply.type != expected) {
      throw std::runtime_error("serve client: unexpected frame type " +
                               std::to_string(static_cast<std::uint32_t>(
                                   reply.type)));
    }
    return reply;
  }
}

ResultFrame Client::submit(const SubmitRequest& request,
                           const ProgressFn& on_progress) {
  // The ack arrives first (job registered), then the progress stream,
  // then the result.
  const Frame ack_frame =
      round_trip({FrameType::kSubmit, encode_submit(request)},
                 FrameType::kSubmitAck, on_progress);
  SubmitAck ack;
  if (!decode_submit_ack(ack_frame.payload, ack)) {
    throw std::runtime_error("serve client: malformed submit ack");
  }
  // An empty frame is never sent for the second leg: reuse round_trip's
  // receive loop by waiting on the already-in-flight result.
  for (;;) {
    Frame reply;
    const DecodeStatus status = recv_frame(fd_, reply);
    if (status != DecodeStatus::kOk) {
      throw std::runtime_error("serve client: connection lost mid-run");
    }
    if (reply.type == FrameType::kProgress) {
      ProgressFrame tick;
      if (!decode_progress(reply.payload, tick)) {
        throw std::runtime_error("serve client: malformed progress frame");
      }
      if (on_progress) on_progress(tick);
      continue;
    }
    if (reply.type == FrameType::kError) {
      ErrorFrame error;
      decode_error(reply.payload, error);
      throw std::runtime_error("daemon: " + error.message);
    }
    if (reply.type != FrameType::kResult) {
      throw std::runtime_error("serve client: unexpected frame during run");
    }
    ResultFrame result;
    if (!decode_result(reply.payload, result)) {
      throw std::runtime_error("serve client: malformed result frame");
    }
    return result;
  }
}

StatusReply Client::status() {
  const Frame reply =
      round_trip({FrameType::kStatus, {}}, FrameType::kStatusReply);
  StatusReply out;
  if (!decode_status_reply(reply.payload, out)) {
    throw std::runtime_error("serve client: malformed status reply");
  }
  return out;
}

StatsReply Client::stats(bool include_metrics) {
  StatsRequest request;
  request.include_metrics = include_metrics ? 1 : 0;
  const Frame reply =
      round_trip({FrameType::kStats, encode_stats_request(request)},
                 FrameType::kStatsReply);
  StatsReply out;
  if (!decode_stats_reply(reply.payload, out)) {
    throw std::runtime_error("serve client: malformed stats reply");
  }
  return out;
}

ResultFrame Client::results(std::uint64_t job_id) {
  const Frame reply =
      round_trip({FrameType::kResults, encode_results_request({job_id})},
                 FrameType::kResult);
  ResultFrame out;
  if (!decode_result(reply.payload, out)) {
    throw std::runtime_error("serve client: malformed result frame");
  }
  return out;
}

ShutdownAck Client::shutdown() {
  const Frame reply =
      round_trip({FrameType::kShutdown, {}}, FrameType::kShutdownAck);
  ShutdownAck out;
  if (!decode_shutdown_ack(reply.payload, out)) {
    throw std::runtime_error("serve client: malformed shutdown ack");
  }
  return out;
}

}  // namespace ddtr::serve
