#include "apps/drr/drr_app.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "apps/common/flow_key.h"
#include "ddt/factory.h"

namespace ddtr::apps::drr {

namespace {

// Key function handed to the flow-table container: classification goes
// through Container::find_key, so kOpenHash can probe instead of scanning.
std::uint64_t flow_key(const FlowState& f) {
  return five_tuple_key(f.src_ip, f.dst_ip, f.src_port, f.dst_port,
                        f.protocol);
}

}  // namespace

std::string DrrApp::config_label() const {
  return "fairness=" + std::to_string(config_.fairness_level);
}

RunResult DrrApp::run(const net::Trace& trace,
                      const ddt::DdtCombination& combo) {
  prof::MemoryProfile flow_profile("flow_table");
  prof::MemoryProfile queue_profile("packet_queue");
  prof::MemoryProfile cpu_profile("cpu");

  auto flows = ddt::make_container<FlowState>(combo[0], flow_profile,
                                              &flow_key);
  // One queue per flow, all of the combination's second kind, all billed to
  // the shared packet-queue profile.
  std::vector<std::unique_ptr<ddt::Container<QueuedPacket>>> queues;

  // Quantum: Level-of-Fairness * observed MTU. Service rate: offered byte
  // rate with configured headroom.
  std::uint16_t mtu = 0;
  std::uint64_t total_bytes = 0;
  for (const net::PacketRecord& p : trace.packets()) {
    mtu = std::max(mtu, p.length);
    total_bytes += p.length;
  }
  if (mtu == 0) mtu = 1500;
  const std::uint32_t quantum = static_cast<std::uint32_t>(
      std::max(64.0, config_.fairness_level * static_cast<double>(mtu)));
  const double duration = std::max(trace.duration_s(), 1e-6);
  const double service_Bps = (static_cast<double>(total_bytes) / duration) *
                             config_.link_headroom;

  std::uint64_t sent_packets = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t dropped_packets = 0;

  // DRR active list: indices of flows with backlog, in round-robin order
  // (scheduler-internal bookkeeping, charged as CPU work).
  std::deque<std::uint32_t> active;
  std::uint64_t total_backlog = 0;

  const auto service = [&](double budget_bytes, bool drain) {
    while (total_backlog > 0 && (drain || budget_bytes > 0.0)) {
      cpu_profile.record_cpu_ops(3);  // active-list pop + checks
      const std::uint32_t f = active.front();
      active.pop_front();
      FlowState flow = flows->get(f);
      flow.deficit += quantum;
      ddt::Container<QueuedPacket>& queue = *queues[f];
      while (flow.backlog > 0) {
        const QueuedPacket head = queue.get(0);
        if (head.length > flow.deficit && !(drain && budget_bytes <= 0.0)) {
          // Not enough deficit this round; flow keeps its place at the
          // back of the active list.
          break;
        }
        if (head.length > flow.deficit) flow.deficit = head.length;
        queue.erase(0);
        flow.deficit -= head.length;
        flow.backlog -= 1;
        flow.sent_bytes += head.length;
        --total_backlog;
        ++sent_packets;
        sent_bytes += head.length;
        budget_bytes -= head.length;
        cpu_profile.record_cpu_ops(6);  // dequeue + transmit bookkeeping
        if (budget_bytes <= 0.0 && !drain) break;
      }
      if (flow.backlog == 0) {
        flow.deficit = 0;  // classic DRR resets an emptied flow's deficit
      } else {
        active.push_back(f);
        cpu_profile.record_cpu_ops(2);
      }
      flows->set(f, flow);
    }
  };

  double prev_ts = trace.empty() ? 0.0 : trace.packets().front().timestamp_s;
  for (const net::PacketRecord& packet : trace.packets()) {
    cpu_profile.record_cpu_ops(10);  // classification hash + header parse

    cpu_profile.record_cpu_ops(kFiveTupleKeyCpuOps);
    std::size_t f = flows->find_key(
        five_tuple_key(packet.src_ip, packet.dst_ip, packet.src_port,
                       packet.dst_port, packet.protocol));
    if (f == ddt::npos) {
      FlowState flow;
      flow.src_ip = packet.src_ip;
      flow.dst_ip = packet.dst_ip;
      flow.src_port = packet.src_port;
      flow.dst_port = packet.dst_port;
      flow.protocol = packet.protocol;
      f = flows->size();
      flows->push_back(flow);
      queues.push_back(
          ddt::make_container<QueuedPacket>(combo[1], queue_profile));
    }

    FlowState flow = flows->get(f);
    if (flow.backlog >= config_.queue_cap) {
      ++flow.dropped;
      ++dropped_packets;
      flows->set(f, flow);
    } else {
      if (flow.backlog == 0) {
        active.push_back(static_cast<std::uint32_t>(f));
        cpu_profile.record_cpu_ops(2);
      }
      ++flow.backlog;
      flows->set(f, flow);
      queues[f]->push_back(QueuedPacket{packet.length, packet.timestamp_s});
      ++total_backlog;
    }

    const double gap = std::max(packet.timestamp_s - prev_ts, 0.0);
    prev_ts = packet.timestamp_s;
    service(gap * service_Bps, /*drain=*/false);
  }
  service(0.0, /*drain=*/true);

  // Jain fairness index over flows that transmitted.
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  flows->for_each([&](std::size_t, const FlowState& flow) {
    if (flow.sent_bytes > 0) {
      const double v = static_cast<double>(flow.sent_bytes);
      sum += v;
      sum_sq += v * v;
      ++n;
    }
    return true;
  });
  sent_packets_.store(sent_packets, std::memory_order_relaxed);
  sent_bytes_.store(sent_bytes, std::memory_order_relaxed);
  dropped_packets_.store(dropped_packets, std::memory_order_relaxed);
  fairness_index_.store((n == 0 || sum_sq == 0.0)
                            ? 1.0
                            : (sum * sum) /
                                  (static_cast<double>(n) * sum_sq),
                        std::memory_order_relaxed);

  RunResult result;
  result.per_structure.emplace_back("flow_table", flow_profile.counters());
  result.per_structure.emplace_back("packet_queue",
                                    queue_profile.counters());
  result.total = flow_profile.counters();
  result.total += queue_profile.counters();
  result.total += cpu_profile.counters();
  return result;
}

}  // namespace ddtr::apps::drr
