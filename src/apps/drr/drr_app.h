// DRR — the paper's fourth case study (NetBench "drr"): Deficit Round
// Robin fair scheduling. Dominant DDTs: the flow table (searched on every
// arrival, walked round-robin by the scheduler) and the per-flow packet
// queues (enqueue at tail, dequeue at head — the access pattern that favors
// list DDTs over arrays, reversing the winner relative to Route). The
// application-specific parameter is the Level of Fairness (quantum scale,
// paper §3.2).
#pragma once

#include <atomic>
#include <cstdint>

#include "apps/common/app.h"

namespace ddtr::apps::drr {

struct FlowState {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;
  std::uint32_t deficit = 0;       // DRR deficit counter (bytes)
  std::uint32_t backlog = 0;       // packets currently queued
  std::uint64_t sent_bytes = 0;
  std::uint32_t dropped = 0;
};

struct QueuedPacket {
  std::uint16_t length = 0;
  double arrival_s = 0.0;
};

class DrrApp final : public NetworkApplication {
 public:
  struct Config {
    double fairness_level;     // quantum = fairness_level * MTU
    double link_headroom;      // service rate / offered rate (>1 drains)
    std::size_t queue_cap;     // per-flow packet cap (tail drop beyond)
    std::uint64_t seed;
  };

  explicit DrrApp(Config config) : config_(config) {}

  std::string name() const override { return "DRR"; }

  std::vector<std::string> dominant_structures() const override {
    return {"flow_table", "packet_queue"};
  }

  // The flow table is keyed by the packet five-tuple, so it can legally
  // take the keyed kinds (including kOpenHash); the per-flow queues are
  // positional FIFOs.
  std::vector<std::vector<ddt::DdtKind>> slot_kinds() const override {
    return {ddt::keyed_slot_kinds(), ddt::default_slot_kinds()};
  }

  std::string config_label() const override;

  RunResult run(const net::Trace& trace,
                const ddt::DdtCombination& combo) override;

  // Scheduling statistics of the most recently completed run, published
  // atomically at the end of run() so concurrent runs on a shared
  // instance are safe (last writer wins).
  std::uint64_t sent_packets() const noexcept {
    return sent_packets_.load(std::memory_order_relaxed);
  }
  std::uint64_t sent_bytes() const noexcept {
    return sent_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_packets() const noexcept {
    return dropped_packets_.load(std::memory_order_relaxed);
  }
  // Jain fairness index over per-flow sent bytes in the last run — the
  // functional property DRR exists to provide.
  double fairness_index() const noexcept {
    return fairness_index_.load(std::memory_order_relaxed);
  }

 private:
  Config config_;
  std::atomic<std::uint64_t> sent_packets_{0};
  std::atomic<std::uint64_t> sent_bytes_{0};
  std::atomic<std::uint64_t> dropped_packets_{0};
  std::atomic<double> fairness_index_{0.0};
};

}  // namespace ddtr::apps::drr

