// IPchains — the paper's third case study (NetBench "ipchains"): a
// first-match-wins packet-filter chain plus a bounded connection-tracking
// cache. Dominant DDTs: the rule chain (scanned per packet) and the
// connection table (searched, updated, inserted into and evicted from).
// The application-specific network parameter is the number of activated
// rules (paper §3.2).
#pragma once

#include <atomic>
#include <cstdint>

#include "apps/common/app.h"

namespace ddtr::apps::ipchains {

enum class RuleAction : std::uint8_t { kDeny = 0, kAccept = 1 };

// One filter rule; zero prefix length / zero protocol mean "any".
struct FirewallRule {
  std::uint32_t src_prefix = 0;
  std::uint32_t dst_prefix = 0;
  std::uint8_t src_len = 0;
  std::uint8_t dst_len = 0;
  std::uint16_t dport_lo = 0;
  std::uint16_t dport_hi = 65535;
  std::uint8_t protocol = 0;
  RuleAction action = RuleAction::kAccept;
  std::uint32_t hits = 0;
};

// Connection-tracking record (FIFO-evicted bounded cache).
struct ConnEntry {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;
  std::uint32_t packets = 0;
  std::uint64_t bytes = 0;
};

class IpchainsApp final : public NetworkApplication {
 public:
  struct Config {
    std::size_t rule_count;       // activated rules (paper's app parameter)
    std::size_t max_connections;  // conntrack cache bound
    std::uint64_t seed;
  };

  explicit IpchainsApp(Config config) : config_(config) {}

  std::string name() const override { return "IPchains"; }

  std::vector<std::string> dominant_structures() const override {
    return {"rule_chain", "conn_table"};
  }

  // The connection table is keyed by the packet five-tuple, so it can
  // legally take the keyed kinds (including kOpenHash); the rule chain is
  // positional only.
  std::vector<std::vector<ddt::DdtKind>> slot_kinds() const override {
    return {ddt::default_slot_kinds(), ddt::keyed_slot_kinds()};
  }

  std::string config_label() const override {
    return "rules=" + std::to_string(config_.rule_count);
  }

  RunResult run(const net::Trace& trace,
                const ddt::DdtCombination& combo) override;

  // Filtering statistics of the most recently completed run, published
  // atomically at the end of run() so concurrent runs on a shared
  // instance are safe (last writer wins).
  std::uint64_t accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t denied() const noexcept {
    return denied_.load(std::memory_order_relaxed);
  }

 private:
  Config config_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace ddtr::apps::ipchains

