#include "apps/ipchains/ipchains_app.h"

#include <vector>

#include "apps/common/flow_key.h"
#include "ddt/factory.h"
#include "support/rng.h"

namespace ddtr::apps::ipchains {

namespace {

bool prefix_match(std::uint32_t addr, std::uint32_t prefix,
                  std::uint8_t len) {
  if (len == 0) return true;
  const std::uint32_t mask = 0xffffffffu << (32 - len);
  return (addr & mask) == (prefix & mask);
}

bool rule_matches(const FirewallRule& rule, const net::PacketRecord& p,
                  prof::MemoryProfile& cpu) {
  cpu.record_cpu_ops(10);  // two prefix compares, port range, proto
  if (!prefix_match(p.src_ip, rule.src_prefix, rule.src_len)) return false;
  if (!prefix_match(p.dst_ip, rule.dst_prefix, rule.dst_len)) return false;
  if (p.dst_port < rule.dport_lo || p.dst_port > rule.dport_hi) return false;
  if (rule.protocol != 0 && rule.protocol != p.protocol) return false;
  return true;
}

// Key function handed to the connection-table container: lookup goes
// through Container::find_key, so kOpenHash can probe instead of scanning.
std::uint64_t conn_key(const ConnEntry& c) {
  return five_tuple_key(c.src_ip, c.dst_ip, c.src_port, c.dst_port,
                        c.protocol);
}

// Builds a chain whose specific rules are derived from addresses actually
// present in the trace (so matches occur at realistic scan depths), closed
// by a catch-all accept.
std::vector<FirewallRule> synthesize_rules(const net::Trace& trace,
                                           std::size_t rule_count,
                                           std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<FirewallRule> rules;
  rules.reserve(rule_count);
  const auto& packets = trace.packets();
  for (std::size_t i = 0; i + 1 < rule_count; ++i) {
    FirewallRule rule;
    if (!packets.empty() && rng.chance(0.75)) {
      const net::PacketRecord& p =
          packets[rng.uniform(0, packets.size() - 1)];
      if (rng.chance(0.6)) {
        rule.src_prefix = p.src_ip;
        rule.src_len = static_cast<std::uint8_t>(rng.uniform(2, 3) * 8);
      }
      if (rng.chance(0.6)) {
        rule.dst_prefix = p.dst_ip;
        rule.dst_len = static_cast<std::uint8_t>(rng.uniform(2, 3) * 8);
      }
      if (rng.chance(0.4)) {
        rule.dport_lo = rule.dport_hi = p.dst_port;
      }
    } else {
      rule.src_prefix = static_cast<std::uint32_t>(rng.next_u64());
      rule.src_len = 24;
    }
    if (rng.chance(0.3)) {
      rule.protocol = rng.chance(0.5) ? net::kProtoTcp : net::kProtoUdp;
    }
    rule.action = rng.chance(0.35) ? RuleAction::kDeny : RuleAction::kAccept;
    rules.push_back(rule);
  }
  rules.push_back(FirewallRule{});  // catch-all accept (default policy)
  return rules;
}

}  // namespace

RunResult IpchainsApp::run(const net::Trace& trace,
                           const ddt::DdtCombination& combo) {
  prof::MemoryProfile rule_profile("rule_chain");
  prof::MemoryProfile conn_profile("conn_table");
  prof::MemoryProfile cpu_profile("cpu");

  auto rules = ddt::make_container<FirewallRule>(combo[0], rule_profile);
  auto conns = ddt::make_container<ConnEntry>(combo[1], conn_profile,
                                              &conn_key);

  for (const FirewallRule& rule :
       synthesize_rules(trace, config_.rule_count, config_.seed)) {
    rules->push_back(rule);
  }

  std::uint64_t accepted = 0;
  std::uint64_t denied = 0;
  for (const net::PacketRecord& packet : trace.packets()) {
    cpu_profile.record_cpu_ops(14);  // header validation + checksum

    const std::size_t match = rules->find_if([&](const FirewallRule& rule) {
      return rule_matches(rule, packet, cpu_profile);
    });
    // The chain always terminates with the catch-all rule.
    FirewallRule rule = rules->get(match);
    ++rule.hits;
    rules->set(match, rule);

    if (rule.action == RuleAction::kDeny) {
      ++denied;
      continue;
    }
    ++accepted;

    // Connection tracking: update an existing entry or insert a fresh one,
    // FIFO-evicting when the cache is full. The keyed lookup lets the
    // container use the cheapest search its layout supports (hash probe
    // for HASH, line scan for UNR, record scan otherwise).
    cpu_profile.record_cpu_ops(kFiveTupleKeyCpuOps);
    const std::size_t conn = conns->find_key(
        five_tuple_key(packet.src_ip, packet.dst_ip, packet.src_port,
                       packet.dst_port, packet.protocol));
    if (conn != ddt::npos) {
      ConnEntry entry = conns->get(conn);
      ++entry.packets;
      entry.bytes += packet.length;
      conns->set(conn, entry);
    } else {
      if (conns->size() >= config_.max_connections) conns->erase(0);
      ConnEntry entry;
      entry.src_ip = packet.src_ip;
      entry.dst_ip = packet.dst_ip;
      entry.src_port = packet.src_port;
      entry.dst_port = packet.dst_port;
      entry.protocol = packet.protocol;
      entry.packets = 1;
      entry.bytes = packet.length;
      conns->push_back(entry);
    }
  }

  accepted_.store(accepted, std::memory_order_relaxed);
  denied_.store(denied, std::memory_order_relaxed);

  RunResult result;
  result.per_structure.emplace_back("rule_chain", rule_profile.counters());
  result.per_structure.emplace_back("conn_table", conn_profile.counters());
  result.total = rule_profile.counters();
  result.total += conn_profile.counters();
  result.total += cpu_profile.counters();
  return result;
}

}  // namespace ddtr::apps::ipchains
