#include "apps/route/radix_tree.h"

#include <cassert>

namespace ddtr::apps::route {

RadixTree::RadixTree(ddt::Container<RadixNode>& nodes,
                     ddt::Container<RouteEntry>& entries,
                     prof::MemoryProfile& cpu)
    : nodes_(nodes), entries_(entries), cpu_(cpu) {
  assert(nodes_.empty() && entries_.empty());
  nodes_.push_back(RadixNode{});  // root at index 0
}

void RadixTree::insert(std::uint32_t prefix, std::uint8_t prefix_len,
                       std::uint32_t next_hop, std::uint16_t interface) {
  assert(prefix_len <= 32);
  std::size_t cur = 0;
  for (std::uint8_t depth = 0; depth < prefix_len; ++depth) {
    RadixNode node = nodes_.get(cur);
    const bool bit = bit_at(prefix, depth);
    cpu_.record_cpu_ops(3);  // shift + mask + branch
    std::int32_t child = bit ? node.right : node.left;
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(RadixNode{});
      if (bit) {
        node.right = child;
      } else {
        node.left = child;
      }
      nodes_.set(cur, node);
    }
    cur = static_cast<std::size_t>(child);
  }
  RadixNode node = nodes_.get(cur);
  RouteEntry entry{prefix, prefix_len, next_hop, interface, 0};
  if (node.entry >= 0) {
    // Replace the existing route in place.
    entries_.set(static_cast<std::size_t>(node.entry), entry);
  } else {
    node.entry = static_cast<std::int32_t>(entries_.size());
    entries_.push_back(entry);
    nodes_.set(cur, node);
  }
}

std::optional<RouteEntry> RadixTree::lookup(std::uint32_t dst_ip) {
  std::size_t cur = 0;
  std::int32_t best_entry = -1;
  for (std::uint8_t depth = 0; depth <= 32; ++depth) {
    const RadixNode node = nodes_.get(cur);
    if (node.entry >= 0) best_entry = node.entry;
    if (depth == 32) break;
    const bool bit = bit_at(dst_ip, depth);
    cpu_.record_cpu_ops(4);  // shift + mask + compare + branch
    const std::int32_t child = bit ? node.right : node.left;
    if (child < 0) break;
    cur = static_cast<std::size_t>(child);
  }
  if (best_entry < 0) return std::nullopt;
  RouteEntry entry = entries_.get(static_cast<std::size_t>(best_entry));
  ++entry.use_count;
  entries_.set(static_cast<std::size_t>(best_entry), entry);
  cpu_.record_cpu_ops(2);
  return entry;
}

}  // namespace ddtr::apps::route
