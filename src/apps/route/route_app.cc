#include "apps/route/route_app.h"

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "apps/route/patricia_tree.h"
#include "apps/route/radix_tree.h"
#include "ddt/factory.h"
#include "support/rng.h"

namespace ddtr::apps::route {

namespace {

// Synthesizes a routing table whose prefixes cover the trace's destination
// space (truncations of observed destinations at classic prefix lengths),
// plus a default route, so that lookups exercise deep descents and real
// matches — the access pattern the NetBench route kernel shows on a live
// FIB.
std::vector<std::pair<std::uint32_t, std::uint8_t>> synthesize_prefixes(
    const net::Trace& trace, std::size_t table_size, std::uint64_t seed) {
  static constexpr std::uint8_t kLengths[] = {8, 12, 16, 20, 24};
  std::vector<std::uint32_t> destinations;
  {
    std::set<std::uint32_t> seen;
    for (const net::PacketRecord& p : trace.packets()) {
      if (seen.insert(p.dst_ip).second) destinations.push_back(p.dst_ip);
    }
  }

  support::Rng rng(seed);
  std::set<std::pair<std::uint32_t, std::uint8_t>> unique;
  std::vector<std::pair<std::uint32_t, std::uint8_t>> prefixes;
  prefixes.emplace_back(0, 0);  // default route
  std::size_t attempts = 0;
  const std::size_t max_attempts = table_size * 64;
  while (prefixes.size() < table_size && attempts++ < max_attempts) {
    std::uint32_t base;
    if (!destinations.empty() && rng.chance(0.8)) {
      base = destinations[rng.uniform(0, destinations.size() - 1)];
    } else {
      base = static_cast<std::uint32_t>(rng.next_u64());
    }
    const std::uint8_t len = kLengths[rng.uniform(0, std::size(kLengths) - 1)];
    const std::uint32_t mask =
        len == 0 ? 0 : 0xffffffffu << (32 - len);
    const auto candidate = std::make_pair(base & mask, len);
    if (unique.insert(candidate).second) prefixes.push_back(candidate);
  }
  return prefixes;
}

}  // namespace

RunResult RouteApp::run(const net::Trace& trace,
                        const ddt::DdtCombination& combo) {
  prof::MemoryProfile node_profile("radix_node");
  prof::MemoryProfile entry_profile("rtentry");
  prof::MemoryProfile cpu_profile("cpu");

  auto entries = ddt::make_container<RouteEntry>(combo[1], entry_profile);

  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  const auto replay = [&](auto& table) {
    support::Rng rng(config_.seed);
    for (const auto& [prefix, len] :
         synthesize_prefixes(trace, config_.table_size, config_.seed)) {
      table.insert(prefix, len,
                   static_cast<std::uint32_t>(rng.next_u64()),
                   static_cast<std::uint16_t>(rng.uniform(0, 15)));
    }
    for (const net::PacketRecord& p : trace.packets()) {
      cpu_profile.record_cpu_ops(12);  // header parse + checksum update
      if (table.lookup(p.dst_ip).has_value()) {
        ++forwarded;
      } else {
        ++dropped;
      }
    }
  };

  std::unique_ptr<ddt::Container<RadixNode>> bit_nodes;
  std::unique_ptr<ddt::Container<PatriciaNode>> pat_nodes;
  if (config_.compressed_tree) {
    pat_nodes = ddt::make_container<PatriciaNode>(combo[0], node_profile);
    PatriciaTree table(*pat_nodes, *entries, cpu_profile);
    replay(table);
  } else {
    bit_nodes = ddt::make_container<RadixNode>(combo[0], node_profile);
    RadixTree table(*bit_nodes, *entries, cpu_profile);
    replay(table);
  }

  forwarded_.store(forwarded, std::memory_order_relaxed);
  dropped_.store(dropped, std::memory_order_relaxed);

  RunResult result;
  result.per_structure.emplace_back("radix_node", node_profile.counters());
  result.per_structure.emplace_back("rtentry", entry_profile.counters());
  result.total = node_profile.counters();
  result.total += entry_profile.counters();
  result.total += cpu_profile.counters();
  return result;
}

}  // namespace ddtr::apps::route
