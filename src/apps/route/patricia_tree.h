// Path-compressed binary radix tree (Patricia-style) for IPv4
// longest-prefix match — the compressed alternative to RadixTree's
// one-bit-per-level trie, closer to the BSD radix code NetBench builds
// on. Nodes store the full prefix of their path plus its length; runs of
// single-child bits are compressed away, so a lookup touches O(log n)
// nodes instead of O(prefix_len).
//
// Same storage contract as RadixTree: the node pool and the route-entry
// pool live in exchangeable DDT containers, nodes are append-only, child
// references are container indices. EXPERIMENTS.md uses the two trees to
// bound how much trie depth magnifies DDT cost differences.
#pragma once

#include <cstdint>
#include <optional>

#include "apps/route/radix_tree.h"  // RouteEntry
#include "ddt/container.h"
#include "profiling/memory_profile.h"

namespace ddtr::apps::route {

// A compressed-trie node covering the address range prefix/prefix_len.
struct PatriciaNode {
  std::uint32_t prefix = 0;
  std::uint8_t prefix_len = 0;
  std::int32_t child[2] = {-1, -1};
  std::int32_t entry = -1;
};

class PatriciaTree {
 public:
  PatriciaTree(ddt::Container<PatriciaNode>& nodes,
               ddt::Container<RouteEntry>& entries, prof::MemoryProfile& cpu);

  // Inserts (or replaces) a route for prefix/prefix_len.
  void insert(std::uint32_t prefix, std::uint8_t prefix_len,
              std::uint32_t next_hop, std::uint16_t interface);

  // Longest-prefix-match lookup; bumps the matched entry's use_count.
  std::optional<RouteEntry> lookup(std::uint32_t dst_ip);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t route_count() const { return entries_.size(); }

 private:
  static bool bit_at(std::uint32_t value, std::uint8_t depth) {
    return (value >> (31 - depth)) & 1u;
  }
  static std::uint32_t mask_of(std::uint8_t len) {
    return len == 0 ? 0 : 0xffffffffu << (32 - len);
  }
  // Length of the common prefix of a and b, capped at `limit`.
  static std::uint8_t common_prefix_len(std::uint32_t a, std::uint32_t b,
                                        std::uint8_t limit);

  std::int32_t new_node(std::uint32_t prefix, std::uint8_t prefix_len);

  ddt::Container<PatriciaNode>& nodes_;
  ddt::Container<RouteEntry>& entries_;
  prof::MemoryProfile& cpu_;
};

}  // namespace ddtr::apps::route

