#include "apps/route/patricia_tree.h"

#include <bit>
#include <cassert>

namespace ddtr::apps::route {

PatriciaTree::PatriciaTree(ddt::Container<PatriciaNode>& nodes,
                           ddt::Container<RouteEntry>& entries,
                           prof::MemoryProfile& cpu)
    : nodes_(nodes), entries_(entries), cpu_(cpu) {
  assert(nodes_.empty() && entries_.empty());
  nodes_.push_back(PatriciaNode{});  // root covers 0.0.0.0/0
}

std::uint8_t PatriciaTree::common_prefix_len(std::uint32_t a,
                                             std::uint32_t b,
                                             std::uint8_t limit) {
  const std::uint32_t diff = a ^ b;
  const int same = diff == 0 ? 32 : std::countl_zero(diff);
  return static_cast<std::uint8_t>(same < limit ? same : limit);
}

std::int32_t PatriciaTree::new_node(std::uint32_t prefix,
                                    std::uint8_t prefix_len) {
  const auto index = static_cast<std::int32_t>(nodes_.size());
  PatriciaNode node;
  node.prefix = prefix & mask_of(prefix_len);
  node.prefix_len = prefix_len;
  nodes_.push_back(node);
  return index;
}

void PatriciaTree::insert(std::uint32_t prefix, std::uint8_t prefix_len,
                          std::uint32_t next_hop, std::uint16_t interface) {
  assert(prefix_len <= 32);
  prefix &= mask_of(prefix_len);
  const RouteEntry route{prefix, prefix_len, next_hop, interface, 0};

  std::size_t cur = 0;
  while (true) {
    PatriciaNode node = nodes_.get(cur);
    cpu_.record_cpu_ops(4);
    if (node.prefix_len == prefix_len) {
      // Exact cover: attach / replace the route here.
      if (node.entry >= 0) {
        entries_.set(static_cast<std::size_t>(node.entry), route);
      } else {
        node.entry = static_cast<std::int32_t>(entries_.size());
        entries_.push_back(route);
        nodes_.set(cur, node);
      }
      return;
    }
    // Descend by the first bit below this node's prefix.
    const int side = bit_at(prefix, node.prefix_len) ? 1 : 0;
    const std::int32_t child = node.child[side];
    if (child < 0) {
      // Fresh leaf for the remainder of the prefix.
      const std::int32_t leaf = new_node(prefix, prefix_len);
      PatriciaNode leaf_node = nodes_.get(static_cast<std::size_t>(leaf));
      leaf_node.entry = static_cast<std::int32_t>(entries_.size());
      entries_.push_back(route);
      nodes_.set(static_cast<std::size_t>(leaf), leaf_node);
      node.child[side] = leaf;
      nodes_.set(cur, node);
      return;
    }

    PatriciaNode child_node = nodes_.get(static_cast<std::size_t>(child));
    const std::uint8_t common = common_prefix_len(
        prefix, child_node.prefix,
        std::min(prefix_len, child_node.prefix_len));
    cpu_.record_cpu_ops(6);  // xor + clz + compares
    if (common == child_node.prefix_len) {
      // The child's compressed edge fully matches: keep descending.
      cur = static_cast<std::size_t>(child);
      continue;
    }
    // Split the edge at `common`: insert an intermediate node owning the
    // shared prefix, hang the old child under it, then either attach the
    // route at the intermediate (prefix ends there) or as a new leaf.
    const std::int32_t middle = new_node(prefix, common);
    PatriciaNode middle_node = nodes_.get(static_cast<std::size_t>(middle));
    const int old_side = bit_at(child_node.prefix, common) ? 1 : 0;
    middle_node.child[old_side] = child;
    if (common == prefix_len) {
      middle_node.entry = static_cast<std::int32_t>(entries_.size());
      entries_.push_back(route);
    } else {
      const std::int32_t leaf = new_node(prefix, prefix_len);
      PatriciaNode leaf_node = nodes_.get(static_cast<std::size_t>(leaf));
      leaf_node.entry = static_cast<std::int32_t>(entries_.size());
      entries_.push_back(route);
      nodes_.set(static_cast<std::size_t>(leaf), leaf_node);
      middle_node.child[1 - old_side] = leaf;
    }
    nodes_.set(static_cast<std::size_t>(middle), middle_node);
    node.child[side] = middle;
    nodes_.set(cur, node);
    return;
  }
}

std::optional<RouteEntry> PatriciaTree::lookup(std::uint32_t dst_ip) {
  std::size_t cur = 0;
  std::int32_t best_entry = -1;
  while (true) {
    const PatriciaNode node = nodes_.get(cur);
    cpu_.record_cpu_ops(5);  // mask compare + branch
    if ((dst_ip & mask_of(node.prefix_len)) != node.prefix) break;
    if (node.entry >= 0) best_entry = node.entry;
    if (node.prefix_len == 32) break;
    const int side = bit_at(dst_ip, node.prefix_len) ? 1 : 0;
    const std::int32_t child = node.child[side];
    if (child < 0) break;
    cur = static_cast<std::size_t>(child);
  }
  if (best_entry < 0) return std::nullopt;
  RouteEntry entry = entries_.get(static_cast<std::size_t>(best_entry));
  ++entry.use_count;
  entries_.set(static_cast<std::size_t>(best_entry), entry);
  cpu_.record_cpu_ops(2);
  return entry;
}

}  // namespace ddtr::apps::route
