// Route — the paper's first case study (NetBench "route"): IPv4 forwarding
// with a radix-tree routing table. Dominant DDTs: the radix-node pool and
// the rtentry pool. The application-specific network parameter is the
// routing-table size (the paper explores 128 and 256 entries).
#pragma once

#include <atomic>
#include <cstdint>

#include "apps/common/app.h"

namespace ddtr::apps::route {

class RouteApp final : public NetworkApplication {
 public:
  struct Config {
    std::size_t table_size;  // routing-table entries (paper: 128 / 256)
    std::uint64_t seed;      // prefix synthesis stream
    // false: one-bit-per-level trie (RadixTree); true: path-compressed
    // PatriciaTree. The case studies use the bit trie; the compressed
    // variant bounds how much trie depth magnifies DDT cost differences
    // (EXPERIMENTS.md, deviations).
    bool compressed_tree = false;
  };

  explicit RouteApp(Config config) : config_(config) {}

  std::string name() const override { return "Route"; }

  std::vector<std::string> dominant_structures() const override {
    return {"radix_node", "rtentry"};
  }

  std::string config_label() const override {
    return "table=" + std::to_string(config_.table_size);
  }

  RunResult run(const net::Trace& trace,
                const ddt::DdtCombination& combo) override;

  // Forwarding statistics of the last completed run (functional output,
  // used by the correctness tests). Published atomically at the end of
  // run(), so concurrent runs on a shared instance are safe.
  std::uint64_t forwarded() const noexcept {
    return forwarded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  Config config_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace ddtr::apps::route

