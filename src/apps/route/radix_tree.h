// DDT-backed IPv4 routing table: a binary radix trie (radix-2, one bit per
// level, as in the BSD radix code NetBench's route kernel is built on,
// without path compression) whose node pool and route-entry pool live in
// exchangeable DDT containers. Node references are indices into the node
// container, so the cost of walking the trie is exactly the cost the chosen
// DDT charges for indexed access — the mechanism that makes the Route case
// study's exploration space interesting.
//
// Nodes are only ever appended (routes are not withdrawn during a replay),
// so indices are stable and every child index is larger than its parent's —
// a descent touches monotonically increasing indices, which is why roving-
// pointer DDTs do well here.
#pragma once

#include <cstdint>
#include <optional>

#include "ddt/container.h"
#include "profiling/memory_profile.h"

namespace ddtr::apps::route {

// Trie node; -1 child / entry means absent. 16 bytes.
struct RadixNode {
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t entry = -1;
};

// A routing-table entry (the rtentry of the paper's Route case study).
struct RouteEntry {
  std::uint32_t prefix = 0;
  std::uint8_t prefix_len = 0;
  std::uint32_t next_hop = 0;
  std::uint16_t interface = 0;
  std::uint32_t use_count = 0;  // per-route hit counter, updated on match
};

class RadixTree {
 public:
  // Containers and the CPU-op profile are borrowed; the tree creates its
  // root node eagerly.
  RadixTree(ddt::Container<RadixNode>& nodes,
            ddt::Container<RouteEntry>& entries, prof::MemoryProfile& cpu);

  // Inserts (or replaces) a route for prefix/prefix_len.
  void insert(std::uint32_t prefix, std::uint8_t prefix_len,
              std::uint32_t next_hop, std::uint16_t interface);

  // Longest-prefix-match lookup. Increments the matched entry's use_count.
  std::optional<RouteEntry> lookup(std::uint32_t dst_ip);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t route_count() const { return entries_.size(); }

 private:
  static bool bit_at(std::uint32_t value, std::uint8_t depth) {
    return (value >> (31 - depth)) & 1u;
  }

  ddt::Container<RadixNode>& nodes_;
  ddt::Container<RouteEntry>& entries_;
  prof::MemoryProfile& cpu_;
};

}  // namespace ddtr::apps::route

