// URL — the paper's second case study (NetBench "url"): URL-based context
// switching. HTTP request packets are matched against a pattern table and
// dispatched to the server pool behind the switch. Dominant DDTs: the
// pattern table and the server table (both singly linked lists in the
// original NetBench implementation, which is the baseline the paper's
// headline 80% energy / 20% time gains are measured against).
#pragma once

#include <atomic>
#include <cstdint>

#include "apps/common/app.h"

namespace ddtr::apps::url {

// A switching rule: substring pattern -> server. Fixed-width storage keeps
// records POD so every DDT can hold them by value.
struct UrlPattern {
  char pattern[40] = {};
  std::uint8_t length = 0;
  std::uint16_t server = 0;
  std::uint32_t hits = 0;
};

// Back-end server state updated on every dispatched request.
struct ServerInfo {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  std::uint32_t active_requests = 0;
  std::uint64_t bytes_routed = 0;
};

class UrlApp final : public NetworkApplication {
 public:
  struct Config {
    std::size_t pattern_count;  // switching rules
    std::size_t server_count;   // back-end pool size
    std::uint64_t seed;
  };

  explicit UrlApp(Config config) : config_(config) {}

  std::string name() const override { return "URL"; }

  std::vector<std::string> dominant_structures() const override {
    return {"pattern_table", "server_table"};
  }

  std::string config_label() const override {
    return "patterns=" + std::to_string(config_.pattern_count);
  }

  RunResult run(const net::Trace& trace,
                const ddt::DdtCombination& combo) override;

  // Statistics of the most recently completed run. run() keeps per-run
  // state on its stack and publishes these atomically on completion, so
  // concurrent runs on a shared instance are safe (last writer wins).
  std::uint64_t dispatched() const noexcept {
    return dispatched_.load(std::memory_order_relaxed);
  }
  std::uint64_t defaulted() const noexcept {
    return defaulted_.load(std::memory_order_relaxed);
  }

 private:
  Config config_;
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> defaulted_{0};
};

}  // namespace ddtr::apps::url

