#include "apps/url/url_app.h"

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "ddt/factory.h"
#include "support/rng.h"

namespace ddtr::apps::url {

namespace {

// Pattern vocabulary overlapping the trace generator's URL vocabulary, so a
// realistic share of requests matches a non-default rule at varying scan
// depths.
constexpr const char* kPatternPool[] = {
    "cnn.com",     "dartmouth",  "example.org", "bbc.co.uk", "slashdot",
    "google",      "weather",    "amazon",      "akamai",    "nlanr",
    "/news/",      "/img/",      "/static/",    "/cgi/",     "/pages/",
    "/media/",     "/docs/",     "/api/",       "index.html", ".html",
    "story",       "view",       "item",        "photo",     "search",
    "?id=",        "http://www", "/news/img",   "/api/view", "photo?id=",
    "mail.",       "cdn."};

UrlPattern make_pattern(std::string_view text, std::uint16_t server) {
  UrlPattern p;
  const std::size_t n = std::min(text.size(), sizeof(p.pattern) - 1);
  std::memcpy(p.pattern, text.data(), n);
  p.length = static_cast<std::uint8_t>(n);
  p.server = server;
  return p;
}

// Naive substring search, charged as the CPU work it performs (the inner
// comparison loop of the NetBench url kernel).
bool matches(std::string_view url, const UrlPattern& p,
             prof::MemoryProfile& cpu) {
  const std::string_view needle(p.pattern, p.length);
  cpu.record_cpu_ops(url.size());  // scan cost proxy
  return url.find(needle) != std::string_view::npos;
}

}  // namespace

RunResult UrlApp::run(const net::Trace& trace,
                      const ddt::DdtCombination& combo) {
  prof::MemoryProfile pattern_profile("pattern_table");
  prof::MemoryProfile server_profile("server_table");
  prof::MemoryProfile cpu_profile("cpu");

  auto patterns = ddt::make_container<UrlPattern>(combo[0], pattern_profile);
  auto servers = ddt::make_container<ServerInfo>(combo[1], server_profile);

  support::Rng rng(config_.seed);
  for (std::size_t s = 0; s < config_.server_count; ++s) {
    ServerInfo server;
    server.ip = net::make_ip(192, 168, 10, static_cast<std::uint8_t>(s + 1));
    server.port = 8000 + static_cast<std::uint16_t>(s);
    servers->push_back(server);
  }
  for (std::size_t i = 0; i < config_.pattern_count; ++i) {
    const char* text = kPatternPool[i % std::size(kPatternPool)];
    const std::uint16_t server =
        static_cast<std::uint16_t>(rng.uniform(0, config_.server_count - 1));
    patterns->push_back(make_pattern(text, server));
  }

  std::uint64_t dispatched = 0;
  std::uint64_t defaulted = 0;
  for (const net::PacketRecord& packet : trace.packets()) {
    cpu_profile.record_cpu_ops(8);  // TCP reassembly bookkeeping
    if (!trace.has_payload(packet)) continue;
    const std::string& url = trace.payload(packet.payload_id);

    std::uint16_t server_index = 0;  // default server
    const std::size_t match = patterns->find_if([&](const UrlPattern& p) {
      return matches(url, p, cpu_profile);
    });
    if (match != ddt::npos) {
      // Update rule statistics in place (read-modify-write at the matched
      // position; roving DDTs resume here for free).
      UrlPattern p = patterns->get(match);
      ++p.hits;
      patterns->set(match, p);
      server_index = p.server;
      ++dispatched;
    } else {
      ++defaulted;
    }

    ServerInfo server = servers->get(server_index);
    ++server.active_requests;
    server.bytes_routed += packet.length;
    servers->set(server_index, server);
    cpu_profile.record_cpu_ops(20);  // NAT rewrite + forward
  }

  dispatched_.store(dispatched, std::memory_order_relaxed);
  defaulted_.store(defaulted, std::memory_order_relaxed);

  RunResult result;
  result.per_structure.emplace_back("pattern_table",
                                    pattern_profile.counters());
  result.per_structure.emplace_back("server_table",
                                    server_profile.counters());
  result.total = pattern_profile.counters();
  result.total += server_profile.counters();
  result.total += cpu_profile.counters();
  return result;
}

}  // namespace ddtr::apps::url
