// Uniform interface of the four case-study applications. An application
// declares its dominant dynamic data structures (the slots of a
// DdtCombination) and replays a trace with a chosen combination, returning
// the profiling counters the cost models consume.
//
// Mirrors the paper's instrumentation contract (§3.1): the application's
// functionality never changes; only the DDT implementation behind each
// dominant structure does.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ddt/kinds.h"
#include "nettrace/trace.h"
#include "profiling/memory_profile.h"

namespace ddtr::apps {

// Per-structure profiling breakdown of one run. `total` also includes the
// application's non-DDT CPU work; the per-structure entries are what the
// step-1 dominance profiling inspects.
struct RunResult {
  prof::ProfileCounters total;
  std::vector<std::pair<std::string, prof::ProfileCounters>> per_structure;
};

class NetworkApplication {
 public:
  virtual ~NetworkApplication() = default;

  virtual std::string name() const = 0;

  // Names of the dominant dynamic data structures, in DdtCombination slot
  // order.
  virtual std::vector<std::string> dominant_structures() const = 0;
  std::size_t slot_count() const { return dominant_structures().size(); }

  // The DDT kinds legal for each slot, in slot order. The default offers
  // every kind that works unkeyed; applications that derive a lookup key
  // for a slot's records (connection/flow tables) override this to offer
  // the keyed kinds (adding kOpenHash) on that slot.
  virtual std::vector<std::vector<ddt::DdtKind>> slot_kinds() const {
    return std::vector<std::vector<ddt::DdtKind>>(slot_count(),
                                                  ddt::default_slot_kinds());
  }

  // Replays `trace` with the DDT implementations selected by `combo`
  // (combo.size() must equal slot_count()). Deterministic: same trace and
  // combo always produce the same counters.
  //
  // Re-entrancy contract (required by the parallel explorer): concurrent
  // run() calls on the SAME instance must not interfere. All per-run state
  // — profiles, containers, RNGs, statistics — lives on run()'s stack;
  // last-run statistics exposed through accessors are published atomically
  // once at completion (last writer wins).
  virtual RunResult run(const net::Trace& trace,
                        const ddt::DdtCombination& combo) = 0;

  // A one-line description of the application-specific network parameter
  // configuration (radix-table size, rule count, ...), for logs.
  virtual std::string config_label() const { return ""; }

  // Version of this application's simulation semantics, folded into
  // simulation-cache keys (the application-level analog of
  // energy::kEnergyModelVersion). Bump it whenever run()'s mapping from
  // (trace, combo) to counters changes, so persisted records computed by
  // the old logic stop hitting instead of replaying stale metrics. The
  // name() + config_label() pair in the key covers *which* app and
  // parameters ran; this covers *how* it ran. The library-wide DDT
  // accounting version is folded in so a change to how containers charge
  // accesses retires every cached record at once.
  virtual std::uint32_t cache_version() const {
    return ddt::kDdtAccountingVersion;
  }
};

}  // namespace ddtr::apps

