// Canonical 64-bit five-tuple key used by the keyed dominant-structure
// slots (IPchains connection table, DRR flow table). Both the packet side
// and the stored-record side must derive keys identically, so the helper
// lives here rather than in either app. Key equality stands in for
// five-tuple equality: a 64-bit digest collision between two distinct live
// tuples is negligible, and since every container derives keys the same
// way, any collision would still resolve deterministically.
#pragma once

#include <cstdint>

#include "support/fnv_hash.h"

namespace ddtr::apps {

// Packs the tuple into two words and finalizes with mix64 — a handful of
// instructions instead of a byte-wise FNV loop, because the traversal
// find_key of the scan-based kinds recomputes the stored-record key for
// every record visited (this is the simulation hot path).
inline std::uint64_t five_tuple_key(std::uint32_t src_ip,
                                    std::uint32_t dst_ip,
                                    std::uint16_t src_port,
                                    std::uint16_t dst_port,
                                    std::uint8_t protocol) noexcept {
  const std::uint64_t addrs =
      (static_cast<std::uint64_t>(src_ip) << 32) | dst_ip;
  const std::uint64_t rest = (static_cast<std::uint64_t>(src_port) << 24) |
                             (static_cast<std::uint64_t>(dst_port) << 8) |
                             protocol;
  return support::mix64(addrs ^ support::mix64(rest));
}

// CPU ops charged for deriving a packet's five-tuple key (per packet, on
// the application's cpu profile — the stored-record side is charged by the
// containers via kKeyHashCpuOps).
inline constexpr std::uint64_t kFiveTupleKeyCpuOps = 6;

}  // namespace ddtr::apps

