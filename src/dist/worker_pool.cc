#include "dist/worker_pool.h"

#include <cerrno>
#include <csignal>
#include <filesystem>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace ddtr::dist {

namespace {

void terminate_survivors(const std::vector<pid_t>& pids,
                         const std::vector<bool>& reaped) {
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (pids[i] > 0 && !reaped[i]) kill(pids[i], SIGTERM);
  }
}

}  // namespace

std::vector<ProcessResult> run_worker_processes(
    const std::vector<std::vector<std::string>>& commands) {
  std::vector<ProcessResult> results(commands.size());
  std::vector<pid_t> pids(commands.size(), -1);
  std::vector<bool> reaped(commands.size(), false);
  bool failed = false;

  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (commands[i].empty()) {
      failed = true;
      continue;
    }
    const pid_t pid = fork();
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(commands[i].size() + 1);
      for (const std::string& arg : commands[i]) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      execvp(argv[0], argv.data());
      _exit(127);  // exec failed; the parent sees exit_code 127
    }
    if (pid < 0) {
      failed = true;  // fork failed: spawned stays false
      continue;
    }
    pids[i] = pid;
    results[i].spawned = true;
  }
  if (failed) terminate_survivors(pids, reaped);

  std::size_t remaining = 0;
  for (const pid_t pid : pids) {
    if (pid > 0) ++remaining;
  }
  while (remaining > 0) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;  // no children left to wait for (should not happen)
    }
    std::size_t idx = commands.size();
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (pids[i] == pid && !reaped[i]) {
        idx = i;
        break;
      }
    }
    if (idx == commands.size()) continue;  // not one of ours
    reaped[idx] = true;
    --remaining;
    if (WIFSIGNALED(status)) {
      results[idx].signaled = true;
      results[idx].term_signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
      results[idx].exit_code = WEXITSTATUS(status);
    }
    if (!results[idx].ok() && !failed) {
      failed = true;
      terminate_survivors(pids, reaped);
    }
  }
  return results;
}

std::string self_executable(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.string();
  return argv0 != nullptr ? argv0 : "ddtr";
}

}  // namespace ddtr::dist
