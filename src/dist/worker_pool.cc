#include "dist/worker_pool.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace ddtr::dist {

namespace {

void terminate_survivors(const std::vector<pid_t>& pids,
                         const std::vector<bool>& reaped) {
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (pids[i] > 0 && !reaped[i]) kill(pids[i], SIGTERM);
  }
}

}  // namespace

std::vector<ProcessResult> run_worker_processes(
    const std::vector<std::vector<std::string>>& commands) {
  std::vector<ProcessResult> results(commands.size());
  std::vector<pid_t> pids(commands.size(), -1);
  std::vector<bool> reaped(commands.size(), false);
  bool failed = false;

  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (commands[i].empty()) {
      failed = true;
      continue;
    }
    const pid_t pid = fork();
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(commands[i].size() + 1);
      for (const std::string& arg : commands[i]) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      execvp(argv[0], argv.data());
      _exit(127);  // exec failed; the parent sees exit_code 127
    }
    if (pid < 0) {
      failed = true;  // fork failed: spawned stays false
      continue;
    }
    pids[i] = pid;
    results[i].spawned = true;
  }
  if (failed) terminate_survivors(pids, reaped);

  std::size_t remaining = 0;
  for (const pid_t pid : pids) {
    if (pid > 0) ++remaining;
  }
  // Wait ONLY on the pids we forked, never waitpid(-1, ...): the
  // coordinator may be embedded in a host program (the api:: layer, a
  // test harness) that has children of its own, and a -1 wait would
  // silently steal their exit statuses. Non-blocking polls over the
  // tracked set keep the first-failure SIGTERM prompt without a blocking
  // wait pinning us to one child while another fails.
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (pids[i] <= 0 || reaped[i]) continue;
      int status = 0;
      const pid_t pid = waitpid(pids[i], &status, WNOHANG);
      if (pid == 0) continue;  // still running
      if (pid < 0) {
        if (errno == EINTR) continue;
        // ECHILD: someone else reaped this child (e.g. a host program
        // doing its own -1 wait). Its status is lost — count it failed
        // rather than spinning forever, and treat it like any other
        // failure: SIGTERM the surviving siblings.
        reaped[i] = true;
        --remaining;
        progressed = true;
        if (!failed) {
          failed = true;
          terminate_survivors(pids, reaped);
        }
        continue;
      }
      reaped[i] = true;
      --remaining;
      progressed = true;
      if (WIFSIGNALED(status)) {
        results[i].signaled = true;
        results[i].term_signal = WTERMSIG(status);
      } else if (WIFEXITED(status)) {
        results[i].exit_code = WEXITSTATUS(status);
      }
      if (!results[i].ok() && !failed) {
        failed = true;
        terminate_survivors(pids, reaped);
      }
    }
    if (!progressed && remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return results;
}

std::string self_executable(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !exe.empty()) return exe.string();
  return argv0 != nullptr ? argv0 : "ddtr";
}

}  // namespace ddtr::dist
