// Shared-storage rendezvous for step-1-sharded workers. Workers of an
// N-way fleet never talk to each other directly — they meet only through
// the cache directory (possibly NFS). Each worker, after durably
// checkpointing its owned step-1 records into its segment, publishes a
// marker file ("step1.<fingerprint>.shard<I>of<N>.done", see
// core::step1_marker_name and PersistentSimulationCache::write_marker);
// SegmentBarrier::wait()
// polls the directory until every shard's marker exists with the
// expected content, so a worker released from the barrier knows every
// sibling's step-1 records are durably stored and merge-on-load will see
// the full set.
//
// The plan fingerprint (core::step1_fingerprint) appears both in the
// marker NAME — so two fleets running different plans with the same
// geometry publish to distinct paths and cannot clobber each other —
// and as the marker's content, which must match or the marker is
// IGNORED (belt and braces against stale or torn markers). Markers from
// a finished earlier run of the SAME plan release the barrier
// immediately — truthfully: the records they assert are still in the
// directory (segments are only removed by the merger, which folds them
// into the main file first).
//
// Failure modes are explicit: a raised cancel flag returns kCancelled
// (the caller re-checks its own flag); an expired timeout THROWS
// std::runtime_error naming the missing shards — a dead sibling must
// become a clean error, never a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace ddtr::dist {

struct BarrierOptions {
  // How long wait() keeps polling before throwing. Generous by default:
  // siblings may still be simulating their owned step-1 units.
  std::chrono::milliseconds timeout = std::chrono::minutes(10);
  // Delay between directory polls. Markers are tiny and the poll is a
  // handful of stat+read calls, so polling stays cheap even on NFS.
  std::chrono::milliseconds poll_interval = std::chrono::milliseconds(25);
  // Optional cooperative-cancellation flag (the engine's cancel token):
  // when it becomes true, wait() returns kCancelled at the next poll.
  std::shared_ptr<std::atomic<bool>> cancel;
};

class SegmentBarrier {
 public:
  enum class Outcome {
    kReady,      // every shard's marker present with the expected content
    kCancelled,  // the cancel flag was raised while waiting
  };

  // Waits for the step-1 markers of ALL shards 0..shard_count-1 (the
  // caller's own included — publish before waiting) inside `cache_dir`,
  // accepting only markers whose content equals `expected_content`.
  SegmentBarrier(std::string cache_dir, std::size_t shard_count,
                 std::string expected_content, BarrierOptions options = {});

  // Blocks until released, cancelled, or timed out (throws). Stateless
  // and re-entrant: several in-process workers may share one barrier and
  // call wait() concurrently.
  Outcome wait() const;

  // Shards whose marker is currently absent or mismatched — what the
  // timeout error reports; exposed for tests and diagnostics.
  std::vector<std::size_t> missing_shards() const;

 private:
  std::string cache_dir_;
  std::size_t shard_count_;
  std::string expected_content_;
  BarrierOptions options_;
};

}  // namespace ddtr::dist

