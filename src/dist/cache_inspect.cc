#include "dist/cache_inspect.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>

namespace ddtr::dist {

namespace {

// Cache keys are 0x1f-joined fields (see SimulationCache::key_of):
// app, app cache_version, config, trace hash, combo, model fingerprint.
constexpr char kKeySep = '\x1f';

std::vector<std::string> split_key(const std::string& key) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = key.find(kKeySep, start);
    if (sep == std::string::npos) {
      fields.push_back(key.substr(start));
      return fields;
    }
    fields.push_back(key.substr(start, sep - start));
    start = sep + 1;
  }
}

std::vector<std::pair<std::string, std::size_t>> sorted_counts(
    const std::map<std::string, std::size_t>& counts) {
  return {counts.begin(), counts.end()};
}

}  // namespace

CacheStats inspect_cache(const std::string& dir) {
  core::PersistentSimulationCache cache(dir);
  CacheStats stats;
  std::error_code ec;
  if (std::filesystem::exists(cache.file_path(), ec) && !ec) {
    ++stats.files;
    const auto size = std::filesystem::file_size(cache.file_path(), ec);
    if (!ec) stats.bytes += size;
  }
  for (const std::string& seg : cache.segment_paths()) {
    ++stats.files;
    const auto size = std::filesystem::file_size(seg, ec);
    if (!ec) stats.bytes += size;
  }

  stats.entries = cache.load();
  stats.duplicates = cache.load_stats().superseded;
  stats.corrupt = cache.load_stats().corrupt_entries;

  std::map<std::string, std::size_t> apps;
  std::map<std::string, std::size_t> fingerprints;
  for (const auto& [key, record] : cache.entries()) {
    const std::vector<std::string> fields = split_key(key);
    if (fields.empty()) continue;
    ++apps[fields.front()];
    ++fingerprints[fields.back()];
  }
  stats.apps = sorted_counts(apps);
  stats.model_fingerprints = sorted_counts(fingerprints);
  for (const std::string& marker : cache.marker_paths()) {
    stats.markers.push_back(
        std::filesystem::path(marker).filename().string());
  }
  return stats;
}

VerifyReport verify_cache(const std::string& dir) {
  core::PersistentSimulationCache cache(dir);
  VerifyReport report;
  report.files.push_back(
      {cache.file_path(),
       core::PersistentSimulationCache::check_file(cache.file_path())});
  for (const std::string& seg : cache.segment_paths()) {
    report.files.push_back(
        {seg, core::PersistentSimulationCache::check_file(seg)});
  }
  return report;
}

std::size_t clear_cache(const std::string& dir) {
  core::PersistentSimulationCache cache(dir);
  std::size_t removed = 0;
  std::error_code ec;
  std::vector<std::string> victims = cache.segment_paths();
  // Barrier markers assert records live in this directory; clearing the
  // records must clear the assertions with them, or a later
  // step-1-sharded fleet of the same plan would trust markers whose
  // segments are gone (merge-on-load still degrades gracefully, but the
  // workers would wastefully replay nothing).
  for (const std::string& marker : cache.marker_paths()) {
    victims.push_back(marker);
  }
  victims.push_back(cache.file_path());
  for (const std::string& path : victims) {
    if (std::filesystem::remove(path, ec) && !ec) ++removed;
  }
  return removed;
}

GcStats gc_cache(const std::string& dir, double max_age_s) {
  core::PersistentSimulationCache cache(dir);
  GcStats stats;
  const auto now = std::filesystem::file_time_type::clock::now();
  const auto cap = std::chrono::duration_cast<
      std::filesystem::file_time_type::duration>(
      std::chrono::duration<double>(max_age_s));
  const auto sweep = [&](const std::vector<std::string>& paths,
                         std::size_t& removed) {
    for (const std::string& path : paths) {
      std::error_code ec;
      const auto mtime = std::filesystem::last_write_time(path, ec);
      if (ec) continue;  // vanished concurrently: nothing to prune
      if (now - mtime <= cap) {
        ++stats.kept;
        continue;
      }
      if (std::filesystem::remove(path, ec) && !ec) ++removed;
    }
  };
  sweep(cache.segment_paths(), stats.segments_removed);
  sweep(cache.marker_paths(), stats.markers_removed);
  return stats;
}

}  // namespace ddtr::dist
