// Deterministic work-sharding for distributed exploration. The DDTR flow
// is embarrassingly parallel at the (scenario x combination) simulation
// level; a WorkPlan enumerates that unit space for one case study and
// assigns shard `i` of `N` a stable subset — stable because units are
// identified by their CONTENT-HASH cache key (SimulationCache::key_of:
// trace content, app version, configuration, combination, energy-model
// fingerprint), so two processes on two hosts that build the same study
// compute byte-identical plans without ever talking to each other.
//
// Execution model (see core::ExplorationOptions::shard_*): every worker
// replicates step 1 (one scenario — the seed of the shared survivor
// selection) and executes only its shard of step 2 (the
// scenario-dominated axis that scales with deployment size), storing the
// records into a per-shard cache segment. dist::SegmentMerger then
// consolidates the segments so a final unsharded run replays everything.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/simulation.h"
#include "energy/energy_model.h"

namespace ddtr::dist {

// One simulation unit of a study: a (scenario, combination) pair,
// identified by its content-hash cache key.
struct WorkUnit {
  std::size_t scenario_index = 0;
  ddt::DdtCombination combo;
  std::string key;
};

class WorkPlan {
 public:
  // Enumerates every unit of `study` (scenario-major, combinations in
  // ddt::enumerate_combinations order — the exhaustive unit space; the
  // reduced flow's step-1 and step-2 units are subsets of it).
  WorkPlan(const core::CaseStudy& study, const energy::EnergyModel& model,
           std::size_t shard_count);

  std::size_t shard_count() const noexcept { return shard_count_; }
  const std::vector<WorkUnit>& units() const noexcept { return units_; }
  // The study's representative scenario index — the scenario whose units
  // form the step-1 (application-level) slice of the plan.
  std::size_t representative() const noexcept { return representative_; }

  // The shard owning a unit — core::shard_of_key, the same function the
  // sharded engine applies, so a plan and the workers always agree.
  std::size_t shard_of(const WorkUnit& unit) const {
    return core::shard_of_key(unit.key, shard_count_);
  }

  // Indices into units() assigned to `shard`. Across all shards these
  // form a partition of the unit space: disjoint, covering, and stable
  // across process restarts and hosts.
  std::vector<std::size_t> shard_units(std::size_t shard) const;

  // The step-1 slice: indices of the (representative-scenario x
  // combination) units, in fan order. Under the same shard_of_key
  // partition as everything else, so a step-1-sharded fleet (see
  // ExplorationOptions::step1_sharded and dist::SegmentBarrier) divides
  // them disjointly and coveringly too.
  std::vector<std::size_t> step1_units() const;
  // step1_units() restricted to `shard`.
  std::vector<std::size_t> step1_shard_units(std::size_t shard) const;

 private:
  std::size_t shard_count_;
  std::size_t representative_ = 0;
  std::vector<WorkUnit> units_;
};

}  // namespace ddtr::dist

