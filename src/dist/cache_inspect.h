// Inspection and maintenance of a persistent-cache directory — the
// engine room of the `ddtr cache` subcommand: stats (what is cached, for
// which workloads and cost models), verify (structural frame/checksum
// health of the main file and every segment), and clear.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/persistent_cache.h"

namespace ddtr::dist {

struct CacheStats {
  std::size_t files = 0;       // main file (if present) + segments
  std::uint64_t bytes = 0;     // summed file sizes
  std::size_t entries = 0;     // distinct entries after merge-on-load
  std::size_t duplicates = 0;  // superseded keys across files
  std::size_t corrupt = 0;     // frames dropped while loading
  // Distinct workloads and energy-model fingerprints present, with entry
  // counts (sorted by name/fingerprint — cache keys are structured, see
  // SimulationCache::key_of, so both are recoverable from the keys).
  std::vector<std::pair<std::string, std::size_t>> apps;
  std::vector<std::pair<std::string, std::size_t>> model_fingerprints;
  // Step-1 barrier marker files present ("<name>.done", file names only,
  // sorted) — the rendezvous state a step1-sharded fleet left behind.
  std::vector<std::string> markers;
};

CacheStats inspect_cache(const std::string& dir);

struct CacheFileReport {
  std::string path;
  core::PersistentSimulationCache::FileCheck check;
};

struct VerifyReport {
  std::vector<CacheFileReport> files;  // main file first, then segments

  // True when every present file has a valid header and zero corrupt
  // entries. A torn tail (trailing_bytes > 0) alone does not fail
  // verification: it is the expected scar of a killed run and heals on
  // the next append. A zero-length file is likewise tolerated (a crash
  // between creation and the first write; the next store rewrites it).
  bool ok() const {
    for (const CacheFileReport& f : files) {
      if (!f.check.present || f.check.empty) continue;
      if (!f.check.header_valid || f.check.entries_corrupt != 0) return false;
    }
    return true;
  }
};

VerifyReport verify_cache(const std::string& dir);

// Deletes the main cache file, every segment and every barrier marker in
// `dir` (the directory itself stays). Returns the number of files
// removed.
std::size_t clear_cache(const std::string& dir);

// What `ddtr cache gc` pruned and kept.
struct GcStats {
  std::size_t segments_removed = 0;
  std::size_t markers_removed = 0;
  std::size_t kept = 0;  // segments + markers younger than the cap
};

// Prunes STALE distributed-run residue: segment files and barrier markers
// whose mtime is older than `max_age_s` seconds. The main cache file is
// never touched (it is the consolidated record store, not residue), so gc
// is always safe to run on a live directory — a worker actively writing
// its segment keeps refreshing its mtime. Run `ddtr cache merge` first
// when the stale segments still hold unmerged records worth keeping.
GcStats gc_cache(const std::string& dir, double max_age_s);

}  // namespace ddtr::dist

