// Consolidates a cache directory's per-writer segment files back into one
// compacted shared cache file. Shard workers write disjoint
// `sim_cache.<tag>.seg` segments (see PersistentSimulationCache::
// set_segment) precisely so concurrent writers can never interleave; the
// merger is the other half of that contract: once the writers are done,
// fold every segment plus the existing main file into a fresh, deduped,
// deterministically ordered `sim_cache.ddtr` and delete the segments.
//
// Merging is idempotent: keys are content hashes of deterministic
// simulations, so overlapping or duplicate segments collapse to one entry
// per key (the newest occurrence wins — a tie-break, not a correctness
// concern), and re-merging an already merged directory is a no-op.
//
// Note merging is an optimization, not a prerequisite: load() merges
// segments in memory anyway (merge-on-load), so a coordinator run replays
// unmerged segments just as well. Merging keeps directories tidy and
// reads cheap after many distributed runs.
#pragma once

#include <cstdint>
#include <string>

namespace ddtr::dist {

struct MergeStats {
  std::size_t segment_files = 0;      // segments folded in (and deleted)
  std::size_t entries = 0;            // distinct entries after the merge
  std::size_t duplicates_dropped = 0; // superseded/duplicate keys collapsed
  std::size_t corrupt_dropped = 0;    // damaged frames left behind
  std::uint64_t bytes_before = 0;     // main + segments, pre-merge
  std::uint64_t bytes_after = 0;      // main file, post-merge
};

class SegmentMerger {
 public:
  // Folds every segment in `dir` (plus the main file) into a compacted
  // main file and removes the segments. Never throws; an unreadable
  // directory merges zero files. Safe only once the segment writers have
  // exited — a live writer's segment would be deleted out from under it.
  static MergeStats merge(const std::string& dir);
};

}  // namespace ddtr::dist

