#include "dist/segment_merger.h"

#include <filesystem>
#include <vector>

#include "core/persistent_cache.h"

namespace ddtr::dist {

namespace {

std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

}  // namespace

MergeStats SegmentMerger::merge(const std::string& dir) {
  core::PersistentSimulationCache cache(dir);
  const std::vector<std::string> segments = cache.segment_paths();

  MergeStats stats;
  stats.segment_files = segments.size();
  stats.bytes_before = file_bytes(cache.file_path());
  for (const std::string& seg : segments) {
    stats.bytes_before += file_bytes(seg);
  }

  cache.load();
  stats.entries = cache.loaded_count();
  stats.duplicates_dropped = cache.load_stats().superseded;
  stats.corrupt_dropped = cache.load_stats().corrupt_entries;

  // Idempotence fast path: no segments and nothing superseded means the
  // main file already IS the compacted merge result — leave its bytes
  // untouched.
  if (segments.empty() && stats.duplicates_dropped == 0 &&
      stats.corrupt_dropped == 0) {
    stats.bytes_after = stats.bytes_before;
    return stats;
  }

  // Compact first, delete second: a crash between the two costs only a
  // re-merge of leftover (now duplicate) segments, never data.
  if (cache.compact() != stats.entries) {
    stats.bytes_after = file_bytes(cache.file_path());
    return stats;  // I/O failure: best-effort, segments left in place
  }
  std::error_code ec;
  for (const std::string& seg : segments) {
    std::filesystem::remove(seg, ec);
  }
  stats.bytes_after = file_bytes(cache.file_path());
  return stats;
}

}  // namespace ddtr::dist
