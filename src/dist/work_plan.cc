#include "dist/work_plan.h"

#include "core/simulation_cache.h"
#include "ddt/kinds.h"

namespace ddtr::dist {

WorkPlan::WorkPlan(const core::CaseStudy& study,
                   const energy::EnergyModel& model, std::size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      representative_(study.representative) {
  const std::vector<ddt::DdtCombination> combos =
      ddt::enumerate_combinations(study.slot_kind_sets());
  units_.reserve(study.scenarios.size() * combos.size());
  for (std::size_t s = 0; s < study.scenarios.size(); ++s) {
    const core::Scenario& scenario = study.scenarios[s];
    for (const ddt::DdtCombination& combo : combos) {
      WorkUnit unit;
      unit.scenario_index = s;
      unit.combo = combo;
      unit.key = core::SimulationCache::key_of(scenario, combo, model);
      units_.push_back(std::move(unit));
    }
  }
}

std::vector<std::size_t> WorkPlan::shard_units(std::size_t shard) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (shard_of(units_[i]) == shard) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> WorkPlan::step1_units() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (units_[i].scenario_index == representative_) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> WorkPlan::step1_shard_units(
    std::size_t shard) const {
  std::vector<std::size_t> out;
  for (std::size_t i : step1_units()) {
    if (shard_of(units_[i]) == shard) out.push_back(i);
  }
  return out;
}

}  // namespace ddtr::dist
