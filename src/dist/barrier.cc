#include "dist/barrier.h"

#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/explorer.h"
#include "core/persistent_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddtr::dist {

SegmentBarrier::SegmentBarrier(std::string cache_dir, std::size_t shard_count,
                               std::string expected_content,
                               BarrierOptions options)
    : cache_dir_(std::move(cache_dir)),
      shard_count_(shard_count == 0 ? 1 : shard_count),
      expected_content_(std::move(expected_content)),
      options_(options) {}

std::vector<std::size_t> SegmentBarrier::missing_shards() const {
  const core::PersistentSimulationCache cache(cache_dir_);
  std::vector<std::size_t> missing;
  for (std::size_t shard = 0; shard < shard_count_; ++shard) {
    const auto content = core::PersistentSimulationCache::read_marker(
        cache.marker_path(core::step1_marker_name(expected_content_, shard,
                                                  shard_count_)));
    if (!content || *content != expected_content_) missing.push_back(shard);
  }
  return missing;
}

SegmentBarrier::Outcome SegmentBarrier::wait() const {
  // Wait-duration telemetry: how long workers park here is exactly the
  // straggler signal the ROADMAP's elastic-fleet work needs. The
  // histogram covers every outcome; the counters split them.
  static obs::Histogram& wait_us =
      obs::registry().histogram("barrier.wait_us");
  static obs::Counter& ready = obs::registry().counter("barrier.ready");
  static obs::Counter& cancelled =
      obs::registry().counter("barrier.cancelled");
  static obs::Counter& timeouts = obs::registry().counter("barrier.timeout");
  const std::uint64_t t0 = obs::now_us();
  const auto observe = [t0](obs::Counter& outcome) {
    wait_us.observe(obs::now_us() - t0);
    outcome.add();
  };
  const auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  while (true) {
    if (options_.cancel &&
        options_.cancel->load(std::memory_order_relaxed)) {
      observe(cancelled);
      return Outcome::kCancelled;
    }
    // Re-probe every shard each round (markers may be replaced, and on
    // shared storage a name can appear at any time); checking before the
    // first sleep makes a pre-satisfied barrier free.
    const std::vector<std::size_t> missing = missing_shards();
    if (missing.empty()) {
      observe(ready);
      return Outcome::kReady;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      observe(timeouts);
      std::ostringstream os;
      os << "step-1 segment barrier timed out after "
         << std::chrono::duration_cast<std::chrono::milliseconds>(
                options_.timeout)
                .count()
         << " ms in " << cache_dir_ << "; missing step-1 markers for shard";
      if (missing.size() > 1) os << 's';
      for (std::size_t i = 0; i < missing.size(); ++i) {
        os << (i == 0 ? " " : ", ") << missing[i] << "/" << shard_count_;
      }
      throw std::runtime_error(os.str());
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

}  // namespace ddtr::dist
