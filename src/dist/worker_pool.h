// Process-level fan-out for the `ddtr explore --workers N` coordinator:
// fork/execs one child per shard, waits for all of them, and — the
// cooperative-cancellation half of the contract — SIGTERMs the surviving
// siblings the moment any child fails or dies on a signal. A ddtr shard
// worker traps SIGTERM, raises its engine's cancel flag, checkpoints the
// records it already executed into its cache segment and exits, so a
// cancelled fleet loses wall-clock, never work.
#pragma once

#include <string>
#include <vector>

namespace ddtr::dist {

struct ProcessResult {
  bool spawned = false;   // fork/exec started the child at all
  bool signaled = false;  // child died on a signal
  int exit_code = -1;     // valid when spawned && !signaled (127 = exec failed)
  int term_signal = 0;    // valid when signaled

  bool ok() const { return spawned && !signaled && exit_code == 0; }
};

// Runs every command as a concurrent child process (argv-style: element 0
// is the program) and waits for all of them — and ONLY them: the wait
// loop polls the tracked pids individually, never waitpid(-1, ...), so a
// host program's own children are left for the host to reap. On the
// first failure the still-running children receive SIGTERM. Returns one
// result per command, index-aligned. POSIX-only, like the coordinator it
// serves.
std::vector<ProcessResult> run_worker_processes(
    const std::vector<std::vector<std::string>>& commands);

// Absolute path of the running executable (/proc/self/exe), falling back
// to argv0 — what the coordinator re-executes as shard workers.
std::string self_executable(const char* argv0);

}  // namespace ddtr::dist

