#include "profiling/memory_profile.h"

#include <algorithm>

namespace ddtr::prof {

ProfileCounters& ProfileCounters::operator+=(
    const ProfileCounters& other) noexcept {
  reads += other.reads;
  writes += other.writes;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  allocations += other.allocations;
  deallocations += other.deallocations;
  live_bytes += other.live_bytes;
  peak_bytes += other.peak_bytes;
  cpu_ops += other.cpu_ops;
  return *this;
}

}  // namespace ddtr::prof
