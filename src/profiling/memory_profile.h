// Run-time dynamic-memory profiling, the measurement substrate of the whole
// methodology. Every DDT implementation reports each underlying memory touch
// (pointer hop, header read, record read/write) and every heap allocation
// here; the energy/time models in src/energy consume the resulting counters.
//
// This mirrors the "profile object attached to each candidate DDT" of the
// paper's step 1: the same application code, run with different DDT
// implementations, produces different MemoryProfile contents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ddtr::prof {

// Raw counters gathered during one simulation run.
struct ProfileCounters {
  std::uint64_t reads = 0;           // number of memory read accesses
  std::uint64_t writes = 0;          // number of memory write accesses
  std::uint64_t bytes_read = 0;      // total bytes read
  std::uint64_t bytes_written = 0;   // total bytes written
  std::uint64_t allocations = 0;     // heap allocation events
  std::uint64_t deallocations = 0;   // heap deallocation events
  std::uint64_t live_bytes = 0;      // currently allocated bytes
  std::uint64_t peak_bytes = 0;      // maximum of live_bytes over the run
  std::uint64_t cpu_ops = 0;         // non-memory work (compares, arithmetic)

  std::uint64_t accesses() const noexcept { return reads + writes; }

  // Element-wise sum. Peaks are summed too: profiles being combined
  // describe disjoint coexisting memories (e.g. the two dominant DDTs of
  // one application), so the total footprint bound is the sum of the
  // individual bounds.
  ProfileCounters& operator+=(const ProfileCounters& other) noexcept;
};

// Mutable profile handed to DDT containers and application kernels.
// Deliberately lock-free and unsynchronized: each simulation owns its
// profiles exclusively (they live on the app's run() stack), which is what
// lets the parallel explorer run simulations concurrently without any
// contention — the parallel analogue of the paper's tool running
// simulations as independent processes. Never share one MemoryProfile
// between concurrent simulations.
class MemoryProfile {
 public:
  MemoryProfile() = default;
  explicit MemoryProfile(std::string name) : name_(std::move(name)) {}

  void record_read(std::size_t bytes, std::size_t count = 1) noexcept {
    counters_.reads += count;
    counters_.bytes_read += bytes * count;
  }

  void record_write(std::size_t bytes, std::size_t count = 1) noexcept {
    counters_.writes += count;
    counters_.bytes_written += bytes * count;
  }

  void record_cpu_ops(std::uint64_t ops) noexcept { counters_.cpu_ops += ops; }

  void on_alloc(std::size_t bytes) noexcept {
    ++counters_.allocations;
    counters_.live_bytes += bytes;
    if (counters_.live_bytes > counters_.peak_bytes) {
      counters_.peak_bytes = counters_.live_bytes;
    }
  }

  void on_free(std::size_t bytes) noexcept {
    ++counters_.deallocations;
    counters_.live_bytes -= bytes <= counters_.live_bytes
                                ? bytes
                                : counters_.live_bytes;
  }

  const ProfileCounters& counters() const noexcept { return counters_; }
  const std::string& name() const noexcept { return name_; }

  void reset() noexcept { counters_ = ProfileCounters{}; }

 private:
  std::string name_;
  ProfileCounters counters_;
};

}  // namespace ddtr::prof

