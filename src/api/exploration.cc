#include "api/exploration.h"

#include <stdexcept>

#include "core/case_studies.h"

namespace ddtr::api {

Exploration::Exploration(core::CaseStudy study)
    : Exploration(std::move(study), core::make_paper_energy_model()) {}

Exploration::Exploration(core::CaseStudy study, energy::EnergyModel model)
    : study_(std::move(study)), model_(std::move(model)) {}

Exploration& Exploration::jobs(std::size_t lanes) {
  options_.jobs = lanes;
  return *this;
}

Exploration& Exploration::survivor_cap(double fraction) {
  options_.survivor_cap_fraction = fraction;
  return *this;
}

Exploration& Exploration::champions_per_metric(std::size_t count) {
  options_.champions_per_metric = count;
  return *this;
}

Exploration& Exploration::step1_policy(core::Step1Policy policy) {
  options_.step1_policy = policy;
  return *this;
}

Exploration& Exploration::memoize_simulations(bool enabled) {
  options_.memoize_simulations = enabled;
  return *this;
}

Exploration& Exploration::cache_dir(std::string dir) {
  options_.cache_dir = std::move(dir);
  return *this;
}

Exploration& Exploration::on_progress(core::ProgressObserver observer) {
  options_.progress = std::move(observer);
  return *this;
}

const core::ExplorationReport& Exploration::run() {
  // Cleared up front: if this run throws (e.g. out of a progress
  // observer), a stale report from an earlier run must not masquerade as
  // the new configuration's result.
  report_.reset();
  const core::ExplorationEngine engine(model_, options_);
  report_ = engine.explore(study_);
  return *report_;
}

const core::ExplorationReport& Exploration::report() const {
  if (!report_) {
    throw std::logic_error("Exploration::report(): run() has not completed");
  }
  return *report_;
}

}  // namespace ddtr::api
