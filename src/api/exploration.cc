#include "api/exploration.h"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/case_studies.h"
#include "dist/barrier.h"
#include "dist/segment_merger.h"

namespace ddtr::api {

Exploration::Exploration(core::CaseStudy study)
    : Exploration(std::move(study), core::make_paper_energy_model()) {}

Exploration::Exploration(core::CaseStudy study, energy::EnergyModel model)
    : study_(std::move(study)),
      model_(std::move(model)),
      cancel_(std::make_shared<std::atomic<bool>>(false)) {
  options_.cancel = cancel_;
}

Exploration& Exploration::jobs(std::size_t lanes) {
  options_.jobs = lanes;
  return *this;
}

Exploration& Exploration::survivor_cap(double fraction) {
  options_.survivor_cap_fraction = fraction;
  return *this;
}

Exploration& Exploration::champions_per_metric(std::size_t count) {
  options_.champions_per_metric = count;
  return *this;
}

Exploration& Exploration::step1_policy(core::Step1Policy policy) {
  options_.step1_policy = policy;
  return *this;
}

Exploration& Exploration::memoize_simulations(bool enabled) {
  options_.memoize_simulations = enabled;
  return *this;
}

Exploration& Exploration::cache_dir(std::string dir) {
  options_.cache_dir = std::move(dir);
  return *this;
}

Exploration& Exploration::shard(std::size_t index, std::size_t count) {
  options_.shard_index = index;
  options_.shard_count = count == 0 ? 1 : count;
  return *this;
}

Exploration& Exploration::step1_sharded(bool enabled) {
  options_.step1_sharded = enabled;
  return *this;
}

Exploration& Exploration::barrier_timeout(std::chrono::milliseconds timeout) {
  barrier_timeout_ = timeout;
  return *this;
}

Exploration& Exploration::workers(std::size_t count) {
  workers_ = count == 0 ? 1 : count;
  return *this;
}

Exploration& Exploration::on_progress(core::ProgressObserver observer) {
  options_.progress = std::move(observer);
  return *this;
}

Exploration& Exploration::shared_cache(core::SimulationCache* cache) {
  options_.shared_cache = cache;
  return *this;
}

Exploration& Exploration::shared_persistent(
    core::PersistentSimulationCache* persistent) {
  options_.shared_persistent = persistent;
  return *this;
}

Exploration& Exploration::shared_pool(support::ThreadPool* pool) {
  options_.shared_pool = pool;
  return *this;
}

Exploration& Exploration::trace_sink(obs::TraceWriter* sink) {
  options_.trace_sink = sink;
  return *this;
}

void Exploration::cancel() {
  cancel_->store(true, std::memory_order_relaxed);
}

Exploration& Exploration::cancel_token(
    std::shared_ptr<std::atomic<bool>> token) {
  if (!token) {
    throw std::invalid_argument("Exploration::cancel_token: null token");
  }
  cancel_ = std::move(token);
  options_.cancel = cancel_;
  return *this;
}

const core::ExplorationReport& Exploration::run() {
  // Cleared up front: if this run throws (e.g. out of a progress
  // observer), a stale report from an earlier run must not masquerade as
  // the new configuration's result.
  report_.reset();
  if (workers_ > 1) {
    if (options_.shard_count > 1) {
      throw std::invalid_argument(
          "Exploration: workers() and shard() are mutually exclusive — a "
          "shard worker is spawned BY a workers() run");
    }
    return run_distributed();
  }
  core::ExplorationOptions options = options_;
  if (options.step1_sharded && options.shard_count > 1 &&
      !options.step1_barrier) {
    options.step1_barrier = make_step1_barrier(options);
  }
  const core::ExplorationEngine engine(model_, options);
  report_ = engine.explore(study_);
  return *report_;
}

core::Step1Barrier Exploration::make_step1_barrier(
    const core::ExplorationOptions& options) const {
  dist::BarrierOptions barrier_options;
  barrier_options.timeout = barrier_timeout_;
  barrier_options.cancel = options.cancel;
  const auto barrier = std::make_shared<dist::SegmentBarrier>(
      options.cache_dir, options.shard_count,
      core::step1_fingerprint(study_, model_, options.step1_policy),
      barrier_options);
  return [barrier] { barrier->wait(); };
}

const core::ExplorationReport& Exploration::run_distributed() {
  if (options_.cache_dir.empty()) {
    throw std::invalid_argument(
        "Exploration: workers() requires cache_dir() — shard workers meet "
        "only through cache segments");
  }
  const std::size_t count = workers_;

  // Shard engines tick progress concurrently (each serializes only its
  // own stream); one shared lock keeps the user observer single-threaded.
  // Events carry shard_index/shard_count, so the streams stay separable.
  core::ProgressObserver serialized;
  if (options_.progress) {
    serialized = [observer = options_.progress,
                  mu = std::make_shared<std::mutex>()](
                     const core::StepProgress& p) {
      std::lock_guard<std::mutex> lock(*mu);
      observer(p);
    };
  }

  // With step-1 sharding, every in-process worker parks in the SAME
  // barrier object (wait() is stateless and re-entrant); the markers and
  // segments still go through the cache directory, exactly like a
  // cross-process fleet, so this path exercises the real rendezvous.
  core::Step1Barrier shared_barrier;
  if (options_.step1_sharded) {
    core::ExplorationOptions probe = options_;
    probe.shard_count = count;
    shared_barrier = make_step1_barrier(probe);
  }

  // Phase 1: every shard as one thread. All shards share the session's
  // cancel flag, so a failing shard — or a user cancel() — stops the
  // whole fleet cooperatively; each shard still checkpoints what it
  // executed into its own segment.
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(count);
  threads.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    threads.emplace_back([this, s, count, &serialized, &errors,
                          &shared_barrier] {
      try {
        core::ExplorationOptions options = options_;
        options.shard_index = s;
        options.shard_count = count;
        options.progress = serialized;
        options.step1_barrier = shared_barrier;
        const core::ExplorationEngine engine(model_, options);
        engine.explore(study_);
      } catch (...) {
        errors[s] = std::current_exception();
        cancel_->store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Phase 2: consolidate the segments (also compacts the main file).
  dist::SegmentMerger::merge(options_.cache_dir);

  // Phase 3: the coordinator pass — unsharded, over the merged cache. It
  // replays every unit (zero executed simulations) and its report is
  // byte-identical to a single-process run's.
  const core::ExplorationEngine engine(model_, options_);
  report_ = engine.explore(study_);
  return *report_;
}

const core::ExplorationReport& Exploration::report() const {
  if (!report_) {
    throw std::logic_error("Exploration::report(): run() has not completed");
  }
  return *report_;
}

}  // namespace ddtr::api
