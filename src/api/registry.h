// Workload registry: the public entry point that makes case studies
// pluggable data instead of compiled-in special cases. A workload
// self-registers a stable name, a one-line description, and a factory
// turning CaseStudyOptions into a core::CaseStudy; every framework
// consumer (the `ddtr` CLI, the bench reproduction pass, user programs)
// enumerates the same registry instead of hardcoding the paper's four
// applications. The paper apps themselves are registered this way (see
// api/builtin_workloads.cc) — the methodology is application-agnostic, so
// nothing in the exploration path knows they are special.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/case_studies.h"
#include "core/simulation.h"

namespace ddtr::api {

// Builds one study instance; `options` carries the trace-length scaling
// every workload honours (CaseStudyOptions::scaled).
using StudyFactory =
    std::function<core::CaseStudy(const core::CaseStudyOptions&)>;

struct WorkloadInfo {
  std::string name;         // stable lookup key, e.g. "route" (CLI --app)
  std::string description;  // one line, shown by `ddtr apps`
  StudyFactory factory;
};

// An ordered, name-keyed collection of workloads. Thread-safe: reads and
// registrations may come from any thread (registration normally happens
// during startup, lookups from exploration fan-out lanes).
class StudyRegistry {
 public:
  // Registers a workload. Throws std::invalid_argument when the name is
  // empty, the factory is null, or the name is already taken.
  void add(WorkloadInfo info);

  bool contains(const std::string& name) const;
  std::size_t size() const;
  // Workload names in registration order (the built-ins register in the
  // paper's Table 1 order: route, url, ipchains, drr).
  std::vector<std::string> names() const;
  // Throws std::out_of_range for unknown names. The returned reference
  // stays valid for the registry's lifetime (workloads are never removed).
  const WorkloadInfo& info(const std::string& name) const;
  // Looks up `name` and runs its factory. Throws std::out_of_range for
  // unknown names.
  core::CaseStudy make_study(const std::string& name,
                             const core::CaseStudyOptions& options) const;

 private:
  mutable std::mutex mu_;
  // info() hands out long-lived references, so entries live on the heap
  // where vector growth cannot move them.
  std::vector<std::unique_ptr<WorkloadInfo>> workloads_;
  std::unordered_map<std::string, std::size_t> index_;
};

// The process-wide registry, with the four paper workloads already
// registered. User programs add their own:
//
//   api::registry().add({"mydevice", "my appliance's packet path",
//                        [](const core::CaseStudyOptions& o) { ... }});
StudyRegistry& registry();

namespace detail {
// Defined in api/builtin_workloads.cc; called once by registry().
void register_builtin_workloads(StudyRegistry& registry);
}  // namespace detail

}  // namespace ddtr::api

