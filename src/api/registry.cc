#include "api/registry.h"

#include <stdexcept>
#include <utility>

namespace ddtr::api {

void StudyRegistry::add(WorkloadInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("workload name must not be empty");
  }
  if (!info.factory) {
    throw std::invalid_argument("workload '" + info.name +
                                "' has no factory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(info.name) != 0) {
    throw std::invalid_argument("workload '" + info.name +
                                "' is already registered");
  }
  // Vector first, map second with rollback: either both structures see
  // the workload or neither does, even if an insertion throws.
  const std::string name = info.name;
  workloads_.push_back(std::make_unique<WorkloadInfo>(std::move(info)));
  try {
    index_.emplace(name, workloads_.size() - 1);
  } catch (...) {
    workloads_.pop_back();
    throw;
  }
}

bool StudyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(name) != 0;
}

std::size_t StudyRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workloads_.size();
}

std::vector<std::string> StudyRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(workloads_.size());
  for (const auto& workload : workloads_) out.push_back(workload->name);
  return out;
}

const WorkloadInfo& StudyRegistry::info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("unknown workload '" + name + "'");
  }
  return *workloads_[it->second];
}

core::CaseStudy StudyRegistry::make_study(
    const std::string& name, const core::CaseStudyOptions& options) const {
  // info() takes the lock; the factory runs outside it, so factories may
  // consult the registry (and slow trace generation never blocks lookups).
  return info(name).factory(options);
}

StudyRegistry& registry() {
  static StudyRegistry* instance = [] {
    auto* reg = new StudyRegistry;
    detail::register_builtin_workloads(*reg);
    return reg;
  }();
  return *instance;
}

}  // namespace ddtr::api
