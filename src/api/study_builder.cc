#include "api/study_builder.h"

#include <stdexcept>
#include <utility>

#include "nettrace/generator.h"
#include "nettrace/presets.h"
#include "nettrace/trace_store.h"

namespace ddtr::api {

StudyBuilder::StudyBuilder(std::string name) : name_(std::move(name)) {}

StudyBuilder& StudyBuilder::slots(std::size_t count) {
  slots_ = count;
  return *this;
}

StudyBuilder& StudyBuilder::packets(std::size_t per_trace) {
  packets_ = per_trace;
  return *this;
}

StudyBuilder& StudyBuilder::seed_offset(std::size_t offset) {
  seed_offset_ = offset;
  return *this;
}

StudyBuilder& StudyBuilder::network(std::string preset_name) {
  networks_.push_back(std::move(preset_name));
  return *this;
}

StudyBuilder& StudyBuilder::networks(
    std::initializer_list<const char*> preset_names) {
  for (const char* name : preset_names) networks_.emplace_back(name);
  return *this;
}

StudyBuilder& StudyBuilder::first_networks(std::size_t count) {
  for (const net::NetworkPreset& preset : net::first_presets(count)) {
    networks_.push_back(preset.name);
  }
  return *this;
}

StudyBuilder& StudyBuilder::config(std::string label, AppFactory factory) {
  configs_.push_back({std::move(label), std::move(factory)});
  return *this;
}

StudyBuilder& StudyBuilder::app(AppFactory factory) {
  return config("", std::move(factory));
}

StudyBuilder& StudyBuilder::representative(std::size_t scenario_index) {
  representative_ = scenario_index;
  return *this;
}

StudyBuilder& StudyBuilder::trace_store(net::TraceStore& store) {
  store_ = &store;
  return *this;
}

std::size_t StudyBuilder::scenario_count() const {
  return networks_.size() * configs_.size();
}

core::CaseStudy StudyBuilder::build() const {
  if (name_.empty()) {
    throw std::invalid_argument("study has no name");
  }
  if (slots_ == 0) {
    throw std::invalid_argument("study '" + name_ + "' declares no slots");
  }
  if (packets_ == 0) {
    throw std::invalid_argument("study '" + name_ +
                                "' declares no trace length (packets)");
  }
  if (networks_.empty()) {
    throw std::invalid_argument("study '" + name_ + "' has no networks");
  }
  if (configs_.empty()) {
    throw std::invalid_argument("study '" + name_ +
                                "' has no application configurations");
  }
  if (representative_ >= scenario_count()) {
    throw std::invalid_argument("study '" + name_ +
                                "' representative index out of range");
  }
  for (const ConfigCell& cell : configs_) {
    if (!cell.factory) {
      throw std::invalid_argument("study '" + name_ +
                                  "' has a null application factory");
    }
  }

  net::TraceStore& store = store_ ? *store_ : net::TraceStore::global();
  core::CaseStudy study;
  study.name = name_;
  study.slots = slots_;
  study.representative = representative_;
  study.scenarios.reserve(scenario_count());
  for (const std::string& network : networks_) {
    const net::NetworkPreset& preset = net::network_preset(network);
    net::TraceGenerator::Options trace_options;
    trace_options.packet_count = packets_;
    trace_options.seed_offset = seed_offset_;
    // One immutable trace per network, shared by every config cell (and
    // every other study replaying the same preset at this length).
    const auto trace = store.get_or_generate(preset, trace_options);
    for (const ConfigCell& cell : configs_) {
      core::Scenario scenario;
      scenario.network = preset.name;
      scenario.config = cell.label;
      scenario.trace = trace;
      scenario.app = cell.factory();
      if (!scenario.app) {
        throw std::invalid_argument("study '" + name_ +
                                    "' factory returned a null application");
      }
      study.scenarios.push_back(std::move(scenario));
    }
  }

  // Per-slot legal kind sets come from the application (all scenarios of a
  // study share one application family, so the representative speaks for
  // every cell).
  study.slot_kinds = study.scenarios[study.representative].app->slot_kinds();
  if (study.slot_kinds.size() != slots_) {
    throw std::invalid_argument(
        "study '" + name_ + "' app declares " +
        std::to_string(study.slot_kinds.size()) + " slot kind sets for " +
        std::to_string(slots_) + " slots");
  }
  for (const auto& set : study.slot_kinds) {
    if (set.empty()) {
      throw std::invalid_argument("study '" + name_ +
                                  "' has an empty slot kind set");
    }
  }
  return study;
}

}  // namespace ddtr::api
