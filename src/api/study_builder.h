// Fluent, declarative construction of core::CaseStudy values — the
// replacement for hand-rolled Scenario assembly. A study is described as a
// grid: a list of network presets crossed with a list of application
// configurations (label + app factory). build() expands the cross-product
// in network-major order (the order every paper study uses), builds each
// network's trace exactly once through a net::TraceStore so all scenarios
// of that network share one immutable trace, and validates the result.
//
//   core::CaseStudy study =
//       api::StudyBuilder("Route")
//           .slots(2)
//           .packets(2500)
//           .first_networks(7)
//           .config("table=128", [] { return make_app(128); })
//           .config("table=256", [] { return make_app(256); })
//           .build();
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.h"

namespace ddtr::net {
class TraceStore;
}

namespace ddtr::api {

class StudyBuilder {
 public:
  // Builds the application instance of one scenario. Called once per
  // (network, config) cell; capture the configuration in the closure.
  using AppFactory =
      std::function<std::shared_ptr<apps::NetworkApplication>()>;

  // `name` is the study's display name (ExplorationReport::app_name).
  explicit StudyBuilder(std::string name);

  // Number of dominant dynamic data structures (DdtCombination slots).
  StudyBuilder& slots(std::size_t count);
  // Packets per generated trace (scale it with CaseStudyOptions before
  // calling, e.g. options.route_packets).
  StudyBuilder& packets(std::size_t per_trace);
  // Generation-seed offset for every network trace (default 0, the paper
  // sample; see CaseStudyOptions::seed_offset).
  StudyBuilder& seed_offset(std::size_t offset);
  // Appends one network preset (by nettrace preset name) to the grid.
  StudyBuilder& network(std::string preset_name);
  StudyBuilder& networks(std::initializer_list<const char*> preset_names);
  // Appends the first `count` presets, the paper's convention for Route
  // (7) and IPchains (7).
  StudyBuilder& first_networks(std::size_t count);
  // Appends one application configuration: `label` becomes
  // Scenario::config ("table=128", "rules=64", or "" for single-config
  // studies via app()).
  StudyBuilder& config(std::string label, AppFactory factory);
  // Single-configuration study: one unlabeled config.
  StudyBuilder& app(AppFactory factory);
  // Scenario index step 1 uses as the representative network
  // configuration (default 0, the first grid cell).
  StudyBuilder& representative(std::size_t scenario_index);
  // Trace store to build/share traces through (default: the process-wide
  // net::TraceStore::global()). Must outlive build().
  StudyBuilder& trace_store(net::TraceStore& store);

  // Scenarios build() will produce: networks x configs.
  std::size_t scenario_count() const;

  // Expands the grid. Throws std::invalid_argument when the description
  // is incomplete (no name, no slots, no networks, no configs, zero
  // packets, representative out of range) and std::out_of_range for
  // unknown preset names.
  core::CaseStudy build() const;

 private:
  struct ConfigCell {
    std::string label;
    AppFactory factory;
  };

  std::string name_;
  std::size_t slots_ = 0;
  std::size_t packets_ = 0;
  std::size_t seed_offset_ = 0;
  std::vector<std::string> networks_;
  std::vector<ConfigCell> configs_;
  std::size_t representative_ = 0;
  net::TraceStore* store_ = nullptr;  // nullptr = global()
};

}  // namespace ddtr::api

