// Exploration session: the public way to drive the three-step methodology
// on one case study. Wraps core::ExplorationEngine behind chainable
// options and owns the resulting report:
//
//   api::Exploration session(api::registry().make_study("url", options));
//   session.jobs(4)
//       .survivor_cap(0.2)
//       .on_progress([](const core::StepProgress& p) { ... });
//   const core::ExplorationReport& report = session.run();
//
// The progress observer fires per simulation within each step (see
// core::StepProgress). Reports are bit-identical at every jobs count,
// with or without an observer.
//
// Distributed execution (see src/dist/): shard(i, n) turns run() into one
// worker of an n-way sharded exploration (requires cache_dir — shards
// meet only through cache segments); step1_sharded() additionally splits
// step 1 across the fleet, with the workers rendezvousing on marker
// files through a dist::SegmentBarrier that run() installs
// automatically; workers(n) runs the whole distributed flow in-process —
// n shard sessions on n threads, a segment merge, then a coordinator
// pass whose report (byte-identical to a single-process run, zero
// executed simulations) becomes report().
// cancel() cooperatively stops a running exploration from an observer,
// another thread or a signal handler; the cancelled run still checkpoints
// its executed records to the persistent cache.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/explorer.h"
#include "core/simulation.h"
#include "energy/energy_model.h"

namespace ddtr::api {

class Exploration {
 public:
  // Uses the paper's cost model (core::make_paper_energy_model).
  explicit Exploration(core::CaseStudy study);
  Exploration(core::CaseStudy study, energy::EnergyModel model);

  // Chainable option setters; see core::ExplorationOptions for semantics.
  Exploration& jobs(std::size_t lanes);
  Exploration& survivor_cap(double fraction);
  Exploration& champions_per_metric(std::size_t count);
  Exploration& step1_policy(core::Step1Policy policy);
  Exploration& memoize_simulations(bool enabled);
  // Persist the simulation cache across runs in this directory (empty =
  // in-memory only). A rerun with a warm cache executes zero simulations
  // and produces a byte-identical report; see
  // core::ExplorationOptions::cache_dir.
  Exploration& cache_dir(std::string dir);
  // Run as worker shard `index` of `count`: execute only this shard's
  // step-2 units and store them into the per-shard cache segment.
  // Requires cache_dir(). count <= 1 restores single-process execution.
  Exploration& shard(std::size_t index, std::size_t count);
  // Shard step 1 too: the worker executes only its owned step-1 units,
  // checkpoints them into its segment, publishes a
  // "step1.<fingerprint>.shard<I>of<N>.done" marker, and waits in a
  // dist::SegmentBarrier (installed automatically by run()) until every
  // sibling's marker exists — then merges all segments and replays the
  // full step-1 set, so survivor selection (and the final report) stays
  // byte-identical to the unsharded run. All N workers must be running
  // concurrently; a missing sibling surfaces as a clean barrier-timeout
  // error (see barrier_timeout()), and cancel() while parked in the
  // barrier still leaves a loadable checkpointed segment.
  Exploration& step1_sharded(bool enabled = true);
  // Ceiling on the step-1 barrier wait (default 10 minutes). On expiry
  // run() throws std::runtime_error naming the missing shards.
  Exploration& barrier_timeout(std::chrono::milliseconds timeout);
  // Distributed run driven entirely from the API: run() executes `count`
  // in-process shard workers (one thread each, each with this session's
  // jobs() lanes and its own cache segment), merges the segments
  // (dist::SegmentMerger), then replays the merged cache in a final
  // coordinator pass — the report() — which executes zero simulations
  // and is byte-identical to a single-process run. Requires cache_dir();
  // mutually exclusive with shard(). count <= 1 restores the
  // single-process path.
  Exploration& workers(std::size_t count);
  Exploration& on_progress(core::ProgressObserver observer);

  // --- Warm-serving session reuse (see src/serve/ and the corresponding
  // ExplorationOptions fields) ------------------------------------------
  // Memoize into an externally-owned cache that outlives this session, so
  // a later session over the same study replays from memory (executed
  // counts are per-run deltas). Mutually exclusive with shard()/workers().
  Exploration& shared_cache(core::SimulationCache* cache);
  // Append new records to an already-loaded persistent cache instead of
  // load-append-close per run. Requires shared_cache(); the owner must
  // serialize run() calls sharing one instance.
  Exploration& shared_persistent(core::PersistentSimulationCache* persistent);
  // Fan simulations over an externally-owned pool (lanes spawn once per
  // service, not once per run).
  Exploration& shared_pool(support::ThreadPool* pool);
  // Emit Chrome trace_event spans for this session's runs into an
  // externally-owned writer (see src/obs/trace.h). Null disables tracing;
  // purely observational — reports stay byte-identical either way.
  Exploration& trace_sink(obs::TraceWriter* sink);

  // Cooperative cancellation: stops starting new simulations (running
  // ones finish, executed records are checkpointed to the persistent
  // cache) and marks the resulting report cancelled. Thread-safe;
  // callable from a progress observer. One-way for the session.
  void cancel();
  // Replaces the session's cancel flag with an external one — e.g. a
  // process-global flag a SIGTERM handler flips (the ddtr shard worker's
  // checkpoint-on-terminate path).
  Exploration& cancel_token(std::shared_ptr<std::atomic<bool>> token);

  const core::CaseStudy& study() const noexcept { return study_; }
  const core::ExplorationOptions& options() const noexcept {
    return options_;
  }

  // Runs the three steps and stores the report. Calling run() again
  // re-explores (e.g. after changing options) and replaces the report.
  const core::ExplorationReport& run();

  bool has_report() const noexcept { return report_.has_value(); }
  // Typed access to the last run's report; throws std::logic_error when
  // run() has not completed yet.
  const core::ExplorationReport& report() const;

 private:
  const core::ExplorationReport& run_distributed();
  // A Step1Barrier hook wrapping dist::SegmentBarrier for `options`'
  // cache dir / geometry / policy; shared by every in-process worker of
  // a workers() run (wait() is stateless).
  core::Step1Barrier make_step1_barrier(
      const core::ExplorationOptions& options) const;

  core::CaseStudy study_;
  energy::EnergyModel model_;
  core::ExplorationOptions options_;
  std::size_t workers_ = 1;
  std::chrono::milliseconds barrier_timeout_ = std::chrono::minutes(10);
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::optional<core::ExplorationReport> report_;
};

}  // namespace ddtr::api

