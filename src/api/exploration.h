// Exploration session: the public way to drive the three-step methodology
// on one case study. Wraps core::ExplorationEngine behind chainable
// options and owns the resulting report:
//
//   api::Exploration session(api::registry().make_study("url", options));
//   session.jobs(4)
//       .survivor_cap(0.2)
//       .on_progress([](const core::StepProgress& p) { ... });
//   const core::ExplorationReport& report = session.run();
//
// The progress observer fires per simulation within each step (see
// core::StepProgress) — the hook future sharding / cancellation layers
// build on. Reports are bit-identical at every jobs count, with or
// without an observer.
#ifndef DDTR_API_EXPLORATION_H_
#define DDTR_API_EXPLORATION_H_

#include <optional>
#include <string>
#include <utility>

#include "core/explorer.h"
#include "core/simulation.h"
#include "energy/energy_model.h"

namespace ddtr::api {

class Exploration {
 public:
  // Uses the paper's cost model (core::make_paper_energy_model).
  explicit Exploration(core::CaseStudy study);
  Exploration(core::CaseStudy study, energy::EnergyModel model);

  // Chainable option setters; see core::ExplorationOptions for semantics.
  Exploration& jobs(std::size_t lanes);
  Exploration& survivor_cap(double fraction);
  Exploration& champions_per_metric(std::size_t count);
  Exploration& step1_policy(core::Step1Policy policy);
  Exploration& memoize_simulations(bool enabled);
  // Persist the simulation cache across runs in this directory (empty =
  // in-memory only). A rerun with a warm cache executes zero simulations
  // and produces a byte-identical report; see
  // core::ExplorationOptions::cache_dir.
  Exploration& cache_dir(std::string dir);
  Exploration& on_progress(core::ProgressObserver observer);

  const core::CaseStudy& study() const noexcept { return study_; }
  const core::ExplorationOptions& options() const noexcept {
    return options_;
  }

  // Runs the three steps and stores the report. Calling run() again
  // re-explores (e.g. after changing options) and replaces the report.
  const core::ExplorationReport& run();

  bool has_report() const noexcept { return report_.has_value(); }
  // Typed access to the last run's report; throws std::logic_error when
  // run() has not completed yet.
  const core::ExplorationReport& report() const;

 private:
  core::CaseStudy study_;
  energy::EnergyModel model_;
  core::ExplorationOptions options_;
  std::optional<core::ExplorationReport> report_;
};

}  // namespace ddtr::api

#endif  // DDTR_API_EXPLORATION_H_
