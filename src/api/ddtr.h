// Umbrella header of the public ddtr API. Everything a downstream user
// needs to drive the framework on their own workload:
//
//   1. Register (or look up) a workload        — api/registry.h
//   2. Describe its scenario grid declaratively — api/study_builder.h
//   3. Run the three-step methodology           — api/exploration.h
//
//   #include "api/ddtr.h"
//
//   ddtr::api::registry().add({"mydevice", "my appliance's packet path",
//       [](const ddtr::core::CaseStudyOptions& options) {
//         return ddtr::api::StudyBuilder("MyDevice")
//             .slots(2)
//             .packets(options.url_packets)
//             .networks({"nlanr-campus", "dart-berry"})
//             .app([] { return std::make_shared<MyApp>(...); })
//             .build();
//       }});
//   ddtr::api::Exploration session(
//       ddtr::api::registry().make_study("mydevice", {}));
//   const auto& report = session.jobs(4).run();
//
// The core types the API traffics in (CaseStudy, ExplorationReport,
// Pareto utilities, the paper energy model) come along transitively.
#pragma once

#include "api/exploration.h"
#include "api/registry.h"
#include "api/study_builder.h"
#include "core/case_studies.h"
#include "core/explorer.h"
#include "core/pareto.h"

