// The four paper case studies (§4), expressed as registry workloads built
// with StudyBuilder. These definitions are the canonical ones — the legacy
// core::make_*_study free functions are thin deprecated shims over this
// registry — and reproduce the exact exploration-space shape of the seed:
// Route over 7 networks x 2 radix-table sizes (1400 exhaustive
// simulations), URL over 5 networks (500), IPchains over 7 networks x 3
// rule-set sizes (2100), DRR over 5 networks (500).
#include "api/registry.h"
#include "api/study_builder.h"
#include "apps/drr/drr_app.h"
#include "apps/ipchains/ipchains_app.h"
#include "apps/route/route_app.h"
#include "apps/url/url_app.h"
#include "core/case_studies.h"
#include "core/simulation.h"

namespace ddtr::api::detail {

namespace {

core::CaseStudy make_route(const core::CaseStudyOptions& options) {
  StudyBuilder builder("Route");
  builder.slots(2).packets(options.route_packets)
      .seed_offset(options.seed_offset).first_networks(7);
  for (const std::size_t table : {std::size_t{128}, std::size_t{256}}) {
    builder.config("table=" + std::to_string(table), [table] {
      return std::make_shared<apps::route::RouteApp>(
          apps::route::RouteApp::Config{table, 7001 + table});
    });
  }
  return builder.build();
}

core::CaseStudy make_url(const core::CaseStudyOptions& options) {
  // The web-heavy wireless presets are the natural choice for a URL
  // switch (paper: 100 combinations x 5 networks = 500 exhaustive).
  return StudyBuilder("URL")
      .slots(2)
      .packets(options.url_packets)
      .seed_offset(options.seed_offset)
      .networks({"dart-berry", "dart-sudikoff", "dart-whittemore",
                 "dart-library", "nlanr-campus"})
      .app([] {
        return std::make_shared<apps::url::UrlApp>(
            apps::url::UrlApp::Config{24, 8, 8101});
      })
      .build();
}

core::CaseStudy make_ipchains(const core::CaseStudyOptions& options) {
  StudyBuilder builder("IPchains");
  builder.slots(2).packets(options.ipchains_packets)
      .seed_offset(options.seed_offset).first_networks(7);
  for (const std::size_t rules :
       {std::size_t{32}, std::size_t{64}, std::size_t{128}}) {
    builder.config("rules=" + std::to_string(rules), [rules] {
      return std::make_shared<apps::ipchains::IpchainsApp>(
          apps::ipchains::IpchainsApp::Config{rules, 256, 9201 + rules});
    });
  }
  return builder.build();
}

core::CaseStudy make_drr(const core::CaseStudyOptions& options) {
  // 5 networks, Level of Fairness fixed at 1 MTU (500 exhaustive).
  return StudyBuilder("DRR")
      .slots(2)
      .packets(options.drr_packets)
      .seed_offset(options.seed_offset)
      .networks({"dart-berry", "dart-dorm", "dart-library",
                 "nlanr-satellite", "nlanr-campus"})
      .app([] {
        return std::make_shared<apps::drr::DrrApp>(
            apps::drr::DrrApp::Config{1.0, 1.15, 64, 10301});
      })
      .build();
}

}  // namespace

void register_builtin_workloads(StudyRegistry& registry) {
  // Registration order is the paper's Table 1 order; registry().names()
  // (and thus `ddtr apps` and the bench reproduction pass) preserve it.
  registry.add({"route",
                "IPv4 radix-tree forwarding, 7 networks x 2 table sizes",
                make_route});
  registry.add({"url",
                "URL-based switching proxy, 5 wireless/campus networks",
                make_url});
  registry.add({"ipchains",
                "stateful firewall, 7 networks x 3 activated rule sets",
                make_ipchains});
  registry.add({"drr",
                "Deficit Round Robin scheduler, 5 networks",
                make_drr});
}

}  // namespace ddtr::api::detail

// Deprecated shims declared in core/case_studies.h. They are defined here,
// in the api layer, so core never includes upward into api; they resolve
// through the registry to the exact definitions above.
namespace ddtr::core {

CaseStudy make_route_study(const CaseStudyOptions& options) {
  return api::registry().make_study("route", options);
}

CaseStudy make_url_study(const CaseStudyOptions& options) {
  return api::registry().make_study("url", options);
}

CaseStudy make_ipchains_study(const CaseStudyOptions& options) {
  return api::registry().make_study("ipchains", options);
}

CaseStudy make_drr_study(const CaseStudyOptions& options) {
  return api::registry().make_study("drr", options);
}

std::vector<CaseStudy> make_all_case_studies(
    const CaseStudyOptions& options) {
  std::vector<CaseStudy> studies;
  for (const std::string& name : api::registry().names()) {
    studies.push_back(api::registry().make_study(name, options));
  }
  return studies;
}

}  // namespace ddtr::core
