// Unit tests of the project linter (tools/lint). Each of the rule
// families is pinned twice: a known-bad snippet must fire and a
// known-good one must stay quiet — so a rule can neither silently die
// nor silently start flagging the idioms the tree actually uses. The
// accounting-version rule is exercised against a synthetic repo tree in
// a temp directory, one test per outcome.
#include "lint.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "deps.h"
#include "fix.h"
#include "locks.h"
#include "scan.h"

namespace lint = ddtr::lint;
namespace fs = std::filesystem;

namespace {

bool has_rule(const std::vector<lint::Finding>& findings,
              const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::Finding& f) { return f.rule == rule; });
}

std::size_t count_rule(const std::vector<lint::Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const lint::Finding& f) { return f.rule == rule; }));
}

// --- decoder-safety -----------------------------------------------------

TEST(DecoderSafety, FiresOnUncheckedReadAndMissingAtEnd) {
  const std::string bad = R"cc(
bool decode_thing(const std::string& payload, Thing& m) {
  std::istringstream is(payload);
  is.read(buf, 8);
  support::read_u32(is, m.version);
  return true;
}
)cc";
  const auto findings = lint::lint_source("src/serve/protocol.cc", bad);
  EXPECT_GE(count_rule(findings, "decoder-safety"), 2u)
      << "expected both the unchecked raw read and the missing at_end()";
}

TEST(DecoderSafety, QuietOnCheckedExactConsumptionDecoder) {
  const std::string good = R"cc(
bool decode_thing(const std::string& payload, Thing& m) {
  std::istringstream is(payload);
  return support::read_u32(is, m.version) && at_end(is);
}

DecodeStatus decode_frame(std::istream& is, Frame& frame) {
  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size) {
    return DecodeStatus::kCorrupt;
  }
  return DecodeStatus::kOk;
}
)cc";
  const auto findings = lint::lint_source("src/serve/protocol.cc", good);
  EXPECT_FALSE(has_rule(findings, "decoder-safety"))
      << "checked reads + at_end() is the blessed decoder shape";
}

TEST(DecoderSafety, ReadPrimitivesInBinaryIoAreInScope) {
  const std::string bad = R"cc(
bool read_le(std::istream& is, std::uint64_t& v, int width) {
  char buf[8];
  is.read(buf, width);
  v = 0;
  return true;
}
)cc";
  EXPECT_TRUE(has_rule(lint::lint_source("src/support/binary_io.cc", bad),
                       "decoder-safety"));
  // The same text outside the decoder-scope files is not a decoder.
  EXPECT_FALSE(has_rule(lint::lint_source("src/core/report.cc", bad),
                        "decoder-safety"));
}

TEST(DecoderSafety, FiresOnReinterpretCast) {
  const std::string bad = R"cc(
bool decode_thing(const std::string& payload, Thing& m) {
  std::istringstream is(payload);
  m.raw = *reinterpret_cast<const std::uint64_t*>(payload.data());
  return support::read_u32(is, m.version) && at_end(is);
}
)cc";
  EXPECT_TRUE(has_rule(lint::lint_source("src/serve/protocol.cc", bad),
                       "decoder-safety"));
}

// --- durability ---------------------------------------------------------

TEST(Durability, FiresOnUnsyncedRename) {
  const std::string bad = R"cc(
bool publish(const std::string& tmp, const std::string& target) {
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  return !ec;
}
)cc";
  const auto findings = lint::lint_source("src/core/persistent_cache.cc", bad);
  ASSERT_TRUE(has_rule(findings, "durability"));
}

TEST(Durability, QuietOnFsyncPairedRename) {
  const std::string good = R"cc(
bool publish(const std::string& tmp, const std::string& target,
             const std::string& dir) {
  if (!support::fsync_file(tmp)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) return false;
  support::fsync_dir(dir);
  return true;
}
)cc";
  EXPECT_FALSE(has_rule(lint::lint_source("src/core/persistent_cache.cc", good),
                        "durability"));
}

TEST(Durability, HalfPairedRenameStillFires) {
  // fsync_file alone is not enough: the rename itself needs the
  // directory entry synced.
  const std::string half = R"cc(
bool publish(const std::string& tmp, const std::string& target) {
  if (!support::fsync_file(tmp)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  return !ec;
}
)cc";
  EXPECT_TRUE(has_rule(lint::lint_source("src/core/persistent_cache.cc", half),
                       "durability"));
}

// --- allocation-policy --------------------------------------------------

TEST(AllocationPolicy, FiresOnRawNewDeleteInDdt) {
  const std::string bad = R"cc(
template <typename T>
class LeakyContainer {
  void grow() {
    Node* n = new Node;
    delete n;
    void* p = malloc(64);
    free(p);
  }
};
)cc";
  const auto findings = lint::lint_source("src/ddt/leaky.h", bad);
  EXPECT_GE(count_rule(findings, "allocation-policy"), 4u);
  // A fix-it naming the pool ships with the finding.
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.rule == "allocation-policy";
      });
  ASSERT_NE(it, findings.end());
  EXPECT_NE(it->fixit.find("support::Pool<T>"), std::string::npos);
}

TEST(AllocationPolicy, QuietOnPoolUseAndDeletedFunctions) {
  const std::string good = R"cc(
template <typename T>
class PooledContainer {
 public:
  PooledContainer(const PooledContainer&) = delete;
  PooledContainer& operator=(const PooledContainer&) = delete;
  void grow() { node_ = pool_.create(); }
  void shrink() { pool_.destroy(node_); }
 private:
  support::Pool<Node> pool_;
};
)cc";
  EXPECT_FALSE(has_rule(lint::lint_source("src/ddt/pooled.h", good),
                        "allocation-policy"));
}

TEST(AllocationPolicy, OutOfScopeFilesAreExempt) {
  // The arena itself IS the pool: its chunk allocations are the one
  // blessed `new` and live outside src/ddt/.
  const std::string arena = "void* chunk() { return new char[4096]; }\n";
  EXPECT_FALSE(has_rule(lint::lint_source("src/support/arena.h", arena),
                        "allocation-policy"));
}

// --- determinism --------------------------------------------------------

TEST(Determinism, FiresInKeyFunctionBodyAnywhere) {
  const std::string bad = R"cc(
std::uint64_t content_hash() {
  return static_cast<std::uint64_t>(time(nullptr));
}
)cc";
  EXPECT_TRUE(has_rule(lint::lint_source("src/nettrace/trace.cc", bad),
                       "determinism"));
}

TEST(Determinism, FiresOnWholeKeyFile) {
  const std::string bad = R"cc(
inline std::uint64_t helper() {
  std::random_device rd;
  return rd();
}
)cc";
  EXPECT_TRUE(has_rule(lint::lint_source("src/support/fnv_hash.h", bad),
                       "determinism"));
}

TEST(Determinism, QuietOutsideKeyCode) {
  // Run tokens and temp-file nonces legitimately use pid/random_device —
  // outside key functions that must stay legal.
  const std::string good = R"cc(
std::string make_run_token() {
  std::random_device rd;
  return std::to_string(::getpid()) + "." + std::to_string(rd());
}
std::uint64_t shard_of_key(const std::string& key, std::size_t n) {
  return fnv1a64(key.data(), key.size()) % n;
}
)cc";
  EXPECT_FALSE(has_rule(lint::lint_source("src/core/explorer.cc", good),
                        "determinism"));
}

TEST(Determinism, FiresInsideShardOfKeyBody) {
  const std::string bad = R"cc(
std::uint64_t shard_of_key(const std::string& key, std::size_t n) {
  return (fnv1a64(key.data(), key.size()) ^ ::getpid()) % n;
}
)cc";
  EXPECT_TRUE(has_rule(lint::lint_source("src/core/explorer.cc", bad),
                       "determinism"));
}

TEST(Determinism, ObsTreeIsCarvedOut) {
  // src/obs/ is the one sanctioned clock consumer — timestamps there are
  // observational and never feed a cache key. The identical snippet (a
  // clock inside a key-function body) must still fire everywhere else:
  // the carve-out is a path prefix, not a rule removal.
  const std::string clock_in_key_function = R"cc(
std::uint64_t content_hash() {
  return static_cast<std::uint64_t>(time(nullptr));
}
)cc";
  EXPECT_FALSE(has_rule(
      lint::lint_source("src/obs/metrics.cc", clock_in_key_function),
      "determinism"));
  EXPECT_TRUE(has_rule(
      lint::lint_source("src/core/explorer.cc", clock_in_key_function),
      "determinism"));

  // Whole-file determinism scope is carved out the same way.
  const std::string entropy = R"cc(
inline std::uint64_t helper() {
  std::random_device rd;
  return rd();
}
)cc";
  EXPECT_FALSE(has_rule(lint::lint_source("src/obs/trace.cc", entropy),
                        "determinism"));
  EXPECT_TRUE(has_rule(lint::lint_source("src/support/fnv_hash.h", entropy),
                       "determinism"));
}

// --- header-hygiene -----------------------------------------------------

TEST(HeaderHygiene, FiresOnMissingPragmaOnceAndUsingNamespace) {
  const std::string bad = R"cc(
#include <vector>
using namespace std;
inline int f() { return 1; }
)cc";
  const auto findings = lint::lint_source("src/core/bad_header.h", bad);
  EXPECT_EQ(count_rule(findings, "header-hygiene"), 2u);
}

TEST(HeaderHygiene, QuietOnCleanHeaderAndAnySource) {
  const std::string good = R"cc(
#pragma once
#include <vector>
namespace ddtr::core {
inline int f() { return 1; }
}  // namespace ddtr::core
)cc";
  EXPECT_FALSE(has_rule(lint::lint_source("src/core/good_header.h", good),
                        "header-hygiene"));
  // .cc files may use namespaces freely.
  EXPECT_FALSE(has_rule(
      lint::lint_source("src/core/impl.cc", "using namespace ddtr;\n"),
      "header-hygiene"));
}

// --- suppressions and scrubbing ----------------------------------------

TEST(Suppression, AllowOnSameOrPrecedingLine) {
  const std::string same_line =
      "void grow() { Node* n = new Node; }  // ddtr-lint: allow(allocation-policy)\n";
  EXPECT_FALSE(has_rule(lint::lint_source("src/ddt/x.h", "#pragma once\n" + same_line),
                        "allocation-policy"));
  const std::string prev_line =
      "#pragma once\n"
      "// ddtr-lint: allow(allocation-policy)\n"
      "void grow() { Node* n = new Node; }\n";
  EXPECT_FALSE(has_rule(lint::lint_source("src/ddt/x.h", prev_line),
                        "allocation-policy"));
  // The wrong rule name does not suppress.
  const std::string wrong =
      "#pragma once\n"
      "// ddtr-lint: allow(determinism)\n"
      "void grow() { Node* n = new Node; }\n";
  EXPECT_TRUE(has_rule(lint::lint_source("src/ddt/x.h", wrong),
                       "allocation-policy"));
}

TEST(Suppression, AllowFileCoversEveryOccurrence) {
  const std::string text =
      "#pragma once\n"
      "// ddtr-lint: allow-file(allocation-policy)\n"
      "void a() { Node* n = new Node; }\n"
      "void b() { delete n; }\n";
  EXPECT_FALSE(has_rule(lint::lint_source("src/ddt/x.h", text),
                        "allocation-policy"));
}

TEST(Scrubbing, CommentsAndStringsNeverFire) {
  const std::string text =
      "#pragma once\n"
      "// new delete malloc rand() time() rename(\n"
      "/* std::filesystem::rename(a, b); */\n"
      "const char* kDoc = \"use new and delete and rename()\";\n";
  const auto findings = lint::lint_source("src/ddt/doc.h", text);
  EXPECT_FALSE(has_rule(findings, "allocation-policy"));
  EXPECT_FALSE(has_rule(findings, "durability"));
}

// --- accounting-version -------------------------------------------------

class AccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ddtr_lint_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "ddt");
    write_kinds(2, "inline constexpr int kCost = 3;");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_kinds(int version, const std::string& table_line) {
    std::ofstream os(root_ / "src" / "ddt" / "kinds.h");
    os << "#pragma once\n"
       << "inline constexpr std::uint32_t kDdtAccountingVersion = "
       << version << ";\n"
       << "// ddtr-accounting-begin\n"
       << table_line << "\n"
       << "// ddtr-accounting-end\n";
  }

  fs::path root_;
};

TEST_F(AccountingTest, UpdateThenCheckIsClean) {
  std::string error;
  ASSERT_TRUE(lint::update_accounting(root_.string(), error)) << error;
  const auto state = lint::read_accounting_state(root_.string());
  EXPECT_TRUE(state.lock_found);
  EXPECT_EQ(state.tree_version, 2u);
  EXPECT_EQ(state.region_count, 1u);
  EXPECT_TRUE(lint::check_accounting(state).empty());
}

TEST_F(AccountingTest, TableChangeWithoutBumpFires) {
  std::string error;
  ASSERT_TRUE(lint::update_accounting(root_.string(), error)) << error;
  write_kinds(2, "inline constexpr int kCost = 4;");  // change, no bump
  const auto findings =
      lint::check_accounting(lint::read_accounting_state(root_.string()));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "accounting-version");
  EXPECT_NE(findings[0].message.find("kDdtAccountingVersion"),
            std::string::npos);
}

TEST_F(AccountingTest, BumpThenUpdateRecovers) {
  std::string error;
  ASSERT_TRUE(lint::update_accounting(root_.string(), error)) << error;
  write_kinds(3, "inline constexpr int kCost = 4;");  // change + bump
  // Before the registry refresh: stale-registry finding.
  EXPECT_FALSE(
      lint::check_accounting(lint::read_accounting_state(root_.string()))
          .empty());
  ASSERT_TRUE(lint::update_accounting(root_.string(), error)) << error;
  EXPECT_TRUE(
      lint::check_accounting(lint::read_accounting_state(root_.string()))
          .empty());
}

TEST_F(AccountingTest, UpdateRefusesUnbumpedTableChange) {
  std::string error;
  ASSERT_TRUE(lint::update_accounting(root_.string(), error)) << error;
  write_kinds(2, "inline constexpr int kCost = 4;");  // change, no bump
  EXPECT_FALSE(lint::update_accounting(root_.string(), error));
  EXPECT_NE(error.find("bump"), std::string::npos);
}

TEST_F(AccountingTest, CommentAndWhitespaceChangesDoNotMoveChecksum) {
  std::string error;
  ASSERT_TRUE(lint::update_accounting(root_.string(), error)) << error;
  const auto before = lint::read_accounting_state(root_.string());
  {
    std::ofstream os(root_ / "src" / "ddt" / "kinds.h");
    os << "#pragma once\n"
       << "inline constexpr std::uint32_t kDdtAccountingVersion = 2;\n"
       << "// ddtr-accounting-begin\n"
       << "// a new comment inside the region\n"
       << "\n"
       << "    inline constexpr int kCost = 3;   // trailing comment\n"
       << "// ddtr-accounting-end\n";
  }
  const auto after = lint::read_accounting_state(root_.string());
  EXPECT_EQ(before.tree_checksum, after.tree_checksum);
  EXPECT_TRUE(lint::check_accounting(after).empty());
}

TEST_F(AccountingTest, MissingRegistryFires) {
  const auto findings =
      lint::check_accounting(lint::read_accounting_state(root_.string()));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("registry missing"), std::string::npos);
}

// --- v2: layering / include hygiene (deps.h) ---------------------------

lint::LayerContract two_layer_contract() {
  std::string error;
  const auto contract = lint::parse_layers(
      "layer a :\n"
      "layer b : a\n",
      &error);
  EXPECT_TRUE(contract.has_value()) << error;
  return *contract;
}

TEST(Layers, ParseRejectsUnknownDirectivesAndAcceptsComments) {
  std::string error;
  EXPECT_TRUE(lint::parse_layers("# comment\n\nlayer a :\n"
                                 "umbrella src/a/all.h\n"
                                 "determinism-exempt src/obs/\n",
                                 &error)
                  .has_value())
      << error;
  EXPECT_FALSE(lint::parse_layers("layre a :\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Layering, FiresOnUndeclaredEdgeAndUndeclaredModule) {
  const auto contract = two_layer_contract();
  // `a` may not include `b` (only b -> a is declared).
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file("src/a/x.h", "#pragma once\n"
                                                      "#include \"b/y.h\"\n"
                                                      "struct X {};\n"));
  files.push_back(lint::make_source_file("src/b/y.h", "#pragma once\n"
                                                      "struct Y {};\n"));
  auto analysis = lint::analyze_dependencies(files, contract);
  EXPECT_TRUE(has_rule(analysis.findings, "layering"));

  // A module the contract never names fails until declared.
  files.push_back(lint::make_source_file("src/ghost/z.h",
                                         "#pragma once\nstruct Z {};\n"));
  analysis = lint::analyze_dependencies(files, contract);
  EXPECT_GE(count_rule(analysis.findings, "layering"), 2u);
}

TEST(Layering, QuietOnDeclaredEdge) {
  const auto contract = two_layer_contract();
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file("src/b/y.h", "#pragma once\n"
                                                      "#include \"a/x.h\"\n"
                                                      "struct Y {};\n"));
  files.push_back(lint::make_source_file("src/a/x.h", "#pragma once\n"
                                                      "struct X {};\n"));
  const auto analysis = lint::analyze_dependencies(files, contract);
  EXPECT_FALSE(has_rule(analysis.findings, "layering"));
  EXPECT_FALSE(has_rule(analysis.findings, "include-cycle"));
}

TEST(IncludeCycle, FiresOnMutualInclusion) {
  std::string error;
  const auto contract =
      lint::parse_layers("layer a : b\nlayer b : a\n", &error);
  ASSERT_TRUE(contract.has_value()) << error;
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file("src/a/x.h", "#pragma once\n"
                                                      "#include \"b/y.h\"\n"
                                                      "struct X {};\n"));
  files.push_back(lint::make_source_file("src/b/y.h", "#pragma once\n"
                                                      "#include \"a/x.h\"\n"
                                                      "struct Y {};\n"));
  const auto analysis = lint::analyze_dependencies(files, *contract);
  EXPECT_TRUE(has_rule(analysis.findings, "include-cycle"));
}

TEST(Iwyu, UnusedIncludeIsFlaggedAndRemovable) {
  const auto contract = two_layer_contract();
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file("src/a/dead.h",
                                         "#pragma once\nstruct Dead {};\n"));
  files.push_back(
      lint::make_source_file("src/a/user.cc", "#include \"a/dead.h\"\n"
                                              "int live() { return 1; }\n"));
  const auto analysis = lint::analyze_dependencies(files, contract);
  EXPECT_TRUE(has_rule(analysis.findings, "include-unused"));
  ASSERT_EQ(analysis.removable.count("src/a/user.cc"), 1u);
  EXPECT_EQ(*analysis.removable.at("src/a/user.cc").begin(), 1u);
}

TEST(Iwyu, UsedIncludeStaysAndDownstreamUseBlocksRemoval) {
  const auto contract = two_layer_contract();
  // h.h itself never names Dead — but its includer does, through the
  // h.h -> dead.h edge. Whole-program safety must veto the removal.
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file("src/a/dead.h",
                                         "#pragma once\nstruct Dead {};\n"));
  files.push_back(lint::make_source_file("src/a/h.h",
                                         "#pragma once\n"
                                         "#include \"a/dead.h\"\n"
                                         "struct H {};\n"));
  files.push_back(
      lint::make_source_file("src/a/down.cc", "#include \"a/h.h\"\n"
                                              "Dead d_of(H) { return {}; }\n"));
  const auto analysis = lint::analyze_dependencies(files, contract);
  EXPECT_FALSE(has_rule(analysis.findings, "include-unused"));
}

TEST(Iwyu, TransitiveUseWantsADirectInclude) {
  const auto contract = two_layer_contract();
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file("src/a/inner.h",
                                         "#pragma once\nstruct Inner {};\n"));
  files.push_back(lint::make_source_file("src/a/mid.h",
                                         "#pragma once\n"
                                         "#include \"a/inner.h\"\n"
                                         "struct Mid { Inner i; };\n"));
  files.push_back(lint::make_source_file(
      "src/a/user.cc", "#include \"a/mid.h\"\n"
                       "Inner use(Mid m) { return m.i; }\n"));
  const auto analysis = lint::analyze_dependencies(files, contract);
  ASSERT_TRUE(has_rule(analysis.findings, "include-transitive"));
  bool suggests_inner = false;
  for (const auto& f : analysis.findings) {
    if (f.rule == "include-transitive" &&
        f.message.find("a/inner.h") != std::string::npos &&
        f.path == "src/a/user.cc") {
      suggests_inner = true;
    }
  }
  EXPECT_TRUE(suggests_inner);
}

TEST(Iwyu, QualifiedUsesDoNotCountAsTransitiveLeaks) {
  const auto contract = two_layer_contract();
  // `s.npos` reaches `npos` through the receiver, not through a header
  // that happens to define a same-named constant.
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/a/consts.h", "#pragma once\nconstexpr int npos = -1;\n"));
  files.push_back(lint::make_source_file("src/a/mid.h",
                                         "#pragma once\n"
                                         "#include \"a/consts.h\"\n"
                                         "struct Mid {};\n"));
  files.push_back(lint::make_source_file(
      "src/a/user.cc", "#include \"a/mid.h\"\n"
                       "#include <string>\n"
                       "bool f(const std::string& s, Mid) {\n"
                       "  return s.find('x') == s.npos;\n"
                       "}\n"));
  const auto analysis = lint::analyze_dependencies(files, contract);
  EXPECT_FALSE(has_rule(analysis.findings, "include-transitive"));
}

// --- v2: lock-order / cv-wait (locks.h) --------------------------------

TEST(LockOrder, FiresOnInvertedAcquisitionAcrossTwoFunctions) {
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/serve/pair.cc",
      "#include <mutex>\n"
      "std::mutex mu_a;\n"
      "std::mutex mu_b;\n"
      "void forward() {\n"
      "  std::lock_guard<std::mutex> l1(mu_a);\n"
      "  std::lock_guard<std::mutex> l2(mu_b);\n"
      "}\n"
      "void backward() {\n"
      "  std::lock_guard<std::mutex> l1(mu_b);\n"
      "  std::lock_guard<std::mutex> l2(mu_a);\n"
      "}\n"));
  const auto findings = lint::check_locks(files);
  EXPECT_TRUE(has_rule(findings, "lock-order"));
}

TEST(LockOrder, QuietOnConsistentOrderAndScopedRelease) {
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/serve/pair.cc",
      "#include <mutex>\n"
      "std::mutex mu_a;\n"
      "std::mutex mu_b;\n"
      "void one() {\n"
      "  std::lock_guard<std::mutex> l1(mu_a);\n"
      "  std::lock_guard<std::mutex> l2(mu_b);\n"
      "}\n"
      "void two() {\n"
      "  { std::lock_guard<std::mutex> l(mu_a); }\n"
      "  std::lock_guard<std::mutex> l2(mu_a);\n"  // sequential, not nested
      "}\n"));
  EXPECT_FALSE(has_rule(lint::check_locks(files), "lock-order"));
}

TEST(LockOrder, FiresOnDoubleAcquisitionThroughCallEdge) {
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/serve/reent.cc",
      "#include <mutex>\n"
      "std::mutex mu_;\n"
      "void helper() { std::lock_guard<std::mutex> l(mu_); }\n"
      "void outer() {\n"
      "  std::lock_guard<std::mutex> l(mu_);\n"
      "  helper();\n"
      "}\n"));
  EXPECT_TRUE(has_rule(lint::check_locks(files), "lock-order"));
}

TEST(LockOrder, MemberCallsAndLambdasAreNotCallEdges) {
  // `map_.find(...)` is the container's find, not ours; the thread-entry
  // lambda runs after this scope unwinds. Neither may count as a call
  // edge under the held guard.
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/serve/clean.cc",
      "#include <map>\n"
      "#include <mutex>\n"
      "std::mutex mu_;\n"
      "std::map<int, int> map_;\n"
      "int find(int k) { std::lock_guard<std::mutex> l(mu_); return k; }\n"
      "void spawn(int k);\n"
      "int lookup(int k) {\n"
      "  std::lock_guard<std::mutex> l(mu_);\n"
      "  auto it = map_.find(k);\n"
      "  spawn([k] { return find(k); });\n"
      "  return it == map_.end() ? 0 : it->second;\n"
      "}\n"));
  EXPECT_FALSE(has_rule(lint::check_locks(files), "lock-order"));
}

TEST(CvWait, FiresOnPredicatelessWaitOnly) {
  std::vector<ddtr::lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/support/waiter.cc",
      "#include <condition_variable>\n"
      "#include <mutex>\n"
      "std::mutex mu_;\n"
      "std::condition_variable cv_;\n"
      "bool ready_;\n"
      "void bad() {\n"
      "  std::unique_lock<std::mutex> l(mu_);\n"
      "  cv_.wait(l);\n"
      "}\n"));
  EXPECT_TRUE(has_rule(lint::check_locks(files), "cv-wait"));

  files.clear();
  files.push_back(lint::make_source_file(
      "src/support/waiter.cc",
      "#include <condition_variable>\n"
      "#include <mutex>\n"
      "std::mutex mu_;\n"
      "std::condition_variable cv_;\n"
      "bool ready_;\n"
      "void good() {\n"
      "  std::unique_lock<std::mutex> l(mu_);\n"
      "  cv_.wait(l, [&] { return ready_; });\n"
      "}\n"));
  EXPECT_FALSE(has_rule(lint::check_locks(files), "cv-wait"));
}

// --- v2: autofix (fix.h) -----------------------------------------------

TEST(Autofix, RoundTripFixesThenHoldsByteStable) {
  const std::string path = "src/a/messy.h";
  const std::string before =
      "// messy.h — fixture.\n"
      "#include \"a/zeta.h\"\n"
      "#include <vector>\n"
      "#include <string>\n"
      "#include <sys/stat.h>\n"
      "\n"
      "struct Messy {};\n";
  const auto fix =
      lint::fix_source(lint::make_source_file(path, before), {});
  ASSERT_TRUE(fix.has_value());
  EXPECT_FALSE(fix->notes.empty());

  // Fixed: pragma gained, groups ordered std / system / project.
  const std::string& after = fix->after;
  EXPECT_NE(after.find("#pragma once"), std::string::npos);
  EXPECT_LT(after.find("<string>"), after.find("<vector>"));
  EXPECT_LT(after.find("<vector>"), after.find("<sys/stat.h>"));
  EXPECT_LT(after.find("<sys/stat.h>"), after.find("\"a/zeta.h\""));

  // Re-lint clean: no hygiene or order findings survive the repair.
  const auto fixed_file = lint::make_source_file(path, after);
  std::vector<ddtr::lint::Finding> order;
  lint::check_include_order(fixed_file, order);
  EXPECT_TRUE(order.empty());
  EXPECT_FALSE(has_rule(lint::lint_source(path, after), "header-hygiene"));

  // Idempotent: a second fix finds nothing to do.
  EXPECT_FALSE(lint::fix_source(fixed_file, {}).has_value());
}

TEST(Autofix, RemovesOnlyTheLinesTheAnalyzerProved) {
  const std::string path = "src/a/user.cc";
  const std::string before = "#include \"a/dead.h\"\n"
                             "#include \"a/live.h\"\n"
                             "Live l;\n";
  const auto fix = lint::fix_source(lint::make_source_file(path, before),
                                    {1});  // line 1 is removable
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->after.find("a/dead.h"), std::string::npos);
  EXPECT_NE(fix->after.find("a/live.h"), std::string::npos);
}

TEST(Autofix, UnifiedDiffShowsTheRewrite) {
  const std::string diff =
      lint::unified_diff("a\nb\nc\n", "a\nB\nc\n", "src/a/f.cc");
  EXPECT_NE(diff.find("--- a/src/a/f.cc"), std::string::npos);
  EXPECT_NE(diff.find("-b"), std::string::npos);
  EXPECT_NE(diff.find("+B"), std::string::npos);
}

// --- the real tree is clean --------------------------------------------
// The lint ctest runs the binary over the repo; this is the same check
// in-process so a plain `ctest -R lint_test` pins it too. DDTR_LINT_REPO
// is set by CMake to the source tree.

TEST(RepoTree, LintClean) {
  const char* repo = std::getenv("DDTR_LINT_REPO");
  if (repo == nullptr) GTEST_SKIP() << "DDTR_LINT_REPO not set";
  lint::RunOptions options;
  options.repo_root = repo;
  for (const char* dir : {"src", "tests", "tools", "bench"}) {
    options.roots.push_back(std::string(repo) + "/" + dir);
  }
  std::ostringstream out;
  const std::size_t findings = lint::run_lint(options, out);
  EXPECT_EQ(findings, 0u) << out.str();
}

}  // namespace
