// PatriciaTree tests: LPM correctness against a brute-force oracle,
// agreement with the uncompressed RadixTree, and the compression
// properties (fewer nodes, fewer node visits) that make it the ablation
// counterpart for the Route case study.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "apps/route/patricia_tree.h"
#include "apps/route/radix_tree.h"
#include "apps/route/route_app.h"
#include "ddt/factory.h"
#include "nettrace/generator.h"
#include "nettrace/presets.h"
#include "support/rng.h"

namespace ddtr::apps::route {
namespace {

struct Prefix {
  std::uint32_t prefix;
  std::uint8_t len;
  std::uint32_t next_hop;
};

std::optional<std::uint32_t> brute_force_lpm(
    const std::vector<Prefix>& table, std::uint32_t dst) {
  std::optional<std::uint32_t> best;
  int best_len = -1;
  for (const Prefix& p : table) {
    const std::uint32_t mask =
        p.len == 0 ? 0 : 0xffffffffu << (32 - p.len);
    if ((dst & mask) == (p.prefix & mask) && p.len > best_len) {
      best_len = p.len;
      best = p.next_hop;
    }
  }
  return best;
}

class PatriciaFixture {
 public:
  explicit PatriciaFixture(ddt::DdtKind kind = ddt::DdtKind::kArray)
      : nodes_(ddt::make_container<PatriciaNode>(kind, profile_)),
        entries_(ddt::make_container<RouteEntry>(kind, profile_)),
        tree_(*nodes_, *entries_, profile_) {}

  PatriciaTree& tree() { return tree_; }
  const prof::MemoryProfile& profile() const { return profile_; }

 private:
  prof::MemoryProfile profile_;
  std::unique_ptr<ddt::Container<PatriciaNode>> nodes_;
  std::unique_ptr<ddt::Container<RouteEntry>> entries_;
  PatriciaTree tree_;
};

TEST(PatriciaTree, EmptyMatchesNothing) {
  PatriciaFixture f;
  EXPECT_FALSE(f.tree().lookup(net::make_ip(9, 9, 9, 9)).has_value());
}

TEST(PatriciaTree, DefaultRoute) {
  PatriciaFixture f;
  f.tree().insert(0, 0, 7, 0);
  ASSERT_TRUE(f.tree().lookup(net::make_ip(200, 1, 2, 3)).has_value());
  EXPECT_EQ(f.tree().lookup(0)->next_hop, 7u);
}

TEST(PatriciaTree, LongestPrefixWins) {
  PatriciaFixture f;
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 1, 0);
  f.tree().insert(net::make_ip(10, 1, 0, 0), 16, 2, 0);
  f.tree().insert(net::make_ip(10, 1, 2, 0), 24, 3, 0);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 1, 2, 9))->next_hop, 3u);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 1, 9, 9))->next_hop, 2u);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 9, 9, 9))->next_hop, 1u);
  EXPECT_FALSE(f.tree().lookup(net::make_ip(11, 0, 0, 1)).has_value());
}

TEST(PatriciaTree, EdgeSplitOnDivergingPrefixes) {
  PatriciaFixture f;
  // Two /24s diverging at bit 15 force an intermediate split node.
  f.tree().insert(net::make_ip(192, 168, 1, 0), 24, 1, 0);
  f.tree().insert(net::make_ip(192, 169, 1, 0), 24, 2, 0);
  EXPECT_EQ(f.tree().lookup(net::make_ip(192, 168, 1, 5))->next_hop, 1u);
  EXPECT_EQ(f.tree().lookup(net::make_ip(192, 169, 1, 5))->next_hop, 2u);
  EXPECT_FALSE(f.tree().lookup(net::make_ip(192, 170, 1, 5)).has_value());
}

TEST(PatriciaTree, ShorterPrefixInsertedAfterLonger) {
  PatriciaFixture f;
  f.tree().insert(net::make_ip(10, 1, 2, 0), 24, 3, 0);
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 1, 0);  // lands on a split
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 1, 2, 9))->next_hop, 3u);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 7, 7, 7))->next_hop, 1u);
}

TEST(PatriciaTree, ReinsertReplaces) {
  PatriciaFixture f;
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 1, 0);
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 9, 0);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 3, 3, 3))->next_hop, 9u);
  EXPECT_EQ(f.tree().route_count(), 1u);
}

TEST(PatriciaTree, HostRoutes) {
  PatriciaFixture f;
  const std::uint32_t a = net::make_ip(1, 2, 3, 4);
  f.tree().insert(a, 32, 1, 0);
  f.tree().insert(a ^ 1, 32, 2, 0);
  EXPECT_EQ(f.tree().lookup(a)->next_hop, 1u);
  EXPECT_EQ(f.tree().lookup(a ^ 1)->next_hop, 2u);
  EXPECT_FALSE(f.tree().lookup(a ^ 2).has_value());
}

TEST(PatriciaTree, MatchesBruteForceOnRandomTables) {
  support::Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    PatriciaFixture f;
    std::vector<Prefix> table;
    for (int i = 0; i < 80; ++i) {
      Prefix p;
      p.prefix = static_cast<std::uint32_t>(rng.next_u64());
      p.len = static_cast<std::uint8_t>(rng.uniform(0, 8) * 4);
      const std::uint32_t mask =
          p.len == 0 ? 0 : 0xffffffffu << (32 - p.len);
      p.prefix &= mask;
      p.next_hop = static_cast<std::uint32_t>(i + 1);
      bool dup = false;
      for (const Prefix& q : table) {
        dup |= q.prefix == p.prefix && q.len == p.len;
      }
      if (dup) continue;
      table.push_back(p);
      f.tree().insert(p.prefix, p.len, p.next_hop, 0);
    }
    for (int probe = 0; probe < 400; ++probe) {
      std::uint32_t dst;
      if (probe % 2 == 0 && !table.empty()) {
        const Prefix& p = table[rng.uniform(0, table.size() - 1)];
        dst = p.prefix | static_cast<std::uint32_t>(rng.uniform(0, 0xffff));
      } else {
        dst = static_cast<std::uint32_t>(rng.next_u64());
      }
      const auto expected = brute_force_lpm(table, dst);
      const auto got = f.tree().lookup(dst);
      ASSERT_EQ(got.has_value(), expected.has_value())
          << "trial " << trial << " dst " << dst;
      if (expected) {
        EXPECT_EQ(got->next_hop, *expected) << "dst " << dst;
      }
    }
  }
}

TEST(PatriciaTree, AgreesWithBitTrieOnRandomTables) {
  support::Rng rng(2024);
  prof::MemoryProfile pa, pb;
  auto pat_nodes = ddt::make_container<PatriciaNode>(ddt::DdtKind::kArray, pa);
  auto pat_entries = ddt::make_container<RouteEntry>(ddt::DdtKind::kArray, pa);
  auto bit_nodes = ddt::make_container<RadixNode>(ddt::DdtKind::kArray, pb);
  auto bit_entries = ddt::make_container<RouteEntry>(ddt::DdtKind::kArray, pb);
  PatriciaTree pat(*pat_nodes, *pat_entries, pa);
  RadixTree bit(*bit_nodes, *bit_entries, pb);
  for (int i = 0; i < 120; ++i) {
    const auto addr = static_cast<std::uint32_t>(rng.next_u64());
    const auto len = static_cast<std::uint8_t>(rng.uniform(0, 32));
    const std::uint32_t mask = len == 0 ? 0 : 0xffffffffu << (32 - len);
    pat.insert(addr & mask, len, static_cast<std::uint32_t>(i), 0);
    bit.insert(addr & mask, len, static_cast<std::uint32_t>(i), 0);
  }
  for (int probe = 0; probe < 1000; ++probe) {
    const auto dst = static_cast<std::uint32_t>(rng.next_u64());
    const auto a = pat.lookup(dst);
    const auto b = bit.lookup(dst);
    ASSERT_EQ(a.has_value(), b.has_value()) << "dst " << dst;
    if (a) {
      EXPECT_EQ(a->next_hop, b->next_hop) << "dst " << dst;
    }
  }
}

TEST(PatriciaTree, CompressionShrinksNodePoolAndVisits) {
  support::Rng rng(5150);
  PatriciaFixture pat;
  prof::MemoryProfile bit_profile;
  auto bit_nodes =
      ddt::make_container<RadixNode>(ddt::DdtKind::kArray, bit_profile);
  auto bit_entries =
      ddt::make_container<RouteEntry>(ddt::DdtKind::kArray, bit_profile);
  RadixTree bit(*bit_nodes, *bit_entries, bit_profile);

  std::vector<std::uint32_t> probes;
  for (int i = 0; i < 200; ++i) {
    const auto addr = static_cast<std::uint32_t>(rng.next_u64());
    const auto len = static_cast<std::uint8_t>(8 + rng.uniform(0, 4) * 4);
    const std::uint32_t mask = 0xffffffffu << (32 - len);
    pat.tree().insert(addr & mask, len, 1, 0);
    bit.insert(addr & mask, len, 1, 0);
    probes.push_back(addr);
  }
  // Path compression: an order of magnitude fewer nodes...
  EXPECT_LT(pat.tree().node_count() * 4, bit.node_count());
  // ...and (with the same DDT) far fewer node-pool accesses per lookup.
  const auto pat_before = pat.profile().counters().accesses();
  const auto bit_before = bit_profile.counters().accesses();
  for (std::uint32_t dst : probes) {
    pat.tree().lookup(dst);
    bit.lookup(dst);
  }
  const auto pat_cost = pat.profile().counters().accesses() - pat_before;
  const auto bit_cost = bit_profile.counters().accesses() - bit_before;
  // ~1.7x fewer accesses measured; assert a 1.5x margin.
  EXPECT_LT(pat_cost * 3, bit_cost * 2);
}

TEST(RouteApp, CompressedTreeSameForwardingDecisions) {
  net::TraceGenerator::Options options;
  options.packet_count = 1000;
  const net::Trace trace = net::TraceGenerator::generate(
      net::network_preset("dart-berry"), options);
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kSll, ddt::DdtKind::kArray});

  RouteApp flat(RouteApp::Config{128, 7, false});
  RouteApp compressed(RouteApp::Config{128, 7, true});
  flat.run(trace, combo);
  const std::uint64_t flat_forwarded = flat.forwarded();
  compressed.run(trace, combo);
  EXPECT_EQ(compressed.forwarded(), flat_forwarded);
}

TEST(RouteApp, CompressionPaysForArraysNotForLists) {
  // The interesting (and honest) finding behind EXPERIMENTS.md deviation
  // 1: with an array node pool, path compression cuts accesses; with a
  // plain-SLL pool it does not, because split nodes are allocated late
  // and get high indices, so the positional walks stay long.
  net::TraceGenerator::Options options;
  options.packet_count = 1000;
  const net::Trace trace = net::TraceGenerator::generate(
      net::network_preset("dart-berry"), options);

  const ddt::DdtCombination array_combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kArray});
  RouteApp flat(RouteApp::Config{128, 7, false});
  RouteApp compressed(RouteApp::Config{128, 7, true});
  const auto flat_array = flat.run(trace, array_combo);
  const auto comp_array = compressed.run(trace, array_combo);
  EXPECT_LT(comp_array.total.accesses(), flat_array.total.accesses());
  // Compression also shrinks the node pool itself.
  EXPECT_LT(comp_array.per_structure[0].second.peak_bytes,
            flat_array.per_structure[0].second.peak_bytes);
}

}  // namespace
}  // namespace ddtr::apps::route
