// Energy/time model tests: the exploration only needs the cost model to be
// deterministic and monotone — these tests pin exactly those properties.
#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "energy/memory_hierarchy.h"
#include "energy/metrics.h"
#include "energy/sram_macro.h"

namespace ddtr::energy {
namespace {

TEST(SramMacro, RoundsCapacityUpToRowGranularity) {
  EXPECT_EQ(SramMacro(1).capacity_bytes(), 64u);
  EXPECT_EQ(SramMacro(64).capacity_bytes(), 64u);
  EXPECT_EQ(SramMacro(65).capacity_bytes(), 128u);
  EXPECT_EQ(SramMacro(100000).capacity_bytes(), 100032u);
}

TEST(SramMacro, RoundingHelpers) {
  EXPECT_EQ(round_up_pow2(100000, 64), 131072u);
  EXPECT_EQ(round_up_pow2(1, 64), 64u);
  EXPECT_EQ(round_up_multiple(0, 64), 64u);
  EXPECT_EQ(round_up_multiple(128, 64), 128u);
  EXPECT_EQ(round_up_multiple(129, 64), 192u);
}

TEST(SramMacro, EnergyMonotoneInCapacity) {
  double prev = 0.0;
  for (std::uint64_t cap = 64; cap <= (1u << 22); cap <<= 1) {
    const SramMacro macro(cap);
    EXPECT_GT(macro.read_energy_pj(), prev) << "capacity " << cap;
    prev = macro.read_energy_pj();
  }
}

TEST(SramMacro, LatencyMonotoneInCapacity) {
  EXPECT_LT(SramMacro(1024).access_time_ns(),
            SramMacro(1024 * 1024).access_time_ns());
}

TEST(SramMacro, WritesCostMoreThanReads) {
  const SramMacro macro(4096);
  EXPECT_GT(macro.write_energy_pj(), macro.read_energy_pj());
}

TEST(SramMacro, LeakageScalesLinearly) {
  const SramMacro small(1024), big(4096);
  EXPECT_NEAR(big.leakage_mw() / small.leakage_mw(), 4.0, 1e-9);
}

TEST(SramMacro, PlausibleAbsoluteNumbers) {
  // ~130nm sanity window: 1 KiB macro in single-digit-to-tens pJ, 1 MiB
  // in hundreds of pJ.
  EXPECT_GT(SramMacro(1024).read_energy_pj(), 5.0);
  EXPECT_LT(SramMacro(1024).read_energy_pj(), 50.0);
  EXPECT_GT(SramMacro(1 << 20).read_energy_pj(), 100.0);
  EXPECT_LT(SramMacro(1 << 20).read_energy_pj(), 1000.0);
}

prof::ProfileCounters counters(std::uint64_t reads, std::uint64_t writes,
                               std::uint64_t peak,
                               std::uint64_t cpu_ops = 0) {
  prof::ProfileCounters c;
  c.reads = reads;
  c.writes = writes;
  c.bytes_read = reads * 8;
  c.bytes_written = writes * 8;
  c.peak_bytes = peak;
  c.cpu_ops = cpu_ops;
  return c;
}

TEST(MemoryHierarchy, ScratchpadMoreAccessesMoreEnergy) {
  const auto h = MemoryHierarchy::scratchpad();
  const auto low = h.cost(counters(1000, 100, 4096), 1.6);
  const auto high = h.cost(counters(2000, 200, 4096), 1.6);
  EXPECT_GT(high.dynamic_energy_pj, low.dynamic_energy_pj);
  EXPECT_GT(high.memory_cycles, low.memory_cycles);
}

TEST(MemoryHierarchy, ScratchpadBiggerFootprintMoreEnergyPerAccess) {
  const auto h = MemoryHierarchy::scratchpad();
  const auto small = h.cost(counters(1000, 0, 1 << 10), 1.6);
  const auto big = h.cost(counters(1000, 0, 1 << 20), 1.6);
  EXPECT_GT(big.dynamic_energy_pj, small.dynamic_energy_pj);
  EXPECT_GT(big.leakage_power_mw, small.leakage_power_mw);
}

TEST(MemoryHierarchy, CachedFootprintBeyondL1CostsMore) {
  const auto h = MemoryHierarchy::cached(16 * 1024, 512 * 1024);
  const auto fits = h.cost(counters(100000, 0, 8 * 1024), 1.6);
  const auto spills = h.cost(counters(100000, 0, 4 * 1024 * 1024), 1.6);
  EXPECT_GT(spills.dynamic_energy_pj, fits.dynamic_energy_pj * 1.5);
  EXPECT_GT(spills.memory_cycles, fits.memory_cycles);
}

TEST(MemoryHierarchy, CachedDeterministic) {
  const auto h = MemoryHierarchy::cached();
  const auto a = h.cost(counters(12345, 678, 90000), 1.6);
  const auto b = h.cost(counters(12345, 678, 90000), 1.6);
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj);
  EXPECT_EQ(a.memory_cycles, b.memory_cycles);
}

TEST(EnergyModel, TimeIncludesCpuAndMemory) {
  const EnergyModel model{MemoryHierarchy::cached()};
  const auto mem_only = model.evaluate(counters(1000, 0, 1024));
  const auto with_cpu = model.evaluate(counters(1000, 0, 1024, 1000000));
  EXPECT_GT(with_cpu.time_s, mem_only.time_s);
}

TEST(EnergyModel, MetricsMirrorCounters) {
  const EnergyModel model{MemoryHierarchy::cached()};
  const auto m = model.evaluate(counters(700, 300, 5000));
  EXPECT_EQ(m.accesses, 1000u);
  EXPECT_EQ(m.footprint_bytes, 5000u);
  EXPECT_GT(m.energy_mj, 0.0);
  EXPECT_GT(m.time_s, 0.0);
}

TEST(EnergyModel, EnergyMonotoneInAccesses) {
  const EnergyModel model{MemoryHierarchy::cached()};
  double prev = 0.0;
  for (std::uint64_t n = 1000; n <= 1000000; n *= 10) {
    const auto m = model.evaluate(counters(n, n / 4, 64 * 1024));
    EXPECT_GT(m.energy_mj, prev);
    prev = m.energy_mj;
  }
}

TEST(Dominates, StrictAndEqualCases) {
  Metrics a{1.0, 1.0, 100, 100};
  Metrics b{2.0, 2.0, 200, 200};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, a));  // equal: no strict improvement
}

TEST(Dominates, TradeoffNeitherDominates) {
  Metrics fast_hungry{5.0, 1.0, 100, 100};
  Metrics slow_frugal{1.0, 5.0, 100, 100};
  EXPECT_FALSE(dominates(fast_hungry, slow_frugal));
  EXPECT_FALSE(dominates(slow_frugal, fast_hungry));
}

TEST(Dominates, SingleMetricEdge) {
  Metrics a{1.0, 1.0, 100, 100};
  Metrics c{1.0, 1.0, 100, 99};
  EXPECT_TRUE(dominates(c, a));
  EXPECT_FALSE(dominates(a, c));
}

}  // namespace
}  // namespace ddtr::energy
