// Wire-level contract of the serve protocol (serve/protocol.h): frame
// round-trips through streams and socketpairs, clean-EOF vs torn-frame
// discrimination, checksum/magic/size rejection, and field-exact message
// codec round-trips — including hostile payloads (trailing garbage,
// truncation, absurd counts), which must decode to false, never crash.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace ddtr::serve {
namespace {

Frame roundtrip(const Frame& in) {
  std::istringstream is(encode_frame(in));
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kOk);
  return out;
}

TEST(ServeFrame, RoundTripsPayload) {
  Frame in{FrameType::kSubmit, std::string("hello\0world", 11)};
  const Frame out = roundtrip(in);
  EXPECT_EQ(out.type, FrameType::kSubmit);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(ServeFrame, RoundTripsEmptyPayload) {
  const Frame out = roundtrip({FrameType::kStatus, ""});
  EXPECT_EQ(out.type, FrameType::kStatus);
  EXPECT_TRUE(out.payload.empty());
}

TEST(ServeFrame, EmptyStreamIsCleanEof) {
  std::istringstream is("");
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kEof);
}

TEST(ServeFrame, TruncatedHeaderIsCorrupt) {
  const std::string wire = encode_frame({FrameType::kHello, "abc"});
  std::istringstream is(wire.substr(0, 10));
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kCorrupt);
}

TEST(ServeFrame, TruncatedPayloadIsCorrupt) {
  const std::string wire = encode_frame({FrameType::kHello, "abcdefgh"});
  std::istringstream is(wire.substr(0, wire.size() - 3));
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kCorrupt);
}

TEST(ServeFrame, FlippedPayloadByteFailsChecksum) {
  std::string wire = encode_frame({FrameType::kResult, "records..."});
  wire[wire.size() - 1] ^= 0x5a;
  std::istringstream is(wire);
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kCorrupt);
}

TEST(ServeFrame, WrongMagicIsCorrupt) {
  std::string wire = encode_frame({FrameType::kHello, ""});
  wire[0] ^= 0xff;
  std::istringstream is(wire);
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kCorrupt);
}

TEST(ServeFrame, UnknownTypeIsCorrupt) {
  std::string wire = encode_frame({FrameType::kHello, ""});
  wire[4] = 99;  // type field, little-endian low byte
  std::istringstream is(wire);
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kCorrupt);
}

TEST(ServeFrame, AbsurdSizeIsCorruptNotAllocation) {
  std::string wire = encode_frame({FrameType::kHello, ""});
  for (int i = 8; i < 16; ++i) wire[i] = '\xff';  // size field
  std::istringstream is(wire);
  Frame out;
  EXPECT_EQ(decode_frame(is, out), DecodeStatus::kCorrupt);
}

TEST(ServeFrame, SendRecvOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const Frame in{FrameType::kProgress, std::string("\x01\x00\x02", 3)};
  ASSERT_TRUE(send_frame(fds[0], in));
  Frame out;
  EXPECT_EQ(recv_frame(fds[1], out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.payload, in.payload);
  // Peer close between frames: clean EOF, not corruption.
  ::close(fds[0]);
  EXPECT_EQ(recv_frame(fds[1], out), DecodeStatus::kEof);
  ::close(fds[1]);
}

TEST(ServeFrame, TornSocketFrameIsCorrupt) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string wire = encode_frame({FrameType::kResult, "partial"});
  // Send all but the last byte, then hang up mid-frame.
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size() - 1, 0),
            static_cast<ssize_t>(wire.size() - 1));
  ::close(fds[0]);
  Frame out;
  EXPECT_EQ(recv_frame(fds[1], out), DecodeStatus::kCorrupt);
  ::close(fds[1]);
}

TEST(ServeMessages, HelloRoundTripAndVersion) {
  Hello in;
  in.version = 7;
  Hello out;
  ASSERT_TRUE(decode_hello(encode_hello(in), out));
  EXPECT_EQ(out.version, 7u);
  EXPECT_FALSE(decode_hello("", out));                      // truncated
  EXPECT_FALSE(decode_hello(encode_hello(in) + "x", out));  // trailing
}

TEST(ServeMessages, HelloAckRoundTrip) {
  HelloAck in;
  in.warm_entries = 165;
  in.warm_traces = 5;
  HelloAck out;
  ASSERT_TRUE(decode_hello_ack(encode_hello_ack(in), out));
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.warm_entries, 165u);
  EXPECT_EQ(out.warm_traces, 5u);
}

TEST(ServeMessages, SubmitRoundTripAllFields) {
  SubmitRequest in;
  in.app = "url";
  in.scale = 0.125;
  in.packets = 2048;
  in.seed_offset = 3;
  in.greedy = 1;
  in.survivor_cap = 0.4;
  in.jobs = 6;
  in.every_s = 2.5;
  in.metric_x = "accesses";
  in.metric_y = "footprint_B";
  SubmitRequest out;
  ASSERT_TRUE(decode_submit(encode_submit(in), out));
  EXPECT_EQ(out.app, "url");
  EXPECT_DOUBLE_EQ(out.scale, 0.125);
  EXPECT_EQ(out.packets, 2048u);
  EXPECT_EQ(out.seed_offset, 3u);
  EXPECT_EQ(out.greedy, 1u);
  EXPECT_DOUBLE_EQ(out.survivor_cap, 0.4);
  EXPECT_EQ(out.jobs, 6u);
  EXPECT_DOUBLE_EQ(out.every_s, 2.5);
  EXPECT_EQ(out.metric_x, "accesses");
  EXPECT_EQ(out.metric_y, "footprint_B");
  // Any truncation must fail, at every cut point.
  const std::string wire = encode_submit(in);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_submit(wire.substr(0, cut), out)) << "cut=" << cut;
  }
}

TEST(ServeMessages, ResultRoundTripKeepsRecordsByteExact) {
  ResultFrame in;
  in.job_id = 42;
  in.app = "Route";
  in.runs = 3;
  in.executed = 0;
  in.logical = 176;
  in.cache_hits = 176;
  in.persistent_loaded = 165;
  in.survivors = 11;
  in.pareto_count = 5;
  in.pareto = "AR+AR  time_s=0.01  energy_mJ=0.2\n";
  in.records = std::string("binary\0records\n\xff with every byte", 31);
  ResultFrame out;
  ASSERT_TRUE(decode_result(encode_result(in), out));
  EXPECT_EQ(out.job_id, 42u);
  EXPECT_EQ(out.app, "Route");
  EXPECT_EQ(out.runs, 3u);
  EXPECT_EQ(out.executed, 0u);
  EXPECT_EQ(out.logical, 176u);
  EXPECT_EQ(out.cache_hits, 176u);
  EXPECT_EQ(out.persistent_loaded, 165u);
  EXPECT_EQ(out.survivors, 11u);
  EXPECT_EQ(out.pareto_count, 5u);
  EXPECT_EQ(out.pareto, in.pareto);
  EXPECT_EQ(out.records, in.records);
}

TEST(ServeMessages, StatusReplyRoundTrip) {
  StatusReply in;
  in.warm_entries = 9;
  in.jobs.push_back({1, "url", "done", 2, 0, 1.5});
  in.jobs.push_back({2, "drr", "running", 0, 0, 0.0});
  StatusReply out;
  ASSERT_TRUE(decode_status_reply(encode_status_reply(in), out));
  EXPECT_EQ(out.warm_entries, 9u);
  ASSERT_EQ(out.jobs.size(), 2u);
  EXPECT_EQ(out.jobs[0].id, 1u);
  EXPECT_EQ(out.jobs[0].app, "url");
  EXPECT_EQ(out.jobs[0].state, "done");
  EXPECT_EQ(out.jobs[0].runs, 2u);
  EXPECT_DOUBLE_EQ(out.jobs[0].every_s, 1.5);
  EXPECT_EQ(out.jobs[1].app, "drr");
}

TEST(ServeMessages, SmallMessagesRoundTrip) {
  SubmitAck ack_out;
  ASSERT_TRUE(decode_submit_ack(encode_submit_ack({17}), ack_out));
  EXPECT_EQ(ack_out.job_id, 17u);

  ProgressFrame tick_in;
  tick_in.job_id = 4;
  tick_in.step = 2;
  tick_in.done = 10;
  tick_in.total = 40;
  ProgressFrame tick_out;
  ASSERT_TRUE(decode_progress(encode_progress(tick_in), tick_out));
  EXPECT_EQ(tick_out.step, 2u);
  EXPECT_EQ(tick_out.done, 10u);
  EXPECT_EQ(tick_out.total, 40u);

  ErrorFrame error_out;
  ASSERT_TRUE(decode_error(encode_error({"bad app"}), error_out));
  EXPECT_EQ(error_out.message, "bad app");

  ResultsRequest results_out;
  ASSERT_TRUE(
      decode_results_request(encode_results_request({23}), results_out));
  EXPECT_EQ(results_out.job_id, 23u);

  ShutdownAck bye_out;
  ASSERT_TRUE(decode_shutdown_ack(encode_shutdown_ack({8}), bye_out));
  EXPECT_EQ(bye_out.sessions_served, 8u);
}

}  // namespace
}  // namespace ddtr::serve
