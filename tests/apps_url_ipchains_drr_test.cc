// URL, IPchains and DRR case-study tests: functional invariance across DDT
// combinations, conservation laws, and per-app semantics.
#include <gtest/gtest.h>

#include "apps/drr/drr_app.h"
#include "apps/ipchains/ipchains_app.h"
#include "apps/url/url_app.h"
#include "nettrace/generator.h"
#include "nettrace/presets.h"

namespace ddtr::apps {
namespace {

net::Trace small_trace(const std::string& preset, std::size_t packets) {
  net::TraceGenerator::Options options;
  options.packet_count = packets;
  return net::TraceGenerator::generate(net::network_preset(preset), options);
}

const std::vector<ddt::DdtCombination> kSpotCombos = {
    ddt::DdtCombination({ddt::DdtKind::kArray, ddt::DdtKind::kArray}),
    ddt::DdtCombination({ddt::DdtKind::kSll, ddt::DdtKind::kSll}),
    ddt::DdtCombination(
        {ddt::DdtKind::kDllRoving, ddt::DdtKind::kArrayOfPointers}),
    ddt::DdtCombination(
        {ddt::DdtKind::kSllOfArraysRoving, ddt::DdtKind::kDllOfArrays}),
};

// ---------------------------------------------------------------- URL --

TEST(UrlApp, EveryHttpRequestIsRouted) {
  const net::Trace trace = small_trace("dart-whittemore", 3000);
  std::size_t requests = 0;
  for (const auto& p : trace.packets()) {
    if (trace.has_payload(p)) ++requests;
  }
  ASSERT_GT(requests, 0u);

  url::UrlApp app(url::UrlApp::Config{24, 8, 8101});
  app.run(trace, kSpotCombos[0]);
  EXPECT_EQ(app.dispatched() + app.defaulted(), requests);
  // The pattern vocabulary overlaps the URL vocabulary: most requests
  // match a rule.
  EXPECT_GT(app.dispatched(), requests / 2);
}

TEST(UrlApp, DispatchInvariantAcrossCombos) {
  const net::Trace trace = small_trace("dart-berry", 2000);
  url::UrlApp app(url::UrlApp::Config{24, 8, 8101});
  std::uint64_t reference = 0;
  for (std::size_t i = 0; i < kSpotCombos.size(); ++i) {
    app.run(trace, kSpotCombos[i]);
    if (i == 0) {
      reference = app.dispatched();
    } else {
      EXPECT_EQ(app.dispatched(), reference)
          << kSpotCombos[i].label();
    }
  }
}

TEST(UrlApp, MorePatternsMoreScanWork) {
  const net::Trace trace = small_trace("dart-berry", 2000);
  url::UrlApp few(url::UrlApp::Config{8, 8, 8101});
  url::UrlApp many(url::UrlApp::Config{32, 8, 8101});
  const auto few_run = few.run(trace, kSpotCombos[0]);
  const auto many_run = many.run(trace, kSpotCombos[0]);
  EXPECT_GT(many_run.total.accesses(), few_run.total.accesses());
}

TEST(UrlApp, PatternTableDominatesServerTable) {
  const net::Trace trace = small_trace("dart-library", 2000);
  url::UrlApp app(url::UrlApp::Config{24, 8, 8101});
  const auto result = app.run(trace, kSpotCombos[0]);
  ASSERT_EQ(result.per_structure.size(), 2u);
  EXPECT_GT(result.per_structure[0].second.accesses(),
            result.per_structure[1].second.accesses());
}

// ----------------------------------------------------------- IPchains --

TEST(IpchainsApp, EveryPacketGetsAVerdict) {
  const net::Trace trace = small_trace("nlanr-campus", 2500);
  ipchains::IpchainsApp app(ipchains::IpchainsApp::Config{64, 256, 9265});
  app.run(trace, kSpotCombos[0]);
  EXPECT_EQ(app.accepted() + app.denied(), trace.size());
  EXPECT_GT(app.accepted(), 0u);  // catch-all accept exists
}

TEST(IpchainsApp, VerdictInvariantAcrossCombos) {
  const net::Trace trace = small_trace("nlanr-satellite", 1500);
  ipchains::IpchainsApp app(ipchains::IpchainsApp::Config{64, 256, 9265});
  std::uint64_t reference = 0;
  for (std::size_t i = 0; i < kSpotCombos.size(); ++i) {
    app.run(trace, kSpotCombos[i]);
    if (i == 0) {
      reference = app.denied();
    } else {
      EXPECT_EQ(app.denied(), reference) << kSpotCombos[i].label();
    }
  }
}

TEST(IpchainsApp, MoreRulesMoreWork) {
  const net::Trace trace = small_trace("nlanr-campus", 1500);
  // Same seed: the longer chain is a superset prefix of the shorter one,
  // so rule-chain traffic can only grow. (Verdicts may differ — packets
  // that previously fell through to the catch-all can hit a specific rule
  // — so only the chain structure is compared.)
  ipchains::IpchainsApp few(ipchains::IpchainsApp::Config{32, 256, 9233});
  ipchains::IpchainsApp many(ipchains::IpchainsApp::Config{128, 256, 9233});
  const auto few_run = few.run(trace, kSpotCombos[0]);
  const auto many_run = many.run(trace, kSpotCombos[0]);
  EXPECT_GT(many_run.per_structure[0].second.accesses(),
            few_run.per_structure[0].second.accesses());
}

TEST(IpchainsApp, ConnTableStaysBounded) {
  const net::Trace trace = small_trace("nlanr-backbone", 3000);
  // Tiny cache forces steady eviction; footprint must stay bounded.
  ipchains::IpchainsApp app(ipchains::IpchainsApp::Config{16, 32, 9265});
  const auto result = app.run(trace, kSpotCombos[0]);
  const auto& conn = result.per_structure[1].second;
  // 32 entries * (sizeof(ConnEntry)+overhead) is well under 4 KiB even
  // with array-doubling slack.
  EXPECT_LT(conn.peak_bytes, 4096u);
  EXPECT_GT(conn.deallocations, 0u);  // evictions actually happened
}

// ---------------------------------------------------------------- DRR --

TEST(DrrApp, ConservesPackets) {
  const net::Trace trace = small_trace("dart-dorm", 3000);
  drr::DrrApp app(drr::DrrApp::Config{1.0, 1.15, 64, 10301});
  app.run(trace, kSpotCombos[0]);
  EXPECT_EQ(app.sent_packets() + app.dropped_packets(), trace.size());
  EXPECT_GT(app.sent_packets(), trace.size() * 8 / 10);
}

TEST(DrrApp, ConservationInvariantAcrossCombos) {
  const net::Trace trace = small_trace("dart-library", 1500);
  drr::DrrApp app(drr::DrrApp::Config{1.0, 1.15, 64, 10301});
  std::uint64_t sent_ref = 0;
  for (std::size_t i = 0; i < kSpotCombos.size(); ++i) {
    app.run(trace, kSpotCombos[i]);
    if (i == 0) {
      sent_ref = app.sent_packets();
    } else {
      EXPECT_EQ(app.sent_packets(), sent_ref) << kSpotCombos[i].label();
    }
  }
}

TEST(DrrApp, FairnessIndexInRange) {
  const net::Trace trace = small_trace("dart-berry", 2500);
  drr::DrrApp app(drr::DrrApp::Config{1.0, 1.15, 64, 10301});
  app.run(trace, kSpotCombos[0]);
  EXPECT_GT(app.fairness_index(), 0.0);
  EXPECT_LE(app.fairness_index(), 1.0 + 1e-9);
}

TEST(DrrApp, DrainsAllQueuesAtEnd) {
  const net::Trace trace = small_trace("nlanr-satellite", 1200);
  drr::DrrApp app(drr::DrrApp::Config{1.0, 1.15, 64, 10301});
  const auto result = app.run(trace, kSpotCombos[1]);
  // Every packet left the queues (functional drain)...
  EXPECT_EQ(app.sent_packets() + app.dropped_packets(), trace.size());
  // ...so what remains charged to the queue DDT is only the arena pool's
  // retained chunk reservation, bounded by the high-water footprint.
  const auto& queue = result.per_structure[1].second;
  EXPECT_GT(queue.live_bytes, 0u);  // pools keep their chunks until clear()
  EXPECT_LE(queue.live_bytes, queue.peak_bytes);
}

TEST(DrrApp, TightQueueCapDropsMore) {
  const net::Trace trace = small_trace("dart-dorm", 2500);
  drr::DrrApp roomy(drr::DrrApp::Config{1.0, 1.02, 256, 10301});
  drr::DrrApp tight(drr::DrrApp::Config{1.0, 1.02, 2, 10301});
  roomy.run(trace, kSpotCombos[0]);
  const std::uint64_t roomy_drops = roomy.dropped_packets();
  tight.run(trace, kSpotCombos[0]);
  EXPECT_GE(tight.dropped_packets(), roomy_drops);
}

TEST(DrrApp, QueueDdtSeesHeadRemovals) {
  const net::Trace trace = small_trace("dart-berry", 1500);
  drr::DrrApp app(drr::DrrApp::Config{1.0, 1.15, 64, 10301});
  const auto result = app.run(trace, kSpotCombos[0]);
  const auto& queue = result.per_structure[1].second;
  EXPECT_GT(queue.writes, 0u);
  EXPECT_GT(queue.reads, 0u);
}

}  // namespace
}  // namespace ddtr::apps
