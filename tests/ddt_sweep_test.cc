// Parameterized property sweeps across the DDT library: profiling
// determinism, workload-size monotonicity, chunk-capacity functional
// equivalence, and roving-cache stress under structural churn.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ddt/chunked_list.h"
#include "ddt/factory.h"
#include "support/rng.h"

namespace ddtr {
namespace {

struct Rec {
  std::uint64_t key = 0;
  std::uint64_t val = 0;
  bool operator==(const Rec&) const = default;
};

class DdtSweepTest : public ::testing::TestWithParam<ddt::DdtKind> {};

// The same operation sequence must charge the same counters every time —
// the whole exploration depends on simulation determinism.
TEST_P(DdtSweepTest, CountersAreDeterministic) {
  const auto run_once = [&] {
    prof::MemoryProfile profile;
    auto c = ddt::make_container<Rec>(GetParam(), profile);
    support::Rng rng(321);
    for (int i = 0; i < 500; ++i) {
      const double roll = rng.next_double();
      if (roll < 0.5 || c->empty()) {
        c->push_back({rng.next_u64() % 100, 0});
      } else if (roll < 0.7) {
        c->get(rng.uniform(0, c->size() - 1));
      } else if (roll < 0.85) {
        c->set(rng.uniform(0, c->size() - 1), {7, 7});
      } else {
        c->erase(rng.uniform(0, c->size() - 1));
      }
    }
    return profile.counters();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.peak_bytes, b.peak_bytes);
  EXPECT_EQ(a.cpu_ops, b.cpu_ops);
}

// More records never cost fewer accesses to scan.
TEST_P(DdtSweepTest, ScanCostMonotoneInSize) {
  std::uint64_t prev = 0;
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    prof::MemoryProfile profile;
    auto c = ddt::make_container<Rec>(GetParam(), profile);
    for (std::size_t i = 0; i < n; ++i) c->push_back({i, i});
    const std::uint64_t before = profile.counters().accesses();
    c->for_each([](std::size_t, const Rec&) { return true; });
    const std::uint64_t cost = profile.counters().accesses() - before;
    EXPECT_GT(cost, prev) << "n=" << n;
    prev = cost;
  }
}

// Footprint returns to zero and peak is at least live-high-water.
TEST_P(DdtSweepTest, FootprintAccountingConsistent) {
  prof::MemoryProfile profile;
  {
    auto c = ddt::make_container<Rec>(GetParam(), profile);
    for (std::size_t i = 0; i < 300; ++i) c->push_back({i, i});
    const std::uint64_t live_full = profile.counters().live_bytes;
    EXPECT_GE(profile.counters().peak_bytes, live_full);
    EXPECT_GE(live_full, 300 * sizeof(Rec));  // at least the records
    for (std::size_t i = 0; i < 150; ++i) c->erase(c->size() - 1);
    EXPECT_LE(profile.counters().live_bytes, live_full);
  }
  EXPECT_EQ(profile.counters().live_bytes, 0u);
}

// find_if + erase loops (the conntrack eviction pattern) must stay
// consistent even with roving caches pointing into eased storage.
TEST_P(DdtSweepTest, FindEraseChurnStaysConsistent) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(GetParam(), profile);
  std::vector<Rec> model;
  support::Rng rng(777);
  for (int step = 0; step < 400; ++step) {
    const Rec r{rng.next_u64() % 50, static_cast<std::uint64_t>(step)};
    c->push_back(r);
    model.push_back(r);
    if (model.size() > 32) {
      // Find the first record with a matching key bucket and evict it.
      const std::uint64_t key = rng.next_u64() % 50;
      const std::size_t idx =
          c->find_if([key](const Rec& x) { return x.key == key; });
      std::size_t model_idx = ddt::npos;
      for (std::size_t i = 0; i < model.size(); ++i) {
        if (model[i].key == key) {
          model_idx = i;
          break;
        }
      }
      ASSERT_EQ(idx, model_idx);
      if (idx != ddt::npos) {
        c->erase(idx);
        model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        c->erase(0);
        model.erase(model.begin());
      }
    }
  }
  ASSERT_EQ(c->size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(c->get(i), model[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DdtSweepTest, ::testing::ValuesIn(ddt::kAllDdtKinds),
    [](const ::testing::TestParamInfo<ddt::DdtKind>& p) {
      std::string name(ddt::to_string(p.param));
      for (char& ch : name) {
        if (ch == '(' || ch == ')') ch = '_';
      }
      return name;
    });

std::uint64_t rec_key(const Rec& r) { return r.key; }

class KeyedDdtSweepTest : public ::testing::TestWithParam<ddt::DdtKind> {};

// Every kind, constructed with a key function, must honor the full keyed
// Container contract — with ArrayContainer as the oracle. This is what
// legalizes HASH and UNR in the exploration lattice: different layout and
// cost, identical observable behaviour.
TEST_P(KeyedDdtSweepTest, ContractMatchesArrayOracle) {
  prof::MemoryProfile profile;
  prof::MemoryProfile oracle_profile;
  auto c = ddt::make_container<Rec>(GetParam(), profile, &rec_key);
  auto oracle = ddt::make_container<Rec>(ddt::DdtKind::kArray,
                                         oracle_profile, &rec_key);
  support::Rng rng(4242);
  for (int step = 0; step < 1200; ++step) {
    const auto v = static_cast<std::uint64_t>(step);
    const double roll = rng.next_double();
    if (roll < 0.40 || c->empty()) {
      const Rec r{rng.next_u64() % 200, v};
      c->push_back(r);
      oracle->push_back(r);
    } else if (roll < 0.52) {
      const std::size_t i = rng.uniform(0, c->size());
      const Rec r{rng.next_u64() % 200, v};
      c->insert(i, r);
      oracle->insert(i, r);
    } else if (roll < 0.62) {
      const std::size_t i = rng.uniform(0, c->size() - 1);
      const Rec r{rng.next_u64() % 200, 9000 + v};
      c->set(i, r);
      oracle->set(i, r);
    } else if (roll < 0.72) {
      const std::size_t i = rng.uniform(0, c->size() - 1);
      c->erase(i);
      oracle->erase(i);
    } else if (roll < 0.90) {
      // Keyed search parity, including first-match semantics on
      // duplicate keys and npos on misses.
      const std::uint64_t key = rng.next_u64() % 250;
      EXPECT_EQ(c->find_key(key), oracle->find_key(key)) << "key " << key;
    } else {
      const std::size_t i = rng.uniform(0, c->size() - 1);
      EXPECT_EQ(c->get(i), oracle->get(i)) << "index " << i;
    }
  }
  ASSERT_EQ(c->size(), oracle->size());
  std::vector<Rec> got;
  std::vector<Rec> want;
  c->for_each([&](std::size_t, const Rec& r) {
    got.push_back(r);
    return true;
  });
  oracle->for_each([&](std::size_t, const Rec& r) {
    want.push_back(r);
    return true;
  });
  EXPECT_EQ(got, want);
  c->clear();
  EXPECT_TRUE(c->empty());
  EXPECT_EQ(c->find_key(5), ddt::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, KeyedDdtSweepTest, ::testing::ValuesIn(ddt::kAllDdtKinds),
    [](const ::testing::TestParamInfo<ddt::DdtKind>& p) {
      std::string name(ddt::to_string(p.param));
      for (char& ch : name) {
        if (ch == '(' || ch == ')') ch = '_';
      }
      return name;
    });

// The kind table must cover every enumerator exactly once and round-trip
// through parse; the lattice and the CLI `ddts` listing are generated
// from it.
TEST(DdtKinds, TableIsCompleteAndRoundTrips) {
  EXPECT_EQ(ddt::kAllDdtKinds.size(), 12u);
  std::set<std::string> names;
  for (const ddt::DdtKind kind : ddt::kAllDdtKinds) {
    const std::string name(ddt::to_string(kind));
    EXPECT_FALSE(name.empty());
    EXPECT_FALSE(ddt::describe(kind).empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    ASSERT_TRUE(ddt::parse_ddt_kind(name).has_value()) << name;
    EXPECT_EQ(*ddt::parse_ddt_kind(name), kind);
  }
  EXPECT_FALSE(ddt::parse_ddt_kind("NOPE").has_value());
}

// Chunk capacity must not change functional behaviour, only costs.
template <std::size_t Cap>
std::vector<Rec> run_chunk_workload() {
  prof::MemoryProfile profile;
  ddt::ChunkedListContainer<Rec, true, true, Cap> c(profile);
  support::Rng rng(55);
  std::vector<Rec> dummy;
  for (int i = 0; i < 600; ++i) {
    const double roll = rng.next_double();
    if (roll < 0.5 || c.size() == 0) {
      c.push_back({rng.next_u64() % 1000, static_cast<std::uint64_t>(i)});
    } else if (roll < 0.7) {
      c.insert(rng.uniform(0, c.size()), {999, 999});
    } else if (roll < 0.9) {
      c.erase(rng.uniform(0, c.size() - 1));
    } else {
      c.set(rng.uniform(0, c.size() - 1), {1, 2});
    }
  }
  std::vector<Rec> out;
  c.for_each([&](std::size_t, const Rec& r) {
    out.push_back(r);
    return true;
  });
  return out;
}

TEST(ChunkCapacity, FunctionalBehaviourIndependentOfCapacity) {
  const auto small = run_chunk_workload<4>();
  const auto medium = run_chunk_workload<16>();
  const auto large = run_chunk_workload<64>();
  EXPECT_EQ(small, medium);
  EXPECT_EQ(medium, large);
}

TEST(ChunkCapacity, SmallerChunksMoreAllocations) {
  const auto allocs = [](auto cap_tag) {
    prof::MemoryProfile profile;
    ddt::ChunkedListContainer<Rec, false, false, decltype(cap_tag)::value> c(
        profile);
    for (std::size_t i = 0; i < 512; ++i) c.push_back({i, i});
    return profile.counters().allocations;
  };
  EXPECT_GT(allocs(std::integral_constant<std::size_t, 4>{}),
            allocs(std::integral_constant<std::size_t, 32>{}));
}

}  // namespace
}  // namespace ddtr
