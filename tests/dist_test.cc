// The distributed-exploration subsystem (src/dist/ + the engine's shard
// mode): (a) dist::WorkPlan shard assignment is a partition — disjoint,
// covering — and stable across independently rebuilt studies (the
// process-restart / second-host case); (b) an N-shard run plus segment
// merge yields a coordinator report byte-identical to the serial run,
// with zero executed simulations; (c) merging overlapping or duplicate
// segments is idempotent; (d) step-1 sharding: workers exchange step-1
// records through segment files and a marker-file barrier
// (dist::SegmentBarrier) and still produce byte-identical reports, with
// each worker EXECUTING only its owned step-1 units; barrier timeout is
// a clean error, cancellation while parked leaves a loadable segment,
// and a straggler joining late still converges; (e) worker-pool process
// supervision reaps only its own children; (f) concurrent fleets sharing
// one cache dir write distinct segment files. Plus the satellites:
// cache-file compaction and cooperative cancellation leaving a valid,
// loadable segment.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <latch>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "api/ddtr.h"
#include "core/persistent_cache.h"
#include "core/simulation_cache.h"
#include "dist/barrier.h"
#include "dist/cache_inspect.h"
#include "dist/segment_merger.h"
#include "dist/work_plan.h"
#include "dist/worker_pool.h"

namespace ddtr::dist {
namespace {

core::CaseStudyOptions tiny_options() {
  core::CaseStudyOptions options;
  options.route_packets = 200;
  options.url_packets = 200;
  options.ipchains_packets = 200;
  options.drr_packets = 200;
  return options;
}

core::CaseStudy tiny_url_study() {
  core::CaseStudy study = api::registry().make_study("url", tiny_options());
  study.scenarios.resize(2);  // keep the single-core test budget small
  return study;
}

// A unique empty scratch directory per test.
class DistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ddtr_dist_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST(WorkPlan, ShardAssignmentIsDisjointAndCovering) {
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  const std::size_t shards = 3;
  const WorkPlan plan(study, model, shards);

  // Every (scenario x combination) unit of the study is enumerated...
  ASSERT_EQ(plan.units().size(),
            study.scenarios.size() * study.combination_count());

  // ...and lands in exactly one shard: the shard_units lists are disjoint
  // and together cover the whole unit space.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t idx : plan.shard_units(shard)) {
      EXPECT_EQ(plan.shard_of(plan.units()[idx]), shard);
      EXPECT_TRUE(seen.insert(idx).second) << "unit in two shards";
      ++total;
    }
  }
  EXPECT_EQ(total, plan.units().size());

  // No shard is starved on a 200-unit space (FNV spreads keys evenly
  // enough that an empty shard would indicate a broken assignment).
  for (std::size_t shard = 0; shard < shards; ++shard) {
    EXPECT_FALSE(plan.shard_units(shard).empty());
  }
}

TEST(WorkPlan, StableAcrossIndependentlyRebuiltStudies) {
  // Two processes (or hosts) never exchange plans — each rebuilds the
  // study and must arrive at identical unit keys and assignments. Model
  // that by building everything twice from the registry.
  const energy::EnergyModel model = core::make_paper_energy_model();
  const WorkPlan first(tiny_url_study(), model, 4);
  const WorkPlan second(tiny_url_study(), model, 4);

  ASSERT_EQ(first.units().size(), second.units().size());
  for (std::size_t i = 0; i < first.units().size(); ++i) {
    EXPECT_EQ(first.units()[i].key, second.units()[i].key);
    EXPECT_EQ(first.shard_of(first.units()[i]),
              second.shard_of(second.units()[i]));
  }
  // And the assignment is the engine's: core::shard_of_key.
  for (const WorkUnit& unit : first.units()) {
    EXPECT_EQ(first.shard_of(unit), core::shard_of_key(unit.key, 4));
  }
}

TEST(WorkPlan, Step1UnitsPartitionUnderTheSameAssignment) {
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  const std::size_t shards = 3;
  const WorkPlan plan(study, model, shards);

  // The step-1 slice is exactly (representative scenario x combinations).
  const std::vector<std::size_t> step1 = plan.step1_units();
  ASSERT_EQ(step1.size(), study.combination_count());
  EXPECT_EQ(plan.representative(), study.representative);
  for (std::size_t idx : step1) {
    EXPECT_EQ(plan.units()[idx].scenario_index, study.representative);
  }

  // And the per-shard step-1 lists partition it under shard_of_key.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t idx : plan.step1_shard_units(shard)) {
      EXPECT_EQ(plan.shard_of(plan.units()[idx]), shard);
      EXPECT_TRUE(seen.insert(idx).second) << "step-1 unit in two shards";
      ++total;
    }
  }
  EXPECT_EQ(total, step1.size());
}

TEST(WorkerPool, DoesNotReapForeignChildren) {
  // A host program's own child (the decoy) must survive the coordinator's
  // wait loop: waitpid(-1, ...) would steal its exit status.
  const pid_t decoy = fork();
  ASSERT_GE(decoy, 0);
  if (decoy == 0) _exit(42);

  const std::vector<ProcessResult> results =
      run_worker_processes({{"/bin/sh", "-c", "exit 0"}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());

  // The decoy (long since a zombie) is still reapable by its parent.
  int status = -1;
  EXPECT_EQ(waitpid(decoy, &status, 0), decoy);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42);
}

TEST_F(DistTest, SegmentBarrierHonorsMarkersContentAndCancel) {
  core::PersistentSimulationCache cache(dir_);
  BarrierOptions quick;
  quick.timeout = std::chrono::milliseconds(250);
  quick.poll_interval = std::chrono::milliseconds(5);
  const SegmentBarrier barrier(dir_, 2, "fp", quick);

  // No markers: a clean timeout error naming the missing shards.
  try {
    barrier.wait();
    FAIL() << "barrier with no markers must time out";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("0/2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1/2"), std::string::npos);
  }

  // A marker with the WRONG content (a torn or spoofed file at the
  // expected path) never releases it.
  ASSERT_TRUE(cache.write_marker(core::step1_marker_name("fp", 0, 2), "fp"));
  ASSERT_TRUE(
      cache.write_marker(core::step1_marker_name("fp", 1, 2), "stale"));
  EXPECT_EQ(barrier.missing_shards(), std::vector<std::size_t>{1});
  EXPECT_THROW(barrier.wait(), std::runtime_error);

  // A different plan's marker lives at a DIFFERENT path (fingerprint in
  // the name), so same-geometry fleets cannot clobber each other.
  ASSERT_TRUE(cache.write_marker(core::step1_marker_name("other-plan", 1, 2),
                                 "other-plan"));
  EXPECT_EQ(barrier.missing_shards(), std::vector<std::size_t>{1});

  // The right content at the right path releases it immediately.
  ASSERT_TRUE(cache.write_marker(core::step1_marker_name("fp", 1, 2), "fp"));
  EXPECT_EQ(barrier.wait(), SegmentBarrier::Outcome::kReady);

  // A raised cancel flag returns kCancelled instead of waiting.
  BarrierOptions cancelling;
  cancelling.cancel = std::make_shared<std::atomic<bool>>(true);
  const SegmentBarrier cancelled(dir_, 3, "fp", cancelling);
  EXPECT_EQ(cancelled.wait(), SegmentBarrier::Outcome::kCancelled);
}

TEST_F(DistTest, Step1ShardedWorkersMatchSerialByteForByte) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // Two concurrent step-1-sharded workers (the cross-host recipe needs
  // the whole fleet alive at once: they rendezvous in the barrier).
  const std::size_t shards = 2;
  std::vector<core::ExplorationReport> reports(shards);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      api::Exploration worker(tiny_url_study());
      reports[s] = worker.cache_dir(dir_)
                       .shard(s, shards)
                       .step1_sharded()
                       .barrier_timeout(std::chrono::minutes(2))
                       .run();
    });
  }
  for (std::thread& t : threads) t.join();

  // The acceptance invariant: every worker REPORTS the full logical
  // step-1 set but EXECUTED only its owned slice — the slices partition
  // the combination space.
  std::size_t executed_total = 0;
  for (const core::ExplorationReport& r : reports) {
    EXPECT_EQ(r.step1_simulations, study.combination_count());
    EXPECT_GT(r.step1_executed_simulations, 0u);
    EXPECT_LT(r.step1_executed_simulations, study.combination_count());
    executed_total += r.step1_executed_simulations;
    EXPECT_FALSE(r.cancelled);
  }
  EXPECT_EQ(executed_total, study.combination_count());

  // Both published their markers...
  core::PersistentSimulationCache probe(dir_);
  const std::string fingerprint = core::step1_fingerprint(
      study, core::make_paper_energy_model(), core::Step1Policy::kExhaustive);
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_TRUE(
        core::PersistentSimulationCache::read_marker(
            probe.marker_path(core::step1_marker_name(fingerprint, s, shards)))
            .has_value());
  }

  // ...and the merged cache replays to the serial bytes with zero
  // executed simulations.
  SegmentMerger::merge(dir_);
  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, WorkersApiRunsStep1ShardedFlow) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  api::Exploration session(study);
  const core::ExplorationReport& report = session.workers(2)
                                              .step1_sharded()
                                              .barrier_timeout(
                                                  std::chrono::minutes(2))
                                              .cache_dir(dir_)
                                              .run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, BarrierTimeoutFiresCleanErrorAndKeepsCheckpoint) {
  // A lone worker of a 2-fleet: its sibling never arrives, so the run
  // must fail with the barrier's timeout error — not hang — and its
  // pre-barrier checkpoint must survive for a rerun to resume from.
  api::Exploration worker(tiny_url_study());
  worker.cache_dir(dir_)
      .shard(0, 2)
      .step1_sharded()
      .barrier_timeout(std::chrono::milliseconds(300));
  EXPECT_THROW(worker.run(), std::runtime_error);

  core::PersistentSimulationCache probe(dir_);
  EXPECT_GT(probe.load(), 0u);  // the owned step-1 records are durable
  EXPECT_TRUE(verify_cache(dir_).ok());
  // Its own marker was published before the wait.
  EXPECT_EQ(probe.marker_paths().size(), 1u);
}

TEST_F(DistTest, CancelWhileParkedInBarrierCheckpointsSegment) {
  api::Exploration worker(tiny_url_study());
  worker.cache_dir(dir_)
      .shard(0, 2)
      .step1_sharded()
      .barrier_timeout(std::chrono::minutes(2));
  core::ExplorationReport report;
  std::thread runner([&] { report = worker.run(); });

  // The worker is parked once its own marker appears (published just
  // before entering the barrier; the sibling never will).
  core::PersistentSimulationCache probe(dir_);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(1);
  while (probe.marker_paths().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(probe.marker_paths().empty()) << "worker never parked";
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  worker.cancel();
  runner.join();

  EXPECT_TRUE(report.cancelled);
  EXPECT_GT(report.persistent_stored, 0u);
  // The checkpointed segment is valid and loadable — a rerun resumes.
  EXPECT_TRUE(verify_cache(dir_).ok());
  EXPECT_EQ(probe.load(), report.persistent_stored);
}

TEST_F(DistTest, StragglerJoiningLateStillProducesIdenticalReport) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // Shard 0 starts immediately and parks; shard 1 joins noticeably late.
  std::thread early([&] {
    api::Exploration worker(tiny_url_study());
    worker.cache_dir(dir_)
        .shard(0, 2)
        .step1_sharded()
        .barrier_timeout(std::chrono::minutes(2))
        .run();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  api::Exploration late(tiny_url_study());
  late.cache_dir(dir_)
      .shard(1, 2)
      .step1_sharded()
      .barrier_timeout(std::chrono::minutes(2))
      .run();
  early.join();

  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, TwoFleetsSharingOneDirWriteDistinctSegments) {
  // Two fleets, SAME shard geometry, one cache directory, all four
  // workers concurrent: per-run segment tokens must keep every writer in
  // its own file (same-path appends interleave frames — the multi-writer
  // corruption), and the merged result must still replay byte-identical.
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // Hold every worker at its first progress tick (fired after the cold
  // persistent load) so none can observe another's store: all four must
  // then store records themselves — and must do so into FOUR distinct
  // files (pre-fix, same geometry meant at most two shared paths).
  std::latch all_loaded(4);
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> stored(4, 0);
  for (std::size_t fleet = 0; fleet < 2; ++fleet) {
    for (std::size_t s = 0; s < 2; ++s) {
      threads.emplace_back([&, fleet, s] {
        api::Exploration worker(tiny_url_study());
        worker.cache_dir(dir_).shard(s, 2).on_progress(
            [&](const core::StepProgress& p) {
              if (p.step == 1 && p.done == 0) all_loaded.arrive_and_wait();
            });
        stored[fleet * 2 + s] = worker.run().persistent_stored;
      });
    }
  }
  for (std::thread& t : threads) t.join();

  std::uint64_t stored_total = 0;
  for (std::uint64_t count : stored) {
    EXPECT_GT(count, 0u);
    stored_total += count;
  }
  core::PersistentSimulationCache probe(dir_);
  EXPECT_EQ(probe.segment_paths().size(), 4u);  // one file per writer
  EXPECT_FALSE(std::filesystem::exists(probe.file_path()));
  EXPECT_TRUE(verify_cache(dir_).ok());
  // Nothing clobbered: every stored frame is intact (the fleets overlap
  // key-wise, so distinct entries dedupe; distinct + superseded must
  // account for every frame the four writers stored).
  const std::size_t distinct = probe.load();
  EXPECT_EQ(distinct + probe.load_stats().superseded, stored_total);

  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, ShardedRunsPlusMergeMatchSerialByteForByte) {
  const core::CaseStudy study = tiny_url_study();

  // The ground truth: one plain single-process run, no cache.
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // N manual shard workers (the cross-host recipe: same study, same
  // flags, a shared cache directory, disjoint --shard values).
  const std::size_t shards = 2;
  std::size_t stored_total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    api::Exploration worker(study);
    const core::ExplorationReport& report =
        worker.cache_dir(dir_).shard(s, shards).run();
    EXPECT_EQ(report.shard_index, s);
    EXPECT_EQ(report.shard_count, shards);
    EXPECT_FALSE(report.cancelled);
    stored_total += report.persistent_stored;
  }
  // Workers wrote disjoint segments — and never the shared main file
  // (the concurrent-writer fix).
  core::PersistentSimulationCache probe(dir_);
  EXPECT_FALSE(std::filesystem::exists(probe.file_path()));
  EXPECT_EQ(probe.segment_paths().size(), shards);

  // Merge consolidates the segments into a compacted main file.
  const MergeStats merged = SegmentMerger::merge(dir_);
  EXPECT_EQ(merged.segment_files, shards);
  EXPECT_EQ(merged.entries, stored_total);  // segments were disjoint
  EXPECT_TRUE(std::filesystem::exists(probe.file_path()));
  EXPECT_TRUE(probe.segment_paths().empty());

  // The coordinator pass replays everything: zero executed simulations,
  // byte-identical report.
  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.persistent_loaded, merged.entries);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, CoordinatorReplaysUnmergedSegmentsToo) {
  // Merge-on-load: the explicit merge is tidiness, not a prerequisite.
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  for (std::size_t s = 0; s < 2; ++s) {
    api::Exploration worker(study);
    worker.cache_dir(dir_).shard(s, 2).run();
  }
  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, WorkersApiRunsWholeDistributedFlow) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // workers(2): shard threads + merge + coordinator pass, one call.
  api::Exploration session(study);
  const core::ExplorationReport& report =
      session.workers(2).cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.shard_count, 1u);  // the report IS the coordinator's
  EXPECT_EQ(report.serialized_records(), serial_bytes);
  // The merge left one compacted main file and no segments.
  core::PersistentSimulationCache probe(dir_);
  EXPECT_TRUE(std::filesystem::exists(probe.file_path()));
  EXPECT_TRUE(probe.segment_paths().empty());
}

TEST_F(DistTest, WorkersRequireCacheDir) {
  api::Exploration session(tiny_url_study());
  session.workers(2);
  EXPECT_THROW(session.run(), std::invalid_argument);
  api::Exploration sharded(tiny_url_study());
  sharded.shard(0, 2);
  EXPECT_THROW(sharded.run(), std::invalid_argument);
}

TEST_F(DistTest, MergingOverlappingSegmentsIsIdempotent) {
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  const core::Scenario& scenario = study.scenarios.front();
  const ddt::DdtCombination c1({ddt::DdtKind::kArray, ddt::DdtKind::kSll});
  const ddt::DdtCombination c2({ddt::DdtKind::kDll, ddt::DdtKind::kSll});
  const ddt::DdtCombination c3({ddt::DdtKind::kSll, ddt::DdtKind::kArray});

  // Two writers whose segments OVERLAP on c2 (both loaded before either
  // stored — the concurrent cold-start shape).
  core::SimulationCache cache_a;
  cache_a.get_or_simulate(scenario, c1, model);
  cache_a.get_or_simulate(scenario, c2, model);
  core::SimulationCache cache_b;
  cache_b.get_or_simulate(scenario, c2, model);
  cache_b.get_or_simulate(scenario, c3, model);

  core::PersistentSimulationCache writer_a(dir_);
  writer_a.set_segment("a");
  core::PersistentSimulationCache writer_b(dir_);
  writer_b.set_segment("b");
  EXPECT_EQ(writer_a.load(), 0u);
  EXPECT_EQ(writer_b.load(), 0u);
  EXPECT_EQ(writer_a.store_new(cache_a), 2u);
  EXPECT_EQ(writer_b.store_new(cache_b), 2u);

  // First merge: 4 stored entries collapse to 3 distinct keys.
  const MergeStats first = SegmentMerger::merge(dir_);
  EXPECT_EQ(first.segment_files, 2u);
  EXPECT_EQ(first.entries, 3u);
  EXPECT_EQ(first.duplicates_dropped, 1u);

  // Second merge: nothing left to fold — same entries, same bytes.
  const auto main_path = core::PersistentSimulationCache(dir_).file_path();
  const auto bytes_after_first = std::filesystem::file_size(main_path);
  const MergeStats second = SegmentMerger::merge(dir_);
  EXPECT_EQ(second.segment_files, 0u);
  EXPECT_EQ(second.entries, 3u);
  EXPECT_EQ(second.duplicates_dropped, 0u);
  EXPECT_EQ(std::filesystem::file_size(main_path), bytes_after_first);
}

TEST_F(DistTest, CompactDropsSupersededDuplicates) {
  // Two cold-start sessions append the SAME record to the main file (the
  // benign duplicate-append path) — compact() folds them to one frame.
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  core::SimulationCache cache;
  cache.get_or_simulate(study.scenarios.front(),
                        ddt::DdtCombination(
                            {ddt::DdtKind::kArray, ddt::DdtKind::kSll}),
                        model);

  core::PersistentSimulationCache first(dir_);
  core::PersistentSimulationCache second(dir_);
  EXPECT_EQ(first.load(), 0u);
  EXPECT_EQ(second.load(), 0u);
  EXPECT_EQ(first.store_new(cache), 1u);
  EXPECT_EQ(second.store_new(cache), 1u);  // duplicate frame appended

  core::PersistentSimulationCache probe(dir_);
  EXPECT_EQ(probe.load(), 1u);
  EXPECT_EQ(probe.load_stats().superseded, 1u);
  const auto before = std::filesystem::file_size(probe.file_path());
  EXPECT_EQ(probe.compact(), 1u);
  EXPECT_LT(std::filesystem::file_size(probe.file_path()), before);

  core::PersistentSimulationCache reread(dir_);
  EXPECT_EQ(reread.load(), 1u);
  EXPECT_EQ(reread.load_stats().superseded, 0u);
}

TEST_F(DistTest, CancelledRunLeavesLoadableSegmentAndResumes) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration plain(study);
  const std::string serial_bytes = plain.run().serialized_records();

  // Cancel from the progress observer after a handful of simulations —
  // the cooperative-cancellation path a SIGTERM handler also takes.
  api::Exploration cancelled(study);
  cancelled.cache_dir(dir_).shard(0, 2).on_progress(
      [&](const core::StepProgress& p) {
        if (p.done >= 5) cancelled.cancel();
      });
  const core::ExplorationReport& report = cancelled.run();
  EXPECT_TRUE(report.cancelled);
  EXPECT_GT(report.skipped_after_cancel, 0u);
  EXPECT_LT(report.executed_simulations(), study.combination_count());

  // The checkpointed segment is valid and loadable...
  const VerifyReport verify = verify_cache(dir_);
  EXPECT_TRUE(verify.ok());
  core::PersistentSimulationCache probe(dir_);
  EXPECT_EQ(probe.load(), report.persistent_stored);

  // ...and a follow-up full run resumes from it, replaying what the
  // cancelled worker managed to execute and landing on the serial bytes.
  api::Exploration resumed(study);
  const core::ExplorationReport& final_report =
      resumed.cache_dir(dir_).run();
  EXPECT_FALSE(final_report.cancelled);
  EXPECT_EQ(final_report.persistent_loaded, report.persistent_stored);
  EXPECT_EQ(final_report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, InspectAndClearCoverMainAndSegments) {
  const core::CaseStudy study = tiny_url_study();
  for (std::size_t s = 0; s < 2; ++s) {
    api::Exploration worker(study);
    worker.cache_dir(dir_).shard(s, 2).run();
  }
  const CacheStats stats = inspect_cache(dir_);
  EXPECT_EQ(stats.files, 2u);  // two segments, no main file yet
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.bytes, 0u);
  ASSERT_EQ(stats.apps.size(), 1u);
  EXPECT_EQ(stats.apps.front().first, study.scenarios.front().app->name());
  ASSERT_EQ(stats.model_fingerprints.size(), 1u);

  EXPECT_EQ(clear_cache(dir_), 2u);
  EXPECT_EQ(inspect_cache(dir_).entries, 0u);
}

}  // namespace
}  // namespace ddtr::dist
