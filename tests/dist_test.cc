// The distributed-exploration subsystem (src/dist/ + the engine's shard
// mode): (a) dist::WorkPlan shard assignment is a partition — disjoint,
// covering — and stable across independently rebuilt studies (the
// process-restart / second-host case); (b) an N-shard run plus segment
// merge yields a coordinator report byte-identical to the serial run,
// with zero executed simulations; (c) merging overlapping or duplicate
// segments is idempotent; plus the satellites: cache-file compaction and
// cooperative cancellation leaving a valid, loadable segment.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "api/ddtr.h"
#include "core/persistent_cache.h"
#include "core/simulation_cache.h"
#include "dist/cache_inspect.h"
#include "dist/segment_merger.h"
#include "dist/work_plan.h"

namespace ddtr::dist {
namespace {

core::CaseStudyOptions tiny_options() {
  core::CaseStudyOptions options;
  options.route_packets = 200;
  options.url_packets = 200;
  options.ipchains_packets = 200;
  options.drr_packets = 200;
  return options;
}

core::CaseStudy tiny_url_study() {
  core::CaseStudy study = api::registry().make_study("url", tiny_options());
  study.scenarios.resize(2);  // keep the single-core test budget small
  return study;
}

// A unique empty scratch directory per test.
class DistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ddtr_dist_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST(WorkPlan, ShardAssignmentIsDisjointAndCovering) {
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  const std::size_t shards = 3;
  const WorkPlan plan(study, model, shards);

  // Every (scenario x combination) unit of the study is enumerated...
  ASSERT_EQ(plan.units().size(),
            study.scenarios.size() * study.combination_count());

  // ...and lands in exactly one shard: the shard_units lists are disjoint
  // and together cover the whole unit space.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t idx : plan.shard_units(shard)) {
      EXPECT_EQ(plan.shard_of(plan.units()[idx]), shard);
      EXPECT_TRUE(seen.insert(idx).second) << "unit in two shards";
      ++total;
    }
  }
  EXPECT_EQ(total, plan.units().size());

  // No shard is starved on a 200-unit space (FNV spreads keys evenly
  // enough that an empty shard would indicate a broken assignment).
  for (std::size_t shard = 0; shard < shards; ++shard) {
    EXPECT_FALSE(plan.shard_units(shard).empty());
  }
}

TEST(WorkPlan, StableAcrossIndependentlyRebuiltStudies) {
  // Two processes (or hosts) never exchange plans — each rebuilds the
  // study and must arrive at identical unit keys and assignments. Model
  // that by building everything twice from the registry.
  const energy::EnergyModel model = core::make_paper_energy_model();
  const WorkPlan first(tiny_url_study(), model, 4);
  const WorkPlan second(tiny_url_study(), model, 4);

  ASSERT_EQ(first.units().size(), second.units().size());
  for (std::size_t i = 0; i < first.units().size(); ++i) {
    EXPECT_EQ(first.units()[i].key, second.units()[i].key);
    EXPECT_EQ(first.shard_of(first.units()[i]),
              second.shard_of(second.units()[i]));
  }
  // And the assignment is the engine's: core::shard_of_key.
  for (const WorkUnit& unit : first.units()) {
    EXPECT_EQ(first.shard_of(unit), core::shard_of_key(unit.key, 4));
  }
}

TEST_F(DistTest, ShardedRunsPlusMergeMatchSerialByteForByte) {
  const core::CaseStudy study = tiny_url_study();

  // The ground truth: one plain single-process run, no cache.
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // N manual shard workers (the cross-host recipe: same study, same
  // flags, a shared cache directory, disjoint --shard values).
  const std::size_t shards = 2;
  std::size_t stored_total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    api::Exploration worker(study);
    const core::ExplorationReport& report =
        worker.cache_dir(dir_).shard(s, shards).run();
    EXPECT_EQ(report.shard_index, s);
    EXPECT_EQ(report.shard_count, shards);
    EXPECT_FALSE(report.cancelled);
    stored_total += report.persistent_stored;
  }
  // Workers wrote disjoint segments — and never the shared main file
  // (the concurrent-writer fix).
  core::PersistentSimulationCache probe(dir_);
  EXPECT_FALSE(std::filesystem::exists(probe.file_path()));
  EXPECT_EQ(probe.segment_paths().size(), shards);

  // Merge consolidates the segments into a compacted main file.
  const MergeStats merged = SegmentMerger::merge(dir_);
  EXPECT_EQ(merged.segment_files, shards);
  EXPECT_EQ(merged.entries, stored_total);  // segments were disjoint
  EXPECT_TRUE(std::filesystem::exists(probe.file_path()));
  EXPECT_TRUE(probe.segment_paths().empty());

  // The coordinator pass replays everything: zero executed simulations,
  // byte-identical report.
  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.persistent_loaded, merged.entries);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, CoordinatorReplaysUnmergedSegmentsToo) {
  // Merge-on-load: the explicit merge is tidiness, not a prerequisite.
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  for (std::size_t s = 0; s < 2; ++s) {
    api::Exploration worker(study);
    worker.cache_dir(dir_).shard(s, 2).run();
  }
  api::Exploration coordinator(study);
  const core::ExplorationReport& report = coordinator.cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, WorkersApiRunsWholeDistributedFlow) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration serial(study);
  const std::string serial_bytes = serial.run().serialized_records();

  // workers(2): shard threads + merge + coordinator pass, one call.
  api::Exploration session(study);
  const core::ExplorationReport& report =
      session.workers(2).cache_dir(dir_).run();
  EXPECT_EQ(report.executed_simulations(), 0u);
  EXPECT_EQ(report.shard_count, 1u);  // the report IS the coordinator's
  EXPECT_EQ(report.serialized_records(), serial_bytes);
  // The merge left one compacted main file and no segments.
  core::PersistentSimulationCache probe(dir_);
  EXPECT_TRUE(std::filesystem::exists(probe.file_path()));
  EXPECT_TRUE(probe.segment_paths().empty());
}

TEST_F(DistTest, WorkersRequireCacheDir) {
  api::Exploration session(tiny_url_study());
  session.workers(2);
  EXPECT_THROW(session.run(), std::invalid_argument);
  api::Exploration sharded(tiny_url_study());
  sharded.shard(0, 2);
  EXPECT_THROW(sharded.run(), std::invalid_argument);
}

TEST_F(DistTest, MergingOverlappingSegmentsIsIdempotent) {
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  const core::Scenario& scenario = study.scenarios.front();
  const ddt::DdtCombination c1({ddt::DdtKind::kArray, ddt::DdtKind::kSll});
  const ddt::DdtCombination c2({ddt::DdtKind::kDll, ddt::DdtKind::kSll});
  const ddt::DdtCombination c3({ddt::DdtKind::kSll, ddt::DdtKind::kArray});

  // Two writers whose segments OVERLAP on c2 (both loaded before either
  // stored — the concurrent cold-start shape).
  core::SimulationCache cache_a;
  cache_a.get_or_simulate(scenario, c1, model);
  cache_a.get_or_simulate(scenario, c2, model);
  core::SimulationCache cache_b;
  cache_b.get_or_simulate(scenario, c2, model);
  cache_b.get_or_simulate(scenario, c3, model);

  core::PersistentSimulationCache writer_a(dir_);
  writer_a.set_segment("a");
  core::PersistentSimulationCache writer_b(dir_);
  writer_b.set_segment("b");
  EXPECT_EQ(writer_a.load(), 0u);
  EXPECT_EQ(writer_b.load(), 0u);
  EXPECT_EQ(writer_a.store_new(cache_a), 2u);
  EXPECT_EQ(writer_b.store_new(cache_b), 2u);

  // First merge: 4 stored entries collapse to 3 distinct keys.
  const MergeStats first = SegmentMerger::merge(dir_);
  EXPECT_EQ(first.segment_files, 2u);
  EXPECT_EQ(first.entries, 3u);
  EXPECT_EQ(first.duplicates_dropped, 1u);

  // Second merge: nothing left to fold — same entries, same bytes.
  const auto main_path = core::PersistentSimulationCache(dir_).file_path();
  const auto bytes_after_first = std::filesystem::file_size(main_path);
  const MergeStats second = SegmentMerger::merge(dir_);
  EXPECT_EQ(second.segment_files, 0u);
  EXPECT_EQ(second.entries, 3u);
  EXPECT_EQ(second.duplicates_dropped, 0u);
  EXPECT_EQ(std::filesystem::file_size(main_path), bytes_after_first);
}

TEST_F(DistTest, CompactDropsSupersededDuplicates) {
  // Two cold-start sessions append the SAME record to the main file (the
  // benign duplicate-append path) — compact() folds them to one frame.
  const core::CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = core::make_paper_energy_model();
  core::SimulationCache cache;
  cache.get_or_simulate(study.scenarios.front(),
                        ddt::DdtCombination(
                            {ddt::DdtKind::kArray, ddt::DdtKind::kSll}),
                        model);

  core::PersistentSimulationCache first(dir_);
  core::PersistentSimulationCache second(dir_);
  EXPECT_EQ(first.load(), 0u);
  EXPECT_EQ(second.load(), 0u);
  EXPECT_EQ(first.store_new(cache), 1u);
  EXPECT_EQ(second.store_new(cache), 1u);  // duplicate frame appended

  core::PersistentSimulationCache probe(dir_);
  EXPECT_EQ(probe.load(), 1u);
  EXPECT_EQ(probe.load_stats().superseded, 1u);
  const auto before = std::filesystem::file_size(probe.file_path());
  EXPECT_EQ(probe.compact(), 1u);
  EXPECT_LT(std::filesystem::file_size(probe.file_path()), before);

  core::PersistentSimulationCache reread(dir_);
  EXPECT_EQ(reread.load(), 1u);
  EXPECT_EQ(reread.load_stats().superseded, 0u);
}

TEST_F(DistTest, CancelledRunLeavesLoadableSegmentAndResumes) {
  const core::CaseStudy study = tiny_url_study();
  api::Exploration plain(study);
  const std::string serial_bytes = plain.run().serialized_records();

  // Cancel from the progress observer after a handful of simulations —
  // the cooperative-cancellation path a SIGTERM handler also takes.
  api::Exploration cancelled(study);
  cancelled.cache_dir(dir_).shard(0, 2).on_progress(
      [&](const core::StepProgress& p) {
        if (p.done >= 5) cancelled.cancel();
      });
  const core::ExplorationReport& report = cancelled.run();
  EXPECT_TRUE(report.cancelled);
  EXPECT_GT(report.skipped_after_cancel, 0u);
  EXPECT_LT(report.executed_simulations(), study.combination_count());

  // The checkpointed segment is valid and loadable...
  const VerifyReport verify = verify_cache(dir_);
  EXPECT_TRUE(verify.ok());
  core::PersistentSimulationCache probe(dir_);
  EXPECT_EQ(probe.load(), report.persistent_stored);

  // ...and a follow-up full run resumes from it, replaying what the
  // cancelled worker managed to execute and landing on the serial bytes.
  api::Exploration resumed(study);
  const core::ExplorationReport& final_report =
      resumed.cache_dir(dir_).run();
  EXPECT_FALSE(final_report.cancelled);
  EXPECT_EQ(final_report.persistent_loaded, report.persistent_stored);
  EXPECT_EQ(final_report.serialized_records(), serial_bytes);
}

TEST_F(DistTest, InspectAndClearCoverMainAndSegments) {
  const core::CaseStudy study = tiny_url_study();
  for (std::size_t s = 0; s < 2; ++s) {
    api::Exploration worker(study);
    worker.cache_dir(dir_).shard(s, 2).run();
  }
  const CacheStats stats = inspect_cache(dir_);
  EXPECT_EQ(stats.files, 2u);  // two segments, no main file yet
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.bytes, 0u);
  ASSERT_EQ(stats.apps.size(), 1u);
  EXPECT_EQ(stats.apps.front().first, study.scenarios.front().app->name());
  ASSERT_EQ(stats.model_fingerprints.size(), 1u);

  EXPECT_EQ(clear_cache(dir_), 2u);
  EXPECT_EQ(inspect_cache(dir_).entries, 0u);
}

}  // namespace
}  // namespace ddtr::dist
