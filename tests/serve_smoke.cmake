# End-to-end smoke of the serve daemon against the real binary, run as a
# ctest: start `ddtr serve` in the background, submit the same small url
# study twice over the unix socket, and require the warm second run to
# execute ZERO simulations with byte-identical result records (the ISSUE's
# acceptance check, at the process level); then job table, result
# re-fetch, clean shutdown (socket removed, compacted cache left warm).
#
# Invoked by CMakeLists.txt as:
#   cmake -DDDTR_CLI=<path-to-ddtr> -DWORK_DIR=<scratch-dir> -P serve_smoke.cmake

if(NOT DEFINED DDTR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "serve_smoke.cmake needs -DDDTR_CLI=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(SOCKET "${WORK_DIR}/daemon.sock")
set(CACHE_DIR "${WORK_DIR}/cache")
set(SERVE_LOG "${WORK_DIR}/serve.out")
set(DAEMON_PID "")

# Fails the test after killing the background daemon (a FATAL_ERROR alone
# would leak it into the ctest runner).
function(fail msg)
  if(DAEMON_PID)
    execute_process(COMMAND kill ${DAEMON_PID} ERROR_QUIET)
  endif()
  if(EXISTS "${SERVE_LOG}")
    file(READ "${SERVE_LOG}" serve_log)
    message(FATAL_ERROR "${msg}\n--- daemon log ---\n${serve_log}")
  endif()
  message(FATAL_ERROR "${msg}")
endfunction()

function(run_cli expect_success out_var)
  execute_process(
      COMMAND ${DDTR_CLI} ${ARGN}
      RESULT_VARIABLE result
      OUTPUT_VARIABLE output
      ERROR_VARIABLE errout)
  if(expect_success AND NOT result EQUAL 0)
    fail("ddtr ${ARGN} failed (exit ${result}):\n${output}\n${errout}")
  endif()
  if(NOT expect_success AND result EQUAL 0)
    fail("ddtr ${ARGN} unexpectedly succeeded:\n${output}\n${errout}")
  endif()
  set(${out_var} "${output}\n${errout}" PARENT_SCOPE)
endfunction()

# 1. Start the daemon detached (output to a file so this script does not
#    block on the pipe) and wait for the socket to appear.
execute_process(
    COMMAND sh -c "'${DDTR_CLI}' serve --socket '${SOCKET}' --cache-dir '${CACHE_DIR}' --jobs 2 > '${SERVE_LOG}' 2>&1 & echo $!"
    OUTPUT_VARIABLE DAEMON_PID
    OUTPUT_STRIP_TRAILING_WHITESPACE)
foreach(attempt RANGE 60)
  if(EXISTS "${SOCKET}")
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.5)
endforeach()
if(NOT EXISTS "${SOCKET}")
  fail("daemon never bound ${SOCKET}")
endif()

# 2. Cold submission: executes simulations, stores records, writes the
#    result records to a file.
run_cli(TRUE cold_out
        submit --socket ${SOCKET} --app url --scale 0.05
        --log ${WORK_DIR}/cold.records)
if(NOT cold_out MATCHES "persistent cache: +loaded 0, stored [1-9]")
  fail("cold submission did not store cache records:\n${cold_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/cold.records")
  fail("cold submission did not write its records file")
endif()

# 3. THE acceptance check: the identical resubmission must report zero
#    executed simulations and byte-identical records.
run_cli(TRUE warm_out
        submit --socket ${SOCKET} --app url --scale 0.05
        --log ${WORK_DIR}/warm.records)
if(NOT warm_out MATCHES "executed simulations: +0 of")
  fail("warm resubmission executed simulations:\n${warm_out}")
endif()
file(READ "${WORK_DIR}/cold.records" cold_bytes)
file(READ "${WORK_DIR}/warm.records" warm_bytes)
if(NOT cold_bytes STREQUAL warm_bytes)
  fail("warm resubmission records differ from the cold run's")
endif()

# 4. The job table knows both submissions; a completed job's result can be
#    re-fetched byte-identically.
run_cli(TRUE status_out status --socket ${SOCKET})
if(NOT status_out MATCHES "2 jobs")
  fail("status does not list 2 jobs:\n${status_out}")
endif()
run_cli(TRUE results_out
        results --socket ${SOCKET} --job 1 --log ${WORK_DIR}/refetch.records)
file(READ "${WORK_DIR}/refetch.records" refetch_bytes)
if(NOT cold_bytes STREQUAL refetch_bytes)
  fail("re-fetched records differ from the original run's")
endif()

# 5. Clean shutdown: socket removed, compacted main cache file on disk.
run_cli(TRUE bye_out shutdown --socket ${SOCKET})
foreach(attempt RANGE 60)
  if(NOT EXISTS "${SOCKET}")
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.5)
endforeach()
if(EXISTS "${SOCKET}")
  fail("daemon did not remove its socket file on shutdown")
endif()
if(NOT EXISTS "${CACHE_DIR}/sim_cache.ddtr")
  fail("daemon did not flush a compacted cache file on shutdown")
endif()

# 6. The flushed cache is genuinely warm: a plain (daemon-less) explore
#    over the same directory replays everything.
run_cli(TRUE replay_out
        explore --app url --scale 0.05 --cache-dir ${CACHE_DIR})
if(NOT replay_out MATCHES "executed simulations: +0 ")
  fail("explore over the daemon's flushed cache re-executed:\n${replay_out}")
endif()

message(STATUS "serve_smoke: daemon round trip passed")
