// MemoryProfile bookkeeping tests.
#include <gtest/gtest.h>

#include "profiling/memory_profile.h"

namespace ddtr::prof {
namespace {

TEST(MemoryProfile, ReadsAndWritesAccumulate) {
  MemoryProfile p;
  p.record_read(8, 3);
  p.record_write(16, 2);
  EXPECT_EQ(p.counters().reads, 3u);
  EXPECT_EQ(p.counters().writes, 2u);
  EXPECT_EQ(p.counters().bytes_read, 24u);
  EXPECT_EQ(p.counters().bytes_written, 32u);
  EXPECT_EQ(p.counters().accesses(), 5u);
}

TEST(MemoryProfile, PeakTracksHighWaterMark) {
  MemoryProfile p;
  p.on_alloc(100);
  p.on_alloc(200);
  p.on_free(150);
  p.on_alloc(50);
  EXPECT_EQ(p.counters().live_bytes, 200u);
  EXPECT_EQ(p.counters().peak_bytes, 300u);
}

TEST(MemoryProfile, FreeClampsAtZero) {
  MemoryProfile p;
  p.on_alloc(10);
  p.on_free(100);  // defensive clamp, not an underflow
  EXPECT_EQ(p.counters().live_bytes, 0u);
}

TEST(MemoryProfile, CpuOpsAccumulate) {
  MemoryProfile p;
  p.record_cpu_ops(5);
  p.record_cpu_ops(7);
  EXPECT_EQ(p.counters().cpu_ops, 12u);
}

TEST(MemoryProfile, ResetClearsEverything) {
  MemoryProfile p("x");
  p.record_read(8);
  p.on_alloc(64);
  p.reset();
  EXPECT_EQ(p.counters().reads, 0u);
  EXPECT_EQ(p.counters().live_bytes, 0u);
  EXPECT_EQ(p.counters().peak_bytes, 0u);
  EXPECT_EQ(p.name(), "x");
}

TEST(ProfileCounters, SumCombinesDisjointMemories) {
  ProfileCounters a;
  a.reads = 10;
  a.peak_bytes = 100;
  a.cpu_ops = 5;
  ProfileCounters b;
  b.reads = 3;
  b.writes = 4;
  b.peak_bytes = 50;
  a += b;
  EXPECT_EQ(a.reads, 13u);
  EXPECT_EQ(a.writes, 4u);
  // Coexisting structures: footprints add.
  EXPECT_EQ(a.peak_bytes, 150u);
  EXPECT_EQ(a.cpu_ops, 5u);
}

}  // namespace
}  // namespace ddtr::prof
