// Behavioral equivalence of all ten DDT implementations: every kind must
// implement the same sequence semantics (the methodology swaps them behind
// unchanged application code). Includes a randomized model-based property
// test against std::vector as the reference.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ddt/factory.h"
#include "support/rng.h"

namespace ddtr {
namespace {

struct Record {
  int key = 0;
  int payload = 0;
  bool operator==(const Record&) const = default;
};

class DdtBehaviorTest : public ::testing::TestWithParam<ddt::DdtKind> {
 protected:
  prof::MemoryProfile profile_;
  std::unique_ptr<ddt::Container<Record>> make() {
    return ddt::make_container<Record>(GetParam(), profile_);
  }
};

TEST_P(DdtBehaviorTest, StartsEmpty) {
  auto c = make();
  EXPECT_EQ(c->size(), 0u);
  EXPECT_TRUE(c->empty());
  EXPECT_EQ(c->kind(), GetParam());
}

TEST_P(DdtBehaviorTest, PushBackThenGetPreservesOrder) {
  auto c = make();
  for (int i = 0; i < 50; ++i) c->push_back({i, i * 10});
  ASSERT_EQ(c->size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c->get(static_cast<std::size_t>(i)).key, i) << "index " << i;
  }
}

TEST_P(DdtBehaviorTest, GetIsRepeatableAtSameIndex) {
  auto c = make();
  for (int i = 0; i < 20; ++i) c->push_back({i, 0});
  EXPECT_EQ(c->get(7).key, 7);
  EXPECT_EQ(c->get(7).key, 7);  // roving caches must not corrupt reads
  EXPECT_EQ(c->get(3).key, 3);  // backwards re-read after forward roving
  EXPECT_EQ(c->get(19).key, 19);
  EXPECT_EQ(c->get(0).key, 0);
}

TEST_P(DdtBehaviorTest, SetOverwritesOnlyThatIndex) {
  auto c = make();
  for (int i = 0; i < 30; ++i) c->push_back({i, 0});
  c->set(11, {111, 1});
  for (int i = 0; i < 30; ++i) {
    const int expected = i == 11 ? 111 : i;
    EXPECT_EQ(c->get(static_cast<std::size_t>(i)).key, expected);
  }
}

TEST_P(DdtBehaviorTest, InsertAtFront) {
  auto c = make();
  for (int i = 0; i < 10; ++i) c->push_back({i, 0});
  c->insert(0, {-1, 0});
  ASSERT_EQ(c->size(), 11u);
  EXPECT_EQ(c->get(0).key, -1);
  EXPECT_EQ(c->get(1).key, 0);
  EXPECT_EQ(c->get(10).key, 9);
}

TEST_P(DdtBehaviorTest, InsertInMiddleShiftsTail) {
  auto c = make();
  for (int i = 0; i < 10; ++i) c->push_back({i, 0});
  c->insert(5, {50, 0});
  ASSERT_EQ(c->size(), 11u);
  EXPECT_EQ(c->get(4).key, 4);
  EXPECT_EQ(c->get(5).key, 50);
  EXPECT_EQ(c->get(6).key, 5);
}

TEST_P(DdtBehaviorTest, InsertAtEndEqualsPushBack) {
  auto c = make();
  for (int i = 0; i < 5; ++i) c->push_back({i, 0});
  c->insert(5, {5, 0});
  ASSERT_EQ(c->size(), 6u);
  EXPECT_EQ(c->get(5).key, 5);
}

TEST_P(DdtBehaviorTest, InsertIntoEmpty) {
  auto c = make();
  c->insert(0, {42, 0});
  ASSERT_EQ(c->size(), 1u);
  EXPECT_EQ(c->get(0).key, 42);
}

TEST_P(DdtBehaviorTest, EraseFront) {
  auto c = make();
  for (int i = 0; i < 8; ++i) c->push_back({i, 0});
  c->erase(0);
  ASSERT_EQ(c->size(), 7u);
  EXPECT_EQ(c->get(0).key, 1);
  EXPECT_EQ(c->get(6).key, 7);
}

TEST_P(DdtBehaviorTest, EraseBack) {
  auto c = make();
  for (int i = 0; i < 8; ++i) c->push_back({i, 0});
  c->erase(7);
  ASSERT_EQ(c->size(), 7u);
  EXPECT_EQ(c->get(6).key, 6);
  // Tail bookkeeping must survive: append again.
  c->push_back({99, 0});
  EXPECT_EQ(c->get(7).key, 99);
}

TEST_P(DdtBehaviorTest, EraseMiddle) {
  auto c = make();
  for (int i = 0; i < 9; ++i) c->push_back({i, 0});
  c->erase(4);
  ASSERT_EQ(c->size(), 8u);
  EXPECT_EQ(c->get(3).key, 3);
  EXPECT_EQ(c->get(4).key, 5);
}

TEST_P(DdtBehaviorTest, EraseToEmptyThenReuse) {
  auto c = make();
  for (int i = 0; i < 4; ++i) c->push_back({i, 0});
  for (int i = 0; i < 4; ++i) c->erase(0);
  EXPECT_TRUE(c->empty());
  c->push_back({7, 7});
  ASSERT_EQ(c->size(), 1u);
  EXPECT_EQ(c->get(0).key, 7);
}

TEST_P(DdtBehaviorTest, ClearReleasesEverything) {
  auto c = make();
  for (int i = 0; i < 100; ++i) c->push_back({i, 0});
  c->clear();
  EXPECT_EQ(c->size(), 0u);
  c->push_back({1, 1});
  EXPECT_EQ(c->get(0).key, 1);
}

TEST_P(DdtBehaviorTest, ClearThenDestroyBalancesAllocations) {
  {
    auto c = make();
    for (int i = 0; i < 64; ++i) c->push_back({i, 0});
    c->erase(10);
    c->insert(3, {5, 5});
    c->clear();
  }
  EXPECT_EQ(profile_.counters().live_bytes, 0u)
      << "container leaked charged bytes";
  EXPECT_EQ(profile_.counters().allocations,
            profile_.counters().deallocations);
}

TEST_P(DdtBehaviorTest, DestructorReleasesWithoutClear) {
  { // NOLINT
    auto c = make();
    for (int i = 0; i < 64; ++i) c->push_back({i, 0});
  }
  EXPECT_EQ(profile_.counters().live_bytes, 0u);
}

TEST_P(DdtBehaviorTest, ForEachVisitsInOrder) {
  auto c = make();
  for (int i = 0; i < 40; ++i) c->push_back({i, 0});
  std::vector<int> seen;
  c->for_each([&](std::size_t index, const Record& r) {
    EXPECT_EQ(index, seen.size());
    seen.push_back(r.key);
    return true;
  });
  ASSERT_EQ(seen.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST_P(DdtBehaviorTest, ForEachEarlyExitStops) {
  auto c = make();
  for (int i = 0; i < 40; ++i) c->push_back({i, 0});
  std::size_t visits = 0;
  c->for_each([&](std::size_t, const Record&) { return ++visits < 5; });
  EXPECT_EQ(visits, 5u);
}

TEST_P(DdtBehaviorTest, FindIfReturnsFirstMatch) {
  auto c = make();
  for (int i = 0; i < 25; ++i) c->push_back({i % 5, i});
  const std::size_t idx =
      c->find_if([](const Record& r) { return r.key == 3; });
  EXPECT_EQ(idx, 3u);
  const std::size_t none =
      c->find_if([](const Record& r) { return r.key == 99; });
  EXPECT_EQ(none, ddt::npos);
}

TEST_P(DdtBehaviorTest, MixedUseAfterRovingReads) {
  // Interleave reads (which move roving caches) with structural changes.
  auto c = make();
  for (int i = 0; i < 30; ++i) c->push_back({i, 0});
  EXPECT_EQ(c->get(20).key, 20);
  c->insert(10, {-10, 0});
  EXPECT_EQ(c->get(21).key, 20);  // shifted by the insert before it
  c->erase(0);
  EXPECT_EQ(c->get(20).key, 20);
  EXPECT_EQ(c->get(9).key, -10);
}

// Model-based fuzzing: random operation sequences must match std::vector.
TEST_P(DdtBehaviorTest, RandomOpsMatchReferenceModel) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  auto c = make();
  std::vector<Record> model;
  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.35 || model.empty()) {
      const Record r{static_cast<int>(rng.uniform(0, 1000)), step};
      c->push_back(r);
      model.push_back(r);
    } else if (roll < 0.50) {
      const auto idx = rng.uniform(0, model.size());  // may equal size()
      const Record r{static_cast<int>(rng.uniform(0, 1000)), -step};
      c->insert(idx, r);
      model.insert(model.begin() + static_cast<std::ptrdiff_t>(idx), r);
    } else if (roll < 0.65) {
      const auto idx = rng.uniform(0, model.size() - 1);
      c->erase(idx);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (roll < 0.80) {
      const auto idx = rng.uniform(0, model.size() - 1);
      const Record r{static_cast<int>(rng.uniform(0, 1000)), step * 7};
      c->set(idx, r);
      model[idx] = r;
    } else if (roll < 0.98) {
      const auto idx = rng.uniform(0, model.size() - 1);
      ASSERT_EQ(c->get(idx), model[idx]) << "step " << step;
    } else {
      c->clear();
      model.clear();
    }
    ASSERT_EQ(c->size(), model.size()) << "step " << step;
  }
  // Full final comparison via traversal.
  std::vector<Record> seen;
  c->for_each([&](std::size_t, const Record& r) {
    seen.push_back(r);
    return true;
  });
  EXPECT_EQ(seen, model);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DdtBehaviorTest, ::testing::ValuesIn(ddt::kAllDdtKinds),
    [](const ::testing::TestParamInfo<ddt::DdtKind>& p) {
      std::string name(ddt::to_string(p.param));
      for (char& ch : name) {
        if (ch == '(' || ch == ')') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ddtr
