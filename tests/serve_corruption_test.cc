// Randomized corruption sweep over the serve wire decoders
// (serve/protocol.h). A seeded support::Rng drives thousands of byte
// flips and truncations against valid encodings; the contract under
// attack is:
//
//   - decode_frame never crashes, and anything it accepts (kOk)
//     re-encodes to EXACTLY the bytes it consumed — a mutation can only
//     be accepted by producing another fully valid frame (e.g. a bit
//     flip inside the payload AND a matching flip is impossible, but a
//     type-field flip onto another valid type is legal wire).
//   - a truncated frame is kCorrupt (torn), except length zero, which
//     is the clean kEof.
//   - message payload codecs never crash, reject every proper prefix,
//     and anything they accept re-encodes byte-identically (exact
//     consumption + canonical little-endian encoding).
//
// The deterministic seed makes any failure reproducible from the test
// name alone; the sweep sizes keep this within tier-1 budget.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "support/rng.h"

namespace ddtr::serve {
namespace {

using support::Rng;

// A frame corpus spanning empty, small, binary and larger payloads.
std::vector<std::string> frame_corpus() {
  std::vector<std::string> wires;
  wires.push_back(encode_frame({FrameType::kStatus, ""}));
  wires.push_back(encode_frame({FrameType::kHello, encode_hello(Hello{})}));
  SubmitRequest submit;
  submit.app = "url";
  submit.packets = 5000;
  submit.metric_y = "area";
  wires.push_back(encode_frame({FrameType::kSubmit, encode_submit(submit)}));
  ResultFrame result;
  result.job_id = 7;
  result.app = "patricia";
  result.executed = 1234;
  result.pareto = "a\tb\tc\n1\t2\t3\n";
  result.records = std::string(512, '\xab') + std::string("\x00\xff\x7f", 3);
  wires.push_back(encode_frame({FrameType::kResult, encode_result(result)}));
  return wires;
}

std::string flip_random_bytes(const std::string& wire, Rng& rng) {
  std::string mutated = wire;
  const std::uint64_t flips = rng.uniform(1, 4);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform(0, mutated.size() - 1));
    char mask = 0;
    while (mask == 0) mask = static_cast<char>(rng.uniform(0, 255));
    mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
  }
  return mutated;
}

TEST(ServeCorruptionSweep, RandomByteFlipsNeverCrashOrMisparse) {
  const auto wires = frame_corpus();
  Rng rng(0xdd7c0de5001ULL);
  std::size_t accepted = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const std::string& wire =
        wires[static_cast<std::size_t>(rng.uniform(0, wires.size() - 1))];
    const std::string mutated = flip_random_bytes(wire, rng);
    if (mutated == wire) continue;  // the flips cancelled out
    std::istringstream is(mutated);
    Frame out;
    const DecodeStatus status = decode_frame(is, out);
    ASSERT_NE(status, DecodeStatus::kEof)
        << "a non-empty mutated frame can never be a clean EOF";
    if (status == DecodeStatus::kOk) {
      // Acceptance is only legal when the mutation produced another
      // fully valid frame: the re-encoding must reproduce the consumed
      // bytes exactly.
      const std::string reencoded = encode_frame(out);
      ASSERT_LE(reencoded.size(), mutated.size());
      ASSERT_EQ(reencoded, mutated.substr(0, reencoded.size()))
          << "decode_frame accepted bytes it cannot reproduce";
      ++accepted;
    }
  }
  // The checksum makes acceptance rare; the sweep is only meaningful if
  // the overwhelming majority of mutations were rejected.
  EXPECT_LT(accepted, 40u);
}

TEST(ServeCorruptionSweep, RandomTruncationsAreTornNeverOk) {
  const auto wires = frame_corpus();
  Rng rng(0xdd7c0de5002ULL);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string& wire =
        wires[static_cast<std::size_t>(rng.uniform(0, wires.size() - 1))];
    const std::size_t keep =
        static_cast<std::size_t>(rng.uniform(0, wire.size() - 1));
    std::istringstream is(wire.substr(0, keep));
    Frame out;
    const DecodeStatus status = decode_frame(is, out);
    if (keep == 0) {
      EXPECT_EQ(status, DecodeStatus::kEof);
    } else {
      EXPECT_EQ(status, DecodeStatus::kCorrupt)
          << "prefix of " << keep << "/" << wire.size()
          << " bytes must be a torn frame";
    }
  }
}

// One payload codec under the sweep: proper prefixes always decode
// false; flipped/extended payloads either decode false or decode to a
// message whose canonical re-encoding is byte-identical to the mutated
// input (exact consumption leaves no room for silent misparses).
template <typename Message, typename DecodeFn, typename EncodeFn>
void sweep_codec(const char* name, const std::string& valid,
                 DecodeFn decode_fn, EncodeFn encode_fn, Rng& rng) {
  SCOPED_TRACE(name);
  for (std::size_t keep = 0; keep < valid.size(); ++keep) {
    Message m;
    EXPECT_FALSE(decode_fn(valid.substr(0, keep), m))
        << name << ": accepted a " << keep << "/" << valid.size()
        << "-byte prefix";
  }
  for (int iter = 0; iter < 600; ++iter) {
    std::string mutated = valid.empty() ? std::string(1, '\x01')
                                        : flip_random_bytes(valid, rng);
    if (rng.chance(0.25)) {
      mutated += static_cast<char>(rng.uniform(0, 255));  // trailing junk
    }
    if (mutated == valid) continue;
    Message m;
    if (decode_fn(mutated, m)) {
      EXPECT_EQ(encode_fn(m), mutated)
          << name << ": accepted a payload it cannot reproduce";
    }
  }
}

TEST(ServeCorruptionSweep, PayloadCodecsRejectOrRoundTripExactly) {
  Rng rng(0xdd7c0de5003ULL);

  Hello hello;
  sweep_codec<Hello>("hello", encode_hello(hello), decode_hello,
                     encode_hello, rng);

  HelloAck hello_ack;
  hello_ack.warm_entries = 42;
  sweep_codec<HelloAck>("hello_ack", encode_hello_ack(hello_ack),
                        decode_hello_ack, encode_hello_ack, rng);

  SubmitRequest submit;
  submit.app = "drr";
  submit.scale = 0.5;
  submit.packets = 123456;
  submit.every_s = 2.5;
  sweep_codec<SubmitRequest>("submit", encode_submit(submit), decode_submit,
                             encode_submit, rng);

  SubmitAck submit_ack;
  submit_ack.job_id = 9;
  sweep_codec<SubmitAck>("submit_ack", encode_submit_ack(submit_ack),
                         decode_submit_ack, encode_submit_ack, rng);

  ProgressFrame progress;
  progress.job_id = 3;
  progress.step = 2;
  progress.done = 10;
  progress.total = 64;
  sweep_codec<ProgressFrame>("progress", encode_progress(progress),
                             decode_progress, encode_progress, rng);

  ResultFrame result;
  result.job_id = 11;
  result.app = "ipchains";
  result.runs = 2;
  result.pareto = "front";
  result.records = std::string("\x01\x02\x00\xfe", 4);
  sweep_codec<ResultFrame>("result", encode_result(result), decode_result,
                           encode_result, rng);

  ErrorFrame error;
  error.message = "unknown app 'nope'";
  sweep_codec<ErrorFrame>("error", encode_error(error), decode_error,
                          encode_error, rng);

  StatusReply status;
  status.warm_entries = 77;
  status.jobs.push_back({1, "url", "done", 3, 1200, 0.0});
  status.jobs.push_back({2, "drr", "running", 1, 0, 5.0});
  sweep_codec<StatusReply>("status_reply", encode_status_reply(status),
                           decode_status_reply, encode_status_reply, rng);

  ResultsRequest results_request;
  results_request.job_id = 5;
  sweep_codec<ResultsRequest>(
      "results_request", encode_results_request(results_request),
      decode_results_request, encode_results_request, rng);

  ShutdownAck shutdown_ack;
  shutdown_ack.sessions_served = 8;
  sweep_codec<ShutdownAck>("shutdown_ack", encode_shutdown_ack(shutdown_ack),
                           decode_shutdown_ack, encode_shutdown_ack, rng);

  StatsRequest stats_request;
  stats_request.include_metrics = 1;
  sweep_codec<StatsRequest>(
      "stats_request", encode_stats_request(stats_request),
      decode_stats_request, encode_stats_request, rng);

  StatsReply stats_reply;
  stats_reply.uptime_ms = 91234;
  stats_reply.warm_entries = 61;
  stats_reply.sessions_served = 4;
  stats_reply.cache_hits = 1200;
  stats_reply.cache_misses = 34;
  stats_reply.jobs_submitted = 2;
  stats_reply.scheduler_reruns = 5;
  stats_reply.jobs.push_back(
      {1, "url", "done", 3, 0, 0.25, 12, 15, 830});
  stats_reply.jobs.push_back({2, "drr", "running", 1, 777, 0.0, 900, 905, 0});
  stats_reply.metrics_text = "counter explore.runs 3\ngauge pool.queue_depth 0\n";
  sweep_codec<StatsReply>("stats_reply", encode_stats_reply(stats_reply),
                          decode_stats_reply, encode_stats_reply, rng);
}

}  // namespace
}  // namespace ddtr::serve
