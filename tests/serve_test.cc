// End-to-end contract of the serve daemon (serve/server.h + client.h),
// in-process: a real unix-socket server on a scratch path, real client
// connections. The load-bearing assertion is the ISSUE's acceptance
// check: a second identical submission executes ZERO simulations and
// returns byte-identical result records — the warm-cache guarantee,
// verified through the full client -> daemon -> client round trip. Also:
// job table, result re-fetch, version-mismatch refusal, the scheduler's
// periodic re-exploration, and drain-and-flush shutdown (socket removed,
// cache compacted and warm for the next daemon).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ddtr::serve {
namespace {

SubmitRequest tiny_url_request() {
  SubmitRequest request;
  request.app = "url";
  request.packets = 200;  // minimal traces: the run must stay test-sized
  return request;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ddtr_serve_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    socket_ = dir_ + "/d.sock";
  }

  void TearDown() override {
    stop_server();
    std::filesystem::remove_all(dir_);
  }

  void start_server() {
    ServerOptions options;
    options.socket_path = socket_;
    options.cache_dir = dir_ + "/cache";
    options.jobs = 2;
    options.scheduler_tick = std::chrono::milliseconds(10);
    server_ = std::make_unique<Server>(options);
    server_->start();
    thread_ = std::thread([this] { server_->serve_forever(); });
  }

  void stop_server() {
    if (server_) server_->request_stop();
    if (thread_.joinable()) thread_.join();
    server_.reset();
  }

  std::string dir_;
  std::string socket_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServeTest, WarmResubmissionExecutesZeroAndIsByteIdentical) {
  start_server();

  std::string cold_records;
  std::size_t ticks = 0;
  {
    Client client(socket_);
    EXPECT_EQ(client.hello().warm_entries, 0u);
    const ResultFrame cold = client.submit(
        tiny_url_request(), [&ticks](const ProgressFrame&) { ++ticks; });
    EXPECT_GT(cold.executed, 0u);
    EXPECT_EQ(cold.runs, 1u);
    EXPECT_GT(cold.survivors, 0u);
    EXPECT_GT(cold.pareto_count, 0u);
    EXPECT_FALSE(cold.records.empty());
    EXPECT_FALSE(cold.pareto.empty());
    cold_records = cold.records;
  }
  EXPECT_GT(ticks, 0u);  // the progress stream reached the client

  // The acceptance check: same submission, new connection — the daemon's
  // warm cache replays everything.
  Client client(socket_);
  EXPECT_GT(client.hello().warm_entries, 0u);
  const ResultFrame warm = client.submit(tiny_url_request());
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.records, cold_records);  // byte-identical
}

TEST_F(ServeTest, StatusListsJobsAndResultsRefetches) {
  start_server();
  Client client(socket_);
  const ResultFrame first = client.submit(tiny_url_request());

  const StatusReply status = client.status();
  EXPECT_GT(status.warm_entries, 0u);
  ASSERT_EQ(status.jobs.size(), 1u);
  EXPECT_EQ(status.jobs[0].id, first.job_id);
  EXPECT_EQ(status.jobs[0].app, "url");
  EXPECT_EQ(status.jobs[0].state, "done");
  EXPECT_EQ(status.jobs[0].runs, 1u);

  const ResultFrame refetched = client.results(first.job_id);
  EXPECT_EQ(refetched.records, first.records);
  EXPECT_THROW(client.results(9999), std::runtime_error);
}

TEST_F(ServeTest, RejectsUnknownAppAndBadKnobs) {
  start_server();
  Client client(socket_);
  SubmitRequest request = tiny_url_request();
  request.app = "no-such-workload";
  EXPECT_THROW(client.submit(request), std::runtime_error);

  request = tiny_url_request();
  request.survivor_cap = 2.0;
  EXPECT_THROW(client.submit(request), std::runtime_error);

  request = tiny_url_request();
  request.metric_x = "no-such-metric";
  EXPECT_THROW(client.submit(request), std::runtime_error);

  // The connection that sent a rejected submit stays usable (errors are
  // replies, not hangups)... and valid work still goes through.
  const ResultFrame ok = client.submit(tiny_url_request());
  EXPECT_FALSE(ok.records.empty());
}

TEST_F(ServeTest, RefusesVersionMismatchedHello) {
  start_server();
  // Raw connection: a future client speaking v999 must get an Error
  // frame, never a misparse.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  socket_.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  Hello hello;
  hello.version = 999;
  ASSERT_TRUE(send_frame(fd, {FrameType::kHello, encode_hello(hello)}));
  Frame reply;
  ASSERT_EQ(recv_frame(fd, reply), DecodeStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode_error(reply.payload, error));
  EXPECT_NE(error.message.find("version"), std::string::npos);
  ::close(fd);

  // A well-versed client still gets in afterwards.
  Client client(socket_);
  EXPECT_EQ(client.hello().version, kProtocolVersion);
}

TEST_F(ServeTest, StatsReportsSinceBootCountersAndJobTimestamps) {
  start_server();
  Client client(socket_);
  // The v2 HelloAck advertises the daemon's progress throttle.
  EXPECT_DOUBLE_EQ(client.hello().progress_every, 0.25);

  const ResultFrame cold = client.submit(tiny_url_request());
  const ResultFrame warm = client.submit(tiny_url_request());
  EXPECT_EQ(warm.executed, 0u);

  const StatsReply stats = client.stats(/*include_metrics=*/true);
  // The acceptance check: the daemon's since-boot hit/miss counters are
  // exactly the sum of the per-run deltas it reported to clients.
  EXPECT_EQ(stats.cache_hits, cold.cache_hits + warm.cache_hits);
  EXPECT_EQ(stats.cache_misses, cold.cache_misses + warm.cache_misses);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.jobs_submitted, 2u);
  EXPECT_EQ(stats.scheduler_reruns, 0u);  // no recurring jobs submitted
  EXPECT_GT(stats.warm_entries, 0u);
  ASSERT_EQ(stats.jobs.size(), 2u);
  for (const JobStats& job : stats.jobs) {
    EXPECT_EQ(job.app, "url");
    EXPECT_EQ(job.state, "done");
    // Lifecycle timestamps are monotone steady-clock ms since boot.
    EXPECT_LE(job.submit_ms, job.start_ms);
    EXPECT_LE(job.start_ms, job.finish_ms);
    EXPECT_LE(job.finish_ms, stats.uptime_ms);
  }
  // Metrics text rides along only when asked for.
  EXPECT_NE(stats.metrics_text.find("counter "), std::string::npos);
  EXPECT_TRUE(client.stats().metrics_text.empty());
}

TEST_F(ServeTest, SchedulerReExploresRecurringJobs) {
  start_server();
  Client client(socket_);
  SubmitRequest request = tiny_url_request();
  request.every_s = 0.05;
  const ResultFrame first = client.submit(request);
  EXPECT_EQ(first.runs, 1u);

  // The scheduler should rerun the job against the warm cache; poll the
  // job table until it does (bounded wait, no fixed sleep).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t runs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const StatusReply status = client.status();
    ASSERT_EQ(status.jobs.size(), 1u);
    runs = status.jobs[0].runs;
    if (runs >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(runs, 3u) << "scheduler never re-explored the job";
  // Steady-state reruns replay entirely from the warm cache.
  const ResultFrame latest = client.results(first.job_id);
  EXPECT_EQ(latest.executed, 0u);
  EXPECT_EQ(latest.records, first.records);
  // The daemon's introspection counts those reruns too.
  EXPECT_GE(client.stats().scheduler_reruns, 2u);
}

TEST_F(ServeTest, ShutdownDrainsFlushesAndLeavesWarmCacheOnDisk) {
  start_server();
  std::string cold_records;
  {
    Client client(socket_);
    cold_records = client.submit(tiny_url_request()).records;
    const ShutdownAck ack = client.shutdown();
    (void)ack;  // sessions count covers completed connections only
  }
  if (thread_.joinable()) thread_.join();
  server_.reset();
  // Drained: the socket file is gone.
  EXPECT_FALSE(std::filesystem::exists(socket_));

  // Flushed: a fresh daemon over the same cache dir starts warm and
  // replays the study byte-identically with zero executed simulations.
  start_server();
  Client client(socket_);
  EXPECT_GT(client.hello().warm_entries, 0u);
  const ResultFrame warm = client.submit(tiny_url_request());
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.records, cold_records);
}

}  // namespace
}  // namespace ddtr::serve
