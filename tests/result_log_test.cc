// ResultLog persistence tests: the log files the step-3 post-processing
// consumes must round-trip exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/result_log.h"

namespace ddtr::core {
namespace {

SimulationRecord sample_record(const std::string& app,
                               const std::string& combo_first,
                               double energy) {
  SimulationRecord r;
  r.app_name = app;
  r.combo = ddt::DdtCombination(
      {*ddt::parse_ddt_kind(combo_first), ddt::DdtKind::kDllOfArraysRoving});
  r.network = "dart-berry";
  r.config = "table=128";
  r.metrics = {energy, 0.125, 12345, 67890};
  r.counters.reads = 100;
  r.counters.writes = 50;
  r.counters.bytes_read = 800;
  r.counters.bytes_written = 400;
  r.counters.allocations = 7;
  r.counters.deallocations = 7;
  r.counters.peak_bytes = 67890;
  r.counters.cpu_ops = 999;
  return r;
}

TEST(ResultLog, RoundTripPreservesEverything) {
  ResultLog log;
  log.append(sample_record("Route", "AR", 1.5));
  log.append(sample_record("URL", "SLL(ARO)", 2.5));

  std::stringstream ss;
  log.save(ss);
  const ResultLog loaded = ResultLog::load(ss);

  ASSERT_EQ(loaded.size(), 2u);
  const SimulationRecord& r = loaded.records()[0];
  EXPECT_EQ(r.app_name, "Route");
  EXPECT_EQ(r.combo.label(), "AR+DLL(ARO)");
  EXPECT_EQ(r.network, "dart-berry");
  EXPECT_EQ(r.config, "table=128");
  EXPECT_DOUBLE_EQ(r.metrics.energy_mj, 1.5);
  EXPECT_DOUBLE_EQ(r.metrics.time_s, 0.125);
  EXPECT_EQ(r.metrics.accesses, 12345u);
  EXPECT_EQ(r.metrics.footprint_bytes, 67890u);
  EXPECT_EQ(r.counters.cpu_ops, 999u);
  EXPECT_EQ(loaded.records()[1].combo.label(), "SLL(ARO)+DLL(ARO)");
}

TEST(ResultLog, EmptyLogRoundTrips) {
  ResultLog log;
  std::stringstream ss;
  log.save(ss);
  EXPECT_EQ(ResultLog::load(ss).size(), 0u);
}

TEST(ResultLog, EmptyConfigFieldSurvives) {
  ResultLog log;
  SimulationRecord r = sample_record("URL", "AR", 1.0);
  r.config.clear();
  log.append(r);
  std::stringstream ss;
  log.save(ss);
  EXPECT_EQ(ResultLog::load(ss).records()[0].config, "");
}

TEST(ResultLog, ForAppFilters) {
  ResultLog log;
  log.append(sample_record("Route", "AR", 1));
  log.append(sample_record("URL", "AR", 2));
  log.append(sample_record("Route", "DLL", 3));
  EXPECT_EQ(log.for_app("Route").size(), 2u);
  EXPECT_EQ(log.for_app("URL").size(), 1u);
  EXPECT_TRUE(log.for_app("nope").empty());
}

TEST(ResultLog, AppendAllMerges) {
  ResultLog a;
  a.append(sample_record("Route", "AR", 1));
  ResultLog b;
  b.append_all(a.records());
  b.append_all(a.records());
  EXPECT_EQ(b.size(), 2u);
}

TEST(ResultLog, RejectsGarbage) {
  std::stringstream ss("hello world");
  EXPECT_THROW(ResultLog::load(ss), std::runtime_error);
}

TEST(ResultLog, RejectsTruncated) {
  ResultLog log;
  log.append(sample_record("Route", "AR", 1));
  std::stringstream ss;
  log.save(ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(ResultLog::load(truncated), std::runtime_error);
}

TEST(ResultLog, RejectsUnknownDdtKind) {
  std::stringstream ss("ddtr-log 1 1\nRoute AR+NOPE net - 1 1 1 1 "
                       "1 1 1 1 1 1 1 1\n");
  EXPECT_THROW(ResultLog::load(ss), std::runtime_error);
}

}  // namespace
}  // namespace ddtr::core
