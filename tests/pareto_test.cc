// Pareto machinery tests, including randomized properties checked against
// a brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pareto.h"
#include "support/rng.h"

namespace ddtr::core {
namespace {

energy::Metrics point(double e, double t, std::uint64_t a, std::uint64_t f) {
  return energy::Metrics{e, t, a, f};
}

TEST(ParetoFilter, EmptyInput) {
  EXPECT_TRUE(pareto_filter({}).empty());
}

TEST(ParetoFilter, SinglePointSurvives) {
  EXPECT_EQ(pareto_filter({point(1, 1, 1, 1)}).size(), 1u);
}

TEST(ParetoFilter, DominatedPointRemoved) {
  const auto keep = pareto_filter({point(1, 1, 1, 1), point(2, 2, 2, 2)});
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 0u);
}

TEST(ParetoFilter, TradeoffsAllSurvive) {
  const auto keep = pareto_filter(
      {point(1, 4, 10, 10), point(4, 1, 10, 10), point(2, 2, 10, 10)});
  EXPECT_EQ(keep.size(), 3u);
}

TEST(ParetoFilter, DuplicatePointsAllSurvive) {
  // Equal points do not dominate each other (no strict improvement).
  const auto keep = pareto_filter({point(1, 1, 1, 1), point(1, 1, 1, 1)});
  EXPECT_EQ(keep.size(), 2u);
}

TEST(ParetoFilter, NoSurvivorIsDominated_RandomProperty) {
  support::Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<energy::Metrics> points;
    for (int i = 0; i < 80; ++i) {
      points.push_back(point(rng.uniform_real(0, 10), rng.uniform_real(0, 10),
                             rng.uniform(0, 1000), rng.uniform(0, 1000)));
    }
    const auto keep = pareto_filter(points);
    EXPECT_FALSE(keep.empty());
    for (std::size_t idx : keep) {
      for (std::size_t j = 0; j < points.size(); ++j) {
        EXPECT_FALSE(j != idx && energy::dominates(points[j], points[idx]));
      }
    }
    // And every discarded point is dominated by someone.
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (std::find(keep.begin(), keep.end(), i) != keep.end()) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
        dominated = j != i && energy::dominates(points[j], points[i]);
      }
      EXPECT_TRUE(dominated) << "discarded non-dominated point " << i;
    }
  }
}

TEST(ParetoFront2d, StaircaseShape) {
  std::vector<energy::Metrics> points = {
      point(1, 5, 0, 0), point(2, 3, 0, 0), point(3, 4, 0, 0),
      point(4, 1, 0, 0), point(5, 2, 0, 0),
  };
  const auto front = pareto_front_2d(points, 0, 1);  // energy vs time
  // Front: (1,5), (2,3), (4,1). (3,4) is beaten by (2,3); (5,2) by (4,1).
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
  EXPECT_EQ(front[2], 3u);
}

TEST(ParetoFront2d, SortedByXAndDecreasingY_RandomProperty) {
  support::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<energy::Metrics> points;
    for (int i = 0; i < 120; ++i) {
      points.push_back(
          point(rng.uniform_real(0, 100), rng.uniform_real(0, 100),
                rng.uniform(0, 10), rng.uniform(0, 10)));
    }
    const auto front = pareto_front_2d(points, 0, 1);
    ASSERT_FALSE(front.empty());
    for (std::size_t k = 1; k < front.size(); ++k) {
      const auto prev = points[front[k - 1]].as_array();
      const auto cur = points[front[k]].as_array();
      EXPECT_LT(prev[0], cur[0]);  // strictly increasing x
      EXPECT_GT(prev[1], cur[1]);  // strictly decreasing y
    }
    // No point lies strictly below-left of any front point.
    for (const auto& m : points) {
      const auto v = m.as_array();
      for (std::size_t idx : front) {
        const auto fv = points[idx].as_array();
        EXPECT_FALSE(v[0] < fv[0] && v[1] < fv[1])
            << "front point (" << fv[0] << "," << fv[1] << ") dominated";
      }
    }
  }
}

TEST(ParetoFront2d, WorksOnOtherMetricPair) {
  std::vector<energy::Metrics> points = {
      point(0, 0, 100, 10), point(0, 0, 50, 20), point(0, 0, 200, 5),
      point(0, 0, 60, 30)};
  const auto front = pareto_front_2d(points, 2, 3);  // accesses vs footprint
  ASSERT_EQ(front.size(), 3u);  // (50,20),(100,10),(200,5); (60,30) off
  EXPECT_EQ(front[0], 1u);
  EXPECT_EQ(front[1], 0u);
  EXPECT_EQ(front[2], 2u);
}

TEST(TradeoffSpan, ComputesRelativeSpread) {
  std::vector<energy::Metrics> points = {point(1, 0, 0, 0),
                                         point(10, 0, 0, 0)};
  EXPECT_NEAR(tradeoff_span(points, 0), 0.9, 1e-12);
  EXPECT_EQ(tradeoff_span(points, 1), 0.0);  // all-zero metric
  EXPECT_EQ(tradeoff_span({}, 0), 0.0);
}

}  // namespace
}  // namespace ddtr::core
