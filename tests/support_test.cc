// Support-layer tests: deterministic RNG streams, distribution sanity,
// text-table and CSV formatting, checked binary readers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "support/binary_io.h"
#include "support/csv.h"
#include "support/rng.h"
#include "support/table.h"

namespace ddtr::support {
namespace {

TEST(BinaryIo, StringRoundTrips) {
  std::ostringstream os;
  const std::string value("bin\x00\xff-data", 9);
  write_string(os, value);
  std::istringstream is(os.str());
  std::string out;
  ASSERT_TRUE(read_string(is, out));
  EXPECT_EQ(out, value);
}

TEST(BinaryIo, StringLengthAboveCapIsRejected) {
  std::ostringstream os;
  write_string(os, "abcdef");
  std::istringstream is(os.str());
  std::string out;
  EXPECT_FALSE(read_string(is, out, /*max_size=*/3));
}

// Regression: a corrupt length prefix claiming almost max_size bytes
// used to be trusted with an up-front resize — a 16-byte hostile
// payload could force a near-1-GiB allocation before the read failed.
// The reader now grows in bounded chunks, so the failure must leave
// only chunk-sized storage behind.
TEST(BinaryIo, HostileLengthPrefixCannotForceHugeAllocation) {
  std::ostringstream os;
  write_u64(os, (1ull << 30) - 1);  // claimed length, just under the cap
  os << "only-a-few-bytes";
  std::istringstream is(os.str());
  std::string out;
  EXPECT_FALSE(read_string(is, out));
  EXPECT_LT(out.capacity(), 1u << 20)
      << "failed read must not have pre-allocated the claimed length";
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  EXPECT_NE(rng.next_u64(), 0u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(17);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.2, 40.0, 1500.0);
    EXPECT_GE(v, 40.0 * 0.999);
    EXPECT_LE(v, 1500.0 * 1.001);
  }
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, ZeroSkewIsRoughlyUniform) {
  Rng rng(31);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Zipf, SingleElement) {
  Rng rng(37);
  ZipfSampler zipf(1, 1.0);
  EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name       value"), std::string::npos);
  EXPECT_NE(s.find("long-name  22"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.to_string().find('x'), std::string::npos);
}

TEST(Format, Percent) { EXPECT_EQ(format_percent(0.873), "87.3%"); }

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(4578103), "4,578,103");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n");
}

}  // namespace
}  // namespace ddtr::support
