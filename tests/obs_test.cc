// Observability layer (src/obs/): sharded-counter aggregation under real
// thread contention, histogram bookkeeping, deterministic render_text,
// trace_event JSON validity (via the same check_trace the `ddtr
// tracecheck` subcommand uses), and the load-bearing acceptance check:
// tracing a run is observation-only — a warm rerun with a live trace
// sink still executes ZERO simulations and serializes byte-identical
// records.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/ddtr.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddtr::obs {
namespace {

core::CaseStudyOptions tiny_options() {
  core::CaseStudyOptions options;
  options.route_packets = 200;
  options.url_packets = 200;
  options.ipchains_packets = 200;
  options.drr_packets = 200;
  return options;
}

TEST(Metrics, ShardedCounterAggregatesAcrossThreads) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Every thread resolves the SAME instrument by name and hammers it:
    // the sharded counter must lose nothing, and concurrent registry
    // lookups must keep handing out one stable address.
    threads.emplace_back([&reg] {
      Counter& hits = reg.counter("test.hits");
      for (std::uint64_t i = 0; i < kAdds; ++i) hits.add();
      reg.histogram("test.us").observe(8);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("test.hits").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
  EXPECT_EQ(reg.histogram("test.us").count(),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(&reg.counter("test.hits"), &reg.counter("test.hits"));
}

TEST(Metrics, HistogramTracksCountSumMinMaxAndLog2Buckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), UINT64_MAX);  // documented empty-state sentinels
  EXPECT_EQ(h.max(), 0u);
  for (const std::uint64_t v : {0ull, 1ull, 3ull, 8ull}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket(0), 1u);  // exact zero
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 1u);  // 3 in [2, 4)
  EXPECT_EQ(h.bucket(4), 1u);  // 8 in [8, 16)
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Metrics, RenderTextIsDeterministicAndSorted) {
  Registry reg;
  reg.counter("zz.last").add(2);
  reg.counter("aa.first").add(1);
  reg.gauge("pool.queue_depth").set(7);
  reg.histogram("explore.sim_us").observe(100);
  const std::string text = reg.render_text();
  EXPECT_EQ(text, reg.render_text());  // a second render is identical
  EXPECT_NE(text.find("counter aa.first 1"), std::string::npos) << text;
  EXPECT_NE(text.find("counter zz.last 2"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge pool.queue_depth 7"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram explore.sim_us count=1"), std::string::npos)
      << text;
  EXPECT_LT(text.find("aa.first"), text.find("zz.last"));
}

TEST(Trace, BalancedSpansValidateAndNullWriterIsDisabled) {
  TraceWriter w;
  {
    SpanScope outer(&w, "outer", "test");
    SpanScope inner(&w, "inner", "test");
    w.instant("marker", "test");
  }
  EXPECT_EQ(w.event_count(), 5u);  // 2x begin + instant + 2x end
  EXPECT_EQ(check_trace(w.str()), "");
  SpanScope disabled(nullptr, "x", "y");  // null sink: must be a no-op
}

TEST(Trace, SpanArgsSerializeAndValidate) {
  TraceWriter w;
  {
    SpanScope span(&w, "fan", "explore");
    span.arg("units", std::uint64_t{42}).arg("mode", "greedy");
    w.instant("checkpoint", "cache",
              TraceArgs{}.set("bytes", std::uint64_t{4096}));
  }
  const std::string json = w.str();
  EXPECT_EQ(check_trace(json), "");
  // Counters ride the end event; the instant carries its own payload.
  EXPECT_NE(json.find("\"args\":{\"units\":42,\"mode\":\"greedy\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bytes\":4096}"), std::string::npos);
  // An argless begin stays lean: no empty "args" objects in the stream.
  EXPECT_EQ(json.find("\"args\":{}"), std::string::npos);

  // arg() on a disabled span must not copy keys anywhere.
  SpanScope disabled(nullptr, "x", "y");
  disabled.arg("units", std::uint64_t{1});
}

TEST(Trace, CheckTraceRejectsBadArgs) {
  // "args" must be an object...
  EXPECT_NE(check_trace("{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\","
                        "\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1,"
                        "\"args\":[1]}]}"),
            "");
  // ...of string or number values only.
  EXPECT_NE(check_trace("{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\","
                        "\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1,"
                        "\"args\":{\"k\":[1]}}]}"),
            "");
  EXPECT_EQ(check_trace("{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\","
                        "\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1,"
                        "\"args\":{\"k\":1,\"s\":\"v\"}}]}"),
            "");
}

TEST(Trace, CheckTraceRejectsMalformedDocuments) {
  EXPECT_NE(check_trace(""), "");
  EXPECT_NE(check_trace("not json"), "");
  EXPECT_NE(check_trace("{\"traceEvents\":17}"), "");
  EXPECT_NE(check_trace("{\"traceEvents\":[{\"name\":\"x\"}]}"), "");

  TraceWriter orphan_end;
  orphan_end.end("orphan", "test");
  EXPECT_NE(check_trace(orphan_end.str()), "");

  TraceWriter unclosed;
  unclosed.begin("a", "test");
  EXPECT_NE(check_trace(unclosed.str()), "");

  // Non-LIFO interleave on one thread is not a legal span nesting.
  TraceWriter crossed;
  crossed.begin("a", "test");
  crossed.begin("b", "test");
  crossed.end("a", "test");
  crossed.end("b", "test");
  EXPECT_NE(check_trace(crossed.str()), "");
}

// The acceptance check from the ISSUE: a parallel exploration with a
// trace sink produces a valid, balanced trace, and tracing never touches
// the output — the warm rerun (trace still attached) executes zero
// simulations and its records are byte-identical to the cold run's.
TEST(Trace, ParallelExplorationTraceIsValidAndOutputInvariant) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "ddtr_obs_trace_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  TraceWriter cold_trace;
  api::Exploration cold(api::registry().make_study("url", tiny_options()));
  const core::ExplorationReport& cold_report =
      cold.jobs(4).cache_dir(dir).trace_sink(&cold_trace).run();
  EXPECT_GT(cold_report.executed_simulations(), 0u);
  // Spans cover the run plus every simulation fanned over the pool.
  EXPECT_GT(cold_trace.event_count(),
            2 * cold_report.executed_simulations());
  EXPECT_EQ(check_trace(cold_trace.str()), "") << "cold trace invalid";
  // The engine's spans carry their unit counts (step fans, select,
  // aggregate) as per-span args.
  EXPECT_NE(cold_trace.str().find("\"args\":{"), std::string::npos);

  TraceWriter warm_trace;
  api::Exploration warm(api::registry().make_study("url", tiny_options()));
  const core::ExplorationReport& warm_report =
      warm.jobs(4).cache_dir(dir).trace_sink(&warm_trace).run();
  EXPECT_EQ(warm_report.executed_simulations(), 0u);
  EXPECT_EQ(warm_report.serialized_records(),
            cold_report.serialized_records());
  EXPECT_EQ(check_trace(warm_trace.str()), "") << "warm trace invalid";

  // And an untraced warm run matches too: the sink changes nothing.
  api::Exploration untraced(api::registry().make_study("url", tiny_options()));
  const core::ExplorationReport& untraced_report =
      untraced.jobs(2).cache_dir(dir).run();
  EXPECT_EQ(untraced_report.serialized_records(),
            cold_report.serialized_records());

  // write_file() round-trips through disk and still validates — the same
  // bytes `ddtr explore --trace FILE` hands to `ddtr tracecheck`.
  const std::string trace_path = dir + "/trace.json";
  ASSERT_TRUE(cold_trace.write_file(trace_path));
  std::ifstream is(trace_path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(check_trace(buffer.str()), "");
  EXPECT_FALSE(cold_trace.write_file(dir + "/no/such/dir/trace.json"));

  fs::remove_all(dir);
}

}  // namespace
}  // namespace ddtr::obs
