// Route case-study tests: radix-tree correctness against brute-force
// longest-prefix match, and the key instrumentation contract — functional
// behaviour must be identical across all DDT combinations.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "apps/route/radix_tree.h"
#include "apps/route/route_app.h"
#include "ddt/factory.h"
#include "nettrace/generator.h"
#include "support/rng.h"

namespace ddtr::apps::route {
namespace {

struct Prefix {
  std::uint32_t prefix;
  std::uint8_t len;
  std::uint32_t next_hop;
};

std::optional<std::uint32_t> brute_force_lpm(
    const std::vector<Prefix>& table, std::uint32_t dst) {
  std::optional<std::uint32_t> best;
  int best_len = -1;
  for (const Prefix& p : table) {
    const std::uint32_t mask =
        p.len == 0 ? 0 : 0xffffffffu << (32 - p.len);
    if ((dst & mask) == (p.prefix & mask) && p.len > best_len) {
      best_len = p.len;
      best = p.next_hop;
    }
  }
  return best;
}

class RadixTreeFixture {
 public:
  explicit RadixTreeFixture(ddt::DdtKind kind = ddt::DdtKind::kArray)
      : nodes_(ddt::make_container<RadixNode>(kind, profile_)),
        entries_(ddt::make_container<RouteEntry>(kind, profile_)),
        tree_(*nodes_, *entries_, profile_) {}

  RadixTree& tree() { return tree_; }

 private:
  prof::MemoryProfile profile_;
  std::unique_ptr<ddt::Container<RadixNode>> nodes_;
  std::unique_ptr<ddt::Container<RouteEntry>> entries_;
  RadixTree tree_;
};

TEST(RadixTree, EmptyTableMatchesNothing) {
  RadixTreeFixture f;
  EXPECT_FALSE(f.tree().lookup(net::make_ip(1, 2, 3, 4)).has_value());
}

TEST(RadixTree, DefaultRouteMatchesEverything) {
  RadixTreeFixture f;
  f.tree().insert(0, 0, 42, 0);
  const auto hit = f.tree().lookup(net::make_ip(200, 1, 1, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->next_hop, 42u);
}

TEST(RadixTree, LongestPrefixWins) {
  RadixTreeFixture f;
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 1, 0);
  f.tree().insert(net::make_ip(10, 1, 0, 0), 16, 2, 0);
  f.tree().insert(net::make_ip(10, 1, 2, 0), 24, 3, 0);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 1, 2, 9))->next_hop, 3u);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 1, 9, 9))->next_hop, 2u);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 9, 9, 9))->next_hop, 1u);
  EXPECT_FALSE(f.tree().lookup(net::make_ip(11, 0, 0, 1)).has_value());
}

TEST(RadixTree, ReinsertReplacesRoute) {
  RadixTreeFixture f;
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 1, 0);
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 7, 0);
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 5, 5, 5))->next_hop, 7u);
  EXPECT_EQ(f.tree().route_count(), 1u);
}

TEST(RadixTree, HostRouteFullLength) {
  RadixTreeFixture f;
  const std::uint32_t host = net::make_ip(192, 168, 1, 77);
  f.tree().insert(host, 32, 9, 0);
  EXPECT_EQ(f.tree().lookup(host)->next_hop, 9u);
  EXPECT_FALSE(f.tree().lookup(host ^ 1).has_value());
}

TEST(RadixTree, UseCountIncrements) {
  RadixTreeFixture f;
  f.tree().insert(net::make_ip(10, 0, 0, 0), 8, 1, 0);
  f.tree().lookup(net::make_ip(10, 0, 0, 1));
  f.tree().lookup(net::make_ip(10, 0, 0, 2));
  EXPECT_EQ(f.tree().lookup(net::make_ip(10, 0, 0, 3))->use_count, 3u);
}

TEST(RadixTree, MatchesBruteForceOnRandomTables) {
  support::Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    RadixTreeFixture f;
    std::vector<Prefix> table;
    for (int i = 0; i < 60; ++i) {
      Prefix p;
      p.prefix = static_cast<std::uint32_t>(rng.next_u64());
      p.len = static_cast<std::uint8_t>(rng.uniform(0, 4) * 8);
      const std::uint32_t mask =
          p.len == 0 ? 0 : 0xffffffffu << (32 - p.len);
      p.prefix &= mask;
      p.next_hop = static_cast<std::uint32_t>(i + 1);
      // Skip duplicate (prefix,len) pairs: the tree replaces, brute force
      // would keep both.
      bool dup = false;
      for (const Prefix& q : table) {
        dup |= q.prefix == p.prefix && q.len == p.len;
      }
      if (dup) continue;
      table.push_back(p);
      f.tree().insert(p.prefix, p.len, p.next_hop, 0);
    }
    for (int probe = 0; probe < 300; ++probe) {
      // Half the probes are perturbed table prefixes (likely matches).
      std::uint32_t dst;
      if (probe % 2 == 0 && !table.empty()) {
        const Prefix& p = table[rng.uniform(0, table.size() - 1)];
        dst = p.prefix | static_cast<std::uint32_t>(rng.uniform(0, 0xffff));
      } else {
        dst = static_cast<std::uint32_t>(rng.next_u64());
      }
      const auto expected = brute_force_lpm(table, dst);
      const auto got = f.tree().lookup(dst);
      ASSERT_EQ(got.has_value(), expected.has_value()) << "dst " << dst;
      if (expected) {
        EXPECT_EQ(got->next_hop, *expected) << "dst " << dst;
      }
    }
  }
}

TEST(RadixTree, ResultIndependentOfDdtKind) {
  // Same inserts and lookups on every DDT kind must give identical
  // answers — only the profile differs.
  std::vector<std::uint32_t> reference;
  for (ddt::DdtKind kind : ddt::kAllDdtKinds) {
    RadixTreeFixture f(kind);
    support::Rng rng(99);
    for (int i = 0; i < 40; ++i) {
      const auto addr = static_cast<std::uint32_t>(rng.next_u64());
      const auto len = static_cast<std::uint8_t>(rng.uniform(1, 3) * 8);
      f.tree().insert(addr & (0xffffffffu << (32 - len)), len,
                      static_cast<std::uint32_t>(i), 0);
    }
    std::vector<std::uint32_t> answers;
    for (int i = 0; i < 100; ++i) {
      const auto dst = static_cast<std::uint32_t>(rng.next_u64());
      const auto hit = f.tree().lookup(dst);
      answers.push_back(hit ? hit->next_hop + 1 : 0);
    }
    if (reference.empty()) {
      reference = answers;
    } else {
      EXPECT_EQ(answers, reference) << "kind " << ddt::to_string(kind);
    }
  }
}

TEST(RouteApp, ForwardsOrDropsEveryPacket) {
  net::TraceGenerator::Options options;
  options.packet_count = 1500;
  const net::Trace trace = net::TraceGenerator::generate(
      net::network_preset("nlanr-campus"), options);
  RouteApp app(RouteApp::Config{128, 7});
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kArray});
  app.run(trace, combo);
  EXPECT_EQ(app.forwarded() + app.dropped(), trace.size());
  // A table synthesized from trace destinations plus default route should
  // forward everything.
  EXPECT_GT(app.forwarded(), trace.size() * 9 / 10);
}

TEST(RouteApp, FunctionalResultInvariantAcrossCombos) {
  net::TraceGenerator::Options options;
  options.packet_count = 800;
  const net::Trace trace = net::TraceGenerator::generate(
      net::network_preset("dart-berry"), options);
  RouteApp app(RouteApp::Config{128, 7});

  std::uint64_t ref_forwarded = 0;
  bool first = true;
  for (ddt::DdtKind a :
       {ddt::DdtKind::kArray, ddt::DdtKind::kSll, ddt::DdtKind::kDllRoving,
        ddt::DdtKind::kSllOfArrays}) {
    for (ddt::DdtKind b : {ddt::DdtKind::kArrayOfPointers,
                           ddt::DdtKind::kDllOfArraysRoving}) {
      app.run(trace, ddt::DdtCombination({a, b}));
      if (first) {
        ref_forwarded = app.forwarded();
        first = false;
      } else {
        EXPECT_EQ(app.forwarded(), ref_forwarded)
            << ddt::to_string(a) << "+" << ddt::to_string(b);
      }
    }
  }
}

TEST(RouteApp, ProfilesBothDominantStructures) {
  net::TraceGenerator::Options options;
  options.packet_count = 500;
  const net::Trace trace = net::TraceGenerator::generate(
      net::network_preset("dart-berry"), options);
  RouteApp app(RouteApp::Config{128, 7});
  const auto result = app.run(
      trace, ddt::DdtCombination({ddt::DdtKind::kArray, ddt::DdtKind::kSll}));
  ASSERT_EQ(result.per_structure.size(), 2u);
  EXPECT_EQ(result.per_structure[0].first, "radix_node");
  EXPECT_EQ(result.per_structure[1].first, "rtentry");
  EXPECT_GT(result.per_structure[0].second.accesses(), 0u);
  EXPECT_GT(result.per_structure[1].second.accesses(), 0u);
  // Node pool is the hot structure in a trie walk.
  EXPECT_GT(result.per_structure[0].second.accesses(),
            result.per_structure[1].second.accesses());
  EXPECT_GT(result.total.cpu_ops, 0u);
}

TEST(RouteApp, LargerTableCostsMoreFootprint) {
  net::TraceGenerator::Options options;
  options.packet_count = 400;
  const net::Trace trace = net::TraceGenerator::generate(
      net::network_preset("nlanr-backbone"), options);
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kArray});
  RouteApp small(RouteApp::Config{128, 7});
  RouteApp big(RouteApp::Config{256, 7});
  const auto small_run = small.run(trace, combo);
  const auto big_run = big.run(trace, combo);
  EXPECT_GT(big_run.total.peak_bytes, small_run.total.peak_bytes);
}

}  // namespace
}  // namespace ddtr::apps::route
