// Public API layer: StudyRegistry registration/enumeration semantics,
// StudyBuilder grid expansion and trace sharing, the Exploration session
// (chainable options + progress observer), and the acceptance contract
// that a registry/builder-built study produces a report byte-identical to
// the legacy make_*_study path.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "api/ddtr.h"
#include "apps/route/route_app.h"
#include "apps/url/url_app.h"

namespace ddtr::api {
namespace {

core::CaseStudyOptions tiny_options() {
  core::CaseStudyOptions options;
  options.route_packets = 200;
  options.url_packets = 200;
  options.ipchains_packets = 200;
  options.drr_packets = 200;
  return options;
}

StudyBuilder::AppFactory tiny_url_app() {
  return [] {
    return std::make_shared<apps::url::UrlApp>(
        apps::url::UrlApp::Config{8, 4, 4242});
  };
}

TEST(StudyRegistry, BuiltinsRegisteredInTable1Order) {
  const std::vector<std::string> names = registry().names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "route");
  EXPECT_EQ(names[1], "url");
  EXPECT_EQ(names[2], "ipchains");
  EXPECT_EQ(names[3], "drr");
  for (const std::string& name : names) {
    EXPECT_TRUE(registry().contains(name));
    EXPECT_FALSE(registry().info(name).description.empty()) << name;
  }
  EXPECT_FALSE(registry().contains("no-such-workload"));
  EXPECT_THROW(registry().info("no-such-workload"), std::out_of_range);
  EXPECT_THROW(registry().make_study("no-such-workload", tiny_options()),
               std::out_of_range);
}

TEST(StudyRegistry, RejectsDuplicateAndMalformedRegistrations) {
  StudyRegistry local;
  local.add({"toy", "a toy workload",
             [](const core::CaseStudyOptions&) { return core::CaseStudy{}; }});
  EXPECT_EQ(local.size(), 1u);
  // Same name again — rejected, registry unchanged.
  EXPECT_THROW(
      local.add({"toy", "again",
                 [](const core::CaseStudyOptions&) {
                   return core::CaseStudy{};
                 }}),
      std::invalid_argument);
  EXPECT_EQ(local.size(), 1u);
  // Empty name and null factory — rejected up front.
  EXPECT_THROW(
      local.add({"", "nameless",
                 [](const core::CaseStudyOptions&) {
                   return core::CaseStudy{};
                 }}),
      std::invalid_argument);
  EXPECT_THROW(local.add({"no-factory", "missing", nullptr}),
               std::invalid_argument);
  // The built-in names are taken in the global registry too.
  EXPECT_THROW(registry().add({"route", "imposter",
                               [](const core::CaseStudyOptions&) {
                                 return core::CaseStudy{};
                               }}),
               std::invalid_argument);
}

TEST(StudyBuilder, ExpandsNetworkMajorGridAndSharesTraces) {
  StudyBuilder builder("Toy");
  builder.slots(2).packets(200).networks({"dart-berry", "dart-dorm"});
  builder.config("a=1", tiny_url_app()).config("a=2", tiny_url_app());
  EXPECT_EQ(builder.scenario_count(), 4u);

  const core::CaseStudy study = builder.build();
  EXPECT_EQ(study.name, "Toy");
  EXPECT_EQ(study.slots, 2u);
  EXPECT_EQ(study.representative, 0u);
  ASSERT_EQ(study.scenarios.size(), 4u);
  // Network-major order, configs inner — the order every paper study uses.
  EXPECT_EQ(study.scenarios[0].label(), "dart-berry/a=1");
  EXPECT_EQ(study.scenarios[1].label(), "dart-berry/a=2");
  EXPECT_EQ(study.scenarios[2].label(), "dart-dorm/a=1");
  EXPECT_EQ(study.scenarios[3].label(), "dart-dorm/a=2");
  // One immutable trace per network, shared across config cells.
  EXPECT_EQ(study.scenarios[0].trace.get(), study.scenarios[1].trace.get());
  EXPECT_EQ(study.scenarios[2].trace.get(), study.scenarios[3].trace.get());
  EXPECT_NE(study.scenarios[0].trace.get(), study.scenarios[2].trace.get());
  // Each cell gets its own application instance.
  EXPECT_NE(study.scenarios[0].app.get(), study.scenarios[1].app.get());
}

TEST(StudyBuilder, ValidatesTheDescription) {
  EXPECT_THROW(StudyBuilder("").build(), std::invalid_argument);
  // No slots / packets / networks / configs.
  EXPECT_THROW(StudyBuilder("x").build(), std::invalid_argument);
  EXPECT_THROW(StudyBuilder("x").slots(1).packets(100).network(
                   "dart-berry").build(),
               std::invalid_argument);  // no configs
  EXPECT_THROW(
      StudyBuilder("x").slots(1).packets(100).app(tiny_url_app()).build(),
      std::invalid_argument);  // no networks
  EXPECT_THROW(StudyBuilder("x")
                   .slots(1)
                   .packets(100)
                   .network("dart-berry")
                   .app(tiny_url_app())
                   .representative(1)
                   .build(),
               std::invalid_argument);  // representative out of range
  EXPECT_THROW(StudyBuilder("x")
                   .slots(1)
                   .packets(100)
                   .network("not-a-preset")
                   .app(tiny_url_app())
                   .build(),
               std::out_of_range);  // unknown preset
  EXPECT_THROW(StudyBuilder("x")
                   .slots(1)
                   .packets(100)
                   .network("dart-berry")
                   .config("c", nullptr)
                   .build(),
               std::invalid_argument);  // null factory
}

TEST(Api, WorkloadRegisteredOutsideCoreExploresEndToEnd) {
  // The full user workflow: register -> enumerate -> build -> explore.
  // This registration lives entirely outside core/case_studies.cc, the
  // same path `ddtr explore --app NAME` resolves through.
  if (!registry().contains("toy-url")) {
    registry().add({"toy-url", "tiny URL study for the API test",
                    [](const core::CaseStudyOptions& options) {
                      return StudyBuilder("ToyURL")
                          .slots(2)
                          .packets(options.url_packets)
                          .networks({"dart-berry", "dart-dorm"})
                          .app(tiny_url_app())
                          .build();
                    }});
  }
  Exploration session(registry().make_study("toy-url", tiny_options()));
  const core::ExplorationReport& report = session.jobs(2).run();
  EXPECT_EQ(report.app_name, "ToyURL");
  EXPECT_EQ(report.scenario_count, 2u);
  EXPECT_EQ(report.step1_simulations, 121u);  // 11^2 combinations
  EXPECT_FALSE(report.pareto_optimal.empty());
  EXPECT_EQ(&report, &session.report());
}

TEST(Exploration, ReportThrowsBeforeRunAndOptionsChain) {
  const core::CaseStudy study = StudyBuilder("ToyMin")
                                    .slots(2)
                                    .packets(200)
                                    .network("dart-berry")
                                    .app(tiny_url_app())
                                    .build();
  Exploration session(study);
  EXPECT_FALSE(session.has_report());
  EXPECT_THROW(session.report(), std::logic_error);

  session.jobs(2)
      .survivor_cap(0.1)
      .champions_per_metric(1)
      .memoize_simulations(true)
      .step1_policy(core::Step1Policy::kGreedyPerSlot);
  EXPECT_EQ(session.options().jobs, 2u);
  EXPECT_EQ(session.options().survivor_cap_fraction, 0.1);
  EXPECT_EQ(session.options().champions_per_metric, 1u);
  EXPECT_EQ(session.options().step1_policy,
            core::Step1Policy::kGreedyPerSlot);

  session.run();
  EXPECT_TRUE(session.has_report());
  // Greedy step 1: 1 baseline + 2 slots x 10 variations = 21 simulations.
  EXPECT_EQ(session.report().step1_simulations, 21u);
}

TEST(Exploration, ProgressObserverSeesEverySimulationSerialized) {
  Exploration session(registry().make_study("url", tiny_options()));
  std::vector<core::StepProgress> events;
  const core::ExplorationReport& report =
      session.jobs(4)
          .on_progress([&](const core::StepProgress& p) {
            events.push_back(p);  // serialized by the engine: no lock here
          })
          .run();

  ASSERT_FALSE(events.empty());
  // Events arrive in step order, `done` increments by one from 0 to total
  // within each step, and each step ends exactly once at done == total.
  std::set<int> steps;
  std::size_t i = 0;
  for (const int step : {1, 2}) {
    ASSERT_LT(i, events.size());
    EXPECT_EQ(events[i].step, step);
    EXPECT_EQ(events[i].done, 0u);
    const std::size_t total = events[i].total;
    for (std::size_t done = 0; done <= total; ++done, ++i) {
      ASSERT_LT(i, events.size());
      EXPECT_EQ(events[i].step, step);
      EXPECT_EQ(events[i].done, done);
      EXPECT_EQ(events[i].total, total);
      steps.insert(events[i].step);
    }
  }
  EXPECT_EQ(i, events.size());
  EXPECT_EQ(steps, (std::set<int>{1, 2}));
  // Totals are the report's logical simulation counts.
  EXPECT_EQ(events.front().total, report.step1_simulations);
  EXPECT_EQ(events.back().total, report.step2_simulations);
  EXPECT_EQ(events.back().done, report.step2_simulations);
}

TEST(Api, BuilderStudyBitIdenticalToLegacyRouteShim) {
  const core::CaseStudyOptions options = tiny_options();

  // The documented builder recipe for the paper's Route study...
  StudyBuilder builder("Route");
  builder.slots(2).packets(options.route_packets).first_networks(7);
  for (const std::size_t table : {std::size_t{128}, std::size_t{256}}) {
    builder.config("table=" + std::to_string(table), [table] {
      return std::make_shared<apps::route::RouteApp>(
          apps::route::RouteApp::Config{table, 7001 + table});
    });
  }
  const core::CaseStudy built = builder.build();

  // ...versus the deprecated free-function path.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const core::CaseStudy legacy = core::make_route_study(options);
#pragma GCC diagnostic pop

  ASSERT_EQ(built.scenarios.size(), legacy.scenarios.size());
  for (std::size_t i = 0; i < built.scenarios.size(); ++i) {
    EXPECT_EQ(built.scenarios[i].label(), legacy.scenarios[i].label());
    // Same shared trace instance (both come from the global TraceStore).
    EXPECT_EQ(built.scenarios[i].trace.get(), legacy.scenarios[i].trace.get());
  }

  // The whole report — every record, survivor and Pareto index — must be
  // byte-identical between the two construction paths.
  Exploration built_session(built);
  Exploration legacy_session(legacy);
  const core::ExplorationReport& a = built_session.run();
  const core::ExplorationReport& b = legacy_session.run();
  EXPECT_EQ(a.serialized_records(), b.serialized_records());
  EXPECT_EQ(a.survivors, b.survivors);
  EXPECT_EQ(a.pareto_optimal, b.pareto_optimal);
  EXPECT_EQ(a.step1_simulations, b.step1_simulations);
  EXPECT_EQ(a.step2_simulations, b.step2_simulations);
  ASSERT_EQ(a.aggregated.size(), b.aggregated.size());
  for (std::size_t i = 0; i < a.aggregated.size(); ++i) {
    EXPECT_EQ(a.aggregated[i].metrics.energy_mj,
              b.aggregated[i].metrics.energy_mj);
    EXPECT_EQ(a.aggregated[i].metrics.time_s, b.aggregated[i].metrics.time_s);
    EXPECT_EQ(a.aggregated[i].metrics.accesses,
              b.aggregated[i].metrics.accesses);
    EXPECT_EQ(a.aggregated[i].metrics.footprint_bytes,
              b.aggregated[i].metrics.footprint_bytes);
  }
}

}  // namespace
}  // namespace ddtr::api
