// The arena pool is the allocation substrate under every node-allocating
// DDT, so its invariants (free-list reuse, bounded chunk growth, honest
// MemoryProfile charging) underpin all footprint numbers downstream.
#include <gtest/gtest.h>

#include <vector>

#include "ddt/factory.h"
#include "support/arena.h"

namespace ddtr {
namespace {

struct Rec {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(Arena, FreeListReusesDestroyedSlots) {
  prof::MemoryProfile profile;
  support::Pool<Rec> pool(profile);
  Rec* first = pool.create();
  pool.destroy(first);
  Rec* second = pool.create();
  // The freed slot is recycled: same storage, no new chunk.
  EXPECT_EQ(static_cast<void*>(first), static_cast<void*>(second));
  const support::PoolStats& stats = pool.stats();
  EXPECT_EQ(stats.created, 2u);
  EXPECT_EQ(stats.destroyed, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.live_objects, 1u);
  EXPECT_EQ(stats.chunk_count, 1u);
  // Reuse performs no allocator call: still exactly one chunk allocation.
  EXPECT_EQ(profile.counters().allocations, 1u);
  pool.destroy(second);
}

TEST(Arena, ChunkGrowthDoublesUpToByteCap) {
  // Schedule: 8, 16, 32, ... doubling until a chunk's payload would exceed
  // kMaxChunkBytes, then pinned at the cap.
  const std::size_t slot = sizeof(Rec);  // 16 B — no free-list enlargement
  const std::size_t cap = support::kMaxChunkBytes / slot;
  EXPECT_EQ(support::next_chunk_objects(0, slot),
            support::kFirstChunkObjects);
  EXPECT_EQ(support::next_chunk_objects(8, slot), 16u);
  EXPECT_EQ(support::next_chunk_objects(256, slot), cap);
  EXPECT_EQ(support::next_chunk_objects(cap, slot), cap);
  // Oversized objects still get one slot per chunk.
  EXPECT_EQ(support::next_chunk_objects(0, support::kMaxChunkBytes * 2), 1u);

  prof::MemoryProfile profile;
  support::Pool<Rec> pool(profile);
  std::vector<Rec*> objects;
  for (std::size_t i = 0; i < support::kFirstChunkObjects; ++i) {
    objects.push_back(pool.create());
  }
  EXPECT_EQ(pool.stats().chunk_count, 1u);
  objects.push_back(pool.create());  // 9th object forces the second chunk
  EXPECT_EQ(pool.stats().chunk_count, 2u);
  EXPECT_EQ(pool.stats().reserved_bytes, (8u + 16u) * slot);
  for (Rec* object : objects) pool.destroy(object);
}

TEST(Arena, PoolStatsAgreeWithMemoryProfileTotals) {
  prof::MemoryProfile profile;
  {
    support::Pool<Rec> pool(profile);
    std::vector<Rec*> objects;
    for (std::size_t i = 0; i < 100; ++i) objects.push_back(pool.create());
    // Profile live bytes are exactly the reserved payload plus one
    // allocator header per chunk.
    EXPECT_EQ(profile.counters().live_bytes,
              pool.stats().reserved_bytes +
                  pool.stats().chunk_count * support::kAllocatorOverhead);
    EXPECT_EQ(profile.counters().allocations, pool.stats().chunk_count);
    EXPECT_EQ(pool.stats().peak_objects, 100u);
    for (Rec* object : objects) pool.destroy(object);
    // destroy() recycles without releasing: reservation is unchanged.
    EXPECT_GT(profile.counters().live_bytes, 0u);
    const std::size_t chunks = pool.stats().chunk_count;
    pool.release();
    EXPECT_EQ(profile.counters().live_bytes, 0u);
    EXPECT_EQ(profile.counters().deallocations, chunks);
  }
  EXPECT_EQ(profile.counters().allocations,
            profile.counters().deallocations);
}

TEST(Arena, HeapPolicyReproducesPerNodeAccounting) {
  prof::MemoryProfile profile;
  support::Pool<Rec> pool(profile, support::AllocPolicy::kHeap);
  std::vector<Rec*> objects;
  for (std::size_t i = 0; i < 32; ++i) objects.push_back(pool.create());
  EXPECT_EQ(profile.counters().allocations, 32u);
  EXPECT_EQ(profile.counters().live_bytes,
            32u * (sizeof(Rec) + support::kAllocatorOverhead));
  EXPECT_EQ(pool.stats().reused, 0u);
  EXPECT_EQ(pool.stats().chunk_count, 0u);
  for (Rec* object : objects) pool.destroy(object);
  EXPECT_EQ(profile.counters().deallocations, 32u);
  EXPECT_EQ(profile.counters().live_bytes, 0u);
}

TEST(Arena, ListContainerArenaBalancesOnClear) {
  // End-to-end: an arena-backed SLL allocates a handful of chunks for 64
  // nodes, serves churn from the free list, and clear() returns the whole
  // reservation so allocation events balance.
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(ddt::DdtKind::kSll, profile);
  for (std::size_t i = 0; i < 64; ++i) c->push_back({i, i});
  EXPECT_LE(profile.counters().allocations, 5u);  // chunks, not nodes
  for (std::size_t i = 0; i < 16; ++i) c->erase(0);
  for (std::size_t i = 0; i < 8; ++i) c->push_back({i, i});
  EXPECT_LE(profile.counters().allocations, 5u);  // churn hits the free list
  c->clear();
  EXPECT_EQ(profile.counters().live_bytes, 0u);
  EXPECT_EQ(profile.counters().allocations,
            profile.counters().deallocations);
}

}  // namespace
}  // namespace ddtr
