// Trace substrate tests: generator determinism and realism, text
// round-trip, parameter extraction (the step-2 front-end), content-hash
// identity, and the TraceStore's keying and concurrency contracts.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "nettrace/generator.h"
#include "nettrace/parser.h"
#include "nettrace/presets.h"
#include "nettrace/trace.h"
#include "nettrace/trace_store.h"

namespace ddtr::net {
namespace {

TraceGenerator::Options small_options() {
  TraceGenerator::Options options;
  options.packet_count = 4000;
  return options;
}

TEST(Presets, EightNetworksExist) {
  EXPECT_EQ(all_network_presets().size(), 8u);
  std::set<std::string> names;
  for (const auto& p : all_network_presets()) names.insert(p.name);
  EXPECT_EQ(names.size(), 8u);  // unique names
}

TEST(Presets, LookupByNameAndFailure) {
  EXPECT_EQ(network_preset("dart-berry").name, "dart-berry");
  EXPECT_THROW(network_preset("nope"), std::out_of_range);
}

TEST(Presets, FirstPresetsClamps) {
  EXPECT_EQ(first_presets(3).size(), 3u);
  EXPECT_EQ(first_presets(99).size(), 8u);
}

TEST(Generator, DeterministicForSamePreset) {
  const auto& preset = all_network_presets()[0];
  const Trace a = TraceGenerator::generate(preset, small_options());
  const Trace b = TraceGenerator::generate(preset, small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.packets()[i].src_ip, b.packets()[i].src_ip);
    EXPECT_EQ(a.packets()[i].length, b.packets()[i].length);
    EXPECT_EQ(a.packets()[i].timestamp_s, b.packets()[i].timestamp_s);
  }
}

TEST(Generator, SeedOffsetProducesDistinctTrace) {
  const auto& preset = all_network_presets()[0];
  auto options = small_options();
  const Trace a = TraceGenerator::generate(preset, options);
  options.seed_offset = 1;
  const Trace b = TraceGenerator::generate(preset, options);
  ASSERT_EQ(a.size(), b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a.packets()[i].src_ip != b.packets()[i].src_ip ||
              a.packets()[i].length != b.packets()[i].length;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, TimestampsMonotone) {
  const Trace t =
      TraceGenerator::generate(network_preset("dart-dorm"), small_options());
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t.packets()[i].timestamp_s, t.packets()[i - 1].timestamp_s);
  }
}

TEST(Generator, LengthsWithinMtu) {
  for (const auto& preset : all_network_presets()) {
    const Trace t = TraceGenerator::generate(preset, small_options());
    for (const auto& p : t.packets()) {
      EXPECT_GE(p.length, 40u);
      EXPECT_LE(p.length, preset.mtu);
    }
  }
}

TEST(Generator, HttpPacketsCarryUrls) {
  const Trace t = TraceGenerator::generate(network_preset("dart-whittemore"),
                                           small_options());
  std::size_t with_payload = 0;
  for (const auto& p : t.packets()) {
    if (t.has_payload(p)) {
      ++with_payload;
      EXPECT_EQ(t.payload(p.payload_id).rfind("http://", 0), 0u);
    }
  }
  // Web-heavy preset: a meaningful share of packets are requests.
  EXPECT_GT(with_payload, t.size() / 20);
}

TEST(Generator, NoSelfTalk) {
  const Trace t =
      TraceGenerator::generate(all_network_presets()[1], small_options());
  for (const auto& p : t.packets()) EXPECT_NE(p.src_ip, p.dst_ip);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t =
      TraceGenerator::generate(network_preset("dart-berry"), small_options());
  std::stringstream ss;
  t.save(ss);
  const Trace u = Trace::load(ss);
  ASSERT_EQ(u.size(), t.size());
  EXPECT_EQ(u.name(), t.name());
  EXPECT_EQ(u.payload_count(), t.payload_count());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(u.packets()[i].src_ip, t.packets()[i].src_ip);
    EXPECT_EQ(u.packets()[i].dst_port, t.packets()[i].dst_port);
    EXPECT_EQ(u.packets()[i].payload_id, t.packets()[i].payload_id);
  }
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("not a trace");
  EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, PayloadLookupOutOfRangeIsEmpty) {
  Trace t;
  EXPECT_TRUE(t.payload(kNoPayload).empty());
  EXPECT_TRUE(t.payload(42).empty());
}

TEST(Parser, ExtractsSaneParameters) {
  const auto& preset = network_preset("nlanr-campus");
  const Trace t = TraceGenerator::generate(preset, small_options());
  const NetworkParams params = TraceParser::extract(t);
  EXPECT_EQ(params.packet_count, t.size());
  EXPECT_GT(params.duration_s, 0.0);
  EXPECT_GT(params.node_count, 10u);
  EXPECT_LE(params.node_count, preset.node_count + 1);
  EXPECT_GT(params.flow_count, 10u);
  EXPECT_GT(params.throughput_bps, 0.0);
  EXPECT_GT(params.mean_packet_bytes, 40.0);
  EXPECT_LE(params.max_packet_bytes, preset.mtu);
  EXPECT_GE(params.http_fraction, 0.0);
  EXPECT_LE(params.http_fraction, 1.0);
  EXPECT_GE(params.udp_fraction, 0.0);
  EXPECT_LE(params.udp_fraction, 1.0);
}

TEST(Parser, DistinguishesNetworkConfigurations) {
  // The whole point of step 2: different networks present measurably
  // different parameter vectors.
  const NetworkParams campus = TraceParser::extract(
      TraceGenerator::generate(network_preset("nlanr-campus"),
                               small_options()));
  const NetworkParams satellite = TraceParser::extract(
      TraceGenerator::generate(network_preset("nlanr-satellite"),
                               small_options()));
  EXPECT_GT(campus.node_count, satellite.node_count * 2);
  EXPECT_GT(campus.throughput_bps, satellite.throughput_bps);
}

TEST(Parser, EmptyTrace) {
  const NetworkParams params = TraceParser::extract(Trace{"empty"});
  EXPECT_EQ(params.packet_count, 0u);
  EXPECT_EQ(params.node_count, 0u);
  EXPECT_EQ(params.throughput_bps, 0.0);
}

TEST(MakeIp, PacksOctets) {
  EXPECT_EQ(make_ip(10, 0, 0, 1), 0x0a000001u);
  EXPECT_EQ(make_ip(255, 255, 255, 255), 0xffffffffu);
}

TEST(ContentHash, StableAndSensitiveToEveryMutation) {
  const auto& preset = all_network_presets()[0];
  const Trace a = TraceGenerator::generate(preset, small_options());
  const Trace b = TraceGenerator::generate(preset, small_options());
  EXPECT_NE(a.content_hash(), 0u);
  // Identical content — including across copies — hashes identically.
  EXPECT_EQ(a.content_hash(), b.content_hash());
  const Trace copy = a;
  EXPECT_EQ(copy.content_hash(), a.content_hash());

  // Any mutation changes the digest.
  Trace renamed = a;
  renamed.set_name("other");
  EXPECT_NE(renamed.content_hash(), a.content_hash());
  Trace extended = a;
  extended.add_packet(PacketRecord{});
  EXPECT_NE(extended.content_hash(), a.content_hash());
  Trace payloaded = a;
  payloaded.add_payload("GET /index.html");
  EXPECT_NE(payloaded.content_hash(), a.content_hash());
}

TEST(ContentHash, SurvivesTextRoundTrip) {
  const Trace original =
      TraceGenerator::generate(network_preset("dart-berry"), small_options());
  std::stringstream ss;
  original.save(ss);
  const Trace reloaded = Trace::load(ss);
  EXPECT_EQ(reloaded.content_hash(), original.content_hash());
}

TEST(TraceStore, PresetKeyKeepsFullDoublePrecision) {
  // Regression for the preset-key truncation bug: keys were formatted at
  // the default ostream precision (6 significant digits), so two presets
  // differing in the 7th digit of a double field collided on one key and
  // the second request silently replayed the FIRST preset's trace.
  TraceStore store;
  NetworkPreset a = network_preset("nlanr-campus");
  NetworkPreset b = a;
  b.zipf_skew += 1e-7;  // differs in the 7th significant digit
  ASSERT_NE(a.zipf_skew, b.zipf_skew);

  const auto trace_a = store.get_or_generate(a, small_options());
  const auto trace_b = store.get_or_generate(b, small_options());
  EXPECT_EQ(store.size(), 2u);  // two keys, two builds — no collision
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_NE(trace_a.get(), trace_b.get());
  // The skew genuinely changes the generated content, which is exactly
  // why replaying the cached trace would have been wrong.
  EXPECT_NE(trace_a->content_hash(), trace_b->content_hash());

  // Equal presets still share one trace.
  const auto trace_a2 = store.get_or_generate(a, small_options());
  EXPECT_EQ(trace_a2.get(), trace_a.get());
  EXPECT_EQ(store.hits(), 1u);
}

TEST(TraceStore, SameKeyConcurrentRequestsBuildOnce) {
  TraceStore store;
  const NetworkPreset preset = network_preset("dart-library");
  TraceGenerator::Options options;
  options.packet_count = 500;

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Trace>> results(4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] = store.get_or_generate(preset, options);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.hits(), results.size() - 1);
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
}

TEST(TraceStore, DistinctKeysBuildConcurrently) {
  // Two builds that each wait (bounded) for the other to START can only
  // both finish if the store runs them in parallel; the old
  // lock-across-build store serialized them, and whichever built first
  // timed out waiting. The builds rendezvous, so distinct traces no
  // longer serialize behind one store-wide lock.
  TraceStore store;
  std::mutex mu;
  std::condition_variable cv;
  bool started_a = false;
  bool started_b = false;
  bool saw_peer_a = false;
  bool saw_peer_b = false;
  const auto wait_for = [&](bool& flag) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(5), [&] { return flag; });
  };
  const auto announce = [&](bool& flag) {
    {
      std::lock_guard<std::mutex> lock(mu);
      flag = true;
    }
    cv.notify_all();
  };

  std::thread thread_a([&] {
    store.get_or_build("key-a", [&] {
      announce(started_a);
      saw_peer_a = wait_for(started_b);
      return Trace{"a"};
    });
  });
  std::thread thread_b([&] {
    store.get_or_build("key-b", [&] {
      announce(started_b);
      saw_peer_b = wait_for(started_a);
      return Trace{"b"};
    });
  });
  thread_a.join();
  thread_b.join();
  EXPECT_TRUE(saw_peer_a);
  EXPECT_TRUE(saw_peer_b);
  EXPECT_EQ(store.size(), 2u);
}

TEST(TraceStore, FailedBuildPropagatesAndAllowsRetry) {
  TraceStore store;
  EXPECT_THROW(store.get_or_build(
                   "flaky", []() -> Trace {
                     throw std::runtime_error("build exploded");
                   }),
               std::runtime_error);
  // The failed slot was vacated: a retry builds fresh and succeeds.
  const auto trace = store.get_or_build("flaky", [] { return Trace{"ok"}; });
  EXPECT_EQ(trace->name(), "ok");
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace ddtr::net
