// Trace substrate tests: generator determinism and realism, text
// round-trip, parameter extraction (the step-2 front-end).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "nettrace/generator.h"
#include "nettrace/parser.h"
#include "nettrace/presets.h"
#include "nettrace/trace.h"

namespace ddtr::net {
namespace {

TraceGenerator::Options small_options() {
  TraceGenerator::Options options;
  options.packet_count = 4000;
  return options;
}

TEST(Presets, EightNetworksExist) {
  EXPECT_EQ(all_network_presets().size(), 8u);
  std::set<std::string> names;
  for (const auto& p : all_network_presets()) names.insert(p.name);
  EXPECT_EQ(names.size(), 8u);  // unique names
}

TEST(Presets, LookupByNameAndFailure) {
  EXPECT_EQ(network_preset("dart-berry").name, "dart-berry");
  EXPECT_THROW(network_preset("nope"), std::out_of_range);
}

TEST(Presets, FirstPresetsClamps) {
  EXPECT_EQ(first_presets(3).size(), 3u);
  EXPECT_EQ(first_presets(99).size(), 8u);
}

TEST(Generator, DeterministicForSamePreset) {
  const auto& preset = all_network_presets()[0];
  const Trace a = TraceGenerator::generate(preset, small_options());
  const Trace b = TraceGenerator::generate(preset, small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.packets()[i].src_ip, b.packets()[i].src_ip);
    EXPECT_EQ(a.packets()[i].length, b.packets()[i].length);
    EXPECT_EQ(a.packets()[i].timestamp_s, b.packets()[i].timestamp_s);
  }
}

TEST(Generator, SeedOffsetProducesDistinctTrace) {
  const auto& preset = all_network_presets()[0];
  auto options = small_options();
  const Trace a = TraceGenerator::generate(preset, options);
  options.seed_offset = 1;
  const Trace b = TraceGenerator::generate(preset, options);
  ASSERT_EQ(a.size(), b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a.packets()[i].src_ip != b.packets()[i].src_ip ||
              a.packets()[i].length != b.packets()[i].length;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, TimestampsMonotone) {
  const Trace t =
      TraceGenerator::generate(network_preset("dart-dorm"), small_options());
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t.packets()[i].timestamp_s, t.packets()[i - 1].timestamp_s);
  }
}

TEST(Generator, LengthsWithinMtu) {
  for (const auto& preset : all_network_presets()) {
    const Trace t = TraceGenerator::generate(preset, small_options());
    for (const auto& p : t.packets()) {
      EXPECT_GE(p.length, 40u);
      EXPECT_LE(p.length, preset.mtu);
    }
  }
}

TEST(Generator, HttpPacketsCarryUrls) {
  const Trace t = TraceGenerator::generate(network_preset("dart-whittemore"),
                                           small_options());
  std::size_t with_payload = 0;
  for (const auto& p : t.packets()) {
    if (t.has_payload(p)) {
      ++with_payload;
      EXPECT_EQ(t.payload(p.payload_id).rfind("http://", 0), 0u);
    }
  }
  // Web-heavy preset: a meaningful share of packets are requests.
  EXPECT_GT(with_payload, t.size() / 20);
}

TEST(Generator, NoSelfTalk) {
  const Trace t =
      TraceGenerator::generate(all_network_presets()[1], small_options());
  for (const auto& p : t.packets()) EXPECT_NE(p.src_ip, p.dst_ip);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t =
      TraceGenerator::generate(network_preset("dart-berry"), small_options());
  std::stringstream ss;
  t.save(ss);
  const Trace u = Trace::load(ss);
  ASSERT_EQ(u.size(), t.size());
  EXPECT_EQ(u.name(), t.name());
  EXPECT_EQ(u.payload_count(), t.payload_count());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(u.packets()[i].src_ip, t.packets()[i].src_ip);
    EXPECT_EQ(u.packets()[i].dst_port, t.packets()[i].dst_port);
    EXPECT_EQ(u.packets()[i].payload_id, t.packets()[i].payload_id);
  }
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("not a trace");
  EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, PayloadLookupOutOfRangeIsEmpty) {
  Trace t;
  EXPECT_TRUE(t.payload(kNoPayload).empty());
  EXPECT_TRUE(t.payload(42).empty());
}

TEST(Parser, ExtractsSaneParameters) {
  const auto& preset = network_preset("nlanr-campus");
  const Trace t = TraceGenerator::generate(preset, small_options());
  const NetworkParams params = TraceParser::extract(t);
  EXPECT_EQ(params.packet_count, t.size());
  EXPECT_GT(params.duration_s, 0.0);
  EXPECT_GT(params.node_count, 10u);
  EXPECT_LE(params.node_count, preset.node_count + 1);
  EXPECT_GT(params.flow_count, 10u);
  EXPECT_GT(params.throughput_bps, 0.0);
  EXPECT_GT(params.mean_packet_bytes, 40.0);
  EXPECT_LE(params.max_packet_bytes, preset.mtu);
  EXPECT_GE(params.http_fraction, 0.0);
  EXPECT_LE(params.http_fraction, 1.0);
  EXPECT_GE(params.udp_fraction, 0.0);
  EXPECT_LE(params.udp_fraction, 1.0);
}

TEST(Parser, DistinguishesNetworkConfigurations) {
  // The whole point of step 2: different networks present measurably
  // different parameter vectors.
  const NetworkParams campus = TraceParser::extract(
      TraceGenerator::generate(network_preset("nlanr-campus"),
                               small_options()));
  const NetworkParams satellite = TraceParser::extract(
      TraceGenerator::generate(network_preset("nlanr-satellite"),
                               small_options()));
  EXPECT_GT(campus.node_count, satellite.node_count * 2);
  EXPECT_GT(campus.throughput_bps, satellite.throughput_bps);
}

TEST(Parser, EmptyTrace) {
  const NetworkParams params = TraceParser::extract(Trace{"empty"});
  EXPECT_EQ(params.packet_count, 0u);
  EXPECT_EQ(params.node_count, 0u);
  EXPECT_EQ(params.throughput_bps, 0.0);
}

TEST(MakeIp, PacksOctets) {
  EXPECT_EQ(make_ip(10, 0, 0, 1), 0x0a000001u);
  EXPECT_EQ(make_ip(255, 255, 255, 255), 0xffffffffu);
}

}  // namespace
}  // namespace ddtr::net
