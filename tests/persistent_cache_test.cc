// Content-identity cache keys and the persistent cross-run simulation
// cache: key soundness (same labels + different trace content must NOT
// hit; different cost models must not hit), the warm-rerun contract
// (zero executed simulations, byte-identical report), round-trips through
// the cache file, and tolerance of corrupt / truncated / stale-version
// files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/ddtr.h"
#include "core/persistent_cache.h"
#include "core/simulation_cache.h"
#include "dist/cache_inspect.h"

namespace ddtr::core {
namespace {

CaseStudyOptions tiny_options() {
  CaseStudyOptions options;
  options.route_packets = 200;
  options.url_packets = 200;
  options.ipchains_packets = 200;
  options.drr_packets = 200;
  return options;
}

CaseStudy tiny_url_study() {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  study.scenarios.resize(2);  // keep the single-core test budget small
  return study;
}

// A unique empty scratch directory per test.
class PersistentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("ddtr_cache_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

ExplorationReport explore_cached(const CaseStudy& study,
                                 const std::string& cache_dir) {
  ExplorationOptions options;
  options.cache_dir = cache_dir;
  const ExplorationEngine engine(make_paper_energy_model(), options);
  return engine.explore(study);
}

TEST(SimulationCacheKeys, SameLabelsDifferentTraceContentDoNotCollide) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  const energy::EnergyModel model = make_paper_energy_model();
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kSll});

  // Same network label, same config, same app — but one extra packet.
  const Scenario& original = study.scenarios.front();
  net::Trace tweaked = *original.trace;
  tweaked.add_packet(net::PacketRecord{});
  Scenario relabeled = original;
  relabeled.trace = std::make_shared<const net::Trace>(std::move(tweaked));
  ASSERT_EQ(original.label(), relabeled.label());

  // The label-based key scheme collided here; content keys must not.
  EXPECT_NE(SimulationCache::key_of(original, combo, model),
            SimulationCache::key_of(relabeled, combo, model));

  SimulationCache cache;
  cache.get_or_simulate(original, combo, model);
  EXPECT_FALSE(cache.find(relabeled, combo, model).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SimulationCacheKeys, DifferentEnergyModelsDoNotCollide) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  const Scenario& scenario = study.scenarios.front();
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kSll});

  const energy::EnergyModel paper = make_paper_energy_model();
  energy::EnergyModel::Config config;
  config.clock_ghz = 2.4;
  const energy::EnergyModel faster(energy::MemoryHierarchy::cached(), config);

  EXPECT_NE(paper.fingerprint(), faster.fingerprint());
  EXPECT_NE(SimulationCache::key_of(scenario, combo, paper),
            SimulationCache::key_of(scenario, combo, faster));

  SimulationCache cache;
  cache.get_or_simulate(scenario, combo, paper);
  EXPECT_FALSE(cache.find(scenario, combo, faster).has_value());
}

// Forwards to a real app but reports different simulation semantics.
class BumpedVersionApp : public apps::NetworkApplication {
 public:
  explicit BumpedVersionApp(std::shared_ptr<apps::NetworkApplication> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name(); }
  std::vector<std::string> dominant_structures() const override {
    return inner_->dominant_structures();
  }
  apps::RunResult run(const net::Trace& trace,
                      const ddt::DdtCombination& combo) override {
    return inner_->run(trace, combo);
  }
  std::string config_label() const override {
    return inner_->config_label();
  }
  std::uint32_t cache_version() const override {
    return inner_->cache_version() + 1;
  }

 private:
  std::shared_ptr<apps::NetworkApplication> inner_;
};

TEST(SimulationCacheKeys, AppCacheVersionInvalidatesOldRecords) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  const energy::EnergyModel model = make_paper_energy_model();
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kSll});

  // Same app name/config/trace — but run() semantics declared changed.
  Scenario evolved = study.scenarios.front();
  evolved.app = std::make_shared<BumpedVersionApp>(evolved.app);

  EXPECT_NE(
      SimulationCache::key_of(study.scenarios.front(), combo, model),
      SimulationCache::key_of(evolved, combo, model));

  SimulationCache cache;
  cache.get_or_simulate(study.scenarios.front(), combo, model);
  EXPECT_FALSE(cache.find(evolved, combo, model).has_value());
}

TEST(SimulationCacheKeys, HitRelabelsToRequestingScenario) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  const energy::EnergyModel model = make_paper_energy_model();
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kSll});

  // Identical trace content published under a different network label
  // (e.g. a record cached by a previous run of another study).
  Scenario renamed = study.scenarios.front();
  renamed.network = "some-other-name";

  SimulationCache cache;
  cache.get_or_simulate(renamed, combo, model);
  const auto hit = cache.find(study.scenarios.front(), combo, model);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->network, study.scenarios.front().network);
}

TEST_F(PersistentCacheTest, WarmRerunExecutesNothingAndIsByteIdentical) {
  const CaseStudy study = tiny_url_study();

  const ExplorationReport cold = explore_cached(study, dir_);
  EXPECT_EQ(cold.persistent_loaded, 0u);
  EXPECT_GT(cold.persistent_stored, 0u);
  EXPECT_GT(cold.executed_simulations(), 0u);

  const ExplorationReport warm = explore_cached(study, dir_);
  EXPECT_EQ(warm.persistent_loaded, cold.persistent_stored);
  EXPECT_EQ(warm.persistent_stored, 0u);
  // The acceptance contract: a warm rerun executes ZERO simulations...
  EXPECT_EQ(warm.executed_simulations(), 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  // ...yet the report is byte-identical to the cold run's.
  EXPECT_EQ(warm.serialized_records(), cold.serialized_records());
  EXPECT_EQ(warm.survivors, cold.survivors);
  EXPECT_EQ(warm.pareto_optimal, cold.pareto_optimal);

  // And identical to a run with persistence disabled entirely.
  const ExplorationReport plain = explore_cached(study, "");
  EXPECT_EQ(plain.serialized_records(), cold.serialized_records());
}

TEST_F(PersistentCacheTest, WarmRerunThroughPublicApi) {
  // The api::Exploration surface of the same contract.
  api::Exploration first(tiny_url_study());
  const std::string cold_bytes =
      first.cache_dir(dir_).run().serialized_records();

  api::Exploration second(tiny_url_study());
  const ExplorationReport& warm = second.cache_dir(dir_).run();
  EXPECT_EQ(warm.executed_simulations(), 0u);
  EXPECT_EQ(warm.serialized_records(), cold_bytes);
}

TEST_F(PersistentCacheTest, RoundTripPreservesRecordsExactly) {
  const CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = make_paper_energy_model();
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kDllOfArraysRoving, ddt::DdtKind::kSllRoving});
  const Scenario& scenario = study.scenarios.front();

  SimulationCache cache;
  const SimulationRecord original =
      cache.get_or_simulate(scenario, combo, model);
  PersistentSimulationCache writer(dir_);
  EXPECT_EQ(writer.load(), 0u);
  EXPECT_EQ(writer.store_new(cache), 1u);
  // A second store with no new entries appends nothing.
  EXPECT_EQ(writer.store_new(cache), 0u);

  PersistentSimulationCache reader(dir_);
  ASSERT_EQ(reader.load(), 1u);
  SimulationCache seeded;
  reader.seed(seeded);
  const auto replayed = seeded.find(scenario, combo, model);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->app_name, original.app_name);
  EXPECT_EQ(replayed->combo, original.combo);
  EXPECT_EQ(replayed->network, original.network);
  EXPECT_EQ(replayed->config, original.config);
  // Bit-exact doubles: the binary format stores IEEE-754 patterns.
  EXPECT_EQ(replayed->metrics.energy_mj, original.metrics.energy_mj);
  EXPECT_EQ(replayed->metrics.time_s, original.metrics.time_s);
  EXPECT_EQ(replayed->metrics.accesses, original.metrics.accesses);
  EXPECT_EQ(replayed->metrics.footprint_bytes,
            original.metrics.footprint_bytes);
  EXPECT_EQ(replayed->counters.cpu_ops, original.counters.cpu_ops);
  EXPECT_EQ(replayed->counters.peak_bytes, original.counters.peak_bytes);
}

TEST_F(PersistentCacheTest, CorruptFileIsIgnoredAndRewritten) {
  std::filesystem::create_directories(dir_);
  PersistentSimulationCache cache(dir_);
  {
    std::ofstream os(cache.file_path(), std::ios::binary);
    os << "this is not a ddtr cache file at all, just garbage bytes";
  }
  EXPECT_EQ(cache.load(), 0u);  // ignored, not a crash

  // A run over the corrupt directory still works and replaces the file.
  const CaseStudy study = tiny_url_study();
  const ExplorationReport cold = explore_cached(study, dir_);
  EXPECT_EQ(cold.persistent_loaded, 0u);
  EXPECT_GT(cold.persistent_stored, 0u);
  const ExplorationReport warm = explore_cached(study, dir_);
  EXPECT_EQ(warm.executed_simulations(), 0u);
  EXPECT_EQ(warm.serialized_records(), cold.serialized_records());
}

TEST_F(PersistentCacheTest, TruncatedTailLosesOnlyTheTail) {
  const CaseStudy study = tiny_url_study();
  explore_cached(study, dir_);

  PersistentSimulationCache probe(dir_);
  const std::size_t full = probe.load();
  ASSERT_GT(full, 1u);

  // Chop the file mid-entry: the intact prefix must still load.
  const auto path = probe.file_path();
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 37);
  PersistentSimulationCache truncated(dir_);
  const std::size_t partial = truncated.load();
  EXPECT_LT(partial, full);
  EXPECT_GT(partial, 0u);

  // The next run re-executes only what the tail lost, then heals the file.
  const ExplorationReport heal = explore_cached(study, dir_);
  EXPECT_EQ(heal.persistent_loaded, partial);
  EXPECT_GT(heal.persistent_stored, 0u);
  const ExplorationReport warm = explore_cached(study, dir_);
  EXPECT_EQ(warm.executed_simulations(), 0u);
}

TEST_F(PersistentCacheTest, StaleFormatVersionInvalidatesWholeFile) {
  const CaseStudy study = tiny_url_study();
  const ExplorationReport cold = explore_cached(study, dir_);
  ASSERT_GT(cold.persistent_stored, 0u);

  // Flip the format-version field (bytes 8..11, after the 8-byte magic).
  PersistentSimulationCache probe(dir_);
  {
    std::fstream os(probe.file_path(),
                    std::ios::binary | std::ios::in | std::ios::out);
    os.seekp(8);
    const char stale[4] = {'\xff', '\xff', '\xff', '\xff'};
    os.write(stale, sizeof(stale));
  }
  EXPECT_EQ(probe.load(), 0u);

  // The stale file is rewritten, after which reruns are warm again.
  const ExplorationReport rewrite = explore_cached(study, dir_);
  EXPECT_EQ(rewrite.persistent_loaded, 0u);
  EXPECT_GT(rewrite.persistent_stored, 0u);
  const ExplorationReport warm = explore_cached(study, dir_);
  EXPECT_EQ(warm.executed_simulations(), 0u);
  EXPECT_EQ(warm.serialized_records(), cold.serialized_records());
}

TEST_F(PersistentCacheTest, ZeroLengthFileIsToleratedAndReported) {
  // The scar of a crash between creating the file and the first durable
  // write (what compact()'s fsync-before-rename prevents for the rename
  // path): tolerated on load, reported distinctly, healed by a store.
  std::filesystem::create_directories(dir_);
  PersistentSimulationCache cache(dir_);
  { std::ofstream os(cache.file_path(), std::ios::binary); }

  const auto check = PersistentSimulationCache::check_file(cache.file_path());
  EXPECT_TRUE(check.present);
  EXPECT_TRUE(check.empty);
  EXPECT_FALSE(check.header_valid);
  EXPECT_EQ(check.entries_corrupt, 0u);
  EXPECT_TRUE(dist::verify_cache(dir_).ok());  // empty != corrupt
  EXPECT_EQ(cache.load(), 0u);

  // A store rewrites it with a valid header.
  const energy::EnergyModel model = make_paper_energy_model();
  const CaseStudy study = tiny_url_study();
  SimulationCache sim;
  sim.get_or_simulate(study.scenarios.front(),
                      ddt::DdtCombination(
                          {ddt::DdtKind::kArray, ddt::DdtKind::kSll}),
                      model);
  EXPECT_EQ(cache.store_new(sim), 1u);
  const auto healed = PersistentSimulationCache::check_file(cache.file_path());
  EXPECT_FALSE(healed.empty);
  EXPECT_TRUE(healed.header_valid);
  EXPECT_EQ(healed.entries_ok, 1u);
}

TEST_F(PersistentCacheTest, MarkerFilesRoundTripAtomically) {
  PersistentSimulationCache cache(dir_);
  const std::string name = "step1.shard0of2";
  EXPECT_FALSE(PersistentSimulationCache::read_marker(cache.marker_path(name))
                   .has_value());

  EXPECT_TRUE(cache.write_marker(name, "fingerprint-a"));
  auto content = PersistentSimulationCache::read_marker(cache.marker_path(name));
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "fingerprint-a");

  // Republishing replaces the content (rename over the old marker).
  EXPECT_TRUE(cache.write_marker(name, "fingerprint-b"));
  content = PersistentSimulationCache::read_marker(cache.marker_path(name));
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "fingerprint-b");

  ASSERT_EQ(cache.marker_paths().size(), 1u);
  EXPECT_EQ(cache.marker_paths().front(), cache.marker_path(name));

  // No temp litter left behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << entry.path();
  }
}

TEST_F(PersistentCacheTest, ColdStartSessionsDoNotWipeEachOthersStores) {
  // Two sessions share one cache dir and both load() before the file
  // exists; the second store_new() must append to the first's file, not
  // rewrite it from scratch.
  const CaseStudy study = tiny_url_study();
  const energy::EnergyModel model = make_paper_energy_model();
  PersistentSimulationCache first(dir_);
  PersistentSimulationCache second(dir_);
  EXPECT_EQ(first.load(), 0u);
  EXPECT_EQ(second.load(), 0u);

  SimulationCache cache_a;
  cache_a.get_or_simulate(study.scenarios.front(),
                          ddt::DdtCombination(
                              {ddt::DdtKind::kArray, ddt::DdtKind::kSll}),
                          model);
  SimulationCache cache_b;
  cache_b.get_or_simulate(study.scenarios.front(),
                          ddt::DdtCombination(
                              {ddt::DdtKind::kDll, ddt::DdtKind::kSll}),
                          model);
  EXPECT_EQ(first.store_new(cache_a), 1u);
  EXPECT_EQ(second.store_new(cache_b), 1u);

  PersistentSimulationCache reader(dir_);
  EXPECT_EQ(reader.load(), 2u);  // both sessions' records survived
}

TEST_F(PersistentCacheTest, MissingDirectoryIsCreatedOnStore) {
  const std::string nested = dir_ + "/deeper/nested";
  const ExplorationReport cold = explore_cached(tiny_url_study(), nested);
  EXPECT_GT(cold.persistent_stored, 0u);
  EXPECT_TRUE(
      std::filesystem::exists(PersistentSimulationCache(nested).file_path()));
}

}  // namespace
}  // namespace ddtr::core
