// Parallel exploration engine: ThreadPool/parallel_for mechanics,
// SimulationCache hit/miss accounting, and the determinism contract —
// explore() with jobs=4 must produce records, survivors and Pareto sets
// identical to jobs=1 on the URL and DRR case studies, and the simulation
// cache must make step 2 free for the representative scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "api/ddtr.h"
#include "core/simulation_cache.h"
#include "support/thread_pool.h"

namespace ddtr::core {
namespace {

// Short traces keep each of the ~100 step-1 simulations cheap.
CaseStudyOptions tiny_options() {
  CaseStudyOptions options;
  options.route_packets = 200;
  options.url_packets = 200;
  options.ipchains_packets = 200;
  options.drr_packets = 200;
  return options;
}

void expect_reports_identical(const ExplorationReport& serial,
                              const ExplorationReport& parallel) {
  // Byte-identical logs (exact doubles included)...
  EXPECT_EQ(serial.serialized_records(), parallel.serialized_records());
  // ...identical survivor combinations, in the same order...
  EXPECT_EQ(serial.survivors, parallel.survivors);
  // ...and an identical final Pareto-optimal set.
  EXPECT_EQ(serial.pareto_optimal, parallel.pareto_optimal);
  EXPECT_EQ(serial.step1_simulations, parallel.step1_simulations);
  EXPECT_EQ(serial.step2_simulations, parallel.step2_simulations);
  ASSERT_EQ(serial.aggregated.size(), parallel.aggregated.size());
  for (std::size_t i = 0; i < serial.aggregated.size(); ++i) {
    EXPECT_EQ(serial.aggregated[i].metrics.energy_mj,
              parallel.aggregated[i].metrics.energy_mj);
    EXPECT_EQ(serial.aggregated[i].metrics.time_s,
              parallel.aggregated[i].metrics.time_s);
    EXPECT_EQ(serial.aggregated[i].metrics.accesses,
              parallel.aggregated[i].metrics.accesses);
    EXPECT_EQ(serial.aggregated[i].metrics.footprint_bytes,
              parallel.aggregated[i].metrics.footprint_bytes);
  }
}

ExplorationReport explore_with_jobs(const CaseStudy& study,
                                    std::size_t jobs) {
  ExplorationOptions options;
  options.jobs = jobs;
  const ExplorationEngine engine(make_paper_energy_model(), options);
  return engine.explore(study);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  support::parallel_for(pool, counts.size(),
                        [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> order;  // unsynchronized: only legal because inline
  support::parallel_for(pool, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelMapWritesIndexAddressedSlots) {
  support::ThreadPool pool(3);
  const std::vector<std::size_t> squares =
      support::parallel_map<std::size_t>(
          pool, 64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 64u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPool, PropagatesBodyException) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      support::parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("lane failure");
                              }
                            }),
      std::runtime_error);
}

TEST(ThreadPool, ResolveJobsMapsZeroToHardware) {
  EXPECT_GE(support::ThreadPool::resolve_jobs(0), 1u);
  EXPECT_EQ(support::ThreadPool::resolve_jobs(3), 3u);
}

TEST(SimulationCache, CountsHitsAndMisses) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  const Scenario& scenario = study.scenarios.front();
  const energy::EnergyModel model = make_paper_energy_model();
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kSll});

  SimulationCache cache;
  const SimulationRecord first = cache.get_or_simulate(scenario, combo, model);
  const SimulationRecord second =
      cache.get_or_simulate(scenario, combo, model);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(first.metrics.energy_mj, second.metrics.energy_mj);
  EXPECT_EQ(first.metrics.accesses, second.metrics.accesses);

  // A different combination on the same scenario misses...
  const ddt::DdtCombination other({ddt::DdtKind::kDll, ddt::DdtKind::kSll});
  cache.get_or_simulate(scenario, other, model);
  EXPECT_EQ(cache.stats().misses, 2u);
  // ...and so does the same combination on a different scenario.
  cache.get_or_simulate(study.scenarios.back(), combo, model);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.25);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SimulationCache, FindDoesNotSimulate) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kArray});
  const energy::EnergyModel model = make_paper_energy_model();
  const Scenario& scenario = study.scenarios.front();
  SimulationCache cache;
  EXPECT_FALSE(cache.find(scenario, combo, model).has_value());
  cache.insert(SimulationCache::key_of(scenario, combo, model),
               simulate(scenario, combo, model));
  EXPECT_TRUE(cache.find(scenario, combo, model).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ParallelExplorer, UrlParallelMatchesSerial) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  study.scenarios.resize(2);  // keep the single-core test budget small
  expect_reports_identical(explore_with_jobs(study, 1),
                           explore_with_jobs(study, 4));
}

TEST(ParallelExplorer, DrrParallelMatchesSerial) {
  CaseStudy study = api::registry().make_study("drr", tiny_options());
  study.scenarios.resize(2);
  expect_reports_identical(explore_with_jobs(study, 1),
                           explore_with_jobs(study, 4));
}

TEST(ParallelExplorer, GreedyPolicyParallelMatchesSerial) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  study.scenarios.resize(2);
  ExplorationOptions options;
  options.step1_policy = Step1Policy::kGreedyPerSlot;
  options.jobs = 1;
  const ExplorationEngine serial(make_paper_energy_model(), options);
  options.jobs = 4;
  const ExplorationEngine parallel(make_paper_energy_model(), options);
  expect_reports_identical(serial.explore(study), parallel.explore(study));
}

TEST(ParallelExplorer, CacheMakesRepresentativeScenarioFreeInStep2) {
  CaseStudy study = api::registry().make_study("url", tiny_options());
  study.scenarios.resize(2);
  const ExplorationReport report = explore_with_jobs(study, 2);

  // Step 1 executed everything (empty cache)...
  EXPECT_EQ(report.step1_executed_simulations, report.step1_simulations);
  // ...but every survivor on the representative scenario is a step-1
  // replay, so step 2 only executes the OTHER scenarios' simulations.
  EXPECT_EQ(report.step2_executed_simulations,
            report.step2_simulations - report.survivors.size());
  EXPECT_GE(report.cache_hits, report.survivors.size());
  EXPECT_LT(report.executed_simulations(), report.reduced_simulations());

  // The memoized step-2 records are still exactly the simulated ones.
  ExplorationOptions options;
  options.jobs = 2;
  options.memoize_simulations = false;
  const ExplorationEngine uncached(make_paper_energy_model(), options);
  const ExplorationReport raw = uncached.explore(study);
  EXPECT_EQ(raw.step2_executed_simulations, raw.step2_simulations);
  EXPECT_EQ(raw.serialized_records(), report.serialized_records());
}

}  // namespace
}  // namespace ddtr::core
