// Access-count and footprint characteristics that drive the whole
// exploration: arrays must be cheap to index, lists cheap to edit at the
// front, roving pointers must pay off under sequential access, doubly
// linked variants must exploit the nearer end, unrolled lists must
// amortize pointer overhead. If these inequalities break, every Pareto
// result downstream is meaningless.
#include <gtest/gtest.h>

#include <memory>

#include "ddt/factory.h"

namespace ddtr {
namespace {

struct Rec {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// Accesses charged by `fn` on a fresh container of `kind` pre-filled with
// `prefill` records.
template <typename Fn>
std::uint64_t accesses_for(ddt::DdtKind kind, std::size_t prefill, Fn&& fn) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  for (std::size_t i = 0; i < prefill; ++i) c->push_back({i, i});
  const std::uint64_t before = profile.counters().accesses();
  fn(*c);
  return profile.counters().accesses() - before;
}

std::uint64_t peak_footprint(ddt::DdtKind kind, std::size_t n) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  for (std::size_t i = 0; i < n; ++i) c->push_back({i, i});
  return profile.counters().peak_bytes;
}

constexpr std::size_t kN = 512;

TEST(DdtAccounting, ArrayRandomGetIsConstant) {
  const auto cost_at = [](std::size_t idx) {
    return accesses_for(ddt::DdtKind::kArray, kN,
                        [idx](auto& c) { c.get(idx); });
  };
  EXPECT_EQ(cost_at(0), cost_at(kN - 1));
  EXPECT_EQ(cost_at(kN / 2), 1u);
}

TEST(DdtAccounting, SllGetGrowsLinearlyWithIndex) {
  const auto cost_at = [](std::size_t idx) {
    return accesses_for(ddt::DdtKind::kSll, kN,
                        [idx](auto& c) { c.get(idx); });
  };
  EXPECT_GT(cost_at(kN - 1), cost_at(kN / 2));
  EXPECT_GT(cost_at(kN / 2), cost_at(8));
  // Hop accounting: reaching index i costs i+1 pointer reads + 1 record.
  EXPECT_EQ(cost_at(10), 12u);
}

TEST(DdtAccounting, ArrayGetFarCheaperThanSllGetAtHighIndex) {
  const auto array_cost = accesses_for(ddt::DdtKind::kArray, kN, [](auto& c) {
    for (std::size_t i = 0; i < kN; ++i) c.get(i);
  });
  const auto sll_cost = accesses_for(ddt::DdtKind::kSll, kN, [](auto& c) {
    for (std::size_t i = 0; i < kN; ++i) c.get(i);
  });
  EXPECT_GT(sll_cost, array_cost * 20);
}

TEST(DdtAccounting, DllWalksFromNearerEnd) {
  const auto near_tail = accesses_for(ddt::DdtKind::kDll, kN, [](auto& c) {
    c.get(kN - 2);
  });
  const auto sll_near_tail = accesses_for(
      ddt::DdtKind::kSll, kN, [](auto& c) { c.get(kN - 2); });
  EXPECT_LT(near_tail, sll_near_tail / 10);
}

TEST(DdtAccounting, RovingMakesSequentialGetsConstant) {
  const auto roving = accesses_for(ddt::DdtKind::kSllRoving, kN, [](auto& c) {
    for (std::size_t i = 0; i < kN; ++i) c.get(i);
  });
  const auto plain = accesses_for(ddt::DdtKind::kSll, kN, [](auto& c) {
    for (std::size_t i = 0; i < kN; ++i) c.get(i);
  });
  // Sequential scan via roving is O(n); via plain SLL it is O(n^2).
  EXPECT_LT(roving, plain / 50);
}

TEST(DdtAccounting, RovingResumeAfterFindIsCheap) {
  // find_if leaves the roving cache at the match; the following get/set
  // must not re-traverse.
  const auto resume = accesses_for(
      ddt::DdtKind::kSllRoving, kN, [](auto& c) {
        const std::size_t idx =
            c.find_if([](const Rec& r) { return r.a == kN - 10; });
        c.get(idx);
      });
  const auto no_roving = accesses_for(
      ddt::DdtKind::kSll, kN, [](auto& c) {
        const std::size_t idx =
            c.find_if([](const Rec& r) { return r.a == kN - 10; });
        c.get(idx);
      });
  EXPECT_LT(resume, no_roving * 3 / 4);
}

TEST(DdtAccounting, DllRovingWalksBackwardFromCache) {
  const auto cost = accesses_for(ddt::DdtKind::kDllRoving, kN, [](auto& c) {
    c.get(kN / 2);      // park the cache mid-list
    c.get(kN / 2 - 1);  // one step back
  });
  // Both reads together should cost far less than two head walks.
  EXPECT_LT(cost, kN);
}

TEST(DdtAccounting, ChunkedListHopsLessThanPlainList) {
  const auto chunked = accesses_for(
      ddt::DdtKind::kSllOfArrays, kN, [](auto& c) { c.get(kN - 1); });
  const auto plain = accesses_for(ddt::DdtKind::kSll, kN,
                                  [](auto& c) { c.get(kN - 1); });
  EXPECT_LT(chunked, plain / 4);
}

TEST(DdtAccounting, ArrayMiddleInsertDearerThanSllMiddleInsert) {
  // Moving half the records (32 B each) vs walking pointers: the byte
  // traffic tells the story even when access counts are close.
  prof::MemoryProfile array_profile;
  {
    auto c = ddt::make_container<Rec>(ddt::DdtKind::kArray, array_profile);
    for (std::size_t i = 0; i < kN; ++i) c->push_back({i, i});
    const auto before = array_profile.counters();
    c->insert(4, {0, 0});
    EXPECT_GT(array_profile.counters().bytes_written - before.bytes_written,
              (kN - 8) * sizeof(Rec));
  }
  const auto sll_front = accesses_for(ddt::DdtKind::kSll, kN, [](auto& c) {
    c.insert(4, {0, 0});
  });
  EXPECT_LT(sll_front, 16u);
}

TEST(DdtAccounting, EraseFrontCheapForListsDearForArrays) {
  const auto sll = accesses_for(ddt::DdtKind::kSll, kN,
                                [](auto& c) { c.erase(0); });
  const auto array = accesses_for(ddt::DdtKind::kArray, kN,
                                  [](auto& c) { c.erase(0); });
  EXPECT_LT(sll, 8u);
  EXPECT_GT(array, kN);
}

TEST(DdtAccounting, FootprintOrdering) {
  const auto array = peak_footprint(ddt::DdtKind::kArray, kN);
  const auto sll = peak_footprint(ddt::DdtKind::kSll, kN);
  const auto dll = peak_footprint(ddt::DdtKind::kDll, kN);
  const auto chunked = peak_footprint(ddt::DdtKind::kSllOfArrays, kN);
  // Per-node headers make lists fatter than the array even with the
  // array's doubling slack; DLL is fatter than SLL; chunking amortizes.
  EXPECT_GT(sll, array);
  EXPECT_GT(dll, sll);
  EXPECT_LT(chunked, sll);
}

TEST(DdtAccounting, ArrayOfPointersMovesOnlyPointers) {
  prof::MemoryProfile arp;
  {
    auto c = ddt::make_container<Rec>(ddt::DdtKind::kArrayOfPointers, arp);
    // kN + 1 so the following insert does not land on a capacity boundary
    // (growth reallocation would legitimately copy every pointer).
    for (std::size_t i = 0; i < kN + 1; ++i) c->push_back({i, i});
    const auto before = arp.counters();
    c->insert(0, {0, 0});
    const auto moved_bytes =
        arp.counters().bytes_written - before.bytes_written;
    // Pointer moves (8 B) + one record write, not record-sized moves.
    EXPECT_LT(moved_bytes,
              (kN + 2) * ddt::kPointerBytes + 2 * sizeof(Rec) + 64);
  }
}

TEST(DdtAccounting, ChunkedAllocatesFewerBlocksThanSll) {
  // Under the heap policy every list node is its own allocation, so the
  // classic per-block comparison holds: one allocation per SLL record vs
  // one per unrolled chunk.
  prof::MemoryProfile sll_profile;
  prof::MemoryProfile chunked_profile;
  {
    auto a = ddt::make_container<Rec>(ddt::DdtKind::kSll, sll_profile,
                                      nullptr, support::AllocPolicy::kHeap);
    auto b = ddt::make_container<Rec>(ddt::DdtKind::kSllOfArrays,
                                      chunked_profile, nullptr,
                                      support::AllocPolicy::kHeap);
    for (std::size_t i = 0; i < kN; ++i) {
      a->push_back({i, i});
      b->push_back({i, i});
    }
  }
  EXPECT_GT(sll_profile.counters().allocations,
            chunked_profile.counters().allocations * 8);
}

TEST(DdtAccounting, ArenaAmortizesListNodeAllocations) {
  // The arena pool batches node storage into doubling chunks, so the same
  // workload performs an order of magnitude fewer allocator calls than the
  // per-node heap policy.
  prof::MemoryProfile heap_profile;
  prof::MemoryProfile arena_profile;
  {
    auto a = ddt::make_container<Rec>(ddt::DdtKind::kSll, heap_profile,
                                      nullptr, support::AllocPolicy::kHeap);
    auto b = ddt::make_container<Rec>(ddt::DdtKind::kSll, arena_profile,
                                      nullptr, support::AllocPolicy::kArena);
    for (std::size_t i = 0; i < kN; ++i) {
      a->push_back({i, i});
      b->push_back({i, i});
    }
  }
  EXPECT_EQ(heap_profile.counters().allocations, kN);
  EXPECT_GT(heap_profile.counters().allocations,
            arena_profile.counters().allocations * 8);
}

TEST(DdtAccounting, WritesAndReadsAreSeparated) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(ddt::DdtKind::kArray, profile);
  c->push_back({1, 1});
  EXPECT_EQ(profile.counters().reads, 0u);
  EXPECT_GE(profile.counters().writes, 1u);
  c->get(0);
  EXPECT_EQ(profile.counters().reads, 1u);
}

}  // namespace
}  // namespace ddtr
