# End-to-end smoke of the ddtr CLI, run as a ctest:
#   ddtr apps                                  -> lists the registry
#   ddtr explore --app url --scale 0.05 --log f -> writes a result log
#   ddtr pareto --log f                         -> post-processes it
# plus the flag-parsing contract: a trailing --flag with no value must be
# an error, not a silently swallowed positional.
#
# Invoked by CMakeLists.txt as:
#   cmake -DDDTR_CLI=<path-to-ddtr> -DWORK_DIR=<scratch-dir> -P cli_smoke.cmake

if(NOT DEFINED DDTR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_smoke.cmake needs -DDDTR_CLI=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(LOG_FILE "${WORK_DIR}/url.log")

function(run_cli expect_success out_var)
  execute_process(
      COMMAND ${DDTR_CLI} ${ARGN}
      RESULT_VARIABLE result
      OUTPUT_VARIABLE output
      ERROR_VARIABLE errout)
  if(expect_success AND NOT result EQUAL 0)
    message(FATAL_ERROR
        "ddtr ${ARGN} failed (exit ${result}):\n${output}\n${errout}")
  endif()
  if(NOT expect_success AND result EQUAL 0)
    message(FATAL_ERROR
        "ddtr ${ARGN} unexpectedly succeeded:\n${output}\n${errout}")
  endif()
  set(${out_var} "${output}\n${errout}" PARENT_SCOPE)
endfunction()

# 1. The registry listing names every built-in workload.
run_cli(TRUE apps_out apps)
foreach(app route url ipchains drr)
  if(NOT apps_out MATCHES "${app}")
    message(FATAL_ERROR "'ddtr apps' does not list '${app}':\n${apps_out}")
  endif()
endforeach()

# 2. Explore a registered workload end to end, writing a result log.
# Remove any log left by a previous ctest run first, so a regression that
# stops writing the file cannot pass against stale output.
file(REMOVE "${LOG_FILE}")
run_cli(TRUE explore_out
        explore --app url --scale 0.05 --log ${LOG_FILE})
if(NOT explore_out MATCHES "Pareto-optimal combinations")
  message(FATAL_ERROR "explore output lacks a Pareto set:\n${explore_out}")
endif()
if(NOT EXISTS "${LOG_FILE}")
  message(FATAL_ERROR "explore did not write ${LOG_FILE}")
endif()

# 3. Post-process the log (the paper's "log files -> post-processing").
run_cli(TRUE pareto_out pareto --log ${LOG_FILE})
if(NOT pareto_out MATCHES "Pareto-optimal points out of")
  message(FATAL_ERROR "pareto output unexpected:\n${pareto_out}")
endif()

# 4. Valueless boolean flags work (--greedy), unknown apps and trailing
#    value-less flags are hard errors.
run_cli(TRUE greedy_out explore --app drr --scale 0.05 --greedy)
run_cli(FALSE missing_value_out explore --app)
if(NOT missing_value_out MATCHES "requires a value")
  message(FATAL_ERROR
      "trailing --app did not report a missing value:\n${missing_value_out}")
endif()
run_cli(FALSE unknown_app_out explore --app not-registered)
if(NOT unknown_app_out MATCHES "unknown app")
  message(FATAL_ERROR
      "unknown app not reported:\n${unknown_app_out}")
endif()

# 5. Malformed numeric flag values are clean usage errors, not uncaught
#    std::invalid_argument crashes — for every numeric flag.
run_cli(FALSE bad_scale_out explore --app url --scale abc)
if(NOT bad_scale_out MATCHES "expects a number")
  message(FATAL_ERROR "bad --scale not reported:\n${bad_scale_out}")
endif()
run_cli(FALSE bad_cap_out explore --app url --scale 0.05 --survivor-cap 0.2x)
if(NOT bad_cap_out MATCHES "expects a number")
  message(FATAL_ERROR "bad --survivor-cap not reported:\n${bad_cap_out}")
endif()
run_cli(FALSE bad_jobs_out explore --app url --scale 0.05 --jobs -1)
if(NOT bad_jobs_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "bad --jobs not reported:\n${bad_jobs_out}")
endif()
run_cli(FALSE bad_packets_out tracegen --preset nlanr-campus --packets 10x)
if(NOT bad_packets_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "bad --packets not reported:\n${bad_packets_out}")
endif()
run_cli(FALSE bad_offset_out tracegen --preset nlanr-campus --seed-offset z)
if(NOT bad_offset_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "bad --seed-offset not reported:\n${bad_offset_out}")
endif()

# 6. Persistent simulation cache: a warm rerun executes ZERO simulations
#    and writes a byte-identical result log.
set(CACHE_DIR "${WORK_DIR}/sim_cache")
file(REMOVE_RECURSE "${CACHE_DIR}")
set(COLD_LOG "${WORK_DIR}/cache_cold.log")
set(WARM_LOG "${WORK_DIR}/cache_warm.log")
run_cli(TRUE cache_cold_out
        explore --app url --scale 0.05 --cache-dir ${CACHE_DIR}
        --log ${COLD_LOG})
if(NOT cache_cold_out MATCHES "persistent cache: +loaded 0, stored [1-9]")
  message(FATAL_ERROR
      "cold run did not store cache records:\n${cache_cold_out}")
endif()
run_cli(TRUE cache_warm_out
        explore --app url --scale 0.05 --cache-dir ${CACHE_DIR}
        --log ${WARM_LOG})
if(NOT cache_warm_out MATCHES "executed simulations: +0 ")
  message(FATAL_ERROR
      "warm rerun executed simulations:\n${cache_warm_out}")
endif()
file(READ "${COLD_LOG}" cold_log_bytes)
file(READ "${WARM_LOG}" warm_log_bytes)
if(NOT cold_log_bytes STREQUAL warm_log_bytes)
  message(FATAL_ERROR
      "warm-cache rerun log differs from the cold run's")
endif()

# 7. Distributed exploration, manual recipe: two shard workers sharing a
#    cache dir write disjoint SEGMENT files (never the shared file — the
#    concurrent-writer fix), `ddtr cache` inspects/merges them, and the
#    coordinator pass replays everything: 0 executed simulations and a
#    result log byte-identical to the plain serial run's.
set(DIST_DIR "${WORK_DIR}/dist_cache")
file(REMOVE_RECURSE "${DIST_DIR}")
set(SERIAL_LOG "${WORK_DIR}/dist_serial.log")
run_cli(TRUE dist_serial_out
        explore --app url --scale 0.05 --log ${SERIAL_LOG})
run_cli(TRUE shard0_out
        explore --app url --scale 0.05 --cache-dir ${DIST_DIR} --shard 0/2)
if(NOT shard0_out MATCHES "ddtr shard 0/2")
  message(FATAL_ERROR "shard worker summary missing:\n${shard0_out}")
endif()
run_cli(TRUE shard1_out
        explore --app url --scale 0.05 --cache-dir ${DIST_DIR} --shard 1/2)
file(GLOB dist_segments "${DIST_DIR}/sim_cache.*.seg")
list(LENGTH dist_segments dist_segment_count)
if(NOT dist_segment_count EQUAL 2)
  message(FATAL_ERROR
      "expected 2 segment files, found ${dist_segment_count}")
endif()
if(EXISTS "${DIST_DIR}/sim_cache.ddtr")
  message(FATAL_ERROR "shard workers wrote the shared cache file")
endif()

run_cli(TRUE cache_stats_out cache stats ${DIST_DIR})
if(NOT cache_stats_out MATCHES "entries")
  message(FATAL_ERROR "cache stats output unexpected:\n${cache_stats_out}")
endif()
run_cli(TRUE cache_verify_out cache verify ${DIST_DIR})
if(NOT cache_verify_out MATCHES "cache verify: OK")
  message(FATAL_ERROR "cache verify failed:\n${cache_verify_out}")
endif()
run_cli(TRUE cache_merge_out cache merge ${DIST_DIR})
if(NOT cache_merge_out MATCHES "merged 2 segments")
  message(FATAL_ERROR "cache merge output unexpected:\n${cache_merge_out}")
endif()
file(GLOB dist_segments_after "${DIST_DIR}/sim_cache.*.seg")
if(dist_segments_after)
  message(FATAL_ERROR "segments left behind after merge")
endif()

set(DIST_LOG "${WORK_DIR}/dist_coordinator.log")
run_cli(TRUE dist_coord_out
        explore --app url --scale 0.05 --cache-dir ${DIST_DIR}
        --log ${DIST_LOG})
if(NOT dist_coord_out MATCHES "executed simulations: +0 ")
  message(FATAL_ERROR
      "coordinator pass executed simulations:\n${dist_coord_out}")
endif()
file(READ "${SERIAL_LOG}" dist_serial_bytes)
file(READ "${DIST_LOG}" dist_coord_bytes)
if(NOT dist_serial_bytes STREQUAL dist_coord_bytes)
  message(FATAL_ERROR "sharded+merged log differs from the serial run's")
endif()

# 8. Distributed exploration, one-command coordinator: --workers 2
#    fork/execs the shard workers, merges, and replays.
set(WORKERS_DIR "${WORK_DIR}/workers_cache")
file(REMOVE_RECURSE "${WORKERS_DIR}")
set(WORKERS_LOG "${WORK_DIR}/workers.log")
run_cli(TRUE workers_out
        explore --app url --scale 0.05 --cache-dir ${WORKERS_DIR}
        --workers 2 --log ${WORKERS_LOG})
if(NOT workers_out MATCHES "distributed: 2 workers, merged 2 segments")
  message(FATAL_ERROR "coordinator summary missing:\n${workers_out}")
endif()
if(NOT workers_out MATCHES "executed simulations: +0 ")
  message(FATAL_ERROR
      "--workers coordinator executed simulations:\n${workers_out}")
endif()
file(READ "${WORKERS_LOG}" workers_bytes)
if(NOT dist_serial_bytes STREQUAL workers_bytes)
  message(FATAL_ERROR "--workers log differs from the serial run's")
endif()

# 9. Distributed flag contract: --shard/--workers need --cache-dir, are
#    mutually exclusive, and malformed --shard values are usage errors.
run_cli(FALSE shard_nocache_out explore --app url --shard 0/2)
if(NOT shard_nocache_out MATCHES "requires --cache-dir")
  message(FATAL_ERROR
      "--shard without --cache-dir not reported:\n${shard_nocache_out}")
endif()
run_cli(FALSE shard_bad_out
        explore --app url --cache-dir ${DIST_DIR} --shard 2x)
if(NOT shard_bad_out MATCHES "expects I/N")
  message(FATAL_ERROR "bad --shard not reported:\n${shard_bad_out}")
endif()
run_cli(FALSE shard_range_out
        explore --app url --cache-dir ${DIST_DIR} --shard 2/2)
if(NOT shard_range_out MATCHES "must be < N")
  message(FATAL_ERROR
      "out-of-range --shard not reported:\n${shard_range_out}")
endif()
run_cli(FALSE shard_workers_out
        explore --app url --cache-dir ${DIST_DIR} --shard 0/2 --workers 2)
if(NOT shard_workers_out MATCHES "mutually exclusive")
  message(FATAL_ERROR
      "--shard with --workers not reported:\n${shard_workers_out}")
endif()
run_cli(FALSE cache_badop_out cache frobnicate ${DIST_DIR})
if(NOT cache_badop_out MATCHES "unknown cache operation")
  message(FATAL_ERROR
      "unknown cache op not reported:\n${cache_badop_out}")
endif()

# 10. `ddtr cache gc` prunes stale segments and markers — never the main
#     file — and validates --max-age-s.
set(GC_DIR "${WORK_DIR}/gc_cache")
file(REMOVE_RECURSE "${GC_DIR}")
# Shard first (writes a segment into the empty dir), then a plain run
# (replays the segment, stores the remainder into the main file) — so the
# directory holds both a segment and a main file for gc to discriminate.
run_cli(TRUE gc_seed_seg_out
        explore --app url --scale 0.05 --cache-dir ${GC_DIR} --shard 0/2)
run_cli(TRUE gc_seed_main_out
        explore --app url --scale 0.05 --cache-dir ${GC_DIR})
file(GLOB gc_segments "${GC_DIR}/sim_cache.*.seg")
list(LENGTH gc_segments gc_segment_count)
if(NOT gc_segment_count EQUAL 1)
  message(FATAL_ERROR "expected 1 segment before gc, found ${gc_segment_count}")
endif()
# A generous age cap keeps everything...
run_cli(TRUE gc_keep_out cache gc ${GC_DIR} --max-age-s 1000000)
if(NOT gc_keep_out MATCHES "removed 0 segments")
  message(FATAL_ERROR "gc with generous cap pruned files:\n${gc_keep_out}")
endif()
# ...a zero cap prunes every segment, but never the main cache file.
run_cli(TRUE gc_out cache gc ${GC_DIR} --max-age-s 0)
if(NOT gc_out MATCHES "removed 1 segment ")
  message(FATAL_ERROR "gc did not prune the stale segment:\n${gc_out}")
endif()
file(GLOB gc_segments_after "${GC_DIR}/sim_cache.*.seg")
if(gc_segments_after)
  message(FATAL_ERROR "segments survived gc --max-age-s 0")
endif()
if(NOT EXISTS "${GC_DIR}/sim_cache.ddtr")
  message(FATAL_ERROR "gc removed the main cache file")
endif()
run_cli(FALSE gc_bad_age_out cache gc ${GC_DIR} --max-age-s abc)
if(NOT gc_bad_age_out MATCHES "expects a number")
  message(FATAL_ERROR "bad --max-age-s not reported:\n${gc_bad_age_out}")
endif()
run_cli(FALSE gc_no_age_out cache gc ${GC_DIR})
if(NOT gc_no_age_out MATCHES "missing required flag")
  message(FATAL_ERROR "missing --max-age-s not reported:\n${gc_no_age_out}")
endif()

# 11. `ddtr cache stats` reports the barrier-marker inventory.
run_cli(TRUE stats_markers_out cache stats ${GC_DIR})
if(NOT stats_markers_out MATCHES "barrier marker")
  message(FATAL_ERROR
      "cache stats lacks the marker inventory:\n${stats_markers_out}")
endif()

# 12. Serve-daemon flag contract, daemonless: bounded numeric knobs and
#     required --socket values must fail fast, before any connect.
run_cli(FALSE bad_timeout_out
        explore --app url --scale 0.05 --barrier-timeout 0)
if(NOT bad_timeout_out MATCHES "barrier-timeout expects seconds")
  message(FATAL_ERROR
      "out-of-range --barrier-timeout not reported:\n${bad_timeout_out}")
endif()
run_cli(FALSE bad_every_out
        submit --socket ${WORK_DIR}/nope.sock --app url --every inf)
if(NOT bad_every_out MATCHES "every expects seconds")
  message(FATAL_ERROR "bad --every not reported:\n${bad_every_out}")
endif()
run_cli(FALSE serve_nosocket_out serve)
if(NOT serve_nosocket_out MATCHES "missing required flag --socket")
  message(FATAL_ERROR
      "serve without --socket not reported:\n${serve_nosocket_out}")
endif()
run_cli(FALSE submit_socketvalue_out submit --app url --socket)
if(NOT submit_socketvalue_out MATCHES "requires a value")
  message(FATAL_ERROR
      "valueless --socket not reported:\n${submit_socketvalue_out}")
endif()
run_cli(FALSE submit_noconnect_out
        submit --socket ${WORK_DIR}/nope.sock --app url)
if(NOT submit_noconnect_out MATCHES "cannot connect")
  message(FATAL_ERROR
      "dead-socket submit not reported:\n${submit_noconnect_out}")
endif()

message(STATUS "cli_smoke: all CLI flows passed")
