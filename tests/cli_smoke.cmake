# End-to-end smoke of the ddtr CLI, run as a ctest:
#   ddtr apps                                  -> lists the registry
#   ddtr explore --app url --scale 0.05 --log f -> writes a result log
#   ddtr pareto --log f                         -> post-processes it
# plus the flag-parsing contract: a trailing --flag with no value must be
# an error, not a silently swallowed positional.
#
# Invoked by CMakeLists.txt as:
#   cmake -DDDTR_CLI=<path-to-ddtr> -DWORK_DIR=<scratch-dir> -P cli_smoke.cmake

if(NOT DEFINED DDTR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_smoke.cmake needs -DDDTR_CLI=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(LOG_FILE "${WORK_DIR}/url.log")

function(run_cli expect_success out_var)
  execute_process(
      COMMAND ${DDTR_CLI} ${ARGN}
      RESULT_VARIABLE result
      OUTPUT_VARIABLE output
      ERROR_VARIABLE errout)
  if(expect_success AND NOT result EQUAL 0)
    message(FATAL_ERROR
        "ddtr ${ARGN} failed (exit ${result}):\n${output}\n${errout}")
  endif()
  if(NOT expect_success AND result EQUAL 0)
    message(FATAL_ERROR
        "ddtr ${ARGN} unexpectedly succeeded:\n${output}\n${errout}")
  endif()
  set(${out_var} "${output}\n${errout}" PARENT_SCOPE)
endfunction()

# 1. The registry listing names every built-in workload.
run_cli(TRUE apps_out apps)
foreach(app route url ipchains drr)
  if(NOT apps_out MATCHES "${app}")
    message(FATAL_ERROR "'ddtr apps' does not list '${app}':\n${apps_out}")
  endif()
endforeach()

# 2. Explore a registered workload end to end, writing a result log.
# Remove any log left by a previous ctest run first, so a regression that
# stops writing the file cannot pass against stale output.
file(REMOVE "${LOG_FILE}")
run_cli(TRUE explore_out
        explore --app url --scale 0.05 --log ${LOG_FILE})
if(NOT explore_out MATCHES "Pareto-optimal combinations")
  message(FATAL_ERROR "explore output lacks a Pareto set:\n${explore_out}")
endif()
if(NOT EXISTS "${LOG_FILE}")
  message(FATAL_ERROR "explore did not write ${LOG_FILE}")
endif()

# 3. Post-process the log (the paper's "log files -> post-processing").
run_cli(TRUE pareto_out pareto --log ${LOG_FILE})
if(NOT pareto_out MATCHES "Pareto-optimal points out of")
  message(FATAL_ERROR "pareto output unexpected:\n${pareto_out}")
endif()

# 4. Valueless boolean flags work (--greedy), unknown apps and trailing
#    value-less flags are hard errors.
run_cli(TRUE greedy_out explore --app drr --scale 0.05 --greedy)
run_cli(FALSE missing_value_out explore --app)
if(NOT missing_value_out MATCHES "requires a value")
  message(FATAL_ERROR
      "trailing --app did not report a missing value:\n${missing_value_out}")
endif()
run_cli(FALSE unknown_app_out explore --app not-registered)
if(NOT unknown_app_out MATCHES "unknown app")
  message(FATAL_ERROR
      "unknown app not reported:\n${unknown_app_out}")
endif()

# 5. Malformed numeric flag values are clean usage errors, not uncaught
#    std::invalid_argument crashes — for every numeric flag.
run_cli(FALSE bad_scale_out explore --app url --scale abc)
if(NOT bad_scale_out MATCHES "expects a number")
  message(FATAL_ERROR "bad --scale not reported:\n${bad_scale_out}")
endif()
run_cli(FALSE bad_cap_out explore --app url --scale 0.05 --survivor-cap 0.2x)
if(NOT bad_cap_out MATCHES "expects a number")
  message(FATAL_ERROR "bad --survivor-cap not reported:\n${bad_cap_out}")
endif()
run_cli(FALSE bad_jobs_out explore --app url --scale 0.05 --jobs -1)
if(NOT bad_jobs_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "bad --jobs not reported:\n${bad_jobs_out}")
endif()
run_cli(FALSE bad_packets_out tracegen --preset nlanr-campus --packets 10x)
if(NOT bad_packets_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "bad --packets not reported:\n${bad_packets_out}")
endif()
run_cli(FALSE bad_offset_out tracegen --preset nlanr-campus --seed-offset z)
if(NOT bad_offset_out MATCHES "expects a non-negative integer")
  message(FATAL_ERROR "bad --seed-offset not reported:\n${bad_offset_out}")
endif()

# 6. Persistent simulation cache: a warm rerun executes ZERO simulations
#    and writes a byte-identical result log.
set(CACHE_DIR "${WORK_DIR}/sim_cache")
file(REMOVE_RECURSE "${CACHE_DIR}")
set(COLD_LOG "${WORK_DIR}/cache_cold.log")
set(WARM_LOG "${WORK_DIR}/cache_warm.log")
run_cli(TRUE cache_cold_out
        explore --app url --scale 0.05 --cache-dir ${CACHE_DIR}
        --log ${COLD_LOG})
if(NOT cache_cold_out MATCHES "persistent cache: +loaded 0, stored [1-9]")
  message(FATAL_ERROR
      "cold run did not store cache records:\n${cache_cold_out}")
endif()
run_cli(TRUE cache_warm_out
        explore --app url --scale 0.05 --cache-dir ${CACHE_DIR}
        --log ${WARM_LOG})
if(NOT cache_warm_out MATCHES "executed simulations: +0 ")
  message(FATAL_ERROR
      "warm rerun executed simulations:\n${cache_warm_out}")
endif()
file(READ "${COLD_LOG}" cold_log_bytes)
file(READ "${WARM_LOG}" warm_log_bytes)
if(NOT cold_log_bytes STREQUAL warm_log_bytes)
  message(FATAL_ERROR
      "warm-cache rerun log differs from the cold run's")
endif()

message(STATUS "cli_smoke: all CLI flows passed")
