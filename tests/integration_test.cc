// End-to-end integration: the full three-step methodology on scaled-down
// versions of all four paper case studies. Checks the paper's qualitative
// claims: big simulation-count reduction, small Pareto-optimal sets, and
// the refined DDTs beating the original all-SLL NetBench implementation.
#include <gtest/gtest.h>

#include "api/ddtr.h"

namespace ddtr::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  // Every registered workload (registration order = Table 1 order),
  // driven through the public registry + exploration-session API.
  static const std::vector<ExplorationReport>& reports() {
    static const std::vector<ExplorationReport>* cached = [] {
      auto* out = new std::vector<ExplorationReport>;
      for (const std::string& name : api::registry().names()) {
        api::Exploration session(api::registry().make_study(
            name, CaseStudyOptions{}.scaled(0.08)));
        out->push_back(session.run());
      }
      return out;
    }();
    return *cached;
  }
};

TEST_F(IntegrationTest, ExhaustiveCountsMatchPaperTable1) {
  ASSERT_EQ(reports().size(), 4u);
  EXPECT_EQ(reports()[0].app_name, "Route");
  // Widened lattice (accounting v2): 11 unkeyed kinds per positional slot,
  // 12 (including HASH) per keyed slot.
  EXPECT_EQ(reports()[0].exhaustive_simulations, 1694u);  // 11^2 x 14
  EXPECT_EQ(reports()[1].app_name, "URL");
  EXPECT_EQ(reports()[1].exhaustive_simulations, 605u);  // 11^2 x 5
  EXPECT_EQ(reports()[2].app_name, "IPchains");
  EXPECT_EQ(reports()[2].exhaustive_simulations, 2772u);  // 11x12 x 21
  EXPECT_EQ(reports()[3].app_name, "DRR");
  EXPECT_EQ(reports()[3].exhaustive_simulations, 660u);  // 12x11 x 5
}

TEST_F(IntegrationTest, ReductionIsLarge) {
  // Paper: average ~80% reduction. Require at least 50% per app.
  for (const auto& report : reports()) {
    EXPECT_LT(report.reduced_simulations(),
              report.exhaustive_simulations / 2)
        << report.app_name;
  }
}

TEST_F(IntegrationTest, ParetoOptimalSetsAreSmall) {
  // Paper Table 1: 7 / 4 / 6 / 3 Pareto-optimal combinations.
  for (const auto& report : reports()) {
    EXPECT_GE(report.pareto_optimal.size(), 1u) << report.app_name;
    EXPECT_LE(report.pareto_optimal.size(), 15u) << report.app_name;
  }
}

TEST_F(IntegrationTest, RefinedBeatsOriginalSllImplementation) {
  // The original NetBench DDTs "were implemented as single linked lists";
  // the paper reports ~80% energy and ~20% time gains for URL. Require the
  // best Pareto point to beat SLL+SLL on energy for every app.
  for (const auto& report : reports()) {
    const SimulationRecord* sll = nullptr;
    for (const auto& r : report.step1_records) {
      if (r.combo.label() == "SLL+SLL") sll = &r;
    }
    ASSERT_NE(sll, nullptr) << report.app_name;
    double best_energy = sll->metrics.energy_mj;
    for (const auto& r : report.step1_records) {
      best_energy = std::min(best_energy, r.metrics.energy_mj);
    }
    EXPECT_LT(best_energy, sll->metrics.energy_mj * 0.8) << report.app_name;
  }
}

TEST_F(IntegrationTest, ParetoSetOffersRealTradeoffs) {
  // Among the final Pareto points at least one metric must vary: that is
  // what "trade-off" means. (Table 2 quantifies the spans per app.)
  for (const auto& report : reports()) {
    if (report.pareto_optimal.size() < 2) continue;
    const auto records = report.pareto_records();
    std::vector<energy::Metrics> points;
    for (const auto& r : records) points.push_back(r.metrics);
    double max_span = 0.0;
    for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
      max_span = std::max(max_span, tradeoff_span(points, m));
    }
    EXPECT_GT(max_span, 0.05) << report.app_name;
  }
}

TEST_F(IntegrationTest, OptimalCombinationVariesAcrossNetworks) {
  // Paper §3.2: "for different network configurations, the optimal DDTs
  // vary greatly for certain metrics". Check that for some metric the
  // per-scenario winner differs between scenarios in at least one case
  // study.
  std::size_t studies_with_variation = 0;
  for (const auto& report : reports()) {
    bool varies = false;
    for (std::size_t metric = 0; metric < energy::kMetricCount; ++metric) {
      std::set<std::string> winners;
      std::map<std::string, std::pair<double, std::string>> best;
      for (const auto& r : report.step2_records) {
        const auto key = r.scenario_label();
        const double v = r.metrics.as_array()[metric];
        auto it = best.find(key);
        if (it == best.end() || v < it->second.first) {
          best[key] = {v, r.combo.label()};
        }
      }
      for (const auto& [scenario, winner] : best) {
        winners.insert(winner.second);
      }
      varies |= winners.size() > 1;
    }
    if (varies) ++studies_with_variation;
  }
  EXPECT_GE(studies_with_variation, 1u);
}

TEST_F(IntegrationTest, Step2RecordsCoverAllScenarios) {
  const std::vector<std::size_t> expected_scenarios = {14, 5, 21, 5};
  for (std::size_t i = 0; i < reports().size(); ++i) {
    std::set<std::string> labels;
    for (const auto& r : reports()[i].step2_records) {
      labels.insert(r.scenario_label());
    }
    EXPECT_EQ(labels.size(), expected_scenarios[i])
        << reports()[i].app_name;
  }
}

}  // namespace
}  // namespace ddtr::core
