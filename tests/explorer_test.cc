// Exploration-engine tests on a deliberately small case study: step
// mechanics, survivor capping, aggregation arithmetic, report bookkeeping.
#include <gtest/gtest.h>

#include "apps/url/url_app.h"
#include "core/case_studies.h"
#include "core/explorer.h"
#include "core/report.h"
#include "nettrace/generator.h"
#include "nettrace/presets.h"

#include <sstream>

namespace ddtr::core {
namespace {

CaseStudy tiny_url_study(std::size_t scenario_count = 2,
                         std::size_t packets = 600) {
  CaseStudy study;
  study.name = "URL";
  study.slots = 2;
  const std::vector<std::string> presets = {"dart-berry", "dart-sudikoff",
                                            "dart-whittemore"};
  for (std::size_t i = 0; i < scenario_count; ++i) {
    net::TraceGenerator::Options options;
    options.packet_count = packets;
    Scenario scenario;
    scenario.network = presets[i % presets.size()];
    scenario.trace = std::make_shared<const net::Trace>(
        net::TraceGenerator::generate(net::network_preset(scenario.network),
                                      options));
    scenario.app = std::make_shared<apps::url::UrlApp>(
        apps::url::UrlApp::Config{16, 8, 8101});
    study.scenarios.push_back(std::move(scenario));
  }
  return study;
}

energy::EnergyModel model() { return make_paper_energy_model(); }

TEST(Simulate, ProducesPopulatedRecord) {
  const CaseStudy study = tiny_url_study(1);
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kArray, ddt::DdtKind::kSll});
  const SimulationRecord record =
      simulate(study.scenarios[0], combo, model());
  EXPECT_EQ(record.app_name, "URL");
  EXPECT_EQ(record.combo.label(), "AR+SLL");
  EXPECT_EQ(record.network, "dart-berry");
  EXPECT_GT(record.metrics.accesses, 0u);
  EXPECT_GT(record.metrics.energy_mj, 0.0);
  EXPECT_GT(record.metrics.footprint_bytes, 0u);
}

TEST(Simulate, Deterministic) {
  const CaseStudy study = tiny_url_study(1);
  const ddt::DdtCombination combo(
      {ddt::DdtKind::kDllRoving, ddt::DdtKind::kArray});
  const auto a = simulate(study.scenarios[0], combo, model());
  const auto b = simulate(study.scenarios[0], combo, model());
  EXPECT_EQ(a.metrics.accesses, b.metrics.accesses);
  EXPECT_EQ(a.metrics.energy_mj, b.metrics.energy_mj);
  EXPECT_EQ(a.metrics.footprint_bytes, b.metrics.footprint_bytes);
}

TEST(CaseStudyCounts, CombinationArithmetic) {
  const CaseStudy study = tiny_url_study(3);
  EXPECT_EQ(study.combination_count(), 121u);  // 11 unkeyed kinds per slot
  EXPECT_EQ(study.exhaustive_simulations(), 363u);
}

TEST(Explorer, Step1CoversFullFactorialSpace) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(1, 300);
  const auto records = engine.run_step1(study);
  ASSERT_EQ(records.size(), 121u);
  std::set<std::string> labels;
  for (const auto& r : records) labels.insert(r.combo.label());
  EXPECT_EQ(labels.size(), 121u);
}

TEST(Explorer, SurvivorsRespectCapAndAreNonDominatedSubset) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(1, 300);
  const auto records = engine.run_step1(study);
  const auto survivors = engine.select_survivors(records);
  EXPECT_GE(survivors.size(), 1u);
  EXPECT_LE(survivors.size(), 24u);  // 20% of 121
}

TEST(Explorer, SurvivorCapConfigurable) {
  ExplorationOptions options;
  options.survivor_cap_fraction = 0.05;
  options.champions_per_metric = 1;
  const ExplorationEngine engine(model(), options);
  const CaseStudy study = tiny_url_study(1, 300);
  const auto survivors = engine.select_survivors(engine.run_step1(study));
  EXPECT_LE(survivors.size(), 6u);  // ceil-rounded 5% of 121
}

TEST(Explorer, GreedyStep1CostsTenPerSlot) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(1, 300);
  const auto records = engine.run_step1_greedy(study);
  // Baseline + 10 non-baseline kinds per slot.
  EXPECT_EQ(records.size(), 1u + 2u * 10u);
}

TEST(Explorer, GreedySurvivorsAreCrossOfPerSlotKeepers) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(1, 300);
  const auto records = engine.run_step1_greedy(study);
  const auto survivors = engine.select_survivors_greedy(records, 2);
  EXPECT_GE(survivors.size(), 1u);
  EXPECT_LE(survivors.size(), 20u);
  for (const auto& combo : survivors) EXPECT_EQ(combo.size(), 2u);
}

TEST(Explorer, GreedyPolicyReducesStep1Simulations) {
  ExplorationOptions options;
  options.step1_policy = Step1Policy::kGreedyPerSlot;
  const ExplorationEngine greedy(model(), options);
  const ExplorationEngine exhaustive(model());
  const CaseStudy study = tiny_url_study(2, 300);
  const auto greedy_report = greedy.explore(study);
  const auto full_report = exhaustive.explore(study);
  EXPECT_LT(greedy_report.step1_simulations,
            full_report.step1_simulations / 4);
  EXPECT_LT(greedy_report.reduced_simulations(),
            full_report.reduced_simulations());
  // Quality: the greedy flow's best step-2 energy is within 25% of the
  // exhaustive flow's (slots are nearly separable in these kernels).
  const auto best_energy = [](const ExplorationReport& r) {
    double best = 1e300;
    for (const auto& rec : r.step2_records) {
      best = std::min(best, rec.metrics.energy_mj);
    }
    return best;
  };
  EXPECT_LT(best_energy(greedy_report), best_energy(full_report) * 1.25);
}

TEST(Explorer, Step2RunsSurvivorsOnEveryScenario) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(2, 300);
  const std::vector<ddt::DdtCombination> survivors = {
      ddt::DdtCombination({ddt::DdtKind::kArray, ddt::DdtKind::kArray}),
      ddt::DdtCombination({ddt::DdtKind::kSll, ddt::DdtKind::kDll}),
  };
  const auto records = engine.run_step2(study, survivors);
  ASSERT_EQ(records.size(), 4u);
  std::set<std::string> networks;
  for (const auto& r : records) networks.insert(r.network);
  EXPECT_EQ(networks.size(), 2u);
}

TEST(Explorer, AggregateAveragesAcrossScenarios) {
  const ExplorationEngine engine(model());
  std::vector<SimulationRecord> records(2);
  records[0].combo = ddt::DdtCombination({ddt::DdtKind::kArray});
  records[0].network = "a";
  records[0].metrics = {2.0, 4.0, 100, 1000};
  records[1].combo = ddt::DdtCombination({ddt::DdtKind::kArray});
  records[1].network = "b";
  records[1].metrics = {4.0, 8.0, 300, 3000};
  const auto agg = engine.aggregate(records);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_DOUBLE_EQ(agg[0].metrics.energy_mj, 3.0);
  EXPECT_DOUBLE_EQ(agg[0].metrics.time_s, 6.0);
  EXPECT_EQ(agg[0].metrics.accesses, 200u);
  EXPECT_EQ(agg[0].metrics.footprint_bytes, 2000u);
  EXPECT_EQ(agg[0].network, "<all>");
}

TEST(Explorer, FullPipelineBookkeeping) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(2, 300);
  const ExplorationReport report = engine.explore(study);

  EXPECT_EQ(report.combination_count, 121u);
  EXPECT_EQ(report.scenario_count, 2u);
  EXPECT_EQ(report.exhaustive_simulations, 242u);
  EXPECT_EQ(report.step1_simulations, 121u);
  EXPECT_EQ(report.step2_simulations, report.survivors.size() * 2);
  EXPECT_EQ(report.reduced_simulations(),
            report.step1_simulations + report.step2_simulations);
  EXPECT_LT(report.reduced_simulations(), report.exhaustive_simulations);

  // Step 3: the final set is a non-dominated subset of the aggregation.
  ASSERT_FALSE(report.pareto_optimal.empty());
  EXPECT_LE(report.pareto_optimal.size(), report.survivors.size());
  std::vector<energy::Metrics> points;
  for (const auto& r : report.aggregated) points.push_back(r.metrics);
  for (std::size_t idx : report.pareto_optimal) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      EXPECT_FALSE(j != idx && energy::dominates(points[j], points[idx]));
    }
  }
}

TEST(Explorer, ScenarioRecordsFilterByLabel) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(2, 300);
  const ExplorationReport report = engine.explore(study);
  const auto sub = report.scenario_records("dart-berry");
  EXPECT_EQ(sub.size(), report.survivors.size());
  for (const auto& r : sub) EXPECT_EQ(r.network, "dart-berry");
}

TEST(Report, CsvContainsHeaderAndRows) {
  const ExplorationEngine engine(model());
  const CaseStudy study = tiny_url_study(1, 300);
  auto records = engine.run_step1(study);
  records.resize(5);
  std::ostringstream os;
  write_records_csv(os, records);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("app,network,config,combination"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);  // header + 5
}

TEST(Report, ParetoCsvFlagsFrontPoints) {
  std::vector<SimulationRecord> records(3);
  records[0].combo = ddt::DdtCombination({ddt::DdtKind::kArray});
  records[0].metrics = {1.0, 5.0, 0, 0};
  records[1].combo = ddt::DdtCombination({ddt::DdtKind::kSll});
  records[1].metrics = {5.0, 1.0, 0, 0};
  records[2].combo = ddt::DdtCombination({ddt::DdtKind::kDll});
  records[2].metrics = {6.0, 6.0, 0, 0};  // dominated
  std::ostringstream os;
  write_pareto_csv(os, records, 0, 1);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("AR,,,1.000000,5.000000,1"), std::string::npos);
  EXPECT_NE(csv.find("SLL,,,5.000000,1.000000,1"), std::string::npos);
  EXPECT_NE(csv.find("DLL,,,6.000000,6.000000,0"), std::string::npos);
}

}  // namespace
}  // namespace ddtr::core
