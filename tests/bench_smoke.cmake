# Bench-trajectory smoke, run as a ctest (python-free):
#   1. run one real bench with DDTR_BENCH_JSON pointed at a scratch file
#   2. check every emitted line carries the provenance `meta` block
#   3. concatenate the lines into BENCH_trajectory.json (a JSON array),
#      the artifact CI archives so the perf trajectory survives per-PR
#
# Invoked by CMakeLists.txt as:
#   cmake -DBENCH_BIN=<path-to-bench> -DWORK_DIR=<scratch-dir>
#         -DTRAJECTORY=<out-file> -P bench_smoke.cmake

if(NOT DEFINED BENCH_BIN OR NOT DEFINED WORK_DIR OR NOT DEFINED TRAJECTORY)
  message(FATAL_ERROR
      "bench_smoke.cmake needs -DBENCH_BIN=... -DWORK_DIR=... -DTRAJECTORY=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(JSON_FILE "${WORK_DIR}/bench_lines.json")
file(REMOVE "${JSON_FILE}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            DDTR_BENCH_SCALE=0.05 DDTR_BENCH_JSON=${JSON_FILE}
            ${BENCH_BIN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE errout)
if(NOT result EQUAL 0)
  message(FATAL_ERROR
      "${BENCH_BIN} failed (exit ${result}):\n${output}\n${errout}")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "bench did not write DDTR_BENCH_JSON=${JSON_FILE}")
endif()

# Every line is one JSON object and must carry the provenance block.
file(STRINGS "${JSON_FILE}" bench_lines)
list(LENGTH bench_lines line_count)
if(line_count EQUAL 0)
  message(FATAL_ERROR "bench JSON file is empty: ${JSON_FILE}")
endif()
foreach(line IN LISTS bench_lines)
  if(NOT line MATCHES "\"meta\":{\"git_sha\":")
    message(FATAL_ERROR "bench line lacks the meta block:\n${line}")
  endif()
  if(NOT line MATCHES "\"accounting_version\":")
    message(FATAL_ERROR "bench meta lacks accounting_version:\n${line}")
  endif()
endforeach()

# Wrap the line-per-object stream into one JSON array.
set(trajectory "[\n")
set(sep "")
foreach(line IN LISTS bench_lines)
  string(APPEND trajectory "${sep}${line}")
  set(sep ",\n")
endforeach()
string(APPEND trajectory "\n]\n")
file(WRITE "${TRAJECTORY}" "${trajectory}")

message(STATUS
    "bench_smoke: ${line_count} bench lines -> ${TRAJECTORY}")
