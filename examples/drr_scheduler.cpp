// DRR scheduler deep-dive: runs the Deficit Round Robin case study under
// several DDT choices for the packet queues and shows (a) that the
// scheduler's functional output — throughput, drops, Jain fairness — is
// identical regardless of the DDT, and (b) how the queue DDT alone moves
// the cost metrics, including the Level-of-Fairness knob (the paper's
// application-specific network parameter for DRR) — first hand-driven,
// then as a declarative api::StudyBuilder grid fed to an exploration
// session.
//
//   $ ./drr_scheduler
#include <iostream>

#include "api/ddtr.h"
#include "apps/drr/drr_app.h"
#include "nettrace/trace_store.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  // Shared immutable trace via the store — the same instance any study
  // replaying dart-dorm at this length would get.
  net::TraceGenerator::Options options;
  options.packet_count = 5000;
  const auto trace = net::TraceStore::global().get_or_generate(
      net::network_preset("dart-dorm"), options);

  std::cout << "DRR on " << trace->name() << ": " << trace->size()
            << " packets\n\n== Queue DDT sweep (flow table fixed to AR) "
               "==\n\n";

  const energy::EnergyModel model = core::make_paper_energy_model();
  support::TextTable table({"queue DDT", "sent", "dropped", "fairness",
                            "energy_mJ", "accesses", "footprint"});
  apps::drr::DrrApp app(apps::drr::DrrApp::Config{1.0, 1.15, 64, 777});
  for (ddt::DdtKind queue_kind :
       {ddt::DdtKind::kArray, ddt::DdtKind::kArrayOfPointers,
        ddt::DdtKind::kSll, ddt::DdtKind::kSllRoving,
        ddt::DdtKind::kSllOfArrays, ddt::DdtKind::kDllOfArraysRoving}) {
    const ddt::DdtCombination combo({ddt::DdtKind::kArray, queue_kind});
    const apps::RunResult run = app.run(*trace, combo);
    const energy::Metrics m = model.evaluate(run.total);
    table.add_row({std::string(ddt::to_string(queue_kind)),
                   support::format_count(app.sent_packets()),
                   support::format_count(app.dropped_packets()),
                   support::format_double(app.fairness_index(), 4),
                   support::format_double(m.energy_mj, 4),
                   support::format_count(m.accesses),
                   support::format_bytes(m.footprint_bytes)});
  }
  table.print(std::cout);
  std::cout << "\nFunctional columns (sent/dropped/fairness) are identical "
               "by construction; only the cost columns move.\n";

  std::cout << "\n== Level of Fairness sweep (quantum = L x MTU) ==\n\n";
  support::TextTable lof({"fairness level", "fairness index", "energy_mJ",
                          "accesses"});
  for (double level : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    apps::drr::DrrApp swept(
        apps::drr::DrrApp::Config{level, 1.15, 64, 777});
    const apps::RunResult run = swept.run(
        *trace,
        ddt::DdtCombination({ddt::DdtKind::kArray, ddt::DdtKind::kSll}));
    const energy::Metrics m = model.evaluate(run.total);
    lof.add_row({support::format_double(level, 2),
                 support::format_double(swept.fairness_index(), 4),
                 support::format_double(m.energy_mj, 4),
                 support::format_count(m.accesses)});
  }
  lof.print(std::cout);
  std::cout << "\nSmaller quanta interleave flows more finely (better "
               "fairness, more scheduler work) — this is the knob the "
               "network-level exploration step varies for DRR.\n";

  // The same knob as a declarative grid: one network x one configuration
  // per fairness level, handed to the 3-step methodology. This is how an
  // application-specific parameter becomes part of the exploration space.
  std::cout << "\n== The same sweep as an exploration grid ==\n\n";
  api::StudyBuilder builder("DRR-fairness");
  builder.slots(2).packets(5000).network("dart-dorm");
  for (double level : {0.5, 1.0, 2.0}) {
    builder.config("lof=" + support::format_double(level, 1), [level] {
      return std::make_shared<apps::drr::DrrApp>(
          apps::drr::DrrApp::Config{level, 1.15, 64, 777});
    });
  }
  api::Exploration session(builder.build());
  const core::ExplorationReport& report = session.run();
  std::cout << "explored " << report.scenario_count
            << " fairness configurations with "
            << report.reduced_simulations() << " simulations ("
            << report.exhaustive_simulations << " exhaustive); "
            << report.pareto_optimal.size()
            << " Pareto-optimal DDT combinations:\n";
  for (const auto& r : report.pareto_records()) {
    std::cout << "  " << r.combo.label() << "  energy "
              << support::format_double(r.metrics.energy_mj, 4)
              << " mJ, accesses " << support::format_count(r.metrics.accesses)
              << '\n';
  }
  return 0;
}
