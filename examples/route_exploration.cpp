// Route exploration end to end: builds the paper's first case study (IPv4
// radix-tree forwarding over 7 networks x 2 table sizes), runs the 3-step
// methodology, and walks through what each step produced — the programmatic
// version of what `ddtr explore --app route` prints.
//
//   $ ./route_exploration [scale]
#include <iostream>

#include "core/case_studies.h"
#include "core/explorer.h"
#include "core/report.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace ddtr;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const core::CaseStudy study =
      core::make_route_study(core::CaseStudyOptions{}.scaled(scale));

  std::cout << "Case study: " << study.name << " — "
            << study.scenarios.size() << " network configurations, "
            << study.combination_count() << " DDT combinations ("
            << study.exhaustive_simulations()
            << " exhaustive simulations)\n\n";

  const core::ExplorationEngine engine(core::make_paper_energy_model());

  // ---- Step 1: application-level exploration -------------------------
  std::cout << "step 1: simulating all " << study.combination_count()
            << " combinations on " << study.scenarios[0].label() << "...\n";
  const auto step1 = engine.run_step1(study);
  std::cout << "        per-metric winners:\n";
  core::print_best_by_metric(std::cout, step1);

  const auto survivors = engine.select_survivors(step1);
  std::cout << "\n        " << survivors.size()
            << " combinations survive the multi-metric filter:";
  for (const auto& combo : survivors) std::cout << ' ' << combo.label();
  std::cout << "\n\n";

  // ---- Step 2: network-level exploration ------------------------------
  std::cout << "step 2: re-simulating survivors on all "
            << study.scenarios.size() << " configurations ("
            << survivors.size() * study.scenarios.size()
            << " simulations)...\n";
  const auto step2 = engine.run_step2(study, survivors);

  // How much does the optimal combination move across configurations?
  support::TextTable winners({"configuration", "energy winner",
                              "accesses winner", "footprint winner"});
  for (const core::Scenario& scenario : study.scenarios) {
    const auto records = [&] {
      std::vector<core::SimulationRecord> out;
      for (const auto& r : step2) {
        if (r.scenario_label() == scenario.label()) out.push_back(r);
      }
      return out;
    }();
    const auto best_by = [&](std::size_t metric) {
      const core::SimulationRecord* best = nullptr;
      for (const auto& r : records) {
        if (best == nullptr ||
            r.metrics.as_array()[metric] < best->metrics.as_array()[metric]) {
          best = &r;
        }
      }
      return best->combo.label();
    };
    winners.add_row({scenario.label(), best_by(0), best_by(2), best_by(3)});
  }
  winners.print(std::cout);

  // ---- Step 3: Pareto-level exploration --------------------------------
  const auto aggregated = engine.aggregate(step2);
  std::vector<energy::Metrics> points;
  for (const auto& r : aggregated) points.push_back(r.metrics);
  const auto pareto = core::pareto_filter(points);

  std::cout << "\nstep 3: " << pareto.size()
            << " Pareto-optimal combinations over all configurations:\n";
  support::TextTable final_table(
      {"combination", "energy_mJ", "time_ms", "accesses", "footprint"});
  for (std::size_t idx : pareto) {
    const auto& r = aggregated[idx];
    final_table.add_row(
        {r.combo.label(), support::format_double(r.metrics.energy_mj, 4),
         support::format_double(r.metrics.time_s * 1e3, 3),
         support::format_count(r.metrics.accesses),
         support::format_bytes(r.metrics.footprint_bytes)});
  }
  final_table.print(std::cout);

  std::cout << "\nPick the point matching your embedded-system constraint "
               "(energy budget, deadline, memory limit) — every listed "
               "choice is optimal in at least one respect.\n";
  return 0;
}
