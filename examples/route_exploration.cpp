// Route exploration end to end: looks the paper's first case study up in
// the workload registry (IPv4 radix-tree forwarding over 7 networks x 2
// table sizes), runs the 3-step methodology through an api::Exploration
// session — with a live progress observer — and walks through what each
// step produced. The programmatic version of `ddtr explore --app route`.
//
//   $ ./route_exploration [scale]
#include <iostream>

#include "api/ddtr.h"
#include "core/report.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace ddtr;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const core::CaseStudy study = api::registry().make_study(
      "route", core::CaseStudyOptions{}.scaled(scale));

  std::cout << "Case study: " << study.name << " — "
            << study.scenarios.size() << " network configurations, "
            << study.combination_count() << " DDT combinations ("
            << study.exhaustive_simulations()
            << " exhaustive simulations)\n\n";

  // One session drives all three steps; the observer sees every
  // simulation complete (step 1 = application level on the representative
  // scenario, step 2 = survivors x all network configurations).
  api::Exploration session(study);
  session.on_progress([](const core::StepProgress& p) {
    if (p.total != 0 && p.done == p.total) {
      std::cout << "step " << p.step << ": " << p.total
                << " simulations done\n";
    }
  });
  const core::ExplorationReport& report = session.run();

  // ---- Step 1: application-level exploration -------------------------
  std::cout << "\nstep 1 per-metric winners on "
            << study.scenarios[study.representative].label() << ":\n";
  core::print_best_by_metric(std::cout, report.step1_records);

  std::cout << "\n" << report.survivors.size()
            << " combinations survive the multi-metric filter:";
  for (const auto& combo : report.survivors) {
    std::cout << ' ' << combo.label();
  }
  std::cout << "\n\n";

  // ---- Step 2: network-level exploration ------------------------------
  // How much does the optimal combination move across configurations?
  support::TextTable winners({"configuration", "energy winner",
                              "accesses winner", "footprint winner"});
  for (const core::Scenario& scenario : study.scenarios) {
    const auto records = report.scenario_records(scenario.label());
    const auto best_by = [&](std::size_t metric) {
      const core::SimulationRecord* best = nullptr;
      for (const auto& r : records) {
        if (best == nullptr ||
            r.metrics.as_array()[metric] < best->metrics.as_array()[metric]) {
          best = &r;
        }
      }
      return best->combo.label();
    };
    winners.add_row({scenario.label(), best_by(0), best_by(2), best_by(3)});
  }
  winners.print(std::cout);

  // ---- Step 3: Pareto-level exploration --------------------------------
  std::cout << "\nstep 3: " << report.pareto_optimal.size()
            << " Pareto-optimal combinations over all configurations:\n";
  support::TextTable final_table(
      {"combination", "energy_mJ", "time_ms", "accesses", "footprint"});
  for (const auto& r : report.pareto_records()) {
    final_table.add_row(
        {r.combo.label(), support::format_double(r.metrics.energy_mj, 4),
         support::format_double(r.metrics.time_s * 1e3, 3),
         support::format_count(r.metrics.accesses),
         support::format_bytes(r.metrics.footprint_bytes)});
  }
  final_table.print(std::cout);

  std::cout << "\nsimulations: " << report.reduced_simulations()
            << " logical / " << report.executed_simulations()
            << " executed (exhaustive would need "
            << report.exhaustive_simulations << ")\n";
  std::cout << "\nPick the point matching your embedded-system constraint "
               "(energy budget, deadline, memory limit) — every listed "
               "choice is optimal in at least one respect.\n";
  return 0;
}
