// Quickstart: the DDT library in five minutes.
//
// Creates the same record sequence behind two different DDT
// implementations, runs an identical workload against both, and shows how
// the profiling layer + energy model turn the runs into the four metrics
// the refinement methodology trades off.
//
//   $ ./quickstart
#include <iostream>

#include "api/ddtr.h"
#include "ddt/factory.h"
#include "energy/energy_model.h"
#include "support/table.h"

namespace {

// A record like the ones the network kernels store.
struct Session {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t port = 0;
  std::uint32_t packets = 0;
};

// A toy workload: build a table, scan it repeatedly, update hot entries,
// retire old ones — the access mix of a connection cache.
void run_workload(ddtr::ddt::Container<Session>& table) {
  for (std::uint32_t i = 0; i < 256; ++i) {
    table.push_back({i, i ^ 0xffu, static_cast<std::uint16_t>(i), 0});
  }
  for (int round = 0; round < 50; ++round) {
    // Look up a "popular" session (sequential-ish — roving DDTs like it).
    const std::size_t target = static_cast<std::size_t>(round) % 200;
    const std::size_t idx = table.find_if(
        [&](const Session& s) { return s.src_ip == target; });
    Session s = table.get(idx);
    ++s.packets;
    table.set(idx, s);
    // Retire the oldest session, admit a new one.
    table.erase(0);
    table.push_back({1000u + static_cast<std::uint32_t>(round), 0, 80, 0});
  }
}

}  // namespace

int main() {
  using namespace ddtr;

  std::cout << "DDT refinement quickstart: one workload, ten possible "
               "implementations\n\n";

  const energy::EnergyModel model{energy::MemoryHierarchy::scratchpad()};
  support::TextTable table(
      {"DDT", "energy_uJ", "time_us", "accesses", "peak footprint"});

  for (ddt::DdtKind kind : ddt::kAllDdtKinds) {
    prof::MemoryProfile profile;
    {
      auto container = ddt::make_container<Session>(kind, profile);
      run_workload(*container);
    }
    const energy::Metrics m = model.evaluate(profile.counters());
    table.add_row({std::string(ddt::to_string(kind)),
                   support::format_double(m.energy_mj * 1e3, 3),
                   support::format_double(m.time_s * 1e6, 2),
                   support::format_count(m.accesses),
                   support::format_bytes(m.footprint_bytes)});
  }
  table.print(std::cout);

  std::cout << "\nSame functional behaviour, different cost vectors — "
               "choosing per-structure implementations from this library "
               "is what the 3-step methodology automates.\n";

  // The methodology itself is driven through the workload registry: every
  // registered workload (the paper's four, plus any you add) is explored
  // the same way — api::registry().make_study(name, options) into an
  // api::Exploration session. See firewall_tuning.cpp for a custom
  // registration end to end.
  std::cout << "\nregistered exploration workloads:";
  for (const std::string& name : api::registry().names()) {
    std::cout << ' ' << name;
  }
  std::cout << "\n";
  return 0;
}
