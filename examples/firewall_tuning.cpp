// Firewall tuning: uses the library on a *custom* scenario rather than the
// paper's fixed case-study grid — the workflow a downstream user follows
// for their own appliance: generate (or load) traces that look like the
// deployment, wrap the application, explore, and read off the
// recommendation for each deployment size.
//
//   $ ./firewall_tuning
#include <iostream>

#include "apps/ipchains/ipchains_app.h"
#include "core/case_studies.h"
#include "core/explorer.h"
#include "nettrace/generator.h"
#include "nettrace/presets.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  // A deployment-specific configuration matrix: a small branch-office
  // network and a busy backbone tap, each with two rule-base sizes and
  // two connection-cache budgets.
  core::CaseStudy study;
  study.name = "IPchains-custom";
  study.slots = 2;
  for (const char* network : {"nlanr-satellite", "nlanr-backbone"}) {
    net::TraceGenerator::Options options;
    options.packet_count = 3000;
    auto trace = std::make_shared<const net::Trace>(
        net::TraceGenerator::generate(net::network_preset(network), options));
    for (const std::size_t rules : {std::size_t{48}, std::size_t{192}}) {
      for (const std::size_t conns : {std::size_t{64}, std::size_t{512}}) {
        core::Scenario scenario;
        scenario.network = network;
        scenario.config = "rules=" + std::to_string(rules) +
                          ",conns=" + std::to_string(conns);
        scenario.trace = trace;
        scenario.app = std::make_shared<apps::ipchains::IpchainsApp>(
            apps::ipchains::IpchainsApp::Config{rules, conns, 424242});
        study.scenarios.push_back(std::move(scenario));
      }
    }
  }

  std::cout << "Exploring " << study.scenarios.size()
            << " firewall deployments x " << study.combination_count()
            << " DDT combinations...\n\n";

  const core::ExplorationEngine engine(core::make_paper_energy_model());
  const core::ExplorationReport report = engine.explore(study);

  std::cout << "simulations: " << report.reduced_simulations()
            << " (exhaustive would need " << report.exhaustive_simulations
            << ")\n\n";

  // Per-deployment recommendation: the energy winner among survivors, with
  // its cost vector.
  support::TextTable table({"deployment", "recommended DDTs", "energy_mJ",
                            "time_ms", "footprint"});
  for (const core::Scenario& scenario : study.scenarios) {
    const auto records = report.scenario_records(scenario.label());
    const core::SimulationRecord* best = nullptr;
    for (const auto& r : records) {
      if (best == nullptr || r.metrics.energy_mj < best->metrics.energy_mj) {
        best = &r;
      }
    }
    table.add_row({scenario.label(), best->combo.label(),
                   support::format_double(best->metrics.energy_mj, 4),
                   support::format_double(best->metrics.time_s * 1e3, 3),
                   support::format_bytes(best->metrics.footprint_bytes)});
  }
  table.print(std::cout);

  std::cout << "\nNote how the recommendation can differ between the "
               "branch office and the backbone tap — network-level "
               "exploration (step 2) exists precisely because one "
               "configuration's optimum is not another's.\n";
  return 0;
}
