// Firewall tuning: registers a *custom* workload rather than using the
// paper's fixed case-study grid — the workflow a downstream user follows
// for their own appliance: describe the deployment grid with
// api::StudyBuilder, register it, explore it through an api::Exploration
// session, and read off the recommendation for each deployment size.
// Once registered it would equally be reachable from the CLI as
// `ddtr explore --app firewall-fleet` (same registry, same lookup path).
//
//   $ ./firewall_tuning
#include <iostream>

#include "api/ddtr.h"
#include "apps/ipchains/ipchains_app.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  // A deployment-specific configuration matrix: a small branch-office
  // network and a busy backbone tap, each with two rule-base sizes and
  // two connection-cache budgets. The builder crosses networks x configs
  // and shares one generated trace per network internally.
  api::registry().add(
      {"firewall-fleet", "custom IPchains deployment matrix",
       [](const core::CaseStudyOptions& options) {
         api::StudyBuilder builder("IPchains-custom");
         builder.slots(2)
             .packets(options.ipchains_packets)  // honours --scale etc.
             .networks({"nlanr-satellite", "nlanr-backbone"});
         for (const std::size_t rules : {std::size_t{48}, std::size_t{192}}) {
           for (const std::size_t conns :
                {std::size_t{64}, std::size_t{512}}) {
             builder.config("rules=" + std::to_string(rules) +
                                ",conns=" + std::to_string(conns),
                            [rules, conns] {
                              return std::make_shared<
                                  apps::ipchains::IpchainsApp>(
                                  apps::ipchains::IpchainsApp::Config{
                                      rules, conns, 424242});
                            });
           }
         }
         return builder.build();
       }});

  // 0.6 x the 5000-packet IPchains default = 3000-packet traces.
  const core::CaseStudy study = api::registry().make_study(
      "firewall-fleet", core::CaseStudyOptions{}.scaled(0.6));

  std::cout << "Exploring " << study.scenarios.size()
            << " firewall deployments x " << study.combination_count()
            << " DDT combinations...\n\n";

  api::Exploration session(study);
  const core::ExplorationReport& report = session.run();

  std::cout << "simulations: " << report.reduced_simulations()
            << " (exhaustive would need " << report.exhaustive_simulations
            << ")\n\n";

  // Per-deployment recommendation: the energy winner among survivors, with
  // its cost vector.
  support::TextTable table({"deployment", "recommended DDTs", "energy_mJ",
                            "time_ms", "footprint"});
  for (const core::Scenario& scenario : study.scenarios) {
    const auto records = report.scenario_records(scenario.label());
    const core::SimulationRecord* best = nullptr;
    for (const auto& r : records) {
      if (best == nullptr || r.metrics.energy_mj < best->metrics.energy_mj) {
        best = &r;
      }
    }
    table.add_row({scenario.label(), best->combo.label(),
                   support::format_double(best->metrics.energy_mj, 4),
                   support::format_double(best->metrics.time_s * 1e3, 3),
                   support::format_bytes(best->metrics.footprint_bytes)});
  }
  table.print(std::cout);

  std::cout << "\nNote how the recommendation can differ between the "
               "branch office and the backbone tap — network-level "
               "exploration (step 2) exists precisely because one "
               "configuration's optimum is not another's.\n";
  return 0;
}
