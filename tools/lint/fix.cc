#include "fix.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <tuple>

namespace ddtr::lint {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) lines.push_back(text.substr(start));
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines,
                       bool trailing_newline) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || trailing_newline) out += '\n';
  }
  return out;
}

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  std::string base = basename_of(normalize_path(path));
  const std::size_t dot = base.rfind('.');
  if (dot != std::string::npos) base.resize(dot);
  return base;
}

// Is this quoted include the file's own header? ("m/foo.h" from any
// foo.cc — matched on the basename so the rule works for src/ and
// tools/ layouts alike.)
bool is_primary(const SourceFile& file, const IncludeDirective& inc) {
  if (inc.angle) return false;
  const std::string p = normalize_path(file.path);
  if (!p.ends_with(".cc") && !p.ends_with(".cpp")) return false;
  return basename_of(normalize_path(inc.target)) == stem_of(p) + ".h";
}

enum class Group : int {
  kPrimary = 0,
  kCxxStd = 1,   // <...> without a dot
  kCSystem = 2,  // <...> with a dot
  kProject = 3,  // "..."
};

Group group_of(const SourceFile& file, const IncludeDirective& inc) {
  if (is_primary(file, inc)) return Group::kPrimary;
  if (inc.angle) {
    return inc.target.find('.') == std::string::npos ? Group::kCxxStd
                                                     : Group::kCSystem;
  }
  return Group::kProject;
}

struct Region {
  std::size_t first_line = 0;  // 1-based, inclusive
  std::size_t last_line = 0;
  std::vector<const IncludeDirective*> includes;
};

// Maximal runs of movable include lines (unconditional, no trailing
// comment, nothing else on the line) and interior blanks. Anything else
// — code, comments, preprocessor conditionals, commented includes —
// bounds the region and is never crossed.
std::vector<Region> find_regions(const SourceFile& file) {
  const Scrubbed& s = file.scrubbed;
  std::map<std::size_t, const IncludeDirective*> by_line;
  for (const IncludeDirective& inc : file.includes) {
    if (inc.conditional) continue;
    if (inc.line <= s.comment.size() && !s.comment[inc.line - 1].empty())
      continue;  // trailing comment — pinned in place
    by_line[inc.line] = &inc;
  }
  std::vector<Region> regions;
  Region cur;
  const std::size_t n = s.line_off.size();
  const auto flush = [&] {
    if (!cur.includes.empty()) regions.push_back(cur);
    cur = Region{};
  };
  for (std::size_t line = 1; line <= n; ++line) {
    const auto it = by_line.find(line);
    if (it != by_line.end()) {
      if (cur.includes.empty()) cur.first_line = line;
      cur.last_line = line;
      cur.includes.push_back(it->second);
      continue;
    }
    const bool blank =
        trimmed(code_line(s, line)).empty() &&
        (line > s.comment.size() || s.comment[line - 1].empty());
    if (blank && !cur.includes.empty()) continue;  // interior/trailing blank
    flush();
  }
  flush();
  return regions;
}

std::vector<std::string> canonical_region(const SourceFile& file,
                                          const Region& region) {
  std::vector<std::pair<int, std::string>> keyed;  // (group, target)
  std::vector<bool> angle_of;
  for (const IncludeDirective* inc : region.includes) {
    keyed.emplace_back(static_cast<int>(group_of(file, *inc)), inc->target);
    angle_of.push_back(inc->angle);
  }
  struct Entry {
    int group;
    std::string target;
    bool angle;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    entries.push_back({keyed[i].first, keyed[i].second, angle_of[i]});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return std::tie(a.group, a.target) <
                            std::tie(b.group, b.target);
                   });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.group == b.group &&
                                     a.target == b.target &&
                                     a.angle == b.angle;
                            }),
                entries.end());
  std::vector<std::string> lines;
  int last_group = -1;
  for (const Entry& e : entries) {
    if (last_group != -1 && e.group != last_group) lines.push_back("");
    last_group = e.group;
    lines.push_back(e.angle ? "#include <" + e.target + ">"
                            : "#include \"" + e.target + "\"");
  }
  return lines;
}

// Rewrites the regions of `file` into canonical form, skipping any
// include line listed in `drop`. Returns the new content.
std::string rewrite(const SourceFile& file,
                    const std::set<std::size_t>& drop) {
  const std::vector<std::string> lines = split_lines(file.content);
  const bool trailing_nl =
      !file.content.empty() && file.content.back() == '\n';
  std::vector<Region> regions = find_regions(file);
  std::vector<std::string> out;
  std::size_t line = 1;
  std::size_t r = 0;
  while (line <= lines.size()) {
    if (r < regions.size() && line == regions[r].first_line) {
      Region region = regions[r];
      region.includes.erase(
          std::remove_if(region.includes.begin(), region.includes.end(),
                         [&](const IncludeDirective* inc) {
                           return drop.count(inc->line) != 0;
                         }),
          region.includes.end());
      const std::vector<std::string> canonical =
          canonical_region(file, region);
      out.insert(out.end(), canonical.begin(), canonical.end());
      line = regions[r].last_line + 1;
      ++r;
      continue;
    }
    out.push_back(lines[line - 1]);
    ++line;
  }
  return join_lines(out, trailing_nl);
}

}  // namespace

std::string reorder_includes(const SourceFile& file) {
  return rewrite(file, {});
}

void check_include_order(const SourceFile& file, std::vector<Finding>& out) {
  const std::vector<std::string> lines = split_lines(file.content);
  for (const Region& region : find_regions(file)) {
    std::vector<std::string> original(
        lines.begin() + static_cast<std::ptrdiff_t>(region.first_line - 1),
        lines.begin() + static_cast<std::ptrdiff_t>(region.last_line));
    // Trailing blanks inside the region bounds are preserved by the
    // rewrite, so compare without them.
    while (!original.empty() && trimmed(original.back()).empty())
      original.pop_back();
    if (original == canonical_region(file, region)) continue;
    out.push_back(
        {file.path, region.first_line, "include-order",
         "include block is not in canonical order (primary header, "
         "<c++-std>, <system.h>, \"project\" — alphabetical within "
         "groups)",
         "run `ddtr lint --fix` to rewrite the block"});
  }
}

std::optional<FileFix> fix_source(const SourceFile& file,
                                  const std::set<std::size_t>& removable) {
  FileFix fix;
  if (!removable.empty()) {
    fix.notes.push_back("removed " + std::to_string(removable.size()) +
                        " unused include(s)");
  }
  std::string content = rewrite(file, removable);

  if (is_header_path(file.path) &&
      file.scrubbed.code.find("#pragma once") == std::string::npos) {
    // Insert after the leading comment/blank block, matching the tree's
    // style of a doc comment above the pragma.
    std::vector<std::string> lines = split_lines(content);
    const bool trailing_nl = !content.empty() && content.back() == '\n';
    const Scrubbed s = scrub(content);
    std::size_t at = 0;
    while (at < lines.size()) {
      const std::string code = at + 1 <= s.line_off.size()
                                   ? trimmed(code_line(s, at + 1))
                                   : trimmed(lines[at]);
      if (!code.empty()) break;
      ++at;
    }
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                 "#pragma once");
    content = join_lines(lines, trailing_nl || lines.size() == 1);
    fix.notes.push_back("added `#pragma once`");
  }

  if (content == file.content) return std::nullopt;
  if (fix.notes.empty()) fix.notes.push_back("canonicalized include order");
  fix.after = std::move(content);
  return fix;
}

std::string unified_diff(const std::string& before, const std::string& after,
                         const std::string& path) {
  const std::vector<std::string> a = split_lines(before);
  const std::vector<std::string> b = split_lines(after);
  const std::size_t n = a.size(), m = b.size();
  // LCS table (files are small; O(n*m) is fine at lint scale).
  std::vector<std::vector<std::uint32_t>> lcs(
      n + 1, std::vector<std::uint32_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j]
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  struct Op {
    char kind;  // ' ', '-', '+'
    const std::string* text;
  };
  std::vector<Op> ops;
  std::size_t i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      ops.push_back({' ', &a[i]});
      ++i, ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      ops.push_back({'-', &a[i]});
      ++i;
    } else {
      ops.push_back({'+', &b[j]});
      ++j;
    }
  }
  while (i < n) ops.push_back({'-', &a[i++]});
  while (j < m) ops.push_back({'+', &b[j++]});

  // Old/new line number at (i.e. just before) each op.
  std::vector<std::size_t> at_old(ops.size() + 1), at_new(ops.size() + 1);
  at_old[0] = at_new[0] = 1;
  for (std::size_t t = 0; t < ops.size(); ++t) {
    at_old[t + 1] = at_old[t] + (ops[t].kind != '+' ? 1 : 0);
    at_new[t + 1] = at_new[t] + (ops[t].kind != '-' ? 1 : 0);
  }

  // Hunks: change runs padded with kContext lines, merged when the gap
  // between two runs is within 2*kContext.
  constexpr std::size_t kContext = 3;
  std::ostringstream out;
  out << "--- a/" << path << "\n+++ b/" << path << "\n";
  std::size_t k = 0;
  while (k < ops.size()) {
    if (ops[k].kind == ' ') {
      ++k;
      continue;
    }
    std::size_t last_change = k;
    std::size_t scan = k + 1;
    while (scan < ops.size()) {
      if (ops[scan].kind != ' ') {
        last_change = scan;
        ++scan;
        continue;
      }
      if (scan - last_change > 2 * kContext) break;
      ++scan;
    }
    const std::size_t start = k >= kContext ? k - kContext : 0;
    const std::size_t end =
        std::min(ops.size(), last_change + 1 + kContext);
    std::size_t count_old = 0, count_new = 0;
    for (std::size_t t = start; t < end; ++t) {
      if (ops[t].kind != '+') ++count_old;
      if (ops[t].kind != '-') ++count_new;
    }
    out << "@@ -" << at_old[start] << "," << count_old << " +"
        << at_new[start] << "," << count_new << " @@\n";
    for (std::size_t t = start; t < end; ++t) {
      out << ops[t].kind << *ops[t].text << "\n";
    }
    k = last_change + 1;
  }
  return out.str();
}

}  // namespace ddtr::lint
