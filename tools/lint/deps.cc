#include "deps.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <functional>
#include <sstream>

namespace ddtr::lint {
namespace {

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool dep_keyword(std::string_view id) {
  static const char* const kw[] = {
      "if",      "for",      "while",    "switch",        "return",
      "sizeof",  "alignof",  "decltype", "static_assert", "assert",
      "catch",   "defined",  "noexcept", "requires",      "operator",
      "throw",   "new",      "delete",   "alignas",       "explicit",
      "typename"};
  return std::any_of(std::begin(kw), std::end(kw),
                     [&](const char* k) { return id == k; });
}

// Lines that are preprocessor directives (token walks skip them; #define
// is harvested separately).
std::vector<bool> preprocessor_lines(const Scrubbed& s) {
  std::vector<bool> pp(s.line_off.size() + 1, false);
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    const std::string text = code_line(s, line);
    const auto b = text.find_first_not_of(" \t");
    if (b != std::string::npos && text[b] == '#') pp[line] = true;
  }
  return pp;
}

}  // namespace

std::string module_of(const std::string& rel_path) {
  const std::string p = normalize_path(rel_path);
  if (p.rfind("src/", 0) != 0) return "";
  const std::size_t slash = p.find('/', 4);
  if (slash == std::string::npos) return "";
  return p.substr(4, slash - 4);
}

std::string resolve_include(const std::string& target) {
  return "src/" + normalize_path(target);
}

std::optional<LayerContract> parse_layers(const std::string& text,
                                          std::string* error) {
  LayerContract contract;
  contract.loaded = true;
  std::istringstream is(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trimmed(line);
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "layer") {
      std::string name, colon;
      fields >> name >> colon;
      if (name.empty() || colon != ":") {
        if (error != nullptr) {
          *error = "layers.lock:" + std::to_string(lineno) +
                   ": expected `layer <name> : [deps...]`";
        }
        return std::nullopt;
      }
      auto& deps = contract.allowed[name];
      std::string dep;
      while (fields >> dep) deps.insert(dep);
    } else if (directive == "umbrella") {
      std::string path;
      fields >> path;
      if (path.empty()) {
        if (error != nullptr) {
          *error = "layers.lock:" + std::to_string(lineno) +
                   ": expected `umbrella <repo-relative-header>`";
        }
        return std::nullopt;
      }
      contract.umbrella.insert(normalize_path(path));
    } else if (directive == "determinism-exempt") {
      std::string prefix;
      fields >> prefix;
      if (prefix.empty()) {
        if (error != nullptr) {
          *error = "layers.lock:" + std::to_string(lineno) +
                   ": expected `determinism-exempt <path-prefix>`";
        }
        return std::nullopt;
      }
      contract.determinism_exempt.push_back(normalize_path(prefix));
    } else {
      if (error != nullptr) {
        *error = "layers.lock:" + std::to_string(lineno) +
                 ": unknown directive `" + directive + "`";
      }
      return std::nullopt;
    }
  }
  return contract;
}

LayerContract load_layers(const std::string& repo_root, std::string* error) {
  const std::filesystem::path lock =
      std::filesystem::path(repo_root) / kLayersLockPath;
  const auto text = read_file_text(lock.string());
  if (!text) {
    LayerContract contract;  // loaded=false: passes that need it skip
    contract.determinism_exempt.push_back("src/obs/");
    return contract;
  }
  auto parsed = parse_layers(*text, error);
  if (!parsed) {
    LayerContract contract;
    contract.determinism_exempt.push_back("src/obs/");
    return contract;
  }
  return *parsed;
}

std::set<std::string> provided_names(const SourceFile& file) {
  std::set<std::string> names;
  const Scrubbed& s = file.scrubbed;
  const std::string& code = s.code;
  const std::vector<bool> pp = preprocessor_lines(s);

  // #define'd macros.
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    if (!pp[line]) continue;
    std::string text = code_line(s, line);
    std::size_t p = text.find('#');
    p = text.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || text.compare(p, 6, "define") != 0) continue;
    p = text.find_first_not_of(" \t", p + 6);
    if (p == std::string::npos) continue;
    std::size_t e = p;
    while (e < text.size() && ident_char(text[e])) ++e;
    if (e > p) names.insert(text.substr(p, e - p));
  }

  // Token walk at namespace-transparent depth. Class/struct braces are
  // opaque: members are reached through the type, not by bare name.
  std::vector<bool> opaque;  // per open brace
  std::vector<std::string> stmt;  // tokens of the current statement
  std::string prev_ident;
  const auto transparent = [&] {
    return std::none_of(opaque.begin(), opaque.end(),
                        [](bool b) { return b; });
  };
  const auto stmt_has = [&](std::string_view t) {
    return std::any_of(stmt.begin(), stmt.end(),
                       [&](const std::string& x) { return x == t; });
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (pp[line_of(s, i)]) continue;
    if (ident_char(c)) {
      if (i > 0 && ident_char(code[i - 1])) continue;
      std::size_t e = i;
      while (e < code.size() && ident_char(code[e])) ++e;
      const std::string tok = code.substr(i, e - i);
      if (tok == "template") {
        // Skip the parameter list: `template <class T>` must not read
        // as a provided class named T.
        std::size_t j = e;
        while (j < code.size() &&
               std::isspace(static_cast<unsigned char>(code[j])))
          ++j;
        if (j < code.size() && code[j] == '<') {
          int d = 0;
          for (; j < code.size(); ++j) {
            if (code[j] == '<') ++d;
            if (code[j] == '>' && --d == 0) break;
          }
          i = j;
          continue;
        }
      }
      if (transparent()) {
        // Type names: `class X` / `struct X` / `enum [class] X` /
        // `union X` (definitions and forward declarations alike).
        if (!stmt.empty() && !dep_keyword(tok) &&
            !std::isdigit(static_cast<unsigned char>(tok[0]))) {
          const std::string& last = stmt.back();
          if ((last == "class" || last == "struct" || last == "enum" ||
               last == "union") &&
              tok != "class" && tok != "struct") {
            names.insert(tok);
          }
        }
        // Function names: identifier directly followed by '(' and not
        // qualified (a `std::foo(...)` in an initializer is a use).
        std::size_t j = e;
        while (j < code.size() &&
               std::isspace(static_cast<unsigned char>(code[j])))
          ++j;
        if (j < code.size() && code[j] == '(' && !dep_keyword(tok) &&
            !std::isdigit(static_cast<unsigned char>(tok[0])) &&
            !(i > 0 && code[i - 1] == ':') && !stmt_has("using") &&
            !stmt_has("enum")) {
          names.insert(tok);
        }
      }
      stmt.push_back(tok);
      prev_ident = tok;
      i = e - 1;
      continue;
    }
    switch (c) {
      case '=':
        if (transparent() && !prev_ident.empty() && !dep_keyword(prev_ident) &&
            (stmt_has("using") || stmt_has("constexpr") ||
             stmt_has("extern") || stmt_has("typedef"))) {
          names.insert(prev_ident);
        }
        break;
      case '{': {
        const bool transparent_brace =
            stmt_has("namespace") || stmt_has("extern");
        opaque.push_back(!transparent_brace);
        stmt.clear();
        prev_ident.clear();
        break;
      }
      case '}':
        if (!opaque.empty()) opaque.pop_back();
        stmt.clear();
        prev_ident.clear();
        break;
      case ';':
        if (transparent() && !prev_ident.empty() && stmt_has("typedef") &&
            !dep_keyword(prev_ident)) {
          names.insert(prev_ident);
        }
        stmt.clear();
        prev_ident.clear();
        break;
      default:
        break;
    }
  }
  return names;
}

namespace {

// Identifier tokens appearing in a file's code view, excluding include
// lines — the usage side of the IWYU checks. `any` is every appearance;
// `unqualified` drops tokens reached through `.`, `->` or `::` (in
// `str.npos` or `std::to_string` the dependency is the receiver or the
// namespace, not the member name itself).
struct UsedIdents {
  std::set<std::string> any;
  std::set<std::string> unqualified;
};

UsedIdents used_idents(const SourceFile& file) {
  UsedIdents out;
  const Scrubbed& s = file.scrubbed;
  std::vector<bool> skip(s.line_off.size() + 1, false);
  for (const IncludeDirective& inc : file.includes) skip[inc.line] = true;
  const std::string& code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t e = i;
    while (e < code.size() && ident_char(code[e])) ++e;
    if (!skip[line_of(s, i)] &&
        !std::isdigit(static_cast<unsigned char>(code[i]))) {
      std::string tok = code.substr(i, e - i);
      std::size_t back = i;
      while (back > 0 && (code[back - 1] == ' ' || code[back - 1] == '\t' ||
                          code[back - 1] == '\n')) {
        --back;
      }
      const bool qualified =
          back > 0 && (code[back - 1] == '.' || code[back - 1] == ':' ||
                       (back > 1 && code[back - 2] == '-' &&
                        code[back - 1] == '>'));
      if (!qualified) out.unqualified.insert(tok);
      out.any.insert(std::move(tok));
    }
    i = e - 1;
  }
  return out;
}

std::string primary_header_of(const std::string& rel_path) {
  const std::string p = normalize_path(rel_path);
  const std::size_t dot = p.rfind('.');
  if (dot == std::string::npos) return "";
  const std::string ext = p.substr(dot);
  if (ext != ".cc" && ext != ".cpp") return "";
  return p.substr(0, dot) + ".h";
}

struct Graph {
  std::map<std::string, const SourceFile*> by_path;
  // Direct project-include edges (resolved, present in the file set).
  std::map<std::string, std::vector<std::string>> edges;
};

// All files reachable from `path` through project includes (excluding
// `path` itself unless it is in a cycle).
const std::set<std::string>& closure_of(
    const Graph& g, const std::string& path,
    std::map<std::string, std::set<std::string>>& memo) {
  auto it = memo.find(path);
  if (it != memo.end()) return it->second;
  // Seed the memo first so include cycles terminate (the cycle pass
  // reports them; here we only need reachability to converge).
  auto& out = memo[path];
  auto edge_it = g.edges.find(path);
  if (edge_it == g.edges.end()) return out;
  for (const std::string& next : edge_it->second) {
    out.insert(next);
  }
  // Iterate to fixpoint over the partial sets (handles cycles without
  // recursion-order sensitivity).
  bool grew = true;
  while (grew) {
    grew = false;
    std::set<std::string> add;
    for (const std::string& n : out) {
      auto ne = g.edges.find(n);
      if (ne == g.edges.end()) continue;
      for (const std::string& nn : ne->second) {
        if (out.find(nn) == out.end()) add.insert(nn);
      }
    }
    for (const std::string& a : add) out.insert(a);
    grew = !add.empty();
  }
  return out;
}

void check_layering(const Graph& g, const LayerContract& contract,
                    std::vector<Finding>& out) {
  for (const auto& [path, file] : g.by_path) {
    const std::string mod = module_of(path);
    if (mod.empty()) continue;
    const auto allowed_it = contract.allowed.find(mod);
    if (allowed_it == contract.allowed.end()) {
      out.push_back({path, 1, "layering",
                     "module `" + mod +
                         "` is not declared in tools/lint/layers.lock",
                     "add a `layer " + mod +
                         " : <deps>` line to the contract"});
      continue;
    }
    for (const IncludeDirective& inc : file->includes) {
      if (inc.angle) continue;
      const std::string dep = module_of(resolve_include(inc.target));
      if (dep.empty() || dep == mod) continue;
      if (allowed_it->second.count(dep) != 0) continue;
      out.push_back(
          {path, inc.line, "layering",
           "module `" + mod + "` may not include `" + dep + "` (\"" +
               inc.target + "\") — tools/lint/layers.lock does not " +
               "declare the edge",
           "invert the dependency or, if the edge is intended, add `" +
               dep + "` to the `layer " + mod + "` line"});
    }
  }
}

void check_cycles(const Graph& g, std::vector<Finding>& out) {
  // Iterative DFS with colors; each cycle reported once, rotated so the
  // lexicographically smallest path leads (deterministic output).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    color[v] = 1;
    stack.push_back(v);
    auto it = g.edges.find(v);
    if (it != g.edges.end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 2) continue;
        if (color[next] == 1) {
          auto begin =
              std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cycle(begin, stack.end());
          auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string chain;
          for (const std::string& p : cycle) chain += p + " -> ";
          chain += cycle.front();
          if (reported.insert(chain).second) {
            const SourceFile* head = g.by_path.at(cycle.front());
            std::size_t line = 1;
            const std::string want = cycle.size() > 1
                                         ? cycle[1]
                                         : cycle.front();
            for (const IncludeDirective& inc : head->includes) {
              if (!inc.angle && resolve_include(inc.target) == want) {
                line = inc.line;
                break;
              }
            }
            out.push_back({cycle.front(), line, "include-cycle",
                           "include cycle: " + chain,
                           "break the cycle with a forward declaration "
                           "or by splitting the header"});
          }
          continue;
        }
        dfs(next);
      }
    }
    stack.pop_back();
    color[v] = 2;
  };
  for (const auto& [path, file] : g.by_path) {
    (void)file;
    if (color[path] == 0) dfs(path);
  }
}

void check_iwyu(const Graph& g, const LayerContract& contract,
                DepAnalysis& analysis) {
  std::map<std::string, std::set<std::string>> provided;  // per header
  std::map<std::string, std::set<std::string>> own;       // every file
  std::map<std::string, UsedIdents> used_map;
  std::map<std::string, std::set<std::string>> closure_memo;
  for (const auto& [path, file] : g.by_path) {
    own[path] = provided_names(*file);
    used_map[path] = used_idents(*file);
    if (is_header_path(path)) provided[path] = own[path];
  }
  // name -> headers that provide it (for transitive-leak uniqueness).
  std::map<std::string, std::set<std::string>> providers;
  for (const auto& [path, names] : provided) {
    for (const std::string& n : names) providers[n].insert(path);
  }
  const auto closure_names = [&](const std::string& header) {
    std::set<std::string> names = provided.count(header) != 0
                                      ? provided[header]
                                      : std::set<std::string>{};
    for (const std::string& h : closure_of(g, header, closure_memo)) {
      auto it = provided.find(h);
      if (it == provided.end()) continue;
      names.insert(it->second.begin(), it->second.end());
    }
    return names;
  };

  for (const auto& [path, file] : g.by_path) {
    if (contract.umbrella.count(path) != 0) continue;
    const UsedIdents& used_in_file = used_map.at(path);
    const std::set<std::string>& used = used_in_file.any;
    const std::string primary = primary_header_of(path);
    const std::set<std::string>& self = own.at(path);

    // The set of direct, unconditional project includes under analysis.
    struct Direct {
      const IncludeDirective* inc;
      std::string resolved;
    };
    std::vector<Direct> direct;
    for (const IncludeDirective& inc : file->includes) {
      if (inc.angle) continue;
      const std::string resolved = resolve_include(inc.target);
      if (g.by_path.count(resolved) == 0) continue;
      direct.push_back({&inc, resolved});
    }

    // Names already covered by the file's declared structure: its own
    // provisions, every direct include's own provisions, and the full
    // closures of the primary header and of any included umbrella.
    std::set<std::string> covered = self;
    for (const Direct& d : direct) {
      auto it = provided.find(d.resolved);
      if (it == provided.end()) continue;
      covered.insert(it->second.begin(), it->second.end());
    }
    if (!primary.empty() && g.by_path.count(primary) != 0) {
      const std::set<std::string> names = closure_names(primary);
      covered.insert(names.begin(), names.end());
    }
    for (const Direct& d : direct) {
      if (contract.umbrella.count(d.resolved) == 0) continue;
      const std::set<std::string> names = closure_names(d.resolved);
      covered.insert(names.begin(), names.end());
    }

    // include-unused: a direct include is removable when none of its own
    // names are used AND everything its closure contributes is still
    // reachable through the remaining includes.
    for (const Direct& d : direct) {
      if (d.inc->conditional) continue;
      if (d.resolved == primary) continue;
      if (contract.umbrella.count(d.resolved) != 0) continue;
      auto it = provided.find(d.resolved);
      if (it == provided.end() || it->second.empty()) continue;
      bool directly_used = false;
      for (const std::string& n : it->second) {
        if (used.count(n) != 0) {
          directly_used = true;
          break;
        }
      }
      if (directly_used) continue;
      // Removal safety: closure names that ARE used must survive via the
      // other includes (or the file's own definitions).
      std::set<std::string> survivors = self;
      if (!primary.empty() && g.by_path.count(primary) != 0) {
        const std::set<std::string> names = closure_names(primary);
        survivors.insert(names.begin(), names.end());
      }
      for (const Direct& other : direct) {
        if (other.inc == d.inc) continue;
        const std::set<std::string> names = closure_names(other.resolved);
        survivors.insert(names.begin(), names.end());
      }
      bool safe = true;
      for (const std::string& n : closure_names(d.resolved)) {
        if (used.count(n) != 0 && survivors.count(n) == 0) {
          safe = false;
          break;
        }
      }
      if (!safe) continue;
      // Whole-program safety: a downstream file may reach d.resolved
      // only through this edge (a .cc leaning on its header's includes,
      // say). Simulate the removal and require every name each affected
      // file uses to stay reachable.
      Graph trimmed;
      trimmed.by_path = g.by_path;
      trimmed.edges = g.edges;
      auto& trimmed_out = trimmed.edges[path];
      trimmed_out.erase(
          std::remove(trimmed_out.begin(), trimmed_out.end(), d.resolved),
          trimmed_out.end());
      std::map<std::string, std::set<std::string>> trimmed_memo;
      for (const auto& [fpath, ffile] : g.by_path) {
        (void)ffile;
        if (!safe) break;
        if (fpath == path) continue;
        const std::set<std::string>& with =
            closure_of(g, fpath, closure_memo);
        if (with.count(path) == 0) continue;
        const std::set<std::string>& without =
            closure_of(trimmed, fpath, trimmed_memo);
        std::set<std::string> still = own.at(fpath);
        for (const std::string& h : without) {
          auto pit = provided.find(h);
          if (pit == provided.end()) continue;
          still.insert(pit->second.begin(), pit->second.end());
        }
        const std::set<std::string>& fused = used_map.at(fpath).any;
        for (const std::string& h : with) {
          if (without.count(h) != 0) continue;
          auto pit = provided.find(h);
          if (pit == provided.end()) continue;
          for (const std::string& n : pit->second) {
            if (fused.count(n) != 0 && still.count(n) == 0) {
              safe = false;
              break;
            }
          }
          if (!safe) break;
        }
      }
      if (!safe) continue;
      analysis.findings.push_back(
          {path, d.inc->line, "include-unused",
           "\"" + d.inc->target + "\" is included but none of its names "
           "are used here",
           "remove the include (autofixable: `ddtr lint --fix`)"});
      analysis.removable[path].insert(d.inc->line);
    }

    // include-transitive: a used name that is NOT covered but is
    // uniquely provided by one reachable header should be included
    // directly.
    std::set<std::string> reachable;
    for (const Direct& d : direct) {
      reachable.insert(d.resolved);
      const std::set<std::string>& c =
          closure_of(g, d.resolved, closure_memo);
      reachable.insert(c.begin(), c.end());
    }
    std::set<std::string> suggested;
    for (const std::string& n : used_in_file.unqualified) {
      if (covered.count(n) != 0) continue;
      auto prov_it = providers.find(n);
      if (prov_it == providers.end() || prov_it->second.size() != 1)
        continue;
      const std::string& header = *prov_it->second.begin();
      if (header == path || header == primary) continue;
      if (reachable.count(header) == 0) continue;
      bool already_direct = false;
      for (const Direct& d : direct) {
        if (d.resolved == header) {
          already_direct = true;
          break;
        }
      }
      if (already_direct) continue;
      if (!suggested.insert(header).second) continue;
      // Anchor the finding at the first use of the name.
      std::size_t line = 1;
      const Scrubbed& s = file->scrubbed;
      for (std::size_t ln = 1; ln <= s.line_off.size(); ++ln) {
        const std::string text = code_line(s, ln);
        std::size_t pos = text.find(n);
        while (pos != std::string::npos) {
          const bool lb = pos == 0 || !ident_char(text[pos - 1]);
          const bool rb = pos + n.size() >= text.size() ||
                          !ident_char(text[pos + n.size()]);
          if (lb && rb) break;
          pos = text.find(n, pos + 1);
        }
        if (pos != std::string::npos) {
          line = ln;
          break;
        }
      }
      analysis.findings.push_back(
          {path, line, "include-transitive",
           "`" + n + "` comes transitively from \"" +
               header.substr(4) + "\" — include it directly",
           "add `#include \"" + header.substr(4) +
               "\"` so the dependency survives refactors of the "
               "middleman header"});
    }
  }
}

}  // namespace

DepAnalysis analyze_dependencies(const std::vector<SourceFile>& files,
                                 const LayerContract& contract) {
  DepAnalysis analysis;
  if (!contract.loaded) return analysis;
  Graph g;
  for (const SourceFile& f : files) {
    if (module_of(f.path).empty()) continue;
    g.by_path[f.path] = &f;
  }
  for (const auto& [path, file] : g.by_path) {
    auto& out = g.edges[path];
    for (const IncludeDirective& inc : file->includes) {
      if (inc.angle) continue;
      const std::string resolved = resolve_include(inc.target);
      if (g.by_path.count(resolved) != 0) out.push_back(resolved);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  check_layering(g, contract, analysis.findings);
  check_cycles(g, analysis.findings);
  check_iwyu(g, contract, analysis);
  return analysis;
}

std::optional<std::vector<std::string>> compile_commands_files(
    const std::string& path, const std::string& repo_root) {
  const auto text = read_file_text(path);
  if (!text) return std::nullopt;
  std::vector<std::string> files;
  std::string root = normalize_path(repo_root);
  if (!root.empty() && root.back() != '/') root += '/';
  std::error_code ec;
  const std::string abs_root = normalize_path(
      std::filesystem::weakly_canonical(repo_root, ec).string());
  std::size_t pos = 0;
  const std::string key = "\"file\"";
  while ((pos = text->find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = text->find('"', text->find(':', pos));
    if (pos == std::string::npos) break;
    const std::size_t end = text->find('"', pos + 1);
    if (end == std::string::npos) break;
    std::string file = normalize_path(text->substr(pos + 1, end - pos - 1));
    // Make repo-relative when the entry is inside the root.
    for (const std::string& prefix :
         {abs_root + "/", root}) {
      if (!prefix.empty() && prefix != "/" && file.rfind(prefix, 0) == 0) {
        file = file.substr(prefix.size());
        break;
      }
    }
    files.push_back(std::move(file));
    pos = end + 1;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace ddtr::lint
