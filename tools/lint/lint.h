// ddtr_lint — the project's own invariants as machine-checked rules.
//
// The repository's correctness story rests on a handful of conventions
// that no general-purpose tool knows about: cache keys must be pure
// functions of their inputs, decoders must bounds-check untrusted bytes
// and consume them exactly, every temp+rename must be fsync-paired, DDT
// nodes must come from the arena pool, and the accounting version must
// move whenever the accounting tables do. This linter encodes each of
// those as a named, suppressible rule over a token/line-level scan of
// the tree — no libclang, no compile database, fast enough to run as an
// ordinary ctest on every build.
//
// Rules (suppress one occurrence with `// ddtr-lint: allow(<rule>)` on
// the same or the preceding line; a whole file with
// `// ddtr-lint: allow-file(<rule>)` anywhere in it):
//
//   decoder-safety     decode_* functions (and the read_* primitives in
//                      support/binary_io, serve/protocol) must check
//                      every raw stream read and, for payload decoders,
//                      verify exact consumption via at_end().
//   durability         a function that calls rename() must also call
//                      support::fsync_file AND support::fsync_dir —
//                      rename alone is not durable.
//   allocation-policy  no raw new/delete/malloc/free in src/ddt/: DDT
//                      nodes are pool-only (support::Pool<T>).
//   determinism        no rand()/time()/system_clock/getpid()/
//                      random_device in cache-key or fingerprint code —
//                      whole key files, and the bodies of key functions
//                      (content_hash, fingerprint, shard_of_key, ...)
//                      anywhere in the tree.
//   accounting-version a checksum registry (tools/lint/accounting.lock)
//                      over all `ddtr-accounting-begin/end` regions must
//                      match the tree, and kDdtAccountingVersion must be
//                      bumped before the registry may be regenerated.
//   header-hygiene     headers use `#pragma once` and never
//                      `using namespace` at any scope.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ddtr::lint {

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string fixit;  // optional remediation hint
};

// Lints one source file given its contents (the path decides which rule
// scopes apply — unit tests feed synthetic paths). Purely functional: no
// filesystem access, deterministic output order (by line).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

// --- Accounting version coupling ---------------------------------------

// Everything the accounting-version rule derives from a tree: the
// current kDdtAccountingVersion (parsed from src/ddt/kinds.h), the
// FNV-1a checksum over every marked accounting region, and the pair
// recorded in tools/lint/accounting.lock.
struct AccountingState {
  std::uint32_t tree_version = 0;
  std::uint64_t tree_checksum = 0;
  std::uint32_t lock_version = 0;
  std::uint64_t lock_checksum = 0;
  bool lock_found = false;
  bool version_found = false;
  std::size_t region_count = 0;
};

// Relative path of the registry within a repo root.
inline constexpr const char* kAccountingLockPath = "tools/lint/accounting.lock";

// Computes the accounting state of the tree rooted at `repo_root`
// (reads src/ddt/, src/support/arena.*, and the lock file).
AccountingState read_accounting_state(const std::string& repo_root);

// The accounting-version rule over a precomputed state. Split from the
// filesystem so tests can exercise every outcome.
std::vector<Finding> check_accounting(const AccountingState& state);

// Rewrites the registry for the current tree. Refuses (returns false
// with `error` set) when the accounting regions changed but
// kDdtAccountingVersion did not — the bump must come first; the registry
// only ever records a (version, checksum) pair that moved together.
bool update_accounting(const std::string& repo_root, std::string& error);

// --- Driver -------------------------------------------------------------

struct RunOptions {
  std::vector<std::string> roots;  // files or directories to scan
  std::string repo_root;           // for the accounting registry; "" skips
  bool update_accounting = false;
};

// Scans every *.h/*.cc/*.cpp under the roots, runs the accounting check,
// prints findings to `out`, and returns the number of findings (0 means
// a clean tree).
std::size_t run_lint(const RunOptions& options, std::ostream& out);

}  // namespace ddtr::lint
