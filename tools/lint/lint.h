// ddtr_lint — the project's own invariants as machine-checked rules.
//
// The repository's correctness story rests on a handful of conventions
// that no general-purpose tool knows about: cache keys must be pure
// functions of their inputs, decoders must bounds-check untrusted bytes
// and consume them exactly, every temp+rename must be fsync-paired, DDT
// nodes must come from the arena pool, and the accounting version must
// move whenever the accounting tables do. This linter encodes each of
// those as a named, suppressible rule over a token/line-level scan of
// the tree — no libclang, no compile database, fast enough to run as an
// ordinary ctest on every build.
//
// Rules (suppress one occurrence with `// ddtr-lint: allow(<rule>)` on
// the same or the preceding line; a whole file with
// `// ddtr-lint: allow-file(<rule>)` anywhere in it):
//
//   decoder-safety     decode_* functions (and the read_* primitives in
//                      support/binary_io, serve/protocol) must check
//                      every raw stream read and, for payload decoders,
//                      verify exact consumption via at_end().
//   durability         a function that calls rename() must also call
//                      support::fsync_file AND support::fsync_dir —
//                      rename alone is not durable.
//   allocation-policy  no raw new/delete/malloc/free in src/ddt/: DDT
//                      nodes are pool-only (support::Pool<T>).
//   determinism        no rand()/time()/system_clock/getpid()/
//                      random_device in cache-key or fingerprint code —
//                      whole key files, and the bodies of key functions
//                      (content_hash, fingerprint, shard_of_key, ...)
//                      anywhere in the tree.
//   accounting-version a checksum registry (tools/lint/accounting.lock)
//                      over all `ddtr-accounting-begin/end` regions must
//                      match the tree, and kDdtAccountingVersion must be
//                      bumped before the registry may be regenerated.
//   header-hygiene     headers use `#pragma once` and never
//                      `using namespace` at any scope.
//
// v2 adds three whole-program passes over the same scanner core (see
// deps.h, locks.h, fix.h for the machinery):
//
//   layering           every src/ module's include edges must be
//                      declared in tools/lint/layers.lock.
//   include-cycle      no cycle through project includes.
//   include-unused     a direct include none of whose names are used
//                      (and whose closure stays reachable without it)
//                      is dead weight. Autofixable.
//   include-transitive a name reached only through a middleman header
//                      should be included directly.
//   include-order      include regions follow the canonical grouping
//                      (primary, <c++-std>, <system.h>, "project",
//                      alphabetical within groups). Autofixable.
//   lock-order         no acquisition cycles in the global mutex graph,
//                      no re-acquisition of a held mutex (directly or
//                      through a same-file call edge).
//   cv-wait            condition-variable waits take a predicate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ddtr::lint {

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string fixit;  // optional remediation hint
};

// Knobs the per-file rules read. Defaults match a tree without a
// layers.lock; the driver overrides them from the contract file so new
// subsystems never require a linter edit.
struct LintConfig {
  // Path prefixes exempt from the determinism rule (`determinism-exempt`
  // lines in tools/lint/layers.lock).
  std::vector<std::string> determinism_exempt = {"src/obs/"};
};

// Lints one source file given its contents (the path decides which rule
// scopes apply — unit tests feed synthetic paths). Purely functional: no
// filesystem access, deterministic output order (by line).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const LintConfig& config);

// --- Accounting version coupling ---------------------------------------

// Everything the accounting-version rule derives from a tree: the
// current kDdtAccountingVersion (parsed from src/ddt/kinds.h), the
// FNV-1a checksum over every marked accounting region, and the pair
// recorded in tools/lint/accounting.lock.
struct AccountingState {
  std::uint32_t tree_version = 0;
  std::uint64_t tree_checksum = 0;
  std::uint32_t lock_version = 0;
  std::uint64_t lock_checksum = 0;
  bool lock_found = false;
  bool version_found = false;
  std::size_t region_count = 0;
};

// Relative path of the registry within a repo root.
inline constexpr const char* kAccountingLockPath = "tools/lint/accounting.lock";

// Computes the accounting state of the tree rooted at `repo_root`
// (reads src/ddt/, src/support/arena.*, and the lock file).
AccountingState read_accounting_state(const std::string& repo_root);

// The accounting-version rule over a precomputed state. Split from the
// filesystem so tests can exercise every outcome.
std::vector<Finding> check_accounting(const AccountingState& state);

// Rewrites the registry for the current tree. Refuses (returns false
// with `error` set) when the accounting regions changed but
// kDdtAccountingVersion did not — the bump must come first; the registry
// only ever records a (version, checksum) pair that moved together.
bool update_accounting(const std::string& repo_root, std::string& error);

// --- Driver -------------------------------------------------------------

struct RunOptions {
  std::vector<std::string> roots;  // files or directories to scan
  std::string repo_root;  // for the registries + whole-program passes;
                          // "" skips both
  bool update_accounting = false;
  bool fix = false;       // apply mechanical repairs in place
  bool dry_run = false;   // with fix: print unified diffs, write nothing
  std::string diff_ref;   // restrict findings to files changed vs a ref
  std::string compile_commands;  // optional compile_commands.json path
};

// Scans every *.h/*.cc/*.cpp under the roots once, runs the per-file
// rules plus the whole-program passes (layering/IWYU over src/, lock
// order, include order, the accounting registry), prints findings to
// `out`, and returns the number of findings (0 means a clean tree).
// With `fix` set the mechanical families are repaired first and the
// count reflects the tree after repair.
std::size_t run_lint(const RunOptions& options, std::ostream& out);

}  // namespace ddtr::lint
