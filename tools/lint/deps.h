// The dependency/layering analyzer — ddtr_lint's whole-program pass.
//
// Per-file rules catch local hazards; architectural rot is global. This
// pass parses every `#include` edge across src/ (optionally seeded from
// a CMake-emitted compile_commands.json), maps files to modules (the
// first component of the quoted include path: "core/explorer.h" → core),
// and enforces the layering contract declared in tools/lint/layers.lock:
//
//   layering            a module may only include modules its `layer`
//                       line lists (the contract is explicit, not
//                       inferred — adding a dependency is an edit to a
//                       checked-in file, reviewed like the accounting
//                       registry).
//   include-cycle       no cycle through quoted includes, ever.
//   include-unused      a direct include none of whose provided names
//                       appear in the includer is dead weight (the
//                       primary header and declared umbrella headers are
//                       exempt; zero extracted names means we stay
//                       quiet — the heuristic only fires when it can
//                       prove a candidate usage set).
//   include-transitive  a name uniquely provided by one header that is
//                       only reachable transitively should be included
//                       directly — transitive leaks break when the
//                       middleman drops its include.
//
// The same analysis feeds the autofix pass: `removable` lists the
// include-directive lines `--fix` may delete.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "scan.h"

namespace ddtr::lint {

// Relative path of the layering contract within a repo root.
inline constexpr const char* kLayersLockPath = "tools/lint/layers.lock";

// The parsed tools/lint/layers.lock contract.
struct LayerContract {
  bool loaded = false;  // false → layering/IWYU passes are skipped
  // module → modules it may depend on (absence of a module means any
  // file in it fails layering until the contract names it).
  std::map<std::string, std::set<std::string>> allowed;
  // Repo-relative paths of umbrella (re-export) headers: exempt from
  // include-unused, and their includers receive their transitive
  // provisions.
  std::set<std::string> umbrella;
  // Path prefixes carved out of the determinism rule (e.g. "src/obs/").
  std::vector<std::string> determinism_exempt;
};

// Parses the lock-file text. Returns nullopt (with `error` set) on a
// malformed line; unknown directives are errors too, so typos fail loud.
std::optional<LayerContract> parse_layers(const std::string& text,
                                          std::string* error);

// Reads and parses <repo_root>/tools/lint/layers.lock; a missing file
// yields a default contract with loaded=false.
LayerContract load_layers(const std::string& repo_root, std::string* error);

// Module of a repo-relative path: "src/core/explorer.cc" → "core",
// "" when not under src/.
std::string module_of(const std::string& rel_path);

// Repo-relative path a quoted include resolves to ("core/explorer.h" →
// "src/core/explorer.h"). Angle includes are system headers — not ours.
std::string resolve_include(const std::string& target);

struct DepAnalysis {
  std::vector<Finding> findings;
  // path → include-directive lines (1-based) that --fix may remove.
  std::map<std::string, std::set<std::size_t>> removable;
};

// Runs the layering + include-cycle + IWYU-lite checks over the scanned
// src/ files. Suppressions are NOT applied here — the driver owns that.
DepAnalysis analyze_dependencies(const std::vector<SourceFile>& files,
                                 const LayerContract& contract);

// Names a header offers its includers, extracted at namespace-transparent
// brace depth: type names (class/struct/enum/union), alias targets
// (`using X =`), function names, #define'd macros, and constexpr
// constants. Exposed for the unit tests.
std::set<std::string> provided_names(const SourceFile& file);

// The "file" entries of a compile_commands.json, normalized and made
// repo-relative where possible. Light-weight scan — no JSON parser
// needed for the one key we read. Returns nullopt if unreadable.
std::optional<std::vector<std::string>> compile_commands_files(
    const std::string& path, const std::string& repo_root);

}  // namespace ddtr::lint
