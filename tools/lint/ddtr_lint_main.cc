// Standalone entry point of the project linter. `ddtr lint` (the CLI
// subcommand) and the `lint` ctest are the same pass over the same
// rules; this binary exists so CI and pre-commit hooks need nothing but
// the tool itself.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage() {
  std::cerr
      << "usage: ddtr_lint [--repo-root DIR] [--update-accounting] "
         "[PATH ...]\n"
         "  Scans every *.h/*.cc/*.cpp under the given files/directories\n"
         "  (default: src tests tools bench under the repo root) against\n"
         "  the project's invariant rules, plus the accounting-version\n"
         "  registry check. Exits 1 when anything is found.\n"
         "  --repo-root DIR       tree containing src/ and tools/lint/\n"
         "                        (default: .)\n"
         "  --update-accounting   re-record tools/lint/accounting.lock\n"
         "                        (refused if kDdtAccountingVersion was\n"
         "                        not bumped alongside a table change)\n"
         "  Suppress a finding with `// ddtr-lint: allow(<rule>)` on the\n"
         "  same or preceding line; a file with allow-file(<rule>).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ddtr::lint::RunOptions options;
  options.repo_root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update-accounting") {
      options.update_accounting = true;
    } else if (arg == "--repo-root") {
      if (i + 1 >= argc) return usage();
      options.repo_root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ddtr_lint: unknown flag " << arg << "\n";
      return usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) {
    for (const char* dir : {"src", "tests", "tools", "bench"}) {
      options.roots.push_back(options.repo_root + "/" + dir);
    }
  }
  const std::size_t findings = ddtr::lint::run_lint(options, std::cout);
  return findings == 0 ? 0 : 1;
}
