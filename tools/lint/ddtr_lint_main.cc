// Standalone entry point of the project linter. `ddtr lint` (the CLI
// subcommand) and the `lint` ctest are the same pass over the same
// rules; this binary exists so CI and pre-commit hooks need nothing but
// the tool itself.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage() {
  std::cerr
      << "usage: ddtr_lint [--repo-root DIR] [--update-accounting]\n"
         "                 [--fix [--dry-run]] [--diff REF]\n"
         "                 [--compile-commands FILE] [PATH ...]\n"
         "  Scans every *.h/*.cc/*.cpp under the given files/directories\n"
         "  (default: src tests tools bench under the repo root) against\n"
         "  the project's invariant rules, the layering/include and\n"
         "  lock-order whole-program passes, and the accounting-version\n"
         "  registry check. Exits 1 when anything is found.\n"
         "  --repo-root DIR       tree containing src/ and tools/lint/\n"
         "                        (default: .)\n"
         "  --update-accounting   re-record tools/lint/accounting.lock\n"
         "                        (refused if kDdtAccountingVersion was\n"
         "                        not bumped alongside a table change)\n"
         "  --fix                 repair the mechanical families in place\n"
         "                        (missing #pragma once, unused includes,\n"
         "                        include order) and report what remains\n"
         "  --dry-run             with --fix: print unified diffs only\n"
         "  --diff REF            report only findings in files changed\n"
         "                        vs the git ref (registry checks stay)\n"
         "  --compile-commands F  seed the scan with the translation\n"
         "                        units of a compile_commands.json\n"
         "  Suppress a finding with `// ddtr-lint: allow(<rule>)` on the\n"
         "  same or preceding line; a file with allow-file(<rule>).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ddtr::lint::RunOptions options;
  options.repo_root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update-accounting") {
      options.update_accounting = true;
    } else if (arg == "--repo-root") {
      if (i + 1 >= argc) return usage();
      options.repo_root = argv[++i];
    } else if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--dry-run") {
      options.dry_run = true;
    } else if (arg == "--diff") {
      if (i + 1 >= argc) return usage();
      options.diff_ref = argv[++i];
    } else if (arg == "--compile-commands") {
      if (i + 1 >= argc) return usage();
      options.compile_commands = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ddtr_lint: unknown flag " << arg << "\n";
      return usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) {
    for (const char* dir : {"src", "tests", "tools", "bench"}) {
      options.roots.push_back(options.repo_root + "/" + dir);
    }
  }
  const std::size_t findings = ddtr::lint::run_lint(options, std::cout);
  return findings == 0 ? 0 : 1;
}
