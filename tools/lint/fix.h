// The autofix pass — `ddtr lint --fix`.
//
// Three rule families are mechanical enough to repair, not just report:
// a header missing `#pragma once` gains one (after its leading comment
// block), include lines the dependency analyzer proved removable are
// deleted, and include regions are rewritten into the canonical order
// the tree already follows:
//
//   [primary header]          ("m/foo.h" from m/foo.cc)
//   [C++ standard headers]    (<...> without a dot)
//   [C/system headers]        (<...> with a dot)
//   [project headers]         ("...")
//
// alphabetical within each group, one blank line between groups.
// Regions are maximal runs of unconditional include lines and blanks;
// includes inside `#if` blocks or carrying trailing comments bound the
// region and are never moved. The include-order *rule* is the fixer run
// in anger: a region is misordered exactly when the rewrite differs, so
// detector and repair can never disagree.
//
// `fix_source` is pure (content in, content out) and idempotent by
// construction: the canonical form is its own fixpoint, which the test
// suite pins with a fix → re-lint → re-fix round-trip.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "scan.h"

namespace ddtr::lint {

// Canonicalizes every include region of the file; returns the original
// content byte-for-byte when nothing is misordered.
std::string reorder_includes(const SourceFile& file);

// include-order findings: one per misordered region (anchored at the
// region's first line).
void check_include_order(const SourceFile& file, std::vector<Finding>& out);

struct FileFix {
  std::string after;               // fixed content
  std::vector<std::string> notes;  // one human-readable line per repair
};

// Applies all mechanical repairs: drops `removable` include lines (from
// the dependency analysis), inserts a missing `#pragma once` into
// headers, and canonicalizes include order. Returns nullopt when the
// file is already clean.
std::optional<FileFix> fix_source(const SourceFile& file,
                                  const std::set<std::size_t>& removable);

// Minimal unified diff (3 context lines) for `--fix --dry-run`.
std::string unified_diff(const std::string& before, const std::string& after,
                         const std::string& path);

}  // namespace ddtr::lint
