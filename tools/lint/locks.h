// The lock-order discipline checker — ddtr_lint's concurrency pass.
//
// The daemon, the scheduler thread, the thread pool, both caches, the
// trace store and the obs registry each hold a mutex; TSan only sees the
// interleavings a test happens to produce. This pass reads the locking
// *discipline* statically: every `lock_guard`/`unique_lock`/`scoped_lock`
// over a named mutex is an acquisition event, guard lifetimes follow the
// brace scopes they were declared in, and nested acquisitions define a
// global ordering graph whose mutex identities are qualified by
// `<module>/<file-stem>:<name>` so unrelated classes' `mu_` never alias.
//
//   lock-order  an acquisition cycle in the global graph (A held while
//               taking B in one place, B held while taking A in
//               another), re-acquiring a mutex already held in the same
//               scope chain, or calling — while holding M — a same-file
//               function that acquires M (`.unlock()` releases; guards
//               constructed with defer_lock/adopt_lock/try_to_lock are
//               not acquisitions).
//   cv-wait     a condition-variable wait without a predicate: bare
//               `cv.wait(lock)` is wakeup-lossy under spurious wakeups;
//               `wait_for`/`wait_until` need the predicate overload too.
#pragma once

#include <vector>

#include "scan.h"

namespace ddtr::lint {

// Runs both checks over the scanned files. Suppressions are NOT applied
// here — the driver owns that.
std::vector<Finding> check_locks(const std::vector<SourceFile>& files);

}  // namespace ddtr::lint
