#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <regex>
#include <sstream>
#include <string_view>

#include "support/fnv_hash.h"

namespace ddtr::lint {
namespace {

// --- Source scrubbing ---------------------------------------------------
// Everything downstream works on a "code view" of the file: the same
// length as the original (so offsets map 1:1), with comment bodies and
// string/char literal contents blanked to spaces. Comments are collected
// separately, per line — they carry the suppression and accounting-region
// markers.

struct Scrubbed {
  std::string code;                   // literals/comments blanked
  std::vector<std::string> comment;   // per-line comment text, merged
  std::vector<std::size_t> line_off;  // offset of each line start
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scrubbed scrub(const std::string& text) {
  Scrubbed out;
  out.code = text;
  out.comment.assign(std::count(text.begin(), text.end(), '\n') + 2, "");
  out.line_off.push_back(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  std::size_t line = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      out.line_off.push_back(i + 1);
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // R"delim( — find the delimiter, then scan for )delim".
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !ident_char(text[i - 1]))) {
          // The ident_char guard keeps digit separators (1'000'000) and
          // literal suffixes out of the char-literal state.
          state = State::kChar;
        }
        break;
      case State::kLine:
      case State::kBlock:
        if (state == State::kBlock && c == '*' && next == '/') {
          out.code[i] = out.code[i + 1] = ' ';
          out.comment[line] += ' ';
          state = State::kBlock;  // consumed below
          ++i;
          state = State::kCode;
          break;
        }
        out.comment[line] += c;
        out.code[i] = ' ';
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            out.code[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        } else {
          out.code[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        } else {
          out.code[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const Scrubbed& s, std::size_t offset) {
  auto it = std::upper_bound(s.line_off.begin(), s.line_off.end(), offset);
  return static_cast<std::size_t>(it - s.line_off.begin());  // 1-based
}

std::string code_line(const Scrubbed& s, std::size_t line1) {
  if (line1 == 0 || line1 > s.line_off.size()) return "";
  const std::size_t begin = s.line_off[line1 - 1];
  const std::size_t end = line1 < s.line_off.size() ? s.line_off[line1] - 1
                                                    : s.code.size();
  return s.code.substr(begin, end - begin);
}

// --- Function extraction ------------------------------------------------
// Token-level definition finder: identifier, balanced parameter list,
// then (skipping cv-qualifiers, noexcept, trailing return, ctor-init
// lists) an opening brace. Calls end in `;` or an operator instead and
// are skipped. Good enough for this codebase's style; the unit tests pin
// the cases the rules rely on.

struct FuncDef {
  std::string name;
  std::size_t sig_begin = 0;   // offset of the name
  std::size_t body_begin = 0;  // offset of '{'
  std::size_t body_end = 0;    // offset past matching '}'
};

bool is_keyword(std::string_view id) {
  static const char* const kw[] = {
      "if",     "while",  "for",    "switch",        "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "assert", "throw",
      "new",    "delete", "alignas", "defined",      "requires"};
  return std::any_of(std::begin(kw), std::end(kw),
                     [&](const char* k) { return id == k; });
}

std::vector<FuncDef> find_functions(const Scrubbed& s) {
  std::vector<FuncDef> defs;
  const std::string& code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t end = i;
    while (end < code.size() && ident_char(code[end])) ++end;
    const std::string name = code.substr(i, end - i);
    if (is_keyword(name) || std::isdigit(static_cast<unsigned char>(name[0]))) {
      i = end - 1;
      continue;
    }
    std::size_t j = end;
    while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j])))
      ++j;
    if (j >= code.size() || code[j] != '(') {
      i = end - 1;
      continue;
    }
    // A member call (`os.write(...)`) is never a definition.
    std::size_t prev = i;
    while (prev > 0 &&
           std::isspace(static_cast<unsigned char>(code[prev - 1])))
      --prev;
    if (prev > 0 && (code[prev - 1] == '.' ||
                     (prev > 1 && code[prev - 2] == '-' &&
                      code[prev - 1] == '>'))) {
      i = end - 1;
      continue;
    }
    // Balance the parameter list.
    int depth = 0;
    std::size_t k = j;
    for (; k < code.size(); ++k) {
      if (code[k] == '(') ++depth;
      if (code[k] == ')' && --depth == 0) break;
    }
    if (k >= code.size()) break;
    // Scan to `{` (definition) or `;`/operator (declaration or call),
    // tolerating qualifiers, noexcept(...), ctor-init lists and trailing
    // return types.
    int d2 = 0;
    std::size_t m = k + 1;
    bool def = false;
    for (; m < code.size(); ++m) {
      const char c = code[m];
      if (c == '(' || c == '[') ++d2;
      if (c == ')' || c == ']') --d2;
      if (d2 > 0) continue;
      if (c == '{') {
        def = true;
        break;
      }
      if (c == ';' || c == ',' || c == '=' || c == '+' || c == '}' ||
          c == '?' || c == '|' || c == '"') {
        break;
      }
    }
    if (!def) {
      i = end - 1;
      continue;
    }
    // Balance the body.
    int bd = 0;
    std::size_t b = m;
    for (; b < code.size(); ++b) {
      if (code[b] == '{') ++bd;
      if (code[b] == '}' && --bd == 0) break;
    }
    defs.push_back({name, i, m, b < code.size() ? b + 1 : code.size()});
    i = end - 1;
  }
  return defs;
}

const FuncDef* enclosing_function(const std::vector<FuncDef>& defs,
                                  std::size_t offset) {
  const FuncDef* best = nullptr;
  for (const FuncDef& d : defs) {
    if (offset < d.body_begin || offset >= d.body_end) continue;
    if (best == nullptr || d.body_begin > best->body_begin) best = &d;
  }
  return best;
}

// --- Path scoping -------------------------------------------------------

std::string normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has(const std::string& path, std::string_view needle) {
  return normalize(path).find(needle) != std::string::npos;
}

bool is_header(const std::string& path) {
  const std::string p = normalize(path);
  return p.ends_with(".h") || p.ends_with(".hpp");
}

// Files whose every line is cache-key/fingerprint code: a stray clock or
// pid anywhere in them poisons key purity.
bool determinism_file(const std::string& path) {
  static const char* const files[] = {
      "support/fnv_hash.h",      "support/rng.h",
      "support/rng.cc",          "apps/common/flow_key.h",
      "core/simulation_cache.h", "core/simulation_cache.cc"};
  const std::string p = normalize(path);
  return std::any_of(std::begin(files), std::end(files),
                     [&](const char* f) { return p.ends_with(f); });
}

// Functions that produce cache keys or fingerprints wherever they are
// defined; their bodies must be pure.
bool determinism_function(const std::string& name) {
  static const char* const names[] = {
      "content_hash",      "fingerprint", "shard_of_key",
      "step1_fingerprint", "preset_key",  "fnv1a64",
      "fnv1a64_append",    "mix64",       "five_tuple_key"};
  return std::any_of(std::begin(names), std::end(names),
                     [&](const char* n) { return name == n; });
}

bool decoder_file(const std::string& path) {
  return path_has(path, "serve/protocol") || path_has(path, "support/binary_io");
}

// --- Rule helpers -------------------------------------------------------

struct Matcher {
  std::regex re;
  const char* what;
};

const std::vector<Matcher>& determinism_matchers() {
  static const std::vector<Matcher> m = [] {
    std::vector<Matcher> v;
    v.push_back({std::regex(R"(\brand\s*\()"), "rand()"});
    v.push_back({std::regex(R"(\bsrand\s*\()"), "srand()"});
    v.push_back({std::regex(R"(\btime\s*\()"), "time()"});
    v.push_back({std::regex(R"(system_clock)"), "system_clock"});
    v.push_back({std::regex(R"(\bgetpid\b)"), "getpid()"});
    v.push_back({std::regex(R"(random_device)"), "std::random_device"});
    return v;
  }();
  return m;
}

const std::vector<Matcher>& allocation_matchers() {
  static const std::vector<Matcher> m = [] {
    std::vector<Matcher> v;
    v.push_back({std::regex(R"(\bnew\b)"), "new"});
    v.push_back({std::regex(R"(\bdelete\b)"), "delete"});
    v.push_back({std::regex(R"(\bmalloc\b|\bcalloc\b|\brealloc\b)"),
                 "malloc-family allocation"});
    v.push_back({std::regex(R"(\bfree\s*\()"), "free()"});
    return v;
  }();
  return m;
}

// `= delete;` declares a deleted function; only `delete expr` frees.
bool deleted_function_line(const std::string& line) {
  static const std::regex re(R"(=\s*delete\b)");
  return std::regex_search(line, re);
}

// --- Suppressions -------------------------------------------------------

bool comment_allows(const std::string& comment, const std::string& rule,
                    bool file_scope) {
  const std::string tag =
      file_scope ? "ddtr-lint: allow-file(" : "ddtr-lint: allow(";
  std::size_t pos = comment.find(tag);
  while (pos != std::string::npos) {
    const std::size_t open = pos + tag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::istringstream list(comment.substr(open, close - open));
    std::string item;
    while (std::getline(list, item, ',')) {
      const auto b = item.find_first_not_of(" \t");
      const auto e = item.find_last_not_of(" \t");
      if (b != std::string::npos && item.substr(b, e - b + 1) == rule)
        return true;
    }
    pos = comment.find(tag, close);
  }
  return false;
}

bool suppressed(const Scrubbed& s, const Finding& f) {
  for (const std::string& c : s.comment) {
    if (comment_allows(c, f.rule, /*file_scope=*/true)) return true;
  }
  const auto at = [&](std::size_t line1) {
    return line1 >= 1 && line1 <= s.comment.size() &&
           comment_allows(s.comment[line1 - 1], f.rule, false);
  };
  return at(f.line) || (f.line > 1 && at(f.line - 1));
}

// --- The rules ----------------------------------------------------------

void rule_header_hygiene(const std::string& path, const Scrubbed& s,
                         std::vector<Finding>& out) {
  if (!is_header(path)) return;
  if (s.code.find("#pragma once") == std::string::npos) {
    out.push_back({path, 1, "header-hygiene",
                   "header is missing `#pragma once`",
                   "add `#pragma once` as the first directive"});
  }
  static const std::regex using_ns(R"(\busing\s+namespace\b)");
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    if (std::regex_search(code_line(s, line), using_ns)) {
      out.push_back({path, line, "header-hygiene",
                     "`using namespace` in a header injects the namespace "
                     "into every includer",
                     "qualify the names or move the directive into a .cc"});
    }
  }
}

void rule_allocation_policy(const std::string& path, const Scrubbed& s,
                            std::vector<Finding>& out) {
  if (!path_has(path, "src/ddt/")) return;
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    const std::string text = code_line(s, line);
    for (const Matcher& m : allocation_matchers()) {
      if (!std::regex_search(text, m.re)) continue;
      if (m.what == std::string_view("delete") && deleted_function_line(text))
        continue;
      out.push_back(
          {path, line, "allocation-policy",
           std::string("raw ") + m.what +
               " in src/ddt/ — DDT storage is pool-only",
           "allocate nodes from the slot's support::Pool<T> "
           "(support/arena.h) so footprint accounting stays truthful"});
    }
  }
}

void rule_determinism(const std::string& path, const Scrubbed& s,
                      const std::vector<FuncDef>& defs,
                      std::vector<Finding>& out) {
  // src/obs/ is the one sanctioned clock consumer: trace timestamps and
  // wall-clock metadata live there, and nothing in it feeds cache keys
  // (observability is output-invariant by contract). Carving the scope
  // out here keeps the rule strict everywhere keys CAN be built.
  if (path_has(path, "src/obs/")) return;
  const bool whole_file = determinism_file(path);
  auto check_line = [&](std::size_t line) {
    const std::string text = code_line(s, line);
    for (const Matcher& m : determinism_matchers()) {
      if (!std::regex_search(text, m.re)) continue;
      out.push_back(
          {path, line, "determinism",
           std::string(m.what) +
               " in cache-key/fingerprint code — keys must be pure "
               "functions of their inputs or warm caches silently lie",
           "derive everything from the trace/config/model contents; "
           "unique run tokens belong outside key code"});
    }
  };
  if (whole_file) {
    for (std::size_t line = 1; line <= s.line_off.size(); ++line)
      check_line(line);
    return;
  }
  for (const FuncDef& d : defs) {
    if (!determinism_function(d.name)) continue;
    const std::size_t first = line_of(s, d.body_begin);
    const std::size_t last = line_of(s, d.body_end - 1);
    for (std::size_t line = first; line <= last; ++line) check_line(line);
  }
}

void rule_durability(const std::string& path, const Scrubbed& s,
                     const std::vector<FuncDef>& defs,
                     std::vector<Finding>& out) {
  static const std::regex rename_re(R"(\brename\s*\()");
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    if (!std::regex_search(code_line(s, line), rename_re)) continue;
    const std::size_t offset = s.line_off[line - 1];
    const FuncDef* fn = enclosing_function(defs, offset);
    const std::string body =
        fn != nullptr
            ? s.code.substr(fn->body_begin, fn->body_end - fn->body_begin)
            : s.code;
    const bool has_file = body.find("fsync_file") != std::string::npos;
    const bool has_dir = body.find("fsync_dir") != std::string::npos;
    if (has_file && has_dir) continue;
    std::string missing;
    if (!has_file) missing += "fsync_file";
    if (!has_dir) missing += missing.empty() ? "fsync_dir" : " and fsync_dir";
    out.push_back(
        {path, line, "durability",
         "rename() without " + missing +
             " in the same function — rename alone is not durable",
         "sync the temp file's content (support::fsync_file) before the "
         "rename and the directory entry (support::fsync_dir) after it"});
  }
}

void rule_decoder_safety(const std::string& path, const Scrubbed& s,
                         const std::vector<FuncDef>& defs,
                         std::vector<Finding>& out) {
  const bool read_scope = decoder_file(path);
  for (const FuncDef& d : defs) {
    const bool is_decoder = d.name.rfind("decode_", 0) == 0;
    const bool is_reader = read_scope && d.name.rfind("read_", 0) == 0;
    if (!is_decoder && !is_reader) continue;
    const std::string sig =
        s.code.substr(d.sig_begin, d.body_begin - d.sig_begin);
    const std::size_t first = line_of(s, d.body_begin);
    const std::size_t last = line_of(s, d.body_end - 1);
    for (std::size_t line = first; line <= last; ++line) {
      const std::string text = code_line(s, line);
      if (text.find(".read(") != std::string::npos) {
        const bool checked_here =
            text.find("if") != std::string::npos ||
            text.find("return") != std::string::npos ||
            text.find("static_cast<bool>") != std::string::npos ||
            text.find("gcount") != std::string::npos;
        bool checked_near = checked_here;
        for (std::size_t n = line + 1; !checked_near && n <= last &&
                                       n <= line + 3;
             ++n) {
          checked_near =
              code_line(s, n).find("gcount") != std::string::npos;
        }
        if (!checked_near) {
          out.push_back(
              {path, line, "decoder-safety",
               "unchecked raw stream read in a decoder — a short or torn "
               "input must surface as a failure, never as stale bytes",
               "test the stream (`if (!is.read(...))`) or compare "
               "gcount() against the requested size"});
        }
      }
      if (text.find("memcpy") != std::string::npos &&
          text.find("sizeof") == std::string::npos) {
        out.push_back({path, line, "decoder-safety",
                       "unbounded memcpy in a decoder",
                       "bound every copy with sizeof(...) or a length "
                       "validated against the remaining input"});
      }
      if (text.find("reinterpret_cast") != std::string::npos) {
        out.push_back({path, line, "decoder-safety",
                       "reinterpret_cast in a decoder — parse bytes through "
                       "the checked binary_io readers instead",
                       "use support::read_u32/u64/f64/string"});
      }
    }
    const bool payload_decoder =
        sig.find("std::string& payload") != std::string::npos ||
        sig.find("std::string &payload") != std::string::npos;
    if (is_decoder && payload_decoder) {
      const std::string body =
          s.code.substr(d.body_begin, d.body_end - d.body_begin);
      if (body.find("at_end(") == std::string::npos) {
        out.push_back(
            {path, line_of(s, d.sig_begin), "decoder-safety",
             "payload decoder `" + d.name +
                 "` does not verify exact consumption — trailing bytes are "
                 "as suspect as missing ones",
             "finish every success path with `&& at_end(is)`"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  const Scrubbed s = scrub(content);
  const std::vector<FuncDef> defs = find_functions(s);
  std::vector<Finding> out;
  rule_header_hygiene(path, s, out);
  rule_allocation_policy(path, s, out);
  rule_determinism(path, s, defs, out);
  rule_durability(path, s, defs, out);
  rule_decoder_safety(path, s, defs, out);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Finding& f) { return suppressed(s, f); }),
            out.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

// --- Accounting registry ------------------------------------------------

namespace {

std::optional<std::string> read_file(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Appends the normalized text of every marked accounting region of one
// file to the running checksum. Marker comments themselves, blank lines
// and comment-only lines are excluded, so commentary and formatting can
// change freely — only code moves the checksum.
void hash_regions(const std::string& rel_path, const std::string& content,
                  support::Fnv1a64& hasher, std::size_t& regions) {
  const Scrubbed s = scrub(content);
  bool in_region = false;
  bool file_counted = false;
  for (std::size_t line = 1; line <= s.comment.size(); ++line) {
    const std::string& c = s.comment[line - 1];
    if (c.find("ddtr-accounting-begin") != std::string::npos) {
      in_region = true;
      ++regions;
      if (!file_counted) {
        hasher.str(rel_path);
        file_counted = true;
      }
      continue;
    }
    if (c.find("ddtr-accounting-end") != std::string::npos) {
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    const std::string t = trimmed(code_line(s, line));
    if (t.empty()) continue;
    hasher.str(t);
  }
}

}  // namespace

AccountingState read_accounting_state(const std::string& repo_root) {
  namespace fs = std::filesystem;
  AccountingState state;
  const fs::path root(repo_root);

  if (auto kinds = read_file(root / "src" / "ddt" / "kinds.h")) {
    static const std::regex version_re(
        R"(kDdtAccountingVersion\s*=\s*(\d+))");
    std::smatch m;
    if (std::regex_search(*kinds, m, version_re)) {
      state.version_found = true;
      state.tree_version =
          static_cast<std::uint32_t>(std::stoul(m[1].str()));
    }
  }

  // Marked regions anywhere under src/ (sorted relative paths keep the
  // checksum stable across filesystems).
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root / "src", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")
      files.push_back(it->path());
  }
  std::vector<std::pair<std::string, fs::path>> rel;
  rel.reserve(files.size());
  for (const fs::path& p : files) {
    rel.emplace_back(normalize(fs::relative(p, root, ec).string()), p);
  }
  std::sort(rel.begin(), rel.end());
  support::Fnv1a64 hasher;
  for (const auto& [r, p] : rel) {
    if (auto content = read_file(p)) {
      hash_regions(r, *content, hasher, state.region_count);
    }
  }
  state.tree_checksum = hasher.digest();

  if (auto lock = read_file(root / kAccountingLockPath)) {
    state.lock_found = true;
    std::istringstream is(*lock);
    std::string line;
    while (std::getline(is, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "version") fields >> state.lock_version;
      if (key == "checksum") fields >> std::hex >> state.lock_checksum;
    }
  }
  return state;
}

std::vector<Finding> check_accounting(const AccountingState& state) {
  std::vector<Finding> out;
  const std::string kinds = "src/ddt/kinds.h";
  if (!state.version_found) {
    out.push_back({kinds, 1, "accounting-version",
                   "kDdtAccountingVersion not found in src/ddt/kinds.h",
                   ""});
    return out;
  }
  if (state.region_count == 0) {
    out.push_back({kinds, 1, "accounting-version",
                   "no ddtr-accounting-begin/end regions found under src/ — "
                   "the accounting tables are unguarded",
                   "mark the cost constants and charge sites with "
                   "// ddtr-accounting-begin ... // ddtr-accounting-end"});
    return out;
  }
  if (!state.lock_found) {
    out.push_back({kAccountingLockPath, 1, "accounting-version",
                   "accounting registry missing",
                   "run `ddtr_lint --update-accounting` to record the "
                   "current (version, checksum) pair"});
    return out;
  }
  if (state.tree_checksum == state.lock_checksum &&
      state.tree_version == state.lock_version) {
    return out;
  }
  if (state.tree_version == state.lock_version) {
    out.push_back(
        {kinds, 1, "accounting-version",
         "DDT accounting regions changed but kDdtAccountingVersion did "
         "not — persistent caches would mix numbers produced under "
         "different accounting semantics",
         "bump kDdtAccountingVersion in src/ddt/kinds.h, then run "
         "`ddtr_lint --update-accounting`"});
  } else {
    out.push_back(
        {kAccountingLockPath, 1, "accounting-version",
         "accounting registry is stale (records v" +
             std::to_string(state.lock_version) + ", tree is v" +
             std::to_string(state.tree_version) + ")",
         "run `ddtr_lint --update-accounting` to re-record it"});
  }
  return out;
}

bool update_accounting(const std::string& repo_root, std::string& error) {
  const AccountingState state = read_accounting_state(repo_root);
  if (!state.version_found) {
    error = "kDdtAccountingVersion not found in src/ddt/kinds.h";
    return false;
  }
  if (state.region_count == 0) {
    error = "no ddtr-accounting-begin/end regions found under src/";
    return false;
  }
  if (state.lock_found && state.tree_version == state.lock_version &&
      state.tree_checksum != state.lock_checksum) {
    error =
        "accounting regions changed but kDdtAccountingVersion did not — "
        "bump it in src/ddt/kinds.h before regenerating the registry";
    return false;
  }
  const std::filesystem::path lock =
      std::filesystem::path(repo_root) / kAccountingLockPath;
  std::error_code ec;
  std::filesystem::create_directories(lock.parent_path(), ec);
  std::ofstream os(lock, std::ios::trunc);
  if (!os) {
    error = "cannot write " + lock.string();
    return false;
  }
  os << "# DDT accounting registry — maintained by `ddtr_lint "
        "--update-accounting`.\n"
     << "# The checksum covers every `ddtr-accounting-begin/end` region "
        "under src/\n"
     << "# (cost constants and charge sites). ddtr_lint fails when those "
        "regions\n"
     << "# change without a kDdtAccountingVersion bump: caches must never "
        "mix\n"
     << "# numbers produced under different accounting semantics.\n"
     << "version " << state.tree_version << "\n"
     << "checksum " << std::hex << state.tree_checksum << std::dec << "\n"
     << "regions " << state.region_count << "\n";
  return os.good();
}

// --- Driver -------------------------------------------------------------

std::size_t run_lint(const RunOptions& options, std::ostream& out) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& root : options.roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")
          files.push_back(it->path());
      }
    } else if (fs::exists(root, ec)) {
      files.emplace_back(root);
    } else {
      out << "ddtr_lint: warning: no such path: " << root << "\n";
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& p : files) {
    if (auto content = read_file(p)) {
      std::vector<Finding> f = lint_source(normalize(p.string()), *content);
      findings.insert(findings.end(), f.begin(), f.end());
    } else {
      out << "ddtr_lint: warning: cannot read " << p.string() << "\n";
    }
  }

  if (!options.repo_root.empty()) {
    if (options.update_accounting) {
      std::string error;
      if (!update_accounting(options.repo_root, error)) {
        findings.push_back(
            {kAccountingLockPath, 1, "accounting-version", error, ""});
      }
    }
    std::vector<Finding> f =
        check_accounting(read_accounting_state(options.repo_root));
    findings.insert(findings.end(), f.begin(), f.end());
  }

  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.fixit.empty()) out << "    hint: " << f.fixit << "\n";
  }
  out << "ddtr_lint: " << findings.size() << " finding(s) in "
      << files.size() << " file(s) scanned\n";
  return findings.size();
}

}  // namespace ddtr::lint
