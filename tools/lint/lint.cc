#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>
#include <tuple>

#include "deps.h"
#include "fix.h"
#include "locks.h"
#include "scan.h"
#include "support/fnv_hash.h"

namespace ddtr::lint {
namespace {

// Files whose every line is cache-key/fingerprint code: a stray clock or
// pid anywhere in them poisons key purity.
bool determinism_file(const std::string& path) {
  static const char* const files[] = {
      "support/fnv_hash.h",      "support/rng.h",
      "support/rng.cc",          "apps/common/flow_key.h",
      "core/simulation_cache.h", "core/simulation_cache.cc"};
  const std::string p = normalize_path(path);
  return std::any_of(std::begin(files), std::end(files),
                     [&](const char* f) { return p.ends_with(f); });
}

// Functions that produce cache keys or fingerprints wherever they are
// defined; their bodies must be pure.
bool determinism_function(const std::string& name) {
  static const char* const names[] = {
      "content_hash",      "fingerprint", "shard_of_key",
      "step1_fingerprint", "preset_key",  "fnv1a64",
      "fnv1a64_append",    "mix64",       "five_tuple_key"};
  return std::any_of(std::begin(names), std::end(names),
                     [&](const char* n) { return name == n; });
}

bool decoder_file(const std::string& path) {
  return path_has(path, "serve/protocol") || path_has(path, "support/binary_io");
}

// --- Rule helpers -------------------------------------------------------

struct Matcher {
  std::regex re;
  const char* what;
};

const std::vector<Matcher>& determinism_matchers() {
  static const std::vector<Matcher> m = [] {
    std::vector<Matcher> v;
    v.push_back({std::regex(R"(\brand\s*\()"), "rand()"});
    v.push_back({std::regex(R"(\bsrand\s*\()"), "srand()"});
    v.push_back({std::regex(R"(\btime\s*\()"), "time()"});
    v.push_back({std::regex(R"(system_clock)"), "system_clock"});
    v.push_back({std::regex(R"(\bgetpid\b)"), "getpid()"});
    v.push_back({std::regex(R"(random_device)"), "std::random_device"});
    return v;
  }();
  return m;
}

const std::vector<Matcher>& allocation_matchers() {
  static const std::vector<Matcher> m = [] {
    std::vector<Matcher> v;
    v.push_back({std::regex(R"(\bnew\b)"), "new"});
    v.push_back({std::regex(R"(\bdelete\b)"), "delete"});
    v.push_back({std::regex(R"(\bmalloc\b|\bcalloc\b|\brealloc\b)"),
                 "malloc-family allocation"});
    v.push_back({std::regex(R"(\bfree\s*\()"), "free()"});
    return v;
  }();
  return m;
}

// `= delete;` declares a deleted function; only `delete expr` frees.
bool deleted_function_line(const std::string& line) {
  static const std::regex re(R"(=\s*delete\b)");
  return std::regex_search(line, re);
}

// --- The per-file rules -------------------------------------------------

void rule_header_hygiene(const std::string& path, const Scrubbed& s,
                         std::vector<Finding>& out) {
  if (!is_header_path(path)) return;
  if (s.code.find("#pragma once") == std::string::npos) {
    out.push_back({path, 1, "header-hygiene",
                   "header is missing `#pragma once`",
                   "add `#pragma once` as the first directive "
                   "(autofixable: `ddtr lint --fix`)"});
  }
  static const std::regex using_ns(R"(\busing\s+namespace\b)");
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    if (std::regex_search(code_line(s, line), using_ns)) {
      out.push_back({path, line, "header-hygiene",
                     "`using namespace` in a header injects the namespace "
                     "into every includer",
                     "qualify the names or move the directive into a .cc"});
    }
  }
}

void rule_allocation_policy(const std::string& path, const Scrubbed& s,
                            std::vector<Finding>& out) {
  if (!path_has(path, "src/ddt/")) return;
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    const std::string text = code_line(s, line);
    for (const Matcher& m : allocation_matchers()) {
      if (!std::regex_search(text, m.re)) continue;
      if (m.what == std::string_view("delete") && deleted_function_line(text))
        continue;
      out.push_back(
          {path, line, "allocation-policy",
           std::string("raw ") + m.what +
               " in src/ddt/ — DDT storage is pool-only",
           "allocate nodes from the slot's support::Pool<T> "
           "(support/arena.h) so footprint accounting stays truthful"});
    }
  }
}

void rule_determinism(const std::string& path, const Scrubbed& s,
                      const std::vector<FuncDef>& defs,
                      const LintConfig& config,
                      std::vector<Finding>& out) {
  // The exempt prefixes (tools/lint/layers.lock `determinism-exempt`)
  // are the sanctioned clock consumers — src/obs/ by default: trace
  // timestamps and wall-clock metadata live there, and nothing in them
  // feeds cache keys. Everywhere keys CAN be built stays strict.
  for (const std::string& prefix : config.determinism_exempt) {
    if (path_has(path, prefix)) return;
  }
  const bool whole_file = determinism_file(path);
  auto check_line = [&](std::size_t line) {
    const std::string text = code_line(s, line);
    for (const Matcher& m : determinism_matchers()) {
      if (!std::regex_search(text, m.re)) continue;
      out.push_back(
          {path, line, "determinism",
           std::string(m.what) +
               " in cache-key/fingerprint code — keys must be pure "
               "functions of their inputs or warm caches silently lie",
           "derive everything from the trace/config/model contents; "
           "unique run tokens belong outside key code"});
    }
  };
  if (whole_file) {
    for (std::size_t line = 1; line <= s.line_off.size(); ++line)
      check_line(line);
    return;
  }
  for (const FuncDef& d : defs) {
    if (!determinism_function(d.name)) continue;
    const std::size_t first = line_of(s, d.body_begin);
    const std::size_t last = line_of(s, d.body_end - 1);
    for (std::size_t line = first; line <= last; ++line) check_line(line);
  }
}

void rule_durability(const std::string& path, const Scrubbed& s,
                     const std::vector<FuncDef>& defs,
                     std::vector<Finding>& out) {
  static const std::regex rename_re(R"(\brename\s*\()");
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    if (!std::regex_search(code_line(s, line), rename_re)) continue;
    const std::size_t offset = s.line_off[line - 1];
    const FuncDef* fn = enclosing_function(defs, offset);
    const std::string body =
        fn != nullptr
            ? s.code.substr(fn->body_begin, fn->body_end - fn->body_begin)
            : s.code;
    const bool has_file = body.find("fsync_file") != std::string::npos;
    const bool has_dir = body.find("fsync_dir") != std::string::npos;
    if (has_file && has_dir) continue;
    std::string missing;
    if (!has_file) missing += "fsync_file";
    if (!has_dir) missing += missing.empty() ? "fsync_dir" : " and fsync_dir";
    out.push_back(
        {path, line, "durability",
         "rename() without " + missing +
             " in the same function — rename alone is not durable",
         "sync the temp file's content (support::fsync_file) before the "
         "rename and the directory entry (support::fsync_dir) after it"});
  }
}

void rule_decoder_safety(const std::string& path, const Scrubbed& s,
                         const std::vector<FuncDef>& defs,
                         std::vector<Finding>& out) {
  const bool read_scope = decoder_file(path);
  for (const FuncDef& d : defs) {
    const bool is_decoder = d.name.rfind("decode_", 0) == 0;
    const bool is_reader = read_scope && d.name.rfind("read_", 0) == 0;
    if (!is_decoder && !is_reader) continue;
    const std::string sig =
        s.code.substr(d.sig_begin, d.body_begin - d.sig_begin);
    const std::size_t first = line_of(s, d.body_begin);
    const std::size_t last = line_of(s, d.body_end - 1);
    for (std::size_t line = first; line <= last; ++line) {
      const std::string text = code_line(s, line);
      if (text.find(".read(") != std::string::npos) {
        const bool checked_here =
            text.find("if") != std::string::npos ||
            text.find("return") != std::string::npos ||
            text.find("static_cast<bool>") != std::string::npos ||
            text.find("gcount") != std::string::npos;
        bool checked_near = checked_here;
        for (std::size_t n = line + 1; !checked_near && n <= last &&
                                       n <= line + 3;
             ++n) {
          checked_near =
              code_line(s, n).find("gcount") != std::string::npos;
        }
        if (!checked_near) {
          out.push_back(
              {path, line, "decoder-safety",
               "unchecked raw stream read in a decoder — a short or torn "
               "input must surface as a failure, never as stale bytes",
               "test the stream (`if (!is.read(...))`) or compare "
               "gcount() against the requested size"});
        }
      }
      if (text.find("memcpy") != std::string::npos &&
          text.find("sizeof") == std::string::npos) {
        out.push_back({path, line, "decoder-safety",
                       "unbounded memcpy in a decoder",
                       "bound every copy with sizeof(...) or a length "
                       "validated against the remaining input"});
      }
      if (text.find("reinterpret_cast") != std::string::npos) {
        out.push_back({path, line, "decoder-safety",
                       "reinterpret_cast in a decoder — parse bytes through "
                       "the checked binary_io readers instead",
                       "use support::read_u32/u64/f64/string"});
      }
    }
    const bool payload_decoder =
        sig.find("std::string& payload") != std::string::npos ||
        sig.find("std::string &payload") != std::string::npos;
    if (is_decoder && payload_decoder) {
      const std::string body =
          s.code.substr(d.body_begin, d.body_end - d.body_begin);
      if (body.find("at_end(") == std::string::npos) {
        out.push_back(
            {path, line_of(s, d.sig_begin), "decoder-safety",
             "payload decoder `" + d.name +
                 "` does not verify exact consumption — trailing bytes are "
                 "as suspect as missing ones",
             "finish every success path with `&& at_end(is)`"});
      }
    }
  }
}

std::vector<Finding> lint_file(const SourceFile& file,
                               const LintConfig& config) {
  std::vector<Finding> out;
  rule_header_hygiene(file.path, file.scrubbed, out);
  rule_allocation_policy(file.path, file.scrubbed, out);
  rule_determinism(file.path, file.scrubbed, file.defs, config, out);
  rule_durability(file.path, file.scrubbed, file.defs, out);
  rule_decoder_safety(file.path, file.scrubbed, file.defs, out);
  out.erase(
      std::remove_if(out.begin(), out.end(),
                     [&](const Finding& f) {
                       return suppressed(file.scrubbed, f);
                     }),
      out.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const LintConfig& config) {
  return lint_file(make_source_file(path, content), config);
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  return lint_source(path, content, LintConfig{});
}

// --- Accounting registry ------------------------------------------------

namespace {

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Appends the normalized text of every marked accounting region of one
// file to the running checksum. Marker comments themselves, blank lines
// and comment-only lines are excluded, so commentary and formatting can
// change freely — only code moves the checksum.
void hash_regions(const std::string& rel_path, const std::string& content,
                  support::Fnv1a64& hasher, std::size_t& regions) {
  const Scrubbed s = scrub(content);
  bool in_region = false;
  bool file_counted = false;
  for (std::size_t line = 1; line <= s.comment.size(); ++line) {
    const std::string& c = s.comment[line - 1];
    if (c.find("ddtr-accounting-begin") != std::string::npos) {
      in_region = true;
      ++regions;
      if (!file_counted) {
        hasher.str(rel_path);
        file_counted = true;
      }
      continue;
    }
    if (c.find("ddtr-accounting-end") != std::string::npos) {
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    const std::string t = trimmed(code_line(s, line));
    if (t.empty()) continue;
    hasher.str(t);
  }
}

}  // namespace

AccountingState read_accounting_state(const std::string& repo_root) {
  namespace fs = std::filesystem;
  AccountingState state;
  const fs::path root(repo_root);

  if (auto kinds = read_file_text((root / "src" / "ddt" / "kinds.h").string())) {
    static const std::regex version_re(
        R"(kDdtAccountingVersion\s*=\s*(\d+))");
    std::smatch m;
    if (std::regex_search(*kinds, m, version_re)) {
      state.version_found = true;
      state.tree_version =
          static_cast<std::uint32_t>(std::stoul(m[1].str()));
    }
  }

  // Marked regions anywhere under src/ (sorted relative paths keep the
  // checksum stable across filesystems).
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root / "src", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")
      files.push_back(it->path());
  }
  std::vector<std::pair<std::string, fs::path>> rel;
  rel.reserve(files.size());
  for (const fs::path& p : files) {
    rel.emplace_back(normalize_path(fs::relative(p, root, ec).string()), p);
  }
  std::sort(rel.begin(), rel.end());
  support::Fnv1a64 hasher;
  for (const auto& [r, p] : rel) {
    if (auto content = read_file_text(p.string())) {
      hash_regions(r, *content, hasher, state.region_count);
    }
  }
  state.tree_checksum = hasher.digest();

  if (auto lock = read_file_text((root / kAccountingLockPath).string())) {
    state.lock_found = true;
    std::istringstream is(*lock);
    std::string line;
    while (std::getline(is, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "version") fields >> state.lock_version;
      if (key == "checksum") fields >> std::hex >> state.lock_checksum;
    }
  }
  return state;
}

std::vector<Finding> check_accounting(const AccountingState& state) {
  std::vector<Finding> out;
  const std::string kinds = "src/ddt/kinds.h";
  if (!state.version_found) {
    out.push_back({kinds, 1, "accounting-version",
                   "kDdtAccountingVersion not found in src/ddt/kinds.h",
                   ""});
    return out;
  }
  if (state.region_count == 0) {
    out.push_back({kinds, 1, "accounting-version",
                   "no ddtr-accounting-begin/end regions found under src/ — "
                   "the accounting tables are unguarded",
                   "mark the cost constants and charge sites with "
                   "// ddtr-accounting-begin ... // ddtr-accounting-end"});
    return out;
  }
  if (!state.lock_found) {
    out.push_back({kAccountingLockPath, 1, "accounting-version",
                   "accounting registry missing",
                   "run `ddtr_lint --update-accounting` to record the "
                   "current (version, checksum) pair"});
    return out;
  }
  if (state.tree_checksum == state.lock_checksum &&
      state.tree_version == state.lock_version) {
    return out;
  }
  if (state.tree_version == state.lock_version) {
    out.push_back(
        {kinds, 1, "accounting-version",
         "DDT accounting regions changed but kDdtAccountingVersion did "
         "not — persistent caches would mix numbers produced under "
         "different accounting semantics",
         "bump kDdtAccountingVersion in src/ddt/kinds.h, then run "
         "`ddtr_lint --update-accounting`"});
  } else {
    out.push_back(
        {kAccountingLockPath, 1, "accounting-version",
         "accounting registry is stale (records v" +
             std::to_string(state.lock_version) + ", tree is v" +
             std::to_string(state.tree_version) + ")",
         "run `ddtr_lint --update-accounting` to re-record it"});
  }
  return out;
}

bool update_accounting(const std::string& repo_root, std::string& error) {
  const AccountingState state = read_accounting_state(repo_root);
  if (!state.version_found) {
    error = "kDdtAccountingVersion not found in src/ddt/kinds.h";
    return false;
  }
  if (state.region_count == 0) {
    error = "no ddtr-accounting-begin/end regions found under src/";
    return false;
  }
  if (state.lock_found && state.tree_version == state.lock_version &&
      state.tree_checksum != state.lock_checksum) {
    error =
        "accounting regions changed but kDdtAccountingVersion did not — "
        "bump it in src/ddt/kinds.h before regenerating the registry";
    return false;
  }
  const std::filesystem::path lock =
      std::filesystem::path(repo_root) / kAccountingLockPath;
  std::error_code ec;
  std::filesystem::create_directories(lock.parent_path(), ec);
  std::ofstream os(lock, std::ios::trunc);
  if (!os) {
    error = "cannot write " + lock.string();
    return false;
  }
  os << "# DDT accounting registry — maintained by `ddtr_lint "
        "--update-accounting`.\n"
     << "# The checksum covers every `ddtr-accounting-begin/end` region "
        "under src/\n"
     << "# (cost constants and charge sites). ddtr_lint fails when those "
        "regions\n"
     << "# change without a kDdtAccountingVersion bump: caches must never "
        "mix\n"
     << "# numbers produced under different accounting semantics.\n"
     << "version " << state.tree_version << "\n"
     << "checksum " << std::hex << state.tree_checksum << std::dec << "\n"
     << "regions " << state.region_count << "\n";
  return os.good();
}

// --- Driver -------------------------------------------------------------

namespace {

// Files changed vs a git ref (plus untracked files), repo-relative.
// nullopt when git is unavailable or the ref is malformed.
std::optional<std::set<std::string>> git_changed_files(
    const std::string& repo_root, const std::string& ref) {
#ifdef _WIN32
  (void)repo_root;
  (void)ref;
  return std::nullopt;
#else
  const bool ref_ok =
      !ref.empty() &&
      std::all_of(ref.begin(), ref.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
               c == '_' || c == '-' || c == '.' || c == '/' || c == '~' ||
               c == '^' || c == '@';
      });
  if (!ref_ok) return std::nullopt;
  std::set<std::string> changed;
  const std::string root = repo_root.empty() ? "." : repo_root;
  for (const std::string& cmd :
       {"git -C '" + root + "' diff --name-only '" + ref +
            "' -- 2>/dev/null",
        "git -C '" + root + "' ls-files --others --exclude-standard "
            "2>/dev/null"}) {
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return std::nullopt;
    char buf[4096];
    std::string text;
    while (fgets(buf, sizeof(buf), pipe) != nullptr) text += buf;
    const int rc = pclose(pipe);
    if (rc != 0) return std::nullopt;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) changed.insert(normalize_path(line));
    }
  }
  return changed;
#endif
}

bool fix_scope(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.rfind("tools/", 0) == 0;
}

struct TreeScan {
  std::vector<SourceFile> files;            // path = repo-relative
  std::vector<std::filesystem::path> disk;  // same index: where to write
};

// One full analysis over the scanned tree: per-file rules, include
// order, the dependency/layering pass and the lock-order pass, with
// suppressions applied to everything.
std::vector<Finding> collect_findings(
    const TreeScan& tree, const LintConfig& config,
    const LayerContract& contract,
    std::map<std::string, std::set<std::size_t>>* removable) {
  std::vector<Finding> findings;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : tree.files) by_path[f.path] = &f;

  for (const SourceFile& f : tree.files) {
    std::vector<Finding> per = lint_file(f, config);
    findings.insert(findings.end(), per.begin(), per.end());
    if (fix_scope(f.path)) check_include_order(f, findings);
  }

  std::vector<SourceFile> srcs;
  for (const SourceFile& f : tree.files) {
    if (f.path.rfind("src/", 0) == 0) srcs.push_back(f);
  }
  DepAnalysis deps = analyze_dependencies(srcs, contract);
  findings.insert(findings.end(), deps.findings.begin(),
                  deps.findings.end());
  if (removable != nullptr) *removable = std::move(deps.removable);

  std::vector<Finding> locks = check_locks(srcs);
  findings.insert(findings.end(), locks.begin(), locks.end());

  // Whole-program passes emit raw findings; honor suppressions here.
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       auto it = by_path.find(f.path);
                       return it != by_path.end() &&
                              suppressed(it->second->scrubbed, f);
                     }),
      findings.end());
  // A suppressed include-unused must not be auto-removed either.
  if (removable != nullptr) {
    for (auto& [path, lines] : *removable) {
      auto it = by_path.find(path);
      if (it == by_path.end()) continue;
      for (auto line_it = lines.begin(); line_it != lines.end();) {
        Finding probe{path, *line_it, "include-unused", "", ""};
        if (suppressed(it->second->scrubbed, probe)) {
          line_it = lines.erase(line_it);
        } else {
          ++line_it;
        }
      }
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.path, a.line) <
                            std::tie(b.path, b.line);
                   });
  return findings;
}

}  // namespace

std::size_t run_lint(const RunOptions& options, std::ostream& out) {
  namespace fs = std::filesystem;

  // The layer contract doubles as the lint config (determinism
  // exemptions live in the same lock file).
  std::string layers_error;
  LayerContract contract;
  if (!options.repo_root.empty()) {
    contract = load_layers(options.repo_root, &layers_error);
  } else {
    contract.determinism_exempt.push_back("src/obs/");
  }
  LintConfig config;
  config.determinism_exempt = contract.determinism_exempt;

  std::vector<fs::path> paths;
  for (const std::string& root : options.roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")
          paths.push_back(it->path());
      }
    } else if (fs::exists(root, ec)) {
      paths.emplace_back(root);
    } else {
      out << "ddtr_lint: warning: no such path: " << root << "\n";
    }
  }
  // A compile_commands.json contributes its translation units — the
  // build's ground truth of what is actually compiled (generated or
  // out-of-root files would only be visible here).
  if (!options.compile_commands.empty()) {
    if (auto cc = compile_commands_files(options.compile_commands,
                                         options.repo_root)) {
      for (const std::string& f : *cc) {
        const fs::path p = fs::path(options.repo_root.empty()
                                        ? "."
                                        : options.repo_root) /
                           f;
        std::error_code ec;
        if (fs::is_regular_file(p, ec)) paths.push_back(p);
      }
    } else {
      out << "ddtr_lint: warning: cannot read compile database "
          << options.compile_commands << "\n";
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // Scan once; every pass shares the records. Paths are normalized to
  // be repo-relative so rule scopes and the module graph line up no
  // matter how the roots were spelled.
  TreeScan tree;
  std::set<std::string> seen;
  const fs::path root_path(options.repo_root.empty() ? "."
                                                     : options.repo_root);
  for (const fs::path& p : paths) {
    std::error_code ec;
    std::string rel = normalize_path(fs::proximate(p, root_path, ec).string());
    if (ec || rel.empty() || rel.rfind("..", 0) == 0) {
      rel = normalize_path(p.string());
    }
    if (!seen.insert(rel).second) continue;
    if (auto content = read_file_text(p.string())) {
      tree.files.push_back(make_source_file(rel, std::move(*content)));
      tree.disk.push_back(p);
    } else {
      out << "ddtr_lint: warning: cannot read " << p.string() << "\n";
    }
  }

  std::map<std::string, std::set<std::size_t>> removable;
  std::vector<Finding> findings =
      collect_findings(tree, config, contract, &removable);
  if (!layers_error.empty()) {
    findings.insert(findings.begin(),
                    {kLayersLockPath, 1, "layering", layers_error,
                     "fix the contract file; the layering pass is "
                     "skipped until it parses"});
  }

  // --fix: apply the mechanical repairs, then re-run the analysis on
  // the repaired tree so the report shows what remains.
  if (options.fix) {
    std::size_t fixed = 0;
    for (std::size_t i = 0; i < tree.files.size(); ++i) {
      SourceFile& f = tree.files[i];
      if (!fix_scope(f.path)) continue;
      const auto rem_it = removable.find(f.path);
      const std::set<std::size_t> rem = rem_it != removable.end()
                                            ? rem_it->second
                                            : std::set<std::size_t>{};
      const std::optional<FileFix> fix = fix_source(f, rem);
      if (!fix) continue;
      ++fixed;
      if (options.dry_run) {
        out << unified_diff(f.content, fix->after, f.path);
        continue;
      }
      std::ofstream os(tree.disk[i], std::ios::binary | std::ios::trunc);
      os << fix->after;
      if (!os.good()) {
        out << "ddtr_lint: error: cannot write " << tree.disk[i].string()
            << "\n";
        continue;
      }
      out << "ddtr_lint: fixed " << f.path;
      for (const std::string& note : fix->notes) out << " [" << note << "]";
      out << "\n";
      f = make_source_file(f.path, fix->after);
    }
    if (options.dry_run) {
      out << "ddtr_lint: --dry-run: " << fixed
          << " file(s) would be rewritten\n";
    } else if (fixed != 0) {
      findings = collect_findings(tree, config, contract, nullptr);
      if (!layers_error.empty()) {
        findings.insert(findings.begin(),
                        {kLayersLockPath, 1, "layering", layers_error, ""});
      }
    }
  }

  if (!options.repo_root.empty()) {
    if (options.update_accounting) {
      std::string error;
      if (!update_accounting(options.repo_root, error)) {
        findings.push_back(
            {kAccountingLockPath, 1, "accounting-version", error, ""});
      }
    }
    std::vector<Finding> f =
        check_accounting(read_accounting_state(options.repo_root));
    findings.insert(findings.end(), f.begin(), f.end());
  }

  // --diff REF: report only findings in files changed vs the ref (the
  // registry/contract checks are global and always reported).
  if (!options.diff_ref.empty()) {
    const auto changed = git_changed_files(options.repo_root,
                                           options.diff_ref);
    if (!changed) {
      out << "ddtr_lint: warning: cannot resolve --diff "
          << options.diff_ref << " (is this a git checkout?); "
          << "reporting all findings\n";
    } else {
      const std::size_t before = findings.size();
      findings.erase(
          std::remove_if(findings.begin(), findings.end(),
                         [&](const Finding& f) {
                           if (f.path == kAccountingLockPath ||
                               f.path == kLayersLockPath ||
                               f.path == "src/ddt/kinds.h") {
                             return false;
                           }
                           return changed->count(f.path) == 0;
                         }),
          findings.end());
      out << "ddtr_lint: --diff " << options.diff_ref << ": "
          << changed->size() << " changed file(s), " << before
          << " finding(s) before restriction\n";
    }
  }

  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.fixit.empty()) out << "    hint: " << f.fixit << "\n";
  }
  out << "ddtr_lint: " << findings.size() << " finding(s) in "
      << tree.files.size() << " file(s) scanned\n";
  return findings.size();
}

}  // namespace ddtr::lint
