#include "scan.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace ddtr::lint {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scrubbed scrub(const std::string& text) {
  Scrubbed out;
  out.code = text;
  out.comment.assign(std::count(text.begin(), text.end(), '\n') + 2, "");
  out.line_off.push_back(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  std::size_t line = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      out.line_off.push_back(i + 1);
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // R"delim( — find the delimiter, then scan for )delim".
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !ident_char(text[i - 1]))) {
          // The ident_char guard keeps digit separators (1'000'000) and
          // literal suffixes out of the char-literal state.
          state = State::kChar;
        }
        break;
      case State::kLine:
      case State::kBlock:
        if (state == State::kBlock && c == '*' && next == '/') {
          out.code[i] = out.code[i + 1] = ' ';
          out.comment[line] += ' ';
          ++i;
          state = State::kCode;
          break;
        }
        out.comment[line] += c;
        out.code[i] = ' ';
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            out.code[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        } else {
          out.code[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        } else {
          out.code[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const Scrubbed& s, std::size_t offset) {
  auto it = std::upper_bound(s.line_off.begin(), s.line_off.end(), offset);
  return static_cast<std::size_t>(it - s.line_off.begin());  // 1-based
}

std::string code_line(const Scrubbed& s, std::size_t line1) {
  if (line1 == 0 || line1 > s.line_off.size()) return "";
  const std::size_t begin = s.line_off[line1 - 1];
  const std::size_t end = line1 < s.line_off.size() ? s.line_off[line1] - 1
                                                    : s.code.size();
  return s.code.substr(begin, end - begin);
}

namespace {

bool is_keyword(std::string_view id) {
  static const char* const kw[] = {
      "if",     "while",  "for",    "switch",        "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "assert", "throw",
      "new",    "delete", "alignas", "defined",      "requires"};
  return std::any_of(std::begin(kw), std::end(kw),
                     [&](const char* k) { return id == k; });
}

}  // namespace

std::vector<FuncDef> find_functions(const Scrubbed& s) {
  std::vector<FuncDef> defs;
  const std::string& code = s.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t end = i;
    while (end < code.size() && ident_char(code[end])) ++end;
    const std::string name = code.substr(i, end - i);
    if (is_keyword(name) || std::isdigit(static_cast<unsigned char>(name[0]))) {
      i = end - 1;
      continue;
    }
    std::size_t j = end;
    while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j])))
      ++j;
    if (j >= code.size() || code[j] != '(') {
      i = end - 1;
      continue;
    }
    // A member call (`os.write(...)`) is never a definition.
    std::size_t prev = i;
    while (prev > 0 &&
           std::isspace(static_cast<unsigned char>(code[prev - 1])))
      --prev;
    if (prev > 0 && (code[prev - 1] == '.' ||
                     (prev > 1 && code[prev - 2] == '-' &&
                      code[prev - 1] == '>'))) {
      i = end - 1;
      continue;
    }
    // Balance the parameter list.
    int depth = 0;
    std::size_t k = j;
    for (; k < code.size(); ++k) {
      if (code[k] == '(') ++depth;
      if (code[k] == ')' && --depth == 0) break;
    }
    if (k >= code.size()) break;
    // Scan to `{` (definition) or `;`/operator (declaration or call),
    // tolerating qualifiers, noexcept(...), ctor-init lists and trailing
    // return types.
    int d2 = 0;
    std::size_t m = k + 1;
    bool def = false;
    for (; m < code.size(); ++m) {
      const char c = code[m];
      if (c == '(' || c == '[') ++d2;
      if (c == ')' || c == ']') --d2;
      if (d2 > 0) continue;
      if (c == '{') {
        def = true;
        break;
      }
      if (c == ';' || c == ',' || c == '=' || c == '+' || c == '}' ||
          c == '?' || c == '|' || c == '"') {
        break;
      }
    }
    if (!def) {
      i = end - 1;
      continue;
    }
    // Balance the body.
    int bd = 0;
    std::size_t b = m;
    for (; b < code.size(); ++b) {
      if (code[b] == '{') ++bd;
      if (code[b] == '}' && --bd == 0) break;
    }
    defs.push_back({name, i, m, b < code.size() ? b + 1 : code.size()});
    i = end - 1;
  }
  return defs;
}

const FuncDef* enclosing_function(const std::vector<FuncDef>& defs,
                                  std::size_t offset) {
  const FuncDef* best = nullptr;
  for (const FuncDef& d : defs) {
    if (offset < d.body_begin || offset >= d.body_end) continue;
    if (best == nullptr || d.body_begin > best->body_begin) best = &d;
  }
  return best;
}

std::vector<IncludeDirective> find_includes(const Scrubbed& s,
                                            const std::string& raw) {
  std::vector<IncludeDirective> out;
  int if_depth = 0;
  for (std::size_t line = 1; line <= s.line_off.size(); ++line) {
    const std::string text = code_line(s, line);
    std::size_t p = text.find_first_not_of(" \t");
    if (p == std::string::npos || text[p] != '#') continue;
    ++p;
    p = text.find_first_not_of(" \t", p);
    if (p == std::string::npos) continue;
    if (text.compare(p, 2, "if") == 0) {
      ++if_depth;
      continue;
    }
    if (text.compare(p, 5, "endif") == 0) {
      if (if_depth > 0) --if_depth;
      continue;
    }
    if (text.compare(p, 7, "include") != 0) continue;
    p = text.find_first_not_of(" \t", p + 7);
    if (p == std::string::npos) continue;
    IncludeDirective inc;
    inc.line = line;
    inc.conditional = if_depth > 0;
    char close = '\0';
    if (text[p] == '<') {
      inc.angle = true;
      close = '>';
    } else if (text[p] == '"') {
      inc.angle = false;
      close = '"';
    } else {
      continue;  // computed include (macro) — out of scope
    }
    // The string scrubber blanks quoted targets in the code view, so the
    // target bytes come from the raw content — offsets map 1:1.
    const std::size_t begin = s.line_off[line - 1];
    const std::size_t open = begin + p;
    std::size_t q = open + 1;
    while (q < raw.size() && raw[q] != close && raw[q] != '\n') ++q;
    if (q >= raw.size() || raw[q] != close) continue;
    inc.target = raw.substr(open + 1, q - open - 1);
    out.push_back(std::move(inc));
  }
  return out;
}

std::string normalize_path(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has(const std::string& path, std::string_view needle) {
  return normalize_path(path).find(needle) != std::string::npos;
}

bool is_header_path(const std::string& path) {
  const std::string p = normalize_path(path);
  return p.ends_with(".h") || p.ends_with(".hpp");
}

bool comment_allows(const std::string& comment, const std::string& rule,
                    bool file_scope) {
  const std::string tag =
      file_scope ? "ddtr-lint: allow-file(" : "ddtr-lint: allow(";
  std::size_t pos = comment.find(tag);
  while (pos != std::string::npos) {
    const std::size_t open = pos + tag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::istringstream list(comment.substr(open, close - open));
    std::string item;
    while (std::getline(list, item, ',')) {
      const auto b = item.find_first_not_of(" \t");
      const auto e = item.find_last_not_of(" \t");
      if (b != std::string::npos && item.substr(b, e - b + 1) == rule)
        return true;
    }
    pos = comment.find(tag, close);
  }
  return false;
}

bool suppressed(const Scrubbed& s, const Finding& f) {
  for (const std::string& c : s.comment) {
    if (comment_allows(c, f.rule, /*file_scope=*/true)) return true;
  }
  const auto at = [&](std::size_t line1) {
    return line1 >= 1 && line1 <= s.comment.size() &&
           comment_allows(s.comment[line1 - 1], f.rule, false);
  };
  return at(f.line) || (f.line > 1 && at(f.line - 1));
}

SourceFile make_source_file(std::string path, std::string content) {
  SourceFile file;
  file.path = normalize_path(path);
  file.content = std::move(content);
  file.scrubbed = scrub(file.content);
  file.defs = find_functions(file.scrubbed);
  file.includes = find_includes(file.scrubbed, file.content);
  return file;
}

std::optional<std::string> read_file_text(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace ddtr::lint
