#include "locks.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>

namespace ddtr::lint {
namespace {

bool guard_type(std::string_view tok) {
  return tok == "lock_guard" || tok == "unique_lock" || tok == "scoped_lock";
}

// `<module>/<stem>` of a repo-relative path: "src/serve/server.cc" →
// "serve/server". Header/impl pairs share a stem, so a mutex locked in
// both files is one node.
std::string file_qualifier(const std::string& path) {
  std::string p = normalize_path(path);
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  const std::size_t dot = p.rfind('.');
  if (dot != std::string::npos) p.resize(dot);
  return p;
}

// The last identifier token of a mutex expression names the mutex:
// `mu_` → mu_, `state->mu` → mu, `*mu` → mu, `io_mutex()` → io_mutex.
std::string mutex_token(const std::string& expr) {
  std::string last;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (!ident_char(expr[i]) || (i > 0 && ident_char(expr[i - 1]))) continue;
    std::size_t e = i;
    while (e < expr.size() && ident_char(expr[e])) ++e;
    last = expr.substr(i, e - i);
    i = e - 1;
  }
  return last;
}

std::size_t skip_ws(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])))
    ++i;
  return i;
}

// Splits the contents of a balanced `(...)` at top-level commas.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  int paren = 0, brace = 0, bracket = 0, angle = 0;
  std::string cur;
  for (char c : args) {
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == ',' && paren == 0 && brace == 0 && bracket == 0 && angle == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

struct CallSite {
  std::string callee;
  std::size_t line = 0;
  std::vector<std::string> held;  // qualified mutexes active at the call
};

struct FuncLocks {
  const SourceFile* file = nullptr;
  const FuncDef* def = nullptr;
  std::set<std::string> acquires;  // qualified mutexes taken directly
  std::vector<CallSite> calls;
};

struct Edge {
  std::string witness;  // "path:line (fn)" of the first observation
};

struct LockWorld {
  // held-mutex → then-acquired-mutex, with the first witness.
  std::map<std::string, std::map<std::string, Edge>> edges;
  std::vector<Finding> findings;
  std::map<std::string, std::vector<FuncLocks>> by_name;  // per file+name
};

// Walks one function body: tracks brace depth, guard lifetimes and
// `.unlock()` releases, records acquisition edges, same-scope
// re-acquisitions, and call sites with the held set.
void scan_function(const SourceFile& file, const FuncDef& def,
                   const std::set<std::string>& local_fns, LockWorld& world,
                   FuncLocks& fl) {
  const Scrubbed& s = file.scrubbed;
  const std::string& code = s.code;
  const std::string qual = file_qualifier(file.path);

  struct Guard {
    std::string var;
    std::string mutex;  // qualified; empty for deferred guards
    int depth = 0;
  };
  std::vector<Guard> active;
  int depth = 0;

  const auto add_edge = [&](const std::string& from, const std::string& to,
                            std::size_t line) {
    auto& e = world.edges[from];
    if (e.find(to) == e.end()) {
      e[to] = {file.path + ":" + std::to_string(line) + " (" + def.name +
               ")"};
    }
  };

  const auto acquire = [&](const std::string& mutex, const std::string& var,
                           std::size_t line) {
    for (const Guard& g : active) {
      if (g.mutex.empty()) continue;
      if (g.mutex == mutex) {
        std::string message = "`";
        message += mutex_token(mutex);
        message +=
            "` is already held in this scope chain — re-acquiring a "
            "non-recursive mutex deadlocks";
        world.findings.push_back(
            {file.path, line, "lock-order", std::move(message),
             "release the outer guard first or restructure so one scope "
             "owns the lock"});
      } else {
        add_edge(g.mutex, mutex, line);
      }
    }
    active.push_back({var, mutex, depth});
    fl.acquires.insert(mutex);
  };

  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    const char c = code[i];
    if (c == '[') {
      // Subscripts follow a value (`arr[i]`, `f()[0]`); anything else
      // opening a bracket here is a lambda introducer (or an attribute,
      // which fails the body-shape test below). A lambda body runs when
      // the callee invokes it — on a pool thread, after the enclosing
      // scope unwinds — so guards held at the definition site say
      // nothing about the locks it takes. Skip the whole expression.
      std::size_t back = i;
      while (back > def.body_begin &&
             (code[back - 1] == ' ' || code[back - 1] == '\t' ||
              code[back - 1] == '\n')) {
        --back;
      }
      const char prev = back > def.body_begin ? code[back - 1] : '\0';
      if (!ident_char(prev) && prev != ')' && prev != ']') {
        int d = 0;
        std::size_t j = i;
        for (; j < def.body_end; ++j) {
          if (code[j] == '[') ++d;
          if (code[j] == ']' && --d == 0) break;
        }
        std::size_t k = j < def.body_end ? skip_ws(code, j + 1) : def.body_end;
        if (k < def.body_end && code[k] == '(') {
          int pd = 0;
          for (; k < def.body_end; ++k) {
            if (code[k] == '(') ++pd;
            if (code[k] == ')' && --pd == 0) {
              ++k;
              break;
            }
          }
        }
        // Optional specifiers (mutable, noexcept, -> Ret) up to the body.
        while (k < def.body_end && code[k] != '{' && code[k] != ';' &&
               code[k] != ')' && code[k] != ',' && code[k] != '}') {
          ++k;
        }
        if (k < def.body_end && code[k] == '{') {
          int bd = 0;
          std::size_t b = k;
          for (; b < def.body_end; ++b) {
            if (code[b] == '{') ++bd;
            if (code[b] == '}' && --bd == 0) break;
          }
          if (b < def.body_end) {
            i = b;
            continue;
          }
        }
      }
      continue;
    }
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!active.empty() && active.back().depth > depth)
        active.pop_back();
      continue;
    }
    if (!ident_char(c) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t e = i;
    while (e < def.body_end && ident_char(code[e])) ++e;
    const std::string tok = code.substr(i, e - i);
    const std::size_t line = line_of(s, i);

    if (guard_type(tok)) {
      // [<...>] name ( args ) ;
      std::size_t j = skip_ws(code, e);
      if (j < code.size() && code[j] == '<') {
        int d = 0;
        for (; j < code.size(); ++j) {
          if (code[j] == '<') ++d;
          if (code[j] == '>' && --d == 0) break;
        }
        j = skip_ws(code, j + 1);
      }
      std::size_t ve = j;
      while (ve < code.size() && ident_char(code[ve])) ++ve;
      const std::string var = code.substr(j, ve - j);
      std::size_t p = skip_ws(code, ve);
      if (var.empty() || p >= code.size() ||
          (code[p] != '(' && code[p] != '{')) {
        // `std::unique_lock<std::mutex> lk;` or a bare type mention —
        // not an acquisition.
        i = e - 1;
        continue;
      }
      const char open = code[p];
      const char close = open == '(' ? ')' : '}';
      int d = 0;
      std::size_t q = p;
      for (; q < code.size(); ++q) {
        if (code[q] == open) ++d;
        if (code[q] == close && --d == 0) break;
      }
      const std::string args = code.substr(p + 1, q - p - 1);
      const std::vector<std::string> parts = split_args(args);
      const bool deferred = std::any_of(
          parts.begin(), parts.end(), [](const std::string& a) {
            return a.find("defer_lock") != std::string::npos ||
                   a.find("adopt_lock") != std::string::npos ||
                   a.find("try_to_lock") != std::string::npos;
          });
      if (!parts.empty() && !deferred) {
        const std::size_t n =
            tok == "scoped_lock" ? parts.size() : std::size_t{1};
        for (std::size_t a = 0; a < n && a < parts.size(); ++a) {
          const std::string name = mutex_token(parts[a]);
          if (!name.empty()) acquire(qual + ":" + name, var, line);
        }
      } else if (!var.empty()) {
        active.push_back({var, "", depth});  // deferred: tracked, unheld
      }
      i = q;  // past the closing delimiter
      continue;
    }

    // guard.unlock() / guard.lock() on a tracked guard.
    std::size_t j = skip_ws(code, e);
    if (j + 1 < code.size() && code[j] == '.' ) {
      std::size_t me = skip_ws(code, j + 1);
      std::size_t mend = me;
      while (mend < code.size() && ident_char(code[mend])) ++mend;
      const std::string method = code.substr(me, mend - me);
      if (method == "unlock") {
        for (auto it = active.rbegin(); it != active.rend(); ++it) {
          if (it->var == tok) {
            it->mutex.clear();
            break;
          }
        }
        i = e - 1;
        continue;
      }
    }

    // Call to a function defined in this file — resolved against the
    // callee's acquisition set in a second pass. A member or qualified
    // call (`map_.find(...)`, `std::size(...)`) targets another object's
    // or namespace's function, not the same-file definition that happens
    // to share the name.
    std::size_t back = i;
    while (back > 0 && (code[back - 1] == ' ' || code[back - 1] == '\n' ||
                        code[back - 1] == '\t')) {
      --back;
    }
    const bool qualified =
        back > 0 && (code[back - 1] == '.' || code[back - 1] == ':' ||
                     (back > 1 && code[back - 2] == '-' &&
                      code[back - 1] == '>'));
    if (!qualified && j < code.size() && code[j] == '(' &&
        local_fns.count(tok) != 0 && i != def.sig_begin) {
      CallSite site;
      site.callee = tok;
      site.line = line;
      for (const Guard& g : active) {
        if (!g.mutex.empty()) site.held.push_back(g.mutex);
      }
      if (!site.held.empty()) fl.calls.push_back(std::move(site));
    }
    i = e - 1;
  }
}

void check_cv_waits(const SourceFile& file, std::vector<Finding>& out) {
  const Scrubbed& s = file.scrubbed;
  const std::string& code = s.code;
  for (std::size_t i = 0; i + 5 < code.size(); ++i) {
    if (code[i] != '.') continue;
    std::size_t e = i + 1;
    while (e < code.size() && ident_char(code[e])) ++e;
    const std::string method = code.substr(i + 1, e - i - 1);
    std::size_t min_args = 0;
    if (method == "wait") {
      min_args = 2;  // (lock, predicate)
    } else if (method == "wait_for" || method == "wait_until") {
      min_args = 3;  // (lock, time, predicate)
    } else {
      continue;
    }
    const std::size_t p = skip_ws(code, e);
    if (p >= code.size() || code[p] != '(') continue;
    // Receiver: the identifier before the '.', possibly behind -> or '.'.
    std::size_t r = i;
    while (r > 0 && ident_char(code[r - 1])) --r;
    std::string receiver = code.substr(r, i - r);
    std::transform(receiver.begin(), receiver.end(), receiver.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (receiver.find("cv") == std::string::npos &&
        receiver.find("cond") == std::string::npos) {
      continue;
    }
    int d = 0;
    std::size_t q = p;
    for (; q < code.size(); ++q) {
      if (code[q] == '(') ++d;
      if (code[q] == ')' && --d == 0) break;
    }
    const std::vector<std::string> args =
        split_args(code.substr(p + 1, q - p - 1));
    if (args.size() >= min_args) continue;
    std::string message = "`" + receiver;
    message += "." + method;
    message +=
        "` without a predicate — a spurious wakeup or a missed notify "
        "leaves the waiter blocked on a stale condition";
    std::string fixit = "use the predicate overload: `" + receiver;
    fixit += "." + method;
    fixit += "(lock";
    fixit += min_args == 3 ? ", timeout" : "";
    fixit += ", [&] { return <condition>; })`";
    out.push_back({file.path, line_of(s, i), "cv-wait", std::move(message),
                   std::move(fixit)});
  }
}

void check_edge_cycles(LockWorld& world) {
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    color[v] = 1;
    stack.push_back(v);
    auto it = world.edges.find(v);
    if (it != world.edges.end()) {
      for (const auto& [next, edge] : it->second) {
        if (color[next] == 2) continue;
        if (color[next] == 1) {
          auto begin = std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cycle(begin, stack.end());
          auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string chain;
          std::string witnesses;
          for (std::size_t k = 0; k < cycle.size(); ++k) {
            const std::string& from = cycle[k];
            const std::string& to = cycle[(k + 1) % cycle.size()];
            chain += from + " -> ";
            const Edge& w = world.edges[from][to];
            if (!witnesses.empty()) witnesses += "; ";
            witnesses += from + "->" + to + " at " + w.witness;
          }
          chain += cycle.front();
          if (reported.insert(chain).second) {
            // Anchor at the first witness of the cycle's lead edge.
            const Edge& lead =
                world.edges[cycle.front()][cycle[1 % cycle.size()]];
            std::string path = lead.witness;
            std::size_t line = 1;
            const std::size_t colon = path.find(':');
            if (colon != std::string::npos) {
              line = static_cast<std::size_t>(
                  std::stoul(path.substr(colon + 1)));
              path.resize(colon);
            }
            world.findings.push_back(
                {path, line, "lock-order",
                 "lock ordering cycle: " + chain + " (" + witnesses + ")",
                 "pick one global order for these mutexes and acquire "
                 "them in it everywhere"});
          }
          continue;
        }
        dfs(next);
      }
    }
    stack.pop_back();
    color[v] = 2;
  };
  std::vector<std::string> nodes;
  for (const auto& [from, tos] : world.edges) {
    nodes.push_back(from);
    for (const auto& [to, e] : tos) {
      (void)e;
      nodes.push_back(to);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::string& n : nodes) {
    if (color[n] == 0) dfs(n);
  }
}

}  // namespace

std::vector<Finding> check_locks(const std::vector<SourceFile>& files) {
  LockWorld world;
  std::map<const SourceFile*, std::vector<FuncLocks>> per_file;
  for (const SourceFile& f : files) {
    std::set<std::string> local_fns;
    for (const FuncDef& d : f.defs) local_fns.insert(d.name);
    auto& fns = per_file[&f];
    for (const FuncDef& d : f.defs) {
      FuncLocks fl;
      fl.file = &f;
      fl.def = &d;
      scan_function(f, d, local_fns, world, fl);
      fns.push_back(std::move(fl));
    }
    check_cv_waits(f, world.findings);
  }

  // Second pass: calls made while holding M, into a same-file function
  // that acquires M directly, deadlock; other callee acquisitions extend
  // the ordering graph through the call edge.
  for (const auto& [file, fns] : per_file) {
    std::map<std::string, std::set<std::string>> acquires_by_name;
    for (const FuncLocks& fl : fns) {
      acquires_by_name[fl.def->name].insert(fl.acquires.begin(),
                                            fl.acquires.end());
    }
    for (const FuncLocks& fl : fns) {
      for (const CallSite& call : fl.calls) {
        const auto it = acquires_by_name.find(call.callee);
        if (it == acquires_by_name.end()) continue;
        for (const std::string& held : call.held) {
          for (const std::string& taken : it->second) {
            if (taken == held) {
              std::string message = "`" + call.callee;
              message += "()` acquires `";
              message += mutex_token(held);
              message +=
                  "` which is already held at this call site — deadlock "
                  "through the call edge";
              std::string fixit =
                  "drop the guard before the call or add an unlocked "
                  "variant of `" +
                  call.callee;
              fixit += "`";
              world.findings.push_back({file->path, call.line, "lock-order",
                                        std::move(message),
                                        std::move(fixit)});
            } else {
              auto& e = world.edges[held];
              if (e.find(taken) == e.end()) {
                e[taken] = {file->path + ":" + std::to_string(call.line) +
                            " (" + fl.def->name + " -> " + call.callee +
                            ")"};
              }
            }
          }
        }
      }
    }
  }

  check_edge_cycles(world);
  std::stable_sort(world.findings.begin(), world.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.path, a.line, a.message) <
                            std::tie(b.path, b.line, b.message);
                   });
  // Two call sites reaching the same callee under the same guard say the
  // same thing once.
  world.findings.erase(
      std::unique(world.findings.begin(), world.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.path == b.path && a.line == b.line &&
                           a.message == b.message;
                  }),
      world.findings.end());
  return world.findings;
}

}  // namespace ddtr::lint
