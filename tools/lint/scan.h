// The shared scanner core of every ddtr_lint pass. PR 8's rule engine,
// the dependency/layering analyzer, the lock-order checker and the
// autofix rewriter all consume the same primitives: a "code view" of the
// file with comments and literals blanked (offsets preserved 1:1), a
// token-level function-definition finder, an include-directive scanner,
// and the `// ddtr-lint: allow(...)` suppression machinery. One scan per
// file (SourceFile) feeds every pass — no file is tokenized twice.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace ddtr::lint {

// --- Source scrubbing ---------------------------------------------------
// Everything downstream works on a "code view" of the file: the same
// length as the original (so offsets map 1:1), with comment bodies and
// string/char literal contents blanked to spaces. Comments are collected
// separately, per line — they carry the suppression and accounting-region
// markers.

struct Scrubbed {
  std::string code;                   // literals/comments blanked
  std::vector<std::string> comment;   // per-line comment text, merged
  std::vector<std::size_t> line_off;  // offset of each line start
};

Scrubbed scrub(const std::string& text);

bool ident_char(char c);

// 1-based line number of a byte offset.
std::size_t line_of(const Scrubbed& s, std::size_t offset);

// The code view of one 1-based line ("" when out of range).
std::string code_line(const Scrubbed& s, std::size_t line1);

// --- Function extraction ------------------------------------------------
// Token-level definition finder: identifier, balanced parameter list,
// then (skipping cv-qualifiers, noexcept, trailing return, ctor-init
// lists) an opening brace. Calls end in `;` or an operator instead and
// are skipped. Good enough for this codebase's style; the unit tests pin
// the cases the rules rely on.

struct FuncDef {
  std::string name;
  std::size_t sig_begin = 0;   // offset of the name
  std::size_t body_begin = 0;  // offset of '{'
  std::size_t body_end = 0;    // offset past matching '}'
};

std::vector<FuncDef> find_functions(const Scrubbed& s);

// Innermost definition whose body contains `offset` (nullptr if none).
const FuncDef* enclosing_function(const std::vector<FuncDef>& defs,
                                  std::size_t offset);

// --- Include extraction -------------------------------------------------

struct IncludeDirective {
  std::size_t line = 0;  // 1-based
  bool angle = false;    // <...> vs "..."
  std::string target;    // the bytes between the delimiters
  bool conditional = false;  // inside an #if/#ifdef/#ifndef block
};

// Every #include directive of the file, in order, with #if-nesting
// tracked so conditional includes can be left alone by reordering and
// removal passes. `raw` is the unscrubbed content (the string scrubber
// blanks quoted targets in the code view).
std::vector<IncludeDirective> find_includes(const Scrubbed& s,
                                            const std::string& raw);

// --- Path helpers -------------------------------------------------------

std::string normalize_path(const std::string& path);
bool path_has(const std::string& path, std::string_view needle);
bool is_header_path(const std::string& path);

// --- Suppressions -------------------------------------------------------

bool comment_allows(const std::string& comment, const std::string& rule,
                    bool file_scope);

// `// ddtr-lint: allow(rule)` on the finding's line or the one before;
// `allow-file(rule)` anywhere in the file.
bool suppressed(const Scrubbed& s, const Finding& f);

// --- The once-per-file scan record --------------------------------------

struct SourceFile {
  std::string path;  // normalized; repo-relative when scanned from a tree
  std::string content;
  Scrubbed scrubbed;
  std::vector<FuncDef> defs;
  std::vector<IncludeDirective> includes;
};

SourceFile make_source_file(std::string path, std::string content);

// Reads a file as bytes; nullopt when unreadable.
std::optional<std::string> read_file_text(const std::string& path);

}  // namespace ddtr::lint
